//! Smoke wrappers that execute each paper-figure experiment at a reduced
//! scale. `cargo bench --bench figures` therefore exercises every
//! figure's full code path (and tracks the harness's own wall-clock
//! cost); the figure *results* — simulated seconds, speedups — are
//! printed by the `fig7..fig12` binaries.

use std::hint::black_box;

use kvcsd_bench::{baseline, kvcsd, vpic_exp, Testbed};
use kvcsd_lsm::CompactionMode;
use kvcsd_workloads::{PutWorkload, VpicDump};

/// Time `iters` runs of `f` and print the mean wall-clock per run.
fn bench<R>(name: &str, iters: u64, mut f: impl FnMut() -> R) {
    black_box(f()); // warmup
    let start = kvcsd_sim::WallTimer::start();
    for _ in 0..iters {
        black_box(f());
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{name:<36} {iters:>3} iters  {ms:>9.2} ms/run");
}

fn fig7_shared_keyspace() {
    let wl = PutWorkload::paper_micro(5_000, 7);
    bench("fig7/kvcsd_8threads", 3, || {
        let mut tb = Testbed::new();
        kvcsd::load(&mut tb, 8, 1, &wl, true).insert_s
    });
    bench("fig7/rocksdb_8threads", 3, || {
        let mut tb = Testbed::new();
        baseline::load(&mut tb, 8, 1, &wl, CompactionMode::Automatic).insert_s
    });
}

fn fig9_multi_keyspace() {
    let wl = PutWorkload::paper_micro(2_000, 9);
    for mode in [
        CompactionMode::Automatic,
        CompactionMode::Deferred,
        CompactionMode::Disabled,
    ] {
        bench(&format!("fig9/rocksdb_{mode:?}_4ks"), 3, || {
            let mut tb = Testbed::new();
            baseline::load(&mut tb, 4, 4, &wl, mode).insert_s
        });
    }
    bench("fig9/kvcsd_4ks", 3, || {
        let mut tb = Testbed::new();
        kvcsd::load(&mut tb, 4, 4, &wl, true).insert_s
    });
}

fn fig10_random_gets() {
    let wl = PutWorkload::paper_micro(3_000, 10);
    let mut tb_k = Testbed::new();
    let loaded_k = kvcsd::load(&mut tb_k, 4, 4, &wl, true);
    let mut tb_b = Testbed::new();
    let loaded_b = baseline::load(&mut tb_b, 4, 4, &wl, CompactionMode::Automatic);
    bench("fig10/kvcsd_gets", 3, || {
        kvcsd::get_phase(&mut tb_k, &loaded_k, 4, 50, &wl, 1).0
    });
    bench("fig10/rocksdb_gets", 3, || {
        baseline::get_phase(&mut tb_b, &loaded_b, 4, 50, &wl, 1).0
    });
}

fn fig11_fig12_vpic() {
    let dump = VpicDump::new(8_000, 4, 11);
    bench("vpic/fig11_kvcsd_write_phase", 3, || {
        let mut tb = Testbed::new();
        vpic_exp::load_kvcsd(&mut tb, &dump).write_s
    });
    bench("vpic/fig11_rocksdb_write_phase", 3, || {
        let mut tb = Testbed::new();
        vpic_exp::load_baseline(&mut tb, &dump).write_s
    });
    let mut tb_k = Testbed::new();
    let k = vpic_exp::load_kvcsd(&mut tb_k, &dump);
    let mut tb_b = Testbed::new();
    let bl = vpic_exp::load_baseline(&mut tb_b, &dump);
    let threshold = dump.energy_threshold(0.01);
    bench("vpic/fig12_kvcsd_query_1pct", 3, || {
        vpic_exp::query_kvcsd(&mut tb_k, &k, threshold).0
    });
    bench("vpic/fig12_rocksdb_query_1pct", 3, || {
        vpic_exp::query_baseline(&mut tb_b, &bl, threshold).0
    });
}

fn main() {
    fig7_shared_keyspace();
    fig9_multi_keyspace();
    fig10_random_gets();
    fig11_fig12_vpic();
}
