//! Criterion wrappers that execute each paper-figure experiment at a
//! reduced scale. `cargo bench` therefore exercises every figure's full
//! code path (and tracks the harness's own wall-clock cost); the figure
//! *results* — simulated seconds, speedups — are printed by the
//! `fig7..fig12` binaries.

use criterion::{criterion_group, criterion_main, Criterion};

use kvcsd_bench::{baseline, kvcsd, vpic_exp, Testbed};
use kvcsd_lsm::CompactionMode;
use kvcsd_workloads::{PutWorkload, VpicDump};

fn fig7_shared_keyspace(c: &mut Criterion) {
    let wl = PutWorkload::paper_micro(5_000, 7);
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("kvcsd_8threads", |b| {
        b.iter(|| {
            let mut tb = Testbed::new();
            kvcsd::load(&mut tb, 8, 1, &wl, true).insert_s
        })
    });
    g.bench_function("rocksdb_8threads", |b| {
        b.iter(|| {
            let mut tb = Testbed::new();
            baseline::load(&mut tb, 8, 1, &wl, CompactionMode::Automatic).insert_s
        })
    });
    g.finish();
}

fn fig9_multi_keyspace(c: &mut Criterion) {
    let wl = PutWorkload::paper_micro(2_000, 9);
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for mode in [CompactionMode::Automatic, CompactionMode::Deferred, CompactionMode::Disabled] {
        g.bench_function(format!("rocksdb_{mode:?}_4ks"), |b| {
            b.iter(|| {
                let mut tb = Testbed::new();
                baseline::load(&mut tb, 4, 4, &wl, mode).insert_s
            })
        });
    }
    g.bench_function("kvcsd_4ks", |b| {
        b.iter(|| {
            let mut tb = Testbed::new();
            kvcsd::load(&mut tb, 4, 4, &wl, true).insert_s
        })
    });
    g.finish();
}

fn fig10_random_gets(c: &mut Criterion) {
    let wl = PutWorkload::paper_micro(3_000, 10);
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let mut tb_k = Testbed::new();
    let loaded_k = kvcsd::load(&mut tb_k, 4, 4, &wl, true);
    let mut tb_b = Testbed::new();
    let loaded_b = baseline::load(&mut tb_b, 4, 4, &wl, CompactionMode::Automatic);
    g.bench_function("kvcsd_gets", |b| {
        b.iter(|| kvcsd::get_phase(&mut tb_k, &loaded_k, 4, 50, &wl, 1).0)
    });
    g.bench_function("rocksdb_gets", |b| {
        b.iter(|| baseline::get_phase(&mut tb_b, &loaded_b, 4, 50, &wl, 1).0)
    });
    g.finish();
}

fn fig11_fig12_vpic(c: &mut Criterion) {
    let dump = VpicDump::new(8_000, 4, 11);
    let mut g = c.benchmark_group("vpic");
    g.sample_size(10);
    g.bench_function("fig11_kvcsd_write_phase", |b| {
        b.iter(|| {
            let mut tb = Testbed::new();
            vpic_exp::load_kvcsd(&mut tb, &dump).write_s
        })
    });
    g.bench_function("fig11_rocksdb_write_phase", |b| {
        b.iter(|| {
            let mut tb = Testbed::new();
            vpic_exp::load_baseline(&mut tb, &dump).write_s
        })
    });
    let mut tb_k = Testbed::new();
    let k = vpic_exp::load_kvcsd(&mut tb_k, &dump);
    let mut tb_b = Testbed::new();
    let bl = vpic_exp::load_baseline(&mut tb_b, &dump);
    let threshold = dump.energy_threshold(0.01);
    g.bench_function("fig12_kvcsd_query_1pct", |b| {
        b.iter(|| vpic_exp::query_kvcsd(&mut tb_k, &k, threshold).0)
    });
    g.bench_function("fig12_rocksdb_query_1pct", |b| {
        b.iter(|| vpic_exp::query_baseline(&mut tb_b, &bl, threshold).0)
    });
    g.finish();
}

criterion_group!(figures, fig7_shared_keyspace, fig9_multi_keyspace, fig10_random_gets, fig11_fig12_vpic);
criterion_main!(figures);
