//! Criterion microbenchmarks of the core data structures: wall-clock
//! performance of the real algorithms that the simulation executes.
//! (Simulated experiment times come from the figure binaries; these
//! benches guard the implementation's own speed.)

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use kvcsd_blockfs::{BlockFs, FsConfig};
use kvcsd_core::compact::{decode_pidx_block, PidxBlockBuilder, PidxEntry};
use kvcsd_core::dram::DramBudget;
use kvcsd_core::extsort::ExtSorter;
use kvcsd_core::ingest::{KlogRecord, WriteLog};
use kvcsd_core::soc::SocCharger;
use kvcsd_core::zone_mgr::ZoneManager;
use kvcsd_flash::{
    ConvConfig, ConventionalNamespace, FlashGeometry, NandArray, ZnsConfig, ZonedNamespace,
};
use kvcsd_lsm::bloom::BloomFilter;
use kvcsd_lsm::memtable::MemTable;
use kvcsd_lsm::sstable::{new_block_cache, TableBuilder};
use kvcsd_proto::BulkBuilder;
use kvcsd_sim::config::{CostModel, SimConfig};
use kvcsd_sim::{HardwareSpec, IoLedger};

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("key-{:012}", (i as u64).wrapping_mul(0x9E3779B97F4A7C15)).into_bytes()).collect()
}

fn bench_bloom(c: &mut Criterion) {
    let ks = keys(10_000);
    let mut g = c.benchmark_group("bloom");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("build_10k", |b| {
        b.iter(|| BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10))
    });
    let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
    g.throughput(Throughput::Elements(1));
    g.bench_function("probe", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ks.len();
            f.may_contain(&ks[i])
        })
    });
    g.finish();
}

fn bench_memtable(c: &mut Criterion) {
    let ks = keys(10_000);
    let mut g = c.benchmark_group("memtable");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("insert_10k", |b| {
        b.iter_batched(
            MemTable::new,
            |mut m| {
                for (i, k) in ks.iter().enumerate() {
                    m.insert(k.clone(), i as u64, Some(vec![0u8; 32]));
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_bulk_pack(c: &mut Criterion) {
    let ks = keys(2_000);
    let mut g = c.benchmark_group("proto");
    g.throughput(Throughput::Elements(2_000));
    g.bench_function("bulk_pack_2k_pairs", |b| {
        b.iter(|| {
            let mut bb = BulkBuilder::new(1 << 20);
            for k in &ks {
                bb.push(k, &[7u8; 32]);
            }
            bb.finish()
        })
    });
    g.finish();
}

fn fresh_fs() -> BlockFs {
    let geom = FlashGeometry {
        channels: 8,
        blocks_per_channel: 1024,
        pages_per_block: 32,
        page_bytes: 4096,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
    let conv = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
    BlockFs::format(conv, CostModel::default(), FsConfig::default())
}

fn bench_sstable(c: &mut Criterion) {
    let ks = keys(5_000);
    let mut sorted = ks.clone();
    sorted.sort();
    let mut g = c.benchmark_group("sstable");
    g.sample_size(20);
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("build_5k", |b| {
        let mut id = 0u64;
        b.iter_batched(
            fresh_fs,
            |fs| {
                id += 1;
                let mut tb =
                    TableBuilder::create(&fs, &format!("{id}.sst"), id, 4096, 16, 10).unwrap();
                for (i, k) in sorted.iter().enumerate() {
                    tb.add(k, i as u64, Some(&[1u8; 32])).unwrap();
                }
                tb.finish().unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    // Random point gets through the block cache.
    let fs = fresh_fs();
    let mut tb = TableBuilder::create(&fs, "t.sst", 1, 4096, 16, 10).unwrap();
    for (i, k) in sorted.iter().enumerate() {
        tb.add(k, i as u64, Some(&[1u8; 32])).unwrap();
    }
    let table = tb.finish().unwrap();
    let cache = new_block_cache(4096);
    let cost = CostModel::default();
    g.throughput(Throughput::Elements(1));
    g.bench_function("get_warm", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % sorted.len();
            table.get(&fs, &cost, &cache, &sorted[i]).unwrap().unwrap()
        })
    });
    g.finish();
}

fn zone_mgr() -> (ZoneManager, SocCharger) {
    let geom = FlashGeometry {
        channels: 16,
        blocks_per_channel: 1024,
        pages_per_block: 16,
        page_bytes: 4096,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(
        nand,
        ZnsConfig { zone_blocks: 4, max_open_zones: 1 << 16 },
    ));
    (ZoneManager::new(zns, 1, 7), SocCharger::new(ledger, CostModel::default()))
}

fn bench_device_paths(c: &mut Criterion) {
    let ks = keys(5_000);
    let mut g = c.benchmark_group("device");
    g.sample_size(20);
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("ingest_5k_pairs", |b| {
        b.iter_batched(
            zone_mgr,
            |(mgr, soc)| {
                let kc = mgr.alloc_cluster(8).unwrap();
                let vc = mgr.alloc_cluster(8).unwrap();
                let mut log = WriteLog::new(kc, vc);
                for k in &ks {
                    log.put(&mgr, &soc, k, &[9u8; 32]).unwrap();
                }
                log.seal(&mgr).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("extsort_5k", |b| {
        b.iter_batched(
            || {
                let (mgr, soc) = zone_mgr();
                (mgr, soc, DramBudget::new(128 << 10)) // tight: forces spills
            },
            |(mgr, soc, dram)| {
                let mut s: ExtSorter<'_, KlogRecord> =
                    ExtSorter::new(&mgr, &soc, &dram, 4).unwrap();
                for (i, k) in ks.iter().enumerate() {
                    s.push(KlogRecord { key: k.clone(), voff: i as u64 * 32, vlen: 32 })
                        .unwrap();
                }
                let mut n = 0u64;
                s.finish_into(|_| {
                    n += 1;
                    Ok(())
                })
                .unwrap();
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_pidx_block(c: &mut Criterion) {
    let mut builder = PidxBlockBuilder::new();
    let mut n = 0u64;
    loop {
        let e = PidxEntry { key: format!("key-{n:012}").into_bytes(), voff: n * 32, vlen: 32 };
        if !builder.fits(e.key.len()) {
            break;
        }
        builder.add(&e);
        n += 1;
    }
    let (block, _) = builder.finish();
    let mut g = c.benchmark_group("pidx");
    g.throughput(Throughput::Elements(n));
    g.bench_function("decode_block", |b| b.iter(|| decode_pidx_block(&block).unwrap()));
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    use kvcsd_bench::Testbed;
    use kvcsd_workloads::PutWorkload;
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let wl = PutWorkload::paper_micro(5_000, 99);
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("kvcsd_load_5k", |b| {
        b.iter(|| {
            let mut tb = Testbed::new();
            kvcsd_bench::kvcsd::load(&mut tb, 4, 1, &wl, true).insert_s
        })
    });
    g.bench_function("lsm_load_5k", |b| {
        b.iter(|| {
            let mut tb = Testbed::new();
            kvcsd_bench::baseline::load(
                &mut tb,
                4,
                1,
                &wl,
                kvcsd_lsm::CompactionMode::Automatic,
            )
            .insert_s
        })
    });
    let _ = SimConfig::default();
    g.finish();
}

criterion_group!(
    benches,
    bench_bloom,
    bench_memtable,
    bench_bulk_pack,
    bench_sstable,
    bench_device_paths,
    bench_pidx_block,
    bench_end_to_end
);
criterion_main!(benches);
