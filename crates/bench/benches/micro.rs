//! Microbenchmarks of the core data structures: wall-clock performance
//! of the real algorithms that the simulation executes. (Simulated
//! experiment times come from the figure binaries; these benches guard
//! the implementation's own speed.)
//!
//! Self-timed (no external harness): each case runs a fixed iteration
//! count and prints ns/op. Run with `cargo bench --bench micro`.

use std::hint::black_box;
use std::sync::Arc;

use kvcsd_blockfs::{BlockFs, FsConfig};
use kvcsd_core::compact::{decode_pidx_block, PidxBlockBuilder, PidxEntry};
use kvcsd_core::dram::DramBudget;
use kvcsd_core::extsort::ExtSorter;
use kvcsd_core::ingest::{KlogRecord, WriteLog};
use kvcsd_core::soc::SocCharger;
use kvcsd_core::zone_mgr::ZoneManager;
use kvcsd_flash::{
    ConvConfig, ConventionalNamespace, FlashGeometry, NandArray, ZnsConfig, ZonedNamespace,
};
use kvcsd_lsm::bloom::BloomFilter;
use kvcsd_lsm::memtable::MemTable;
use kvcsd_lsm::sstable::{new_block_cache, TableBuilder};
use kvcsd_proto::BulkBuilder;
use kvcsd_sim::config::CostModel;
use kvcsd_sim::{HardwareSpec, IoLedger};

/// Time `iters` runs of `f` and print per-element cost.
fn bench<R>(name: &str, iters: u64, elements: u64, mut f: impl FnMut() -> R) {
    // One warmup run, then the timed loop.
    black_box(f());
    let start = kvcsd_sim::WallTimer::start();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    let per_elem = total.as_nanos() as f64 / (iters * elements.max(1)) as f64;
    println!("{name:<28} {iters:>6} iters  {per_elem:>12.1} ns/elem");
}

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("key-{:012}", (i as u64).wrapping_mul(0x9E3779B97F4A7C15)).into_bytes())
        .collect()
}

fn bench_bloom() {
    let ks = keys(10_000);
    bench("bloom/build_10k", 20, 10_000, || {
        BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10)
    });
    let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
    let mut i = 0usize;
    bench("bloom/probe", 100_000, 1, || {
        i = (i + 1) % ks.len();
        f.may_contain(&ks[i])
    });
}

fn bench_memtable() {
    let ks = keys(10_000);
    bench("memtable/insert_10k", 20, 10_000, || {
        let mut m = MemTable::new();
        for (i, k) in ks.iter().enumerate() {
            m.insert(k.clone(), i as u64, Some(vec![0u8; 32]));
        }
        m
    });
}

fn bench_bulk_pack() {
    let ks = keys(2_000);
    bench("proto/bulk_pack_2k_pairs", 50, 2_000, || {
        let mut bb = BulkBuilder::new(1 << 20);
        for k in &ks {
            bb.push(k, &[7u8; 32]);
        }
        bb.finish()
    });
}

fn fresh_fs() -> BlockFs {
    let geom = FlashGeometry {
        channels: 8,
        blocks_per_channel: 1024,
        pages_per_block: 32,
        page_bytes: 4096,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
    let conv = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
    BlockFs::format(conv, CostModel::default(), FsConfig::default())
}

fn bench_sstable() {
    let ks = keys(5_000);
    let mut sorted = ks.clone();
    sorted.sort();
    let mut id = 0u64;
    bench("sstable/build_5k", 10, 5_000, || {
        let fs = fresh_fs();
        id += 1;
        let mut tb = TableBuilder::create(&fs, &format!("{id}.sst"), id, 4096, 16, 10).unwrap();
        for (i, k) in sorted.iter().enumerate() {
            tb.add(k, i as u64, Some(&[1u8; 32])).unwrap();
        }
        tb.finish().unwrap()
    });
    // Random point gets through the block cache.
    let fs = fresh_fs();
    let mut tb = TableBuilder::create(&fs, "t.sst", 1, 4096, 16, 10).unwrap();
    for (i, k) in sorted.iter().enumerate() {
        tb.add(k, i as u64, Some(&[1u8; 32])).unwrap();
    }
    let table = tb.finish().unwrap();
    let cache = new_block_cache(4096);
    let cost = CostModel::default();
    let mut i = 0usize;
    bench("sstable/get_warm", 10_000, 1, || {
        i = (i + 7919) % sorted.len();
        table.get(&fs, &cost, &cache, &sorted[i]).unwrap().unwrap()
    });
}

fn zone_mgr() -> (ZoneManager, SocCharger) {
    let geom = FlashGeometry {
        channels: 16,
        blocks_per_channel: 1024,
        pages_per_block: 16,
        page_bytes: 4096,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(
        geom,
        &HardwareSpec::default(),
        Arc::clone(&ledger),
    ));
    let zns = Arc::new(ZonedNamespace::new(
        nand,
        ZnsConfig {
            zone_blocks: 4,
            max_open_zones: 1 << 16,
        },
    ));
    (
        ZoneManager::new(zns, 1, 7),
        SocCharger::new(ledger, CostModel::default()),
    )
}

fn bench_device_paths() {
    let ks = keys(5_000);
    bench("device/ingest_5k_pairs", 10, 5_000, || {
        let (mgr, soc) = zone_mgr();
        let kc = mgr.alloc_cluster(8).unwrap();
        let vc = mgr.alloc_cluster(8).unwrap();
        let mut log = WriteLog::new(kc, vc);
        for k in &ks {
            log.put(&mgr, &soc, k, &[9u8; 32]).unwrap();
        }
        log.seal(&mgr).unwrap()
    });
    bench("device/extsort_5k", 10, 5_000, || {
        let (mgr, soc) = zone_mgr();
        let dram = DramBudget::new(128 << 10); // tight: forces spills
        let mut s: ExtSorter<'_, KlogRecord> = ExtSorter::new(&mgr, &soc, &dram, 4).unwrap();
        for (i, k) in ks.iter().enumerate() {
            s.push(KlogRecord {
                key: k.clone(),
                voff: i as u64 * 32,
                vlen: 32,
            })
            .unwrap();
        }
        let mut n = 0u64;
        s.finish_into(|_| {
            n += 1;
            Ok(())
        })
        .unwrap();
        n
    });
}

fn bench_pidx_block() {
    let mut builder = PidxBlockBuilder::new();
    let mut n = 0u64;
    loop {
        let e = PidxEntry {
            key: format!("key-{n:012}").into_bytes(),
            voff: n * 32,
            vlen: 32,
        };
        if !builder.fits(e.key.len()) {
            break;
        }
        builder.add(&e);
        n += 1;
    }
    let (block, _) = builder.finish();
    bench("pidx/decode_block", 1_000, n, || {
        decode_pidx_block(&block).unwrap()
    });
}

fn bench_end_to_end() {
    use kvcsd_bench::Testbed;
    use kvcsd_workloads::PutWorkload;
    let wl = PutWorkload::paper_micro(5_000, 99);
    bench("end_to_end/kvcsd_load_5k", 5, 5_000, || {
        let mut tb = Testbed::new();
        kvcsd_bench::kvcsd::load(&mut tb, 4, 1, &wl, true).insert_s
    });
    bench("end_to_end/lsm_load_5k", 5, 5_000, || {
        let mut tb = Testbed::new();
        kvcsd_bench::baseline::load(&mut tb, 4, 1, &wl, kvcsd_lsm::CompactionMode::Automatic)
            .insert_s
    });
}

fn main() {
    bench_bloom();
    bench_memtable();
    bench_bulk_pack();
    bench_sstable();
    bench_device_paths();
    bench_pidx_block();
    bench_end_to_end();
}
