//! Reporting helpers for the figure binaries.

use kvcsd_sim::stats::{human_bytes, human_secs};
use kvcsd_sim::LedgerSnapshot;

/// Format a duration for a table cell.
pub fn fmt_secs(s: f64) -> String {
    human_secs(s)
}

/// Format a phase's storage + bus traffic ("read / written / pcie").
pub fn fmt_io(w: &LedgerSnapshot) -> String {
    format!(
        "read {} | written {} | pcie {}",
        human_bytes(w.storage_read_bytes()),
        human_bytes(w.storage_write_bytes()),
        human_bytes(w.pcie_bytes())
    )
}

/// Speedup as the paper quotes it ("KV-CSD is N.Nx faster").
pub fn speedup(slow_s: f64, fast_s: f64) -> String {
    if fast_s <= 0.0 {
        return "inf".into();
    }
    format!("{:.1}x", slow_s / fast_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup(10.0, 2.0), "5.0x");
        assert_eq!(speedup(1.0, 0.0), "inf");
    }

    #[test]
    fn io_formatting_mentions_all_three() {
        let s = LedgerSnapshot {
            page_bytes: 4096,
            ..Default::default()
        };
        let txt = fmt_io(&s);
        assert!(txt.contains("read") && txt.contains("written") && txt.contains("pcie"));
    }
}
