//! Figure 12: KV-CSD vs RocksDB secondary-index query time across query
//! selectivities.
//!
//! Paper result: KV-CSD is up to 7.4x faster at 0.1% selectivity,
//! declining to 1.3x at 20% as RocksDB's client-side caching pays off for
//! less selective queries; KV-CSD's latency stays linear in the number of
//! particles returned.

use kvcsd_bench::report::{fmt_secs, speedup};
use kvcsd_bench::{vpic_exp, Args, Testbed};
use kvcsd_sim::stats::TextTable;
use kvcsd_workloads::VpicDump;

fn main() {
    let args = Args::parse();
    let dump = VpicDump::new(args.keys, 16, args.seed);
    println!(
        "Fig 12: energy-threshold queries over {} particles, 16 query threads\n",
        args.keys
    );

    let mut tb_k = Testbed::new();
    let k = vpic_exp::load_kvcsd(&mut tb_k, &dump);
    let mut tb_b = Testbed::new();
    let b = vpic_exp::load_baseline(&mut tb_b, &dump);

    let mut t = TextTable::new(["selectivity", "hits", "rocksdb", "kvcsd", "speedup"]);
    for sel in [0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let threshold = dump.energy_threshold(sel);
        let (bs, hits_b, _) = vpic_exp::query_baseline(&mut tb_b, &b, threshold);
        let (ks, hits_k, _) = vpic_exp::query_kvcsd(&mut tb_k, &k, threshold);
        assert_eq!(
            hits_b, hits_k,
            "both systems must return identical result sets"
        );
        t.row([
            format!("{:.1}%", sel * 100.0),
            hits_k.to_string(),
            fmt_secs(bs),
            fmt_secs(ks),
            speedup(bs, ks),
        ]);
    }
    print!("{}", t.render());
}
