//! Deterministic ingest benchmark: lock-step vs. pipelined vs.
//! accelerated writes over the explicit in-flight window, in *virtual*
//! time, on a single device and on a 2-shard cluster.
//!
//! Three arms per topology, all inserting the same seeded key/value
//! stream:
//!
//! * `lock_step` — queue depth 1, one `PUT` per round trip: the paper
//!   client's original submission model. Every command pays both PCIe
//!   command hops plus its device execution before the next may start.
//! * `pipelined` — queue depth 32, still one `PUT` per command, but the
//!   in-flight window keeps the submission queue full so transfer,
//!   execution lanes and completion overlap across commands.
//! * `accelerated` — queue depth 32 and the host-side write
//!   accelerator: entries are staged, key-sorted and packed into
//!   ~128 KB `BULK_PUT` messages that stream through the same window.
//!
//! Every number derives from virtual clocks and ledgers, so the output
//! is byte-identical across machines; CI diffs stdout against the
//! committed `BENCH_ingest.json`. The binary itself enforces the
//! ingest trajectory this refactor was gated on: accelerated ingest
//! must beat lock-step by at least 3x on the same seed (it panics —
//! and fails CI — otherwise).

use std::sync::Arc;

use kvcsd_bench::Testbed;
use kvcsd_client::{InflightWindow, RetryPolicy, WriteAccelerator};
use kvcsd_cluster::{ClusterConfig, ClusterRouter};
use kvcsd_proto::{DeviceHandler, ExecProbe, KvCommand, KvResponse, QueuePair};
use kvcsd_sim::stats::nearest_rank;
use kvcsd_sim::{IoLedger, VirtualClock};

const PAIRS: u32 = 4000;
const VALUE_BYTES: usize = 64;
const DEPTH: usize = 32;
const LANES: usize = 4;
const ACCEL_OUTSTANDING: usize = 8;
const SEED: u64 = 42;

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    LockStep,
    Pipelined,
    Accelerated,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::LockStep => "lock_step",
            Arm::Pipelined => "pipelined",
            Arm::Accelerated => "accelerated",
        }
    }

    fn depth(self) -> usize {
        match self {
            Arm::LockStep => 1,
            Arm::Pipelined | Arm::Accelerated => DEPTH,
        }
    }
}

fn key_for(i: u32) -> Vec<u8> {
    // Seed-dependent shuffle so the accelerator's sort has real work.
    let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ SEED;
    format!("k{:06}x{:04}", x % PAIRS as u64, i % 10_000).into_bytes()
}

fn value_for(key: &[u8]) -> Vec<u8> {
    let mut x = 0x243f_6a88_85a3_08d3u64 ^ SEED;
    for &b in key {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (0..VALUE_BYTES)
        .map(|i| ((x >> ((i % 8) * 8)) as u8).wrapping_add(i as u8))
        .collect()
}

struct ArmStats {
    arm: &'static str,
    pairs: u64,
    total_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
    pcie_h2d_bytes: u64,
    pcie_d2h_bytes: u64,
    pcie_msgs: u64,
}

impl ArmStats {
    fn ops_per_vsec(&self) -> f64 {
        self.pairs as f64 * 1e9 / self.total_ns.max(1) as f64
    }

    fn to_json(&self) -> String {
        format!(
            "      {{\"arm\": \"{}\", \"pairs\": {}, \"virtual_ns\": {}, \"ops_per_vsec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"pcie_h2d_bytes\": {}, \"pcie_d2h_bytes\": {}, \"pcie_msgs\": {}}}",
            self.arm,
            self.pairs,
            self.total_ns,
            self.ops_per_vsec(),
            self.p50_ns,
            self.p99_ns,
            self.pcie_h2d_bytes,
            self.pcie_d2h_bytes,
            self.pcie_msgs
        )
    }
}

/// Drive one arm over an already-pipelined queue pair whose shared
/// ledger is `ledger`; returns the arm's virtual-time statistics.
fn drive(arm: Arm, qp: QueuePair, ledger: &Arc<IoLedger>, clock: &Arc<VirtualClock>) -> ArmStats {
    let win = InflightWindow::new(qp.clone(), RetryPolicy::none(), Some(Arc::clone(clock)));
    let ks = match win.call(
        None,
        KvCommand::CreateKeyspace {
            name: "ingest".into(),
        },
    ) {
        Ok(KvResponse::Created { ks }) => ks,
        other => panic!("create: {other:?}"),
    };
    // Drop the setup command's latency sample before measuring.
    win.completion_latencies();
    let led0 = ledger.snapshot();
    let t0 = clock.now_ns();

    let mut lats = match arm {
        Arm::LockStep | Arm::Pipelined => {
            let mut ops = Vec::with_capacity(PAIRS as usize);
            for i in 0..PAIRS {
                let k = key_for(i);
                let v = value_for(&k);
                ops.push(win.submit(
                    None,
                    KvCommand::Put {
                        ks,
                        key: k,
                        value: v,
                    },
                ));
            }
            for op in ops {
                match win.wait(op) {
                    Ok(KvResponse::PutOk) => {}
                    other => panic!("put: {other:?}"),
                }
            }
            win.completion_latencies()
        }
        Arm::Accelerated => {
            let accel =
                WriteAccelerator::new(qp, ks, RetryPolicy::none(), Some(Arc::clone(clock)), None)
                    .with_depth(ACCEL_OUTSTANDING);
            for i in 0..PAIRS {
                let k = key_for(i);
                let v = value_for(&k);
                accel.put(&k, &v).expect("accelerated put");
            }
            let acked = accel.flush().expect("flush");
            assert_eq!(acked, PAIRS as u64, "every staged pair must be acked");
            accel.completion_latencies()
        }
    };
    lats.sort_unstable();

    let led = ledger.snapshot().since(&led0);
    ArmStats {
        arm: arm.name(),
        pairs: PAIRS as u64,
        total_ns: clock.now_ns() - t0,
        p50_ns: nearest_rank(&lats, 50),
        p99_ns: nearest_rank(&lats, 99),
        pcie_h2d_bytes: led.pcie_h2d_bytes,
        pcie_d2h_bytes: led.pcie_d2h_bytes,
        pcie_msgs: led.pcie_msgs,
    }
}

/// One arm against a fresh single device.
fn run_single(arm: Arm) -> ArmStats {
    let tb = Testbed::new();
    let (dev, _client) = tb.kvcsd(4 << 20, 64 << 20, 1);
    let clock = Arc::new(VirtualClock::new());
    let qp = QueuePair::new(dev as Arc<dyn DeviceHandler>, Arc::clone(&tb.ledger)).with_pipeline(
        Arc::clone(&clock),
        arm.depth(),
        LANES,
        None,
    );
    drive(arm, qp, &tb.ledger, &clock)
}

/// One arm against a fresh 2-shard cluster. The execution probe is the
/// router's host clock, which fan-outs advance by the slowest shard's
/// busy delta — so a scattered bulk costs the router the slowest
/// shard's time while both shards' windows are driven concurrently.
fn run_two_shard(arm: Arm) -> ArmStats {
    let r = Arc::new(ClusterRouter::new(ClusterConfig {
        shards: 2,
        ..ClusterConfig::default()
    }));
    let hc = Arc::clone(r.host_clock());
    let probe: ExecProbe = Arc::new(move || hc.now_ns());
    let ledger = Arc::new(IoLedger::new(16, 4096));
    let clock = Arc::new(VirtualClock::new());
    let qp = QueuePair::new(r as Arc<dyn DeviceHandler>, Arc::clone(&ledger)).with_pipeline(
        Arc::clone(&clock),
        arm.depth(),
        LANES,
        Some(probe),
    );
    drive(arm, qp, &ledger, &clock)
}

fn emit(label: &str, arms: &[ArmStats], last: bool) -> String {
    let lock_step = arms[0].ops_per_vsec();
    let accelerated = arms[2].ops_per_vsec();
    let speedup = accelerated / lock_step.max(f64::MIN_POSITIVE);
    // The gate this refactor rode in on: accelerated pipelined BULK_PUT
    // ingest must beat lock-step single-PUT at queue depth 1 by >= 3x.
    assert!(
        speedup >= 3.0,
        "{label}: accelerated ingest regressed to {speedup:.2}x lock-step (< 3x)"
    );
    let mut out = format!("  \"{label}\": {{\n    \"arms\": [\n");
    let rows: Vec<String> = arms.iter().map(ArmStats::to_json).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str(&format!(
        "\n    ],\n    \"speedup_accel_vs_lock_step\": {speedup:.1}\n"
    ));
    out.push_str(if last { "  }\n" } else { "  },\n" });
    out
}

fn main() {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"pairs\": {PAIRS}, \"value_bytes\": {VALUE_BYTES}, \"depth\": {DEPTH}, \"lanes\": {LANES}, \"seed\": {SEED}}},\n"
    ));
    let arms = [Arm::LockStep, Arm::Pipelined, Arm::Accelerated];
    let single: Vec<ArmStats> = arms.iter().map(|&a| run_single(a)).collect();
    out.push_str(&emit("single_device", &single, false));
    let cluster: Vec<ArmStats> = arms.iter().map(|&a| run_two_shard(a)).collect();
    out.push_str(&emit("two_shard", &cluster, true));
    out.push_str("}\n");
    print!("{out}");
}
