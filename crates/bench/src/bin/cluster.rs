//! Deterministic cluster benchmark: replicated PUT / COMPACT / RANGE
//! with and without link faults, in *virtual* time.
//!
//! Every number here is derived from the per-shard virtual clocks and
//! the shared fabric ledger, never from wall time, so the output is
//! byte-identical across machines and build profiles. CI runs this
//! binary and diffs stdout against the committed `BENCH_cluster.json`:
//! any change to the cost model, the ship protocol or the link fault
//! lane shows up as a reviewable snapshot diff.
//!
//! Two invariants are visible in the snapshot itself:
//!
//! * PUT and RANGE latencies are identical between the clean and lossy
//!   runs — point ops and scatter-gather never touch the replication
//!   bus, and the link fault lane draws from its own RNG stream, so
//!   enabling link faults must not perturb device-side schedules.
//! * The COMPACT phase (synchronous seal + replica ship) and the bus
//!   counters are where the lossy link costs land: retries, duplicate
//!   deliveries and delay faults all surface as fabric traffic and
//!   ship latency, not as data loss.

use kvcsd_cluster::{ClusterConfig, ClusterRouter};
use kvcsd_proto::{Bound, DeviceHandler, JobState, KvCommand, KvResponse};
use kvcsd_sim::stats::nearest_rank;
use kvcsd_sim::FaultPlan;

const SHARDS: u32 = 2;
const KEYSPACES: u32 = 6;
const KEYS: u32 = 1200;
const RANGES: u32 = 160;
const VALUE_BYTES: usize = 64;
const SEED: u64 = 42;

fn value_for(key: &[u8]) -> Vec<u8> {
    let mut x = 0x243f_6a88_85a3_08d3u64;
    for &b in key {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (0..VALUE_BYTES)
        .map(|i| ((x >> ((i % 8) * 8)) as u8).wrapping_add(i as u8))
        .collect()
}

/// Fleet-wide virtual time: SoC/host CPU, bridge and NAND-channel
/// occupancy plus admission waits per shard, the replication channel
/// clocks (ack timeouts + retransmit backoff) and fabric occupancy.
/// Every term is monotonic and charged only by the cost model, so the
/// delta across one op is that op's deterministic virtual latency.
fn fleet_ns(r: &ClusterRouter) -> u64 {
    let mut t = 0u64;
    for ix in 0..SHARDS {
        let s = r.shard_ledger(ix).snapshot();
        t += s.soc_cpu_ns + s.host_cpu_ns + s.bridge_busy_ns;
        t += s.channel_busy_ns.iter().sum::<u64>();
        t += r.shard_clock(ix).now_ns();
        t += r.replica_log(ix).clock().now_ns();
    }
    t + r.fabric_ledger().custom("bus_busy_ns")
}

struct Phase {
    name: &'static str,
    ops: u64,
    total_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
}

impl Phase {
    fn from_lats(name: &'static str, mut lats: Vec<u64>) -> Self {
        lats.sort_unstable();
        Self {
            name,
            ops: lats.len() as u64,
            total_ns: lats.iter().sum(),
            p50_ns: nearest_rank(&lats, 50),
            p99_ns: nearest_rank(&lats, 99),
        }
    }

    /// Virtual-time throughput, 1 decimal (deterministic formatting).
    fn ops_per_vsec(&self) -> String {
        format!(
            "{:.1}",
            self.ops as f64 * 1e9 / (self.total_ns.max(1)) as f64
        )
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\"phase\": \"{}\", \"ops\": {}, \"virtual_ns\": {}, \"ops_per_vsec\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
            self.name,
            self.ops,
            self.total_ns,
            self.ops_per_vsec(),
            self.p50_ns,
            self.p99_ns
        )
    }
}

fn run_mode(lossy: bool) -> (Vec<Phase>, u64, u64) {
    let mut plan = if lossy {
        FaultPlan::none()
            .with_link_faults(0.25, 0.25, 0.10, 0.50)
            .with_link_delay_ns(50_000)
    } else {
        FaultPlan::none()
    };
    plan.seed = SEED;
    let r = ClusterRouter::new(ClusterConfig {
        shards: SHARDS,
        fault_plan: plan,
        ..ClusterConfig::default()
    });
    // Several keyspaces so the seal/ship path crosses the bus often
    // enough for the link fault probabilities to matter.
    let spaces: Vec<(u32, Vec<Vec<u8>>)> = (0..KEYSPACES)
        .map(|s| {
            let ks = match r.handle(KvCommand::CreateKeyspace {
                name: format!("bench{s}"),
            }) {
                KvResponse::Created { ks } => ks,
                other => panic!("create: {other:?}"),
            };
            let keys = (0..KEYS / KEYSPACES)
                .map(|i| format!("s{s}k{i:06}").into_bytes())
                .collect();
            (ks, keys)
        })
        .collect();

    // PUT phase: device-local, replication untouched.
    let mut put_lats = Vec::with_capacity(KEYS as usize);
    for (ks, keys) in &spaces {
        for k in keys {
            let before = fleet_ns(&r);
            match r.handle(KvCommand::Put {
                ks: *ks,
                key: k.clone(),
                value: value_for(k),
            }) {
                KvResponse::PutOk => {}
                other => panic!("put: {other:?}"),
            }
            put_lats.push(fleet_ns(&r) - before);
        }
    }

    // COMPACT phase: synchronous seal + replica ship (the bus path),
    // then polling drives the background index ships to completion.
    let mut compact_lats = Vec::with_capacity(spaces.len());
    for (ks, _) in &spaces {
        let before = fleet_ns(&r);
        let job = match r.handle(KvCommand::Compact { ks: *ks }) {
            KvResponse::JobStarted { job } => job,
            other => panic!("compact: {other:?}"),
        };
        loop {
            match r.handle(KvCommand::PollJob { job }) {
                KvResponse::Job {
                    state: JobState::Done,
                } => break,
                KvResponse::Job {
                    state: JobState::Failed(e),
                } => panic!("compact failed: {e}"),
                KvResponse::Job { .. } => {}
                other => panic!("poll: {other:?}"),
            }
        }
        while r.run_background() > 0 {}
        compact_lats.push(fleet_ns(&r) - before);
    }
    let compact = Phase::from_lats("compact_seal_ship", compact_lats);

    // RANGE phase: bounded scatter-gather windows over the sealed data.
    let mut range_lats = Vec::with_capacity(RANGES as usize);
    for i in 0..RANGES {
        let (ks, keys) = &spaces[i as usize % spaces.len()];
        let lo = (i as usize * 7) % keys.len();
        let hi = (lo + 48).min(keys.len() - 1);
        let before = fleet_ns(&r);
        match r.handle(KvCommand::Range {
            ks: *ks,
            lo: Bound::Included(keys[lo].clone()),
            hi: Bound::Included(keys[hi].clone()),
            limit: None,
        }) {
            KvResponse::Entries(es) => assert!(!es.is_empty()),
            other => panic!("range: {other:?}"),
        }
        range_lats.push(fleet_ns(&r) - before);
    }

    let phases = vec![
        Phase::from_lats("put", put_lats),
        compact,
        Phase::from_lats("range", range_lats),
    ];
    let fabric = r.fabric_ledger();
    (
        phases,
        fabric.custom("bus_msgs"),
        fabric.custom("bus_bytes"),
    )
}

fn main() {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"shards\": {SHARDS}, \"keyspaces\": {KEYSPACES}, \"keys\": {KEYS}, \"ranges\": {RANGES}, \"value_bytes\": {VALUE_BYTES}, \"seed\": {SEED}}},\n"
    ));
    for (label, lossy) in [("clean", false), ("lossy_link", true)] {
        let (phases, bus_msgs, bus_bytes) = run_mode(lossy);
        out.push_str(&format!("  \"{label}\": {{\n"));
        out.push_str("    \"phases\": [\n");
        let rows: Vec<String> = phases
            .iter()
            .map(|p| format!("  {}", p.to_json()))
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n    ],\n");
        out.push_str(&format!(
            "    \"bus_msgs\": {bus_msgs}, \"bus_bytes\": {bus_bytes}\n"
        ));
        out.push_str(if label == "clean" { "  },\n" } else { "  }\n" });
    }
    out.push_str("}\n");
    print!("{out}");
}
