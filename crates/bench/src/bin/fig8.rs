//! Figure 8: time to insert keys with different value sizes into a single
//! keyspace.
//!
//! Paper result: as value size grows RocksDB becomes increasingly
//! bottlenecked on compaction data movement. At 4 KB values KV-CSD with
//! 32 host cores is 10x faster; even with only 2 host cores it is 8.9x
//! faster than RocksDB using 32 cores.

use kvcsd_bench::report::{fmt_secs, speedup};
use kvcsd_bench::{baseline, kvcsd, Args, Testbed};
use kvcsd_lsm::CompactionMode;
use kvcsd_sim::stats::TextTable;
use kvcsd_workloads::PutWorkload;

fn main() {
    let args = Args::parse();
    println!(
        "Fig 8: insert {} keys, value sizes 32B..4KB, shared keyspace\n",
        args.keys
    );

    let mut t = TextTable::new([
        "value",
        "rocksdb(32c)",
        "kvcsd(32c)",
        "kvcsd(2c)",
        "speedup 32c",
        "speedup kvcsd-2c vs rocksdb-32c",
    ]);

    for value_bytes in [32usize, 128, 512, 1024, 4096] {
        // Keep the total data volume comparable across value sizes, as a
        // fixed key count would blow up the 4 KiB runs.
        let keys = (args.keys * 32 / value_bytes as u64).max(2_000);
        let wl = PutWorkload::new(keys, 16, value_bytes, args.seed);

        let mut tb_b = Testbed::new();
        let b = baseline::load(&mut tb_b, 32, 1, &wl, CompactionMode::Automatic);

        let mut tb_k32 = Testbed::new();
        let k32 = kvcsd::load(&mut tb_k32, 32, 1, &wl, true);

        let mut tb_k2 = Testbed::new();
        let k2 = kvcsd::load(&mut tb_k2, 2, 1, &wl, true);

        t.row([
            format!("{value_bytes}B x {keys}"),
            fmt_secs(b.insert_s),
            fmt_secs(k32.insert_s),
            fmt_secs(k2.insert_s),
            speedup(b.insert_s, k32.insert_s),
            speedup(b.insert_s, k2.insert_s),
        ]);
    }
    print!("{}", t.render());
}
