//! Table I: hardware specification of the simulated testbed.

use kvcsd_sim::config::SimConfig;
use kvcsd_sim::stats::{human_bytes, TextTable};

fn main() {
    let cfg = SimConfig::default();
    let hw = &cfg.hw;
    println!("TABLE I: Hardware Specification (simulated)\n");
    let mut t = TextTable::new(["", "Host", "KV-CSD CSD"]);
    t.row([
        "CPU",
        &format!("{} AMD EPYC cores", hw.host_cores),
        "4 ARM Cortex A53 cores",
    ]);
    t.row([
        "RAM",
        "512GB DDR4",
        &format!("{} DDR4", human_bytes(hw.soc_dram_bytes)),
    ]);
    t.row(["OS", "Ubuntu 18.04", "Ubuntu 16.04"]);
    t.row([
        "Storage",
        "KV-CSD CSD",
        "15TB NVMe ZNS SSD (scaled per run)",
    ]);
    print!("{}", t.render());

    println!("\nDerived cost-model constants:");
    let mut t = TextTable::new(["parameter", "value"]);
    t.row([
        "PCIe bandwidth",
        &format!("{:.1} GB/s", hw.pcie_bw_bps / 1e9),
    ]);
    t.row([
        "PCIe command round trip",
        &format!("{} us", hw.pcie_cmd_ns / 1000),
    ]);
    t.row(["NAND channels", &hw.flash_channels.to_string()]);
    t.row([
        "per-channel write / read",
        &format!(
            "{:.0} / {:.0} MB/s",
            hw.channel_write_bps / 1e6,
            hw.channel_read_bps / 1e6
        ),
    ]);
    t.row(["page size", &format!("{} B", hw.page_bytes)]);
    t.row([
        "SoC slowdown vs host core",
        &format!("{:.1}x", cfg.cost.soc_slowdown),
    ]);
    print!("{}", t.render());
}
