//! Figure 11: breakdown of KV-CSD and RocksDB insertion time for the VPIC
//! write phase.
//!
//! Paper result: both systems spend a similar total on writing +
//! compaction + indexing, but KV-CSD runs compaction and indexing
//! asynchronously in the device — its *effective* write time is 66 s vs
//! RocksDB's 704 s, i.e. 10.6x faster.

use kvcsd_bench::report::{fmt_io, fmt_secs, speedup};
use kvcsd_bench::{vpic_exp, Args, Testbed};
use kvcsd_sim::stats::TextTable;
use kvcsd_workloads::VpicDump;

fn main() {
    let args = Args::parse();
    let particles = args.keys;
    let dump = VpicDump::new(particles, 16, args.seed);
    println!(
        "Fig 11: VPIC write phase, {} particles in 16 file shards, 16 loader threads\n",
        particles
    );

    let mut tb_k = Testbed::new();
    let k = vpic_exp::load_kvcsd(&mut tb_k, &dump);

    let mut tb_b = Testbed::new();
    let b = vpic_exp::load_baseline(&mut tb_b, &dump);

    let mut t = TextTable::new(["system", "write", "compaction", "2nd index", "effective"]);
    t.row([
        "kvcsd".into(),
        fmt_secs(k.write_s),
        format!("{} (async)", fmt_secs(k.compact_s)),
        format!("{} (async)", fmt_secs(k.index_s)),
        fmt_secs(k.write_s),
    ]);
    t.row([
        "rocksdb".into(),
        fmt_secs(b.write_s),
        "(inline)".into(),
        "(inline)".into(),
        fmt_secs(b.write_s),
    ]);
    print!("{}", t.render());
    println!(
        "\nKV-CSD effective write time is {} faster ({} vs {}).",
        speedup(b.write_s, k.write_s),
        fmt_secs(k.write_s),
        fmt_secs(b.write_s)
    );
    println!("\nInsert-phase I/O:");
    println!("  kvcsd   {}", fmt_io(&k.write_work));
    println!("  rocksdb {}", fmt_io(&b.write_work));
}
