//! Figure 7: time to insert keys into a single shared keyspace using a
//! varying number of host CPU cores, plus the underlying I/O statistics.
//!
//! Paper result: RocksDB needs all 32 cores to peak; KV-CSD peaks at ~2.
//! At 32 cores KV-CSD is 4.2x faster; at 2 cores, 7.9x.

use kvcsd_bench::report::{fmt_io, fmt_secs, speedup};
use kvcsd_bench::{baseline, kvcsd, Args, Testbed};
use kvcsd_lsm::CompactionMode;
use kvcsd_sim::stats::TextTable;
use kvcsd_workloads::PutWorkload;

fn main() {
    let args = Args::parse();
    println!(
        "Fig 7: insert {} keys (16B keys, {}B values) into one shared keyspace\n",
        args.keys, args.value_bytes
    );

    let mut t7a = TextTable::new(["threads", "rocksdb", "kvcsd", "kvcsd-bg-compact", "speedup"]);
    let mut t7b = TextTable::new(["threads", "system", "i/o"]);

    for threads in args.thread_sweep() {
        let wl = PutWorkload::new(args.keys, 16, args.value_bytes, args.seed);

        let mut tb_b = Testbed::new();
        let b = baseline::load(&mut tb_b, threads, 1, &wl, CompactionMode::Automatic);

        let mut tb_k = Testbed::new();
        let k = kvcsd::load(&mut tb_k, threads, 1, &wl, true);

        t7a.row([
            threads.to_string(),
            fmt_secs(b.insert_s),
            fmt_secs(k.insert_s),
            fmt_secs(k.compact_s),
            speedup(b.insert_s, k.insert_s),
        ]);
        t7b.row([
            threads.to_string(),
            "rocksdb".into(),
            fmt_io(&b.insert_work),
        ]);
        t7b.row([threads.to_string(), "kvcsd".into(), fmt_io(&k.insert_work)]);
    }

    println!("(a) Put time");
    print!("{}", t7a.render());
    println!("\n(b) I/O statistics (insert phase)");
    print!("{}", t7b.render());
}
