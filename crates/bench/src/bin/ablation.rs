//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Bulk PUT vs regular PUT** — the paper quotes bulk messages as "7x
//!    faster than regular puts".
//! 2. **Zone-cluster stripe width** — striping across more zones spreads
//!    writes over more NAND channels ("maximizing SSD bandwidth
//!    utilization").
//! 3. **SoC DRAM budget** — less sort memory means more merge-sort rounds
//!    during deferred compaction ("multiple rounds of merge sorts,
//!    depending on available SoC DRAM space").
//! 4. **Deferred vs blocking compaction** — what the host would pay if it
//!    waited for compaction instead of letting the device hide it.

use kvcsd_bench::report::{fmt_secs, speedup};
use kvcsd_bench::{kvcsd, Args, Testbed};
use kvcsd_hostsim::run_threads;
use kvcsd_sim::stats::TextTable;
use kvcsd_workloads::PutWorkload;

fn main() {
    let args = Args::parse();
    let wl = PutWorkload::new(args.keys, 16, args.value_bytes, args.seed);
    println!(
        "Ablations over {} keys x {}B values\n",
        args.keys, args.value_bytes
    );

    // ---- 1. bulk vs single PUT -------------------------------------------
    let mut tb = Testbed::new();
    let bulk = kvcsd::load(&mut tb, 4, 1, &wl, true);
    let mut tb = Testbed::new();
    let single = kvcsd::load(&mut tb, 4, 1, &wl, false);
    println!("1) Bulk PUT vs regular PUT (4 threads):");
    let mut t = TextTable::new(["mode", "insert", "speedup"]);
    t.row([
        "regular put".into(),
        fmt_secs(single.insert_s),
        "1.0x".into(),
    ]);
    t.row([
        "bulk put (128KiB)".into(),
        fmt_secs(bulk.insert_s),
        speedup(single.insert_s, bulk.insert_s),
    ]);
    print!("{}", t.render());

    // ---- 2. zone-cluster stripe width --------------------------------------
    // Larger values make the phases I/O-bound so channel striping shows.
    let wide = PutWorkload::new(args.keys / 4, 16, 2048, args.seed);
    println!("\n2) Zone-cluster stripe width (2KiB values; insert + device compaction):");
    let mut t = TextTable::new(["width", "insert", "bg-compaction"]);
    for width in [1u32, 2, 4, 8, 16] {
        let wl = &wide;
        let tb = Testbed::new();
        let data = wl.keys * (16 + 2048);
        let (dev, client) = tb.kvcsd_with_width(data, 64 << 20, 1, width);
        let ks = client.create_keyspace("w").unwrap();
        let mut tbm = tb;
        tbm.runner.foreground("insert", 4, || {
            run_threads(4, |th| {
                let mut w = ks.bulk_writer();
                for (k, v) in wl.shard(th as u64, 4) {
                    w.put(&k, &v).unwrap();
                }
                w.finish().unwrap();
            });
            ks.compact().unwrap();
        });
        let insert_s = tbm.runner.last_elapsed_s();
        tbm.runner.background("compact", || {
            dev.run_pending_jobs();
        });
        let compact_s = tbm.runner.last_elapsed_s();
        t.row([width.to_string(), fmt_secs(insert_s), fmt_secs(compact_s)]);
    }
    print!("{}", t.render());

    // ---- 3. SoC DRAM budget -------------------------------------------------
    println!("\n3) SoC DRAM budget vs deferred-compaction time (2KiB values):");
    let mut t = TextTable::new(["dram", "bg-compaction"]);
    for dram_mb in [1u64, 4, 16, 64] {
        let wl = &wide;
        let tb = Testbed::new();
        let (dev, client) = tb.kvcsd(wl.keys * (16 + 2048), dram_mb << 20, 1);
        let ks = client.create_keyspace("d").unwrap();
        let mut tbm = tb;
        tbm.runner.foreground("insert", 4, || {
            let mut w = ks.bulk_writer();
            for (k, v) in wl.shard(0, 1) {
                w.put(&k, &v).unwrap();
            }
            w.finish().unwrap();
            ks.compact().unwrap();
        });
        tbm.runner.background("compact", || {
            dev.run_pending_jobs();
        });
        t.row([
            format!("{dram_mb} MiB"),
            fmt_secs(tbm.runner.last_elapsed_s()),
        ]);
    }
    print!("{}", t.render());

    // ---- 4. deferred vs blocking compaction ----------------------------------
    println!("\n4) Deferred (device-async) vs blocking compaction:");
    let mut tb = Testbed::new();
    let l = kvcsd::load(&mut tb, 4, 1, &wl, true);
    let mut t = TextTable::new(["policy", "host-visible time"]);
    t.row(["deferred (paper)".into(), fmt_secs(l.insert_s)]);
    t.row([
        "blocking (host waits)".into(),
        fmt_secs(l.insert_s + l.compact_s),
    ]);
    print!("{}", t.render());

    // ---- 5. separated vs single-pass index construction ------------------------
    // The paper's future work: build compaction's primary index and the
    // secondary indexes in one data pass instead of re-scanning.
    println!("\n5) Separated vs single-pass compaction + secondary index:");
    use kvcsd_proto::{SecondaryIndexSpec, SecondaryKeyType};
    let spec = SecondaryIndexSpec {
        name: "tail".into(),
        value_offset: args.value_bytes.saturating_sub(4).max(8),
        value_len: 4,
        key_type: SecondaryKeyType::U32,
    };
    let run = |single_pass: bool| {
        let tb = Testbed::new();
        let data = wl.keys * (16 + args.value_bytes as u64);
        let (dev, client) = tb.kvcsd(data, 64 << 20, 1);
        let ks = client.create_keyspace("p").unwrap();
        let mut w = ks.bulk_writer();
        for (k, v) in wl.shard(0, 1) {
            w.put(&k, &v).unwrap();
        }
        w.finish().unwrap();
        if single_pass {
            ks.compact_with_indexes(vec![spec.clone()]).unwrap();
        } else {
            ks.compact().unwrap();
        }
        let mut tbm = tb;
        let before = tbm.ledger.snapshot();
        tbm.runner.background("jobs", || {
            dev.run_pending_jobs();
            if !single_pass {
                ks.build_secondary_index(spec.clone()).unwrap();
                dev.run_pending_jobs();
            }
        });
        let work = tbm.ledger.snapshot().since(&before);
        (tbm.runner.background_secs(), work.storage_read_bytes())
    };
    let (sep_s, sep_read) = run(false);
    let (one_s, one_read) = run(true);
    let mut t = TextTable::new(["path", "bg time", "device bytes read"]);
    t.row([
        "separated (current design)".into(),
        fmt_secs(sep_s),
        format!("{sep_read}"),
    ]);
    t.row([
        "single pass (future work)".into(),
        fmt_secs(one_s),
        format!("{one_read}"),
    ]);
    t.row([
        "saving".into(),
        speedup(sep_s, one_s),
        format!(
            "{:.0}% fewer reads",
            100.0 * (1.0 - one_read as f64 / sep_read as f64)
        ),
    ]);
    print!("{}", t.render());

    // ---- 6. ZNS zone resets vs conventional-FTL garbage collection -------------
    // "ZNS shows advantage when SSD space is heavily utilized making
    // SSD-level garbage collection a performance bottleneck. ... This
    // prevents leaving 'holes' in zones when created keyspaces are
    // deleted, simplifying KV-CSD's internal garbage collection process."
    println!("\n6) Space reclamation under churn: ZNS resets vs FTL GC:");
    let churn_rounds = 8u32;
    // ZNS side: create, fill and delete keyspaces on a deliberately small
    // device so churn matters.
    let zns_moved = {
        let tb = Testbed::new();
        let (dev, client) = tb.kvcsd(2 << 20, 16 << 20, 2);
        for round in 0..churn_rounds {
            let ks = client.create_keyspace(&format!("gen{round}")).unwrap();
            let mut w = ks.bulk_writer();
            for i in 0..8_000u32 {
                w.put(format!("k{i:06}").as_bytes(), &[round as u8; 32])
                    .unwrap();
            }
            w.finish().unwrap();
            ks.compact().unwrap();
            dev.run_pending_jobs();
            ks.delete().unwrap();
        }
        // Zone resets relocate nothing, ever.
        tb.ledger.custom("ftl_gc_moved_pages")
    };
    // FTL side: interleaved log rotation at high space utilization — the
    // pattern that fragments erase blocks (pages of many files share a
    // block, files die at different times) and forces GC to relocate
    // still-live pages.
    let (ftl_moved, ftl_amp) = {
        use kvcsd_blockfs::{BlockFs, FsConfig};
        use kvcsd_flash::{ConvConfig, ConventionalNamespace, FlashGeometry, NandArray};
        use kvcsd_sim::IoLedger;
        use std::sync::Arc;
        // A deliberately small conventional SSD (16 MiB) run at ~70%
        // space utilization.
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 32,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let cfg = kvcsd_sim::config::SimConfig::default();
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &cfg.hw, Arc::clone(&ledger)));
        let conv = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
        let fs = Arc::new(BlockFs::format(
            conv,
            cfg.cost.clone(),
            FsConfig {
                page_cache_pages: 512,
                journal: true,
            },
        ));
        let n_logs = 24u32;
        let chunk = vec![7u8; 16 << 10];
        let mut handles: Vec<(String, kvcsd_blockfs::fs::FileId)> = (0..n_logs)
            .map(|i| {
                let name = format!("log{i:02}");
                let f = fs.create(&name).unwrap();
                (name, f)
            })
            .collect();
        // Long-lived data interleaved with the churn: its pages share
        // erase blocks with short-lived log pages, so reclaiming those
        // blocks forces the FTL to relocate live data.
        let cold: Vec<_> = (0..8)
            .map(|i| fs.create(&format!("cold{i}")).unwrap())
            .collect();
        let mut logical = 0u64;
        let mut next_id = n_logs;
        // next_id tracks file names across rounds, not the loop index.
        #[allow(clippy::explicit_counter_loop)]
        for round in 0..90u32 {
            // Interleave appends across all live logs.
            for (_, f) in &handles {
                fs.append(*f, &chunk).unwrap();
                logical += chunk.len() as u64;
            }
            if round < 30 {
                // ~7 MiB of long-lived data laid down amid the churn.
                for c in &cold {
                    fs.append(*c, &chunk[..(30 << 10).min(chunk.len())])
                        .unwrap();
                    logical += (30 << 10).min(chunk.len()) as u64;
                }
            }
            // Rotate the oldest log each round (files die at different
            // ages, so erase blocks end up part-live, part-dead).
            let _ = round;
            let (old, _) = handles.remove(0);
            fs.unlink(&old).unwrap();
            let name = format!("log{next_id:02}");
            next_id += 1;
            let f = fs.create(&name).unwrap();
            handles.push((name, f));
        }
        let s = ledger.snapshot();
        (
            ledger.custom("ftl_gc_moved_pages"),
            s.storage_write_bytes() as f64 / logical as f64,
        )
    };
    let mut t = TextTable::new([
        "storage design",
        "GC-relocated pages",
        "write amplification",
    ]);
    t.row([
        "ZNS keyspace churn (resets)".into(),
        zns_moved.to_string(),
        "1.0x (log padding only)".into(),
    ]);
    t.row([
        "FTL file churn".into(),
        ftl_moved.to_string(),
        format!("{ftl_amp:.2}x"),
    ]);
    print!("{}", t.render());
}
