//! Readable old -> new delta table for bench snapshot mismatches.
//!
//! CI diffs each committed `BENCH_*.json` against a fresh run; on
//! mismatch it invokes this binary so the log shows *which metric moved
//! and by how much* instead of a raw unified diff:
//!
//! ```text
//! cargo run -p kvcsd-bench --bin bench_diff -- BENCH_cluster.json /tmp/BENCH_cluster.json
//! ```
//!
//! The snapshots are flat, machine-written JSON, parsed here with a
//! ~100-line recursive-descent reader (no serde in the workspace).
//! Array elements are labeled by their `"phase"` / `"arm"` field when
//! present so rows read as `clean.phases[put].p99_ns`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use kvcsd_sim::stats::TextTable;

#[derive(Debug, Clone)]
enum Json {
    Null,
    Bool(bool),
    /// Numbers keep their source text so `12.0` vs `12` is a real diff.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn ws(&mut self) {
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.src.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a value at byte {start}"));
        }
        Ok(Json::Num(
            String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.src.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // Snapshot strings are plain identifiers; keep the
                    // escape verbatim rather than decoding it.
                    out.push(self.src[self.pos] as char);
                    self.pos += 1;
                    if let Some(&b) = self.src.get(self.pos) {
                        out.push(b as char);
                        self.pos += 1;
                    }
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.src.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.src.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.src.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.ws();
            match self.src.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }
}

/// Flatten to `path -> scalar text`, labeling array elements by their
/// `phase`/`arm`/`name` field (falling back to the index).
fn flatten(v: &Json, path: &str, out: &mut BTreeMap<String, String>) {
    match v {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                flatten(v, &p, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = match item {
                    Json::Obj(fields) => fields
                        .iter()
                        .find(|(k, _)| matches!(k.as_str(), "phase" | "arm" | "name"))
                        .and_then(|(_, v)| match v {
                            Json::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .unwrap_or_else(|| i.to_string()),
                    _ => i.to_string(),
                };
                flatten(item, &format!("{path}[{label}]"), out);
            }
        }
        Json::Num(s) => {
            out.insert(path.to_string(), s.clone());
        }
        Json::Str(s) => {
            out.insert(path.to_string(), format!("\"{s}\""));
        }
        Json::Bool(b) => {
            out.insert(path.to_string(), b.to_string());
        }
        Json::Null => {
            out.insert(path.to_string(), "null".to_string());
        }
    }
}

fn load(path: &str) -> BTreeMap<String, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let json = match Parser::new(&text).value() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_diff: {path} is not valid snapshot JSON: {e}");
            std::process::exit(2);
        }
    };
    let mut out = BTreeMap::new();
    flatten(&json, "", &mut out);
    out
}

fn delta(old: &str, new: &str) -> String {
    match (old.parse::<f64>(), new.parse::<f64>()) {
        (Ok(o), Ok(n)) if o != 0.0 => {
            let pct = (n - o) / o * 100.0;
            format!("{pct:+.1}%")
        }
        _ => "~".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [old_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <committed.json> <fresh.json>");
        std::process::exit(2);
    };
    let old = load(old_path);
    let new = load(new_path);

    let mut table = TextTable::new(["metric", "old", "new", "delta"]);
    let mut changed = 0usize;
    for (k, ov) in &old {
        match new.get(k) {
            Some(nv) if nv != ov => {
                table.row([k.as_str(), ov.as_str(), nv.as_str(), &delta(ov, nv)]);
                changed += 1;
            }
            Some(_) => {}
            None => {
                table.row([k.as_str(), ov.as_str(), "(gone)", "~"]);
                changed += 1;
            }
        }
    }
    for (k, nv) in &new {
        if !old.contains_key(k) {
            table.row([k.as_str(), "(new)", nv.as_str(), "~"]);
            changed += 1;
        }
    }

    if changed == 0 {
        println!("bench_diff: no metric changes between {old_path} and {new_path}");
        return;
    }
    let mut msg = String::new();
    let _ = writeln!(
        msg,
        "bench snapshot drifted: {changed} metric(s) differ ({old_path} -> {new_path})\n"
    );
    msg.push_str(&table.render());
    print!("{msg}");
    std::process::exit(1);
}
