//! Figure 9: RocksDB vs KV-CSD insertion time as keyspace count and data
//! size increase (per-thread keyspaces / DB instances).
//!
//! Paper result at 32 keyspaces: KV-CSD is 7.8x, 6.1x and 2.9x faster
//! than RocksDB with automatic, deferred and disabled compaction.

use kvcsd_bench::report::{fmt_secs, speedup};
use kvcsd_bench::{baseline, kvcsd, Args, Testbed};
use kvcsd_lsm::CompactionMode;
use kvcsd_sim::stats::TextTable;
use kvcsd_workloads::PutWorkload;

fn main() {
    let args = Args::parse();
    println!(
        "Fig 9: each of N threads inserts {} keys into its own keyspace/DB\n",
        args.keys
    );

    let mut t = TextTable::new([
        "keyspaces",
        "rocksdb-auto",
        "rocksdb-deferred",
        "rocksdb-none",
        "kvcsd",
        "speedups (auto/deferred/none)",
    ]);

    for threads in args.thread_sweep() {
        let wl = PutWorkload::new(args.keys, 16, args.value_bytes, args.seed);

        let run_mode = |mode| {
            let mut tb = Testbed::new();
            baseline::load(&mut tb, threads, threads, &wl, mode).insert_s
        };
        let auto_s = run_mode(CompactionMode::Automatic);
        let defer_s = run_mode(CompactionMode::Deferred);
        let none_s = run_mode(CompactionMode::Disabled);

        let mut tb_k = Testbed::new();
        let k = kvcsd::load(&mut tb_k, threads, threads, &wl, true);

        t.row([
            threads.to_string(),
            fmt_secs(auto_s),
            fmt_secs(defer_s),
            fmt_secs(none_s),
            fmt_secs(k.insert_s),
            format!(
                "{} / {} / {}",
                speedup(auto_s, k.insert_s),
                speedup(defer_s, k.insert_s),
                speedup(none_s, k.insert_s)
            ),
        ]);
    }
    print!("{}", t.render());
}
