//! Figure 10: performance of random GET operations over the Figure 9
//! dataset (32 keyspaces), with I/O statistics.
//!
//! Paper result: KV-CSD is up to 1.3x faster; RocksDB's query time
//! improves as more keys are queried thanks to aggressive client-side
//! caching, while KV-CSD (which does not cache) stays linear. RocksDB
//! shows high read inflation.

use kvcsd_bench::report::{fmt_io, fmt_secs, speedup};
use kvcsd_bench::{baseline, kvcsd, Args, Testbed};
use kvcsd_lsm::CompactionMode;
use kvcsd_sim::stats::TextTable;
use kvcsd_workloads::PutWorkload;

fn main() {
    let args = Args::parse();
    let threads = args.max_threads;
    println!(
        "Fig 10: random GETs over {} keyspaces of {} keys each, {} query threads\n",
        threads, args.keys, threads
    );

    let wl = PutWorkload::new(args.keys, 16, args.value_bytes, args.seed);

    // Load both systems once (the Fig 9 dataset), then sweep query counts.
    let mut tb_b = Testbed::new();
    let b = baseline::load(&mut tb_b, threads, threads, &wl, CompactionMode::Automatic);

    let mut tb_k = Testbed::new();
    let k = kvcsd::load(&mut tb_k, threads, threads, &wl, true);

    let mut t10a = TextTable::new(["queries", "rocksdb", "kvcsd", "speedup"]);
    let mut t10b = TextTable::new(["queries", "system", "i/o"]);

    // Paper sweeps 32K..320K total queries over 1B keys (a 1:10 span of
    // query counts); sweep the same span as a fraction of our dataset,
    // sparse enough that caching has room to matter.
    let total_keys = args.keys * threads as u64;
    let sweep: Vec<u64> = [4u64, 8, 16, 28, 40]
        .iter()
        .map(|f| (total_keys * f / 1000).max(64))
        .collect();

    for (i, &total_queries) in sweep.iter().enumerate() {
        let per_thread = (total_queries / threads as u64).max(1);
        let (bs, bw) = baseline::get_phase(&mut tb_b, &b, threads, per_thread, &wl, 77 + i as u64);
        let (ks, kw) = kvcsd::get_phase(&mut tb_k, &k, threads, per_thread, &wl, 77 + i as u64);
        t10a.row([
            format!("{}", per_thread * threads as u64),
            fmt_secs(bs),
            fmt_secs(ks),
            speedup(bs, ks),
        ]);
        t10b.row([
            format!("{}", per_thread * threads as u64),
            "rocksdb".into(),
            fmt_io(&bw),
        ]);
        t10b.row([
            format!("{}", per_thread * threads as u64),
            "kvcsd".into(),
            fmt_io(&kw),
        ]);
    }

    println!("(a) Query time");
    print!("{}", t10a.render());
    println!("\n(b) I/O statistics (query phases)");
    print!("{}", t10b.render());
}
