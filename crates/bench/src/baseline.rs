//! RocksDB-analog (software LSM) experiment runners.

use std::sync::Arc;

use kvcsd_blockfs::BlockFs;
use kvcsd_hostsim::run_threads;
use kvcsd_lsm::{CompactionMode, Db, Options};
use kvcsd_sim::LedgerSnapshot;
use kvcsd_workloads::{GetWorkload, PutWorkload};

use crate::testbed::Testbed;

/// A loaded software-LSM baseline, ready for queries.
pub struct LoadedBaseline {
    pub fs: Arc<BlockFs>,
    pub dbs: Vec<Arc<Db>>,
    /// Host-visible insertion time, *including* compaction work/waits, as
    /// the paper reports for RocksDB.
    pub insert_s: f64,
    /// Ledger work during the insert phase.
    pub insert_work: LedgerSnapshot,
}

/// LSM options scaled to the experiment's per-DB data volume so flushes
/// and compactions occur at paper-like relative frequency (32M keys vs a
/// 64 MB memtable is ~24 flushes; we preserve that ratio).
pub fn scaled_options(per_db_bytes: u64, mode: CompactionMode) -> Options {
    let memtable = (per_db_bytes / 24).clamp(48 << 10, 64 << 20) as usize;
    Options {
        memtable_bytes: memtable,
        level_base_bytes: (memtable as u64) * 4,
        target_file_bytes: memtable,
        compaction: mode,
        ..Options::default()
    }
}

/// Insert the workload into `n_dbs` database instances with `threads`
/// pinned host threads (sharing a freshly formatted filesystem), in the
/// given compaction mode. Deferred mode runs its single-pass
/// `compact_all` at the end of the insert phase — the host pays for it,
/// exactly as Figure 9 measures.
pub fn load(
    tb: &mut Testbed,
    threads: u32,
    n_dbs: u32,
    workload: &PutWorkload,
    mode: CompactionMode,
) -> LoadedBaseline {
    let per_db_bytes = workload.keys * (workload.key_bytes + workload.value_bytes) as u64;
    let fs = tb.blockfs(per_db_bytes * n_dbs as u64);
    let opts = scaled_options(per_db_bytes, mode);
    let dbs: Vec<Arc<Db>> = (0..n_dbs)
        .map(|i| {
            Arc::new(
                Db::open(Arc::clone(&fs), &format!("db{i:04}/"), opts.clone()).expect("open db"),
            )
        })
        .collect();

    let before = tb.ledger.snapshot();
    tb.runner.foreground("lsm-insert", threads, || {
        if n_dbs == 1 {
            run_threads(threads, |t| {
                for (k, v) in workload.shard(t as u64, threads as u64) {
                    dbs[0].put(&k, &v).expect("put");
                }
            });
        } else {
            run_threads(n_dbs, |t| {
                let wl = PutWorkload::new(
                    workload.keys,
                    workload.key_bytes,
                    workload.value_bytes,
                    (0x1000_0000u64 * (t as u64 + 1)) ^ workload.key(0)[0] as u64,
                );
                for (k, v) in wl.shard(0, 1) {
                    dbs[t as usize].put(&k, &v).expect("put");
                }
            });
        }
        match mode {
            CompactionMode::Automatic => {
                // Flush the tail and let any outstanding triggers drain:
                // "our test program will wait until all compaction work
                // concludes before exiting".
                for db in &dbs {
                    db.flush().expect("flush");
                    db.compact().expect("final compaction wait");
                }
            }
            CompactionMode::Deferred => {
                // "compaction is done in a single pass at the end".
                for db in &dbs {
                    db.compact_all().expect("deferred compaction");
                }
            }
            CompactionMode::Disabled => {
                for db in &dbs {
                    db.flush().expect("flush");
                }
            }
        }
    });
    let insert_work = tb.ledger.snapshot().since(&before);
    let insert_s = tb.runner.last_elapsed_s();

    LoadedBaseline {
        fs,
        dbs,
        insert_s,
        insert_work,
    }
}

/// Random GET phase against the loaded baseline. Each phase models a
/// fresh query run as the paper does: the OS page cache is dropped ("we
/// clean OS page cache at the beginning of each run") and the in-process
/// block cache starts cold (a new reader process). Warm-up *within* the
/// run is the paper's "aggressive client-side caching" effect — it grows
/// with the query count because more queries share data blocks.
pub fn get_phase(
    tb: &mut Testbed,
    loaded: &LoadedBaseline,
    threads: u32,
    queries_per_thread: u64,
    workload: &PutWorkload,
    seed: u64,
) -> (f64, LedgerSnapshot) {
    loaded.fs.drop_caches();
    for db in &loaded.dbs {
        db.block_cache().lock().clear();
    }
    let before = tb.ledger.snapshot();
    tb.runner.foreground("lsm-get", threads, || {
        run_threads(threads, |t| {
            let db = &loaded.dbs[t as usize % loaded.dbs.len()];
            let wl = if loaded.dbs.len() == 1 {
                workload.clone()
            } else {
                PutWorkload::new(
                    workload.keys,
                    workload.key_bytes,
                    workload.value_bytes,
                    (0x1000_0000u64 * (t as u64 % loaded.dbs.len() as u64 + 1))
                        ^ workload.key(0)[0] as u64,
                )
            };
            let mut gets = GetWorkload::new(workload.keys, seed ^ (t as u64) << 32);
            for _ in 0..queries_per_thread {
                let i = gets.next_index();
                let v = db.get(&wl.key(i)).expect("get");
                debug_assert!(v.is_some(), "inserted key must be found");
            }
        });
    });
    (
        tb.runner.last_elapsed_s(),
        tb.ledger.snapshot().since(&before),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automatic_mode_loads_and_queries() {
        let mut tb = Testbed::new();
        let wl = PutWorkload::paper_micro(2_000, 21);
        let loaded = load(&mut tb, 2, 1, &wl, CompactionMode::Automatic);
        assert!(loaded.insert_s > 0.0);
        assert!(loaded.dbs[0].stats().flushes > 0);
        let (get_s, work) = get_phase(&mut tb, &loaded, 2, 50, &wl, 3);
        assert!(get_s > 0.0);
        assert!(work.nand_read_pages > 0, "cold cache reads hit the device");
    }

    #[test]
    fn deferred_mode_compacts_once_at_end() {
        let mut tb = Testbed::new();
        let wl = PutWorkload::paper_micro(2_000, 23);
        let loaded = load(&mut tb, 1, 1, &wl, CompactionMode::Deferred);
        let s = loaded.dbs[0].stats();
        assert_eq!(s.compactions, 1, "deferred = exactly one full pass");
    }

    #[test]
    fn mode_ordering_matches_paper() {
        // Insert time: automatic > deferred > disabled (Fig 9).
        let wl = PutWorkload::paper_micro(4_000, 25);
        let t_auto = {
            let mut tb = Testbed::new();
            load(&mut tb, 2, 2, &wl, CompactionMode::Automatic).insert_s
        };
        let t_defer = {
            let mut tb = Testbed::new();
            load(&mut tb, 2, 2, &wl, CompactionMode::Deferred).insert_s
        };
        let t_none = {
            let mut tb = Testbed::new();
            load(&mut tb, 2, 2, &wl, CompactionMode::Disabled).insert_s
        };
        assert!(t_auto > t_defer, "auto {t_auto} vs deferred {t_defer}");
        assert!(t_defer > t_none, "deferred {t_defer} vs disabled {t_none}");
    }

    #[test]
    fn per_thread_db_instances() {
        let mut tb = Testbed::new();
        let wl = PutWorkload::paper_micro(500, 27);
        let loaded = load(&mut tb, 4, 4, &wl, CompactionMode::Automatic);
        assert_eq!(loaded.dbs.len(), 4);
        for db in &loaded.dbs {
            assert!(db.stats().puts == 500);
        }
    }
}
