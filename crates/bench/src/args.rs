//! Tiny argument parser shared by the figure binaries (no external deps).

/// Common experiment knobs.
#[derive(Debug, Clone)]
pub struct Args {
    /// Keys per keyspace (figures 7-10) or particles (11-12).
    pub keys: u64,
    /// Value size in bytes where applicable.
    pub value_bytes: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Maximum thread count to sweep to.
    pub max_threads: u32,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            keys: 100_000,
            value_bytes: 32,
            seed: 2023,
            max_threads: 32,
        }
    }
}

impl Args {
    /// Parse `--keys N --value-bytes N --seed N --max-threads N` from the
    /// process arguments, falling back to defaults. Unknown flags abort
    /// with a usage message.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> u64 {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} expects an integer"))
            };
            match flag.as_str() {
                "--keys" => out.keys = take("--keys"),
                "--value-bytes" => out.value_bytes = take("--value-bytes") as usize,
                "--seed" => out.seed = take("--seed"),
                "--max-threads" => out.max_threads = take("--max-threads") as u32,
                "--help" | "-h" => {
                    eprintln!("usage: [--keys N] [--value-bytes N] [--seed N] [--max-threads N]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        out
    }

    /// Thread counts swept by the scaling figures (1..=max, powers of 2).
    pub fn thread_sweep(&self) -> Vec<u32> {
        let mut v = vec![1u32];
        while *v.last().unwrap() < self.max_threads {
            v.push((v.last().unwrap() * 2).min(self.max_threads));
        }
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = Args::parse_from(Vec::<String>::new());
        assert_eq!(a.keys, 100_000);
        assert_eq!(a.value_bytes, 32);
    }

    #[test]
    fn parses_flags() {
        let a = Args::parse_from(
            [
                "--keys",
                "5000",
                "--value-bytes",
                "128",
                "--seed",
                "7",
                "--max-threads",
                "8",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(a.keys, 5000);
        assert_eq!(a.value_bytes, 128);
        assert_eq!(a.seed, 7);
        assert_eq!(a.max_threads, 8);
    }

    #[test]
    fn thread_sweep_is_powers_of_two() {
        let a = Args {
            max_threads: 32,
            ..Args::default()
        };
        assert_eq!(a.thread_sweep(), vec![1, 2, 4, 8, 16, 32]);
        let a = Args {
            max_threads: 12,
            ..Args::default()
        };
        assert_eq!(a.thread_sweep(), vec![1, 2, 4, 8, 12]);
        let a = Args {
            max_threads: 1,
            ..Args::default()
        };
        assert_eq!(a.thread_sweep(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        Args::parse_from(["--bogus".to_string()]);
    }
}
