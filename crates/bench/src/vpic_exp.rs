//! The VPIC macro benchmark (Figures 11 and 12).
//!
//! Write phase: 16 loader threads read the (synthetic) particle dump's 16
//! file shards and insert one key-value pair per particle — particle IDs
//! as keys, the 32 B payload as values — into a per-thread keyspace or DB
//! instance. KV-CSD offloads compaction and energy-index construction;
//! the RocksDB analog inserts auxiliary `energy -> id` pairs inline and
//! compacts as it goes.
//!
//! Query phase: energy-threshold range queries at selectivities from
//! 0.1 % to 20 %. KV-CSD answers in one device-side secondary-index
//! query that streams back full particles; the baseline runs the paper's
//! two-step process — scan the auxiliary namespace for IDs, then point-GET
//! every matching particle.

use std::sync::Arc;

use kvcsd_client::{Keyspace, KvCsd};
use kvcsd_core::KvCsdDevice;
use kvcsd_hostsim::run_threads;
use kvcsd_lsm::{aux_key, primary_key, CompactionMode, Db};
use kvcsd_proto::{Bound, SecondaryIndexSpec, SecondaryKeyType, SidxKey};
use kvcsd_sim::LedgerSnapshot;
use kvcsd_workloads::vpic::{VpicDump, ENERGY_OFFSET};

use crate::baseline::scaled_options;
use crate::testbed::Testbed;

/// Name of the energy secondary index.
pub const ENERGY_INDEX: &str = "energy";

fn energy_spec() -> SecondaryIndexSpec {
    SecondaryIndexSpec {
        name: ENERGY_INDEX.into(),
        value_offset: ENERGY_OFFSET,
        value_len: 4,
        key_type: SecondaryKeyType::F32,
    }
}

// ---------------------------------------------------------------------------
// KV-CSD side
// ---------------------------------------------------------------------------

/// A loaded KV-CSD VPIC dataset.
pub struct VpicKvcsd {
    pub dev: Arc<KvCsdDevice>,
    pub client: KvCsd,
    pub keyspaces: Vec<Keyspace>,
    /// Host-visible write time.
    pub write_s: f64,
    /// Device-background compaction time.
    pub compact_s: f64,
    /// Device-background secondary-index build time.
    pub index_s: f64,
    pub write_work: LedgerSnapshot,
}

/// Write phase on KV-CSD: load, invoke compaction, build the energy index.
pub fn load_kvcsd(tb: &mut Testbed, dump: &VpicDump) -> VpicKvcsd {
    let data_bytes = dump.particles * 48;
    let soc_dram = (data_bytes / 2).clamp(8 << 20, 2 << 30);
    let (dev, client) = tb.kvcsd(data_bytes, soc_dram, dump.files);
    let keyspaces: Vec<Keyspace> = (0..dump.files)
        .map(|f| {
            client
                .create_keyspace(&format!("vpic{f:02}"))
                .expect("create")
        })
        .collect();

    let before = tb.ledger.snapshot();
    tb.runner.foreground("vpic-write", dump.files, || {
        run_threads(dump.files, |f| {
            let ks = &keyspaces[f as usize];
            let mut w = ks.bulk_writer();
            for p in dump.shard(f) {
                w.put(&p.id, &p.payload()).expect("bulk put");
            }
            w.finish().expect("finish");
        });
        for ks in &keyspaces {
            ks.compact().expect("compact invocation");
        }
    });
    let write_work = tb.ledger.snapshot().since(&before);
    let write_s = tb.runner.last_elapsed_s();

    tb.runner.background("vpic-compaction", || {
        dev.run_pending_jobs();
    });
    let compact_s = tb.runner.last_elapsed_s();

    // Index construction is requested after compaction completes and also
    // runs in the device background.
    for ks in &keyspaces {
        ks.build_secondary_index(energy_spec())
            .expect("sidx request");
    }
    tb.runner.background("vpic-indexing", || {
        dev.run_pending_jobs();
    });
    let index_s = tb.runner.last_elapsed_s();

    VpicKvcsd {
        dev,
        client,
        keyspaces,
        write_s,
        compact_s,
        index_s,
        write_work,
    }
}

/// Query phase on KV-CSD: `energy > threshold` across all keyspaces, 16
/// query threads, device-side secondary-index ranges.
pub fn query_kvcsd(
    tb: &mut Testbed,
    loaded: &VpicKvcsd,
    threshold: f32,
) -> (f64, u64, LedgerSnapshot) {
    let before = tb.ledger.snapshot();
    let mut total_hits = 0u64;
    tb.runner
        .foreground("vpic-kvcsd-query", loaded.keyspaces.len() as u32, || {
            let hits: Vec<u64> = run_threads(loaded.keyspaces.len() as u32, |f| {
                let ks = &loaded.keyspaces[f as usize];
                let es = ks
                    .sidx_range(
                        ENERGY_INDEX,
                        Bound::Excluded(SidxKey::F32(threshold).encode()),
                        Bound::Unbounded,
                        None,
                    )
                    .expect("sidx range");
                es.len() as u64
            });
            total_hits = hits.iter().sum();
        });
    (
        tb.runner.last_elapsed_s(),
        total_hits,
        tb.ledger.snapshot().since(&before),
    )
}

// ---------------------------------------------------------------------------
// Baseline side
// ---------------------------------------------------------------------------

/// A loaded baseline VPIC dataset.
pub struct VpicBaseline {
    pub dbs: Vec<Arc<Db>>,
    pub fs: Arc<kvcsd_blockfs::BlockFs>,
    /// Host-visible write time including compaction of both indexes.
    pub write_s: f64,
    pub write_work: LedgerSnapshot,
}

/// Write phase on the software baseline: primary + auxiliary pairs with
/// inline automatic compaction, per-thread DB instances.
pub fn load_baseline(tb: &mut Testbed, dump: &VpicDump) -> VpicBaseline {
    // Each particle becomes ~2 pairs (primary + aux).
    let per_db_bytes = (dump.particles / dump.files as u64) * 48 * 2;
    let fs = tb.blockfs(per_db_bytes * dump.files as u64);
    let opts = scaled_options(per_db_bytes, CompactionMode::Automatic);
    let dbs: Vec<Arc<Db>> = (0..dump.files)
        .map(|f| {
            Arc::new(Db::open(Arc::clone(&fs), &format!("vpic{f:02}/"), opts.clone()).unwrap())
        })
        .collect();

    let before = tb.ledger.snapshot();
    tb.runner.foreground("vpic-lsm-write", dump.files, || {
        run_threads(dump.files, |f| {
            let db = &dbs[f as usize];
            for p in dump.shard(f) {
                let payload = p.payload();
                db.put(&primary_key(&p.id), &payload).expect("primary put");
                // "These auxiliary key-value pairs use particle energies
                // as keys and particle IDs as values."
                let enc = SidxKey::F32(p.energy()).encode();
                db.put(&aux_key(&enc, &p.id), &p.id).expect("aux put");
            }
        });
        // "We report data insertion time as well as additional wait time
        // due to RocksDB compaction, which covers both indexes."
        for db in &dbs {
            db.flush().expect("flush");
            db.compact().expect("compaction wait");
        }
    });
    let write_work = tb.ledger.snapshot().since(&before);
    let write_s = tb.runner.last_elapsed_s();

    VpicBaseline {
        dbs,
        fs,
        write_s,
        write_work,
    }
}

/// Query phase on the baseline: the paper's two-step read. Each call
/// models a fresh reader run: OS page cache dropped, block cache cold;
/// caching *within* the run is what favours less selective queries.
/// Returns `(elapsed, hits, work)`.
pub fn query_baseline(
    tb: &mut Testbed,
    loaded: &VpicBaseline,
    threshold: f32,
) -> (f64, u64, LedgerSnapshot) {
    loaded.fs.drop_caches();
    for db in &loaded.dbs {
        db.block_cache().lock().clear();
    }
    let before = tb.ledger.snapshot();
    let mut total_hits = 0u64;
    tb.runner
        .foreground("vpic-lsm-query", loaded.dbs.len() as u32, || {
            let hits: Vec<u64> = run_threads(loaded.dbs.len() as u32, |f| {
                let db = &loaded.dbs[f as usize];
                // Step 1: scan the auxiliary namespace for matching IDs.
                let lo = aux_key(&SidxKey::F32(threshold).encode(), &[]);
                let ids: Vec<Vec<u8>> = db
                    .scan(&lo, &[], None)
                    .expect("aux scan")
                    .into_iter()
                    .map(|(_, id)| id)
                    .collect();
                // Step 2: point-GET each full particle by primary key.
                let mut n = 0u64;
                for id in ids {
                    let rec = db.get(&primary_key(&id)).expect("primary get");
                    debug_assert!(rec.is_some());
                    n += 1;
                }
                n
            });
            total_hits = hits.iter().sum();
        });
    (
        tb.runner.last_elapsed_s(),
        total_hits,
        tb.ledger.snapshot().since(&before),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_systems_agree_on_query_results() {
        let dump = VpicDump::new(4_000, 4, 99);
        let mut tb_k = Testbed::new();
        let k = load_kvcsd(&mut tb_k, &dump);
        let mut tb_b = Testbed::new();
        let b = load_baseline(&mut tb_b, &dump);

        for sel in [0.01, 0.2] {
            let t = dump.energy_threshold(sel);
            let (_, hits_k, _) = query_kvcsd(&mut tb_k, &k, t);
            let (_, hits_b, _) = query_baseline(&mut tb_b, &b, t);
            assert_eq!(hits_k, hits_b, "selectivity {sel}");
            assert!(hits_k > 0);
            // Sanity: approximately sel * particles.
            let got_sel = hits_k as f64 / dump.particles as f64;
            assert!((got_sel - sel).abs() / sel < 0.5, "sel {sel} got {got_sel}");
        }
    }

    #[test]
    fn kvcsd_write_phase_defers_heavy_work() {
        let dump = VpicDump::new(3_000, 4, 101);
        let mut tb = Testbed::new();
        let k = load_kvcsd(&mut tb, &dump);
        assert!(
            k.compact_s + k.index_s > k.write_s,
            "offloaded work dominates"
        );
        // All keyspaces ended COMPACTED with the index present.
        for ks in &k.keyspaces {
            let stat = ks.stat().unwrap();
            assert_eq!(stat.secondary_indexes, vec![ENERGY_INDEX.to_string()]);
        }
    }

    #[test]
    fn baseline_pays_for_everything_in_line() {
        let dump = VpicDump::new(2_000, 2, 103);
        let mut tb_k = Testbed::new();
        let k = load_kvcsd(&mut tb_k, &dump);
        let mut tb_b = Testbed::new();
        let b = load_baseline(&mut tb_b, &dump);
        assert!(
            b.write_s > 2.0 * k.write_s,
            "baseline effective write {:.4}s must dwarf KV-CSD {:.4}s",
            b.write_s,
            k.write_s
        );
    }
}
