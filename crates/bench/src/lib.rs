//! Benchmark harness for the KV-CSD reproduction.
//!
//! One binary per figure of the paper's evaluation (Section VI):
//!
//! | Binary    | Reproduces |
//! |-----------|------------|
//! | `table1`  | Table I — hardware specification |
//! | `fig7`    | Fig 7a/7b — shared-keyspace PUT time + I/O vs host cores |
//! | `fig8`    | Fig 8 — PUT time vs value size |
//! | `fig9`    | Fig 9 — multi-keyspace insert scaling, 3 RocksDB modes |
//! | `fig10`   | Fig 10a/10b — random GET time + I/O |
//! | `fig11`   | Fig 11 — VPIC write-phase breakdown |
//! | `fig12`   | Fig 12 — secondary-index query time vs selectivity |
//! | `ablation`| design-choice ablations (bulk PUT, cluster width, ...) |
//!
//! Runs are scaled down from the paper's 32M-key/1B-key datasets; pass
//! `--keys N` / `--scale X` to grow them. Simulated times come from the
//! measured-work + cost-model pipeline described in `DESIGN.md`; the
//! *shapes* (who wins, by what factor) are the reproduction target, not
//! the absolute numbers.

pub mod args;
pub mod baseline;
pub mod kvcsd;
pub mod report;
pub mod testbed;
pub mod vpic_exp;

pub use args::Args;
pub use report::{fmt_io, fmt_secs};
pub use testbed::Testbed;
