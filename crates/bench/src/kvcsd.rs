//! KV-CSD experiment runners.

use std::sync::Arc;

use kvcsd_client::{Keyspace, KvCsd};
use kvcsd_core::KvCsdDevice;
use kvcsd_hostsim::run_threads;
use kvcsd_sim::LedgerSnapshot;
use kvcsd_workloads::{GetWorkload, PutWorkload};

use crate::testbed::Testbed;

/// A loaded (inserted + compacted) KV-CSD, ready for queries.
pub struct LoadedKvcsd {
    pub dev: Arc<KvCsdDevice>,
    pub client: KvCsd,
    pub keyspaces: Vec<Keyspace>,
    /// Host-visible insertion time (bulk puts + compaction *invocation*).
    pub insert_s: f64,
    /// Device-background compaction time (hidden from the host).
    pub compact_s: f64,
    /// Ledger work during the insert phase only.
    pub insert_work: LedgerSnapshot,
}

/// Insert `workload`-shaped data into `n_keyspaces` keyspaces using
/// `threads` pinned host threads, then invoke deferred compaction.
///
/// * `n_keyspaces == 1`: all threads share one keyspace, each loading an
///   interleaved shard (Figure 7/8 shape).
/// * `n_keyspaces == threads`: thread `t` loads its own keyspace with the
///   full workload re-seeded per keyspace (Figure 9/10 shape).
pub fn load(
    tb: &mut Testbed,
    threads: u32,
    n_keyspaces: u32,
    workload: &PutWorkload,
    bulk: bool,
) -> LoadedKvcsd {
    let per_ks_bytes = workload.keys * (workload.key_bytes + workload.value_bytes) as u64;
    let capacity = per_ks_bytes * n_keyspaces as u64;
    // SoC DRAM scales with the dataset as the paper's 8 GB does with its
    // 1.5 GB-per-keyspace dumps (sort memory is the scarce resource).
    let soc_dram = (capacity / 2).clamp(8 << 20, 2 << 30);
    let (dev, client) = tb.kvcsd(capacity, soc_dram, n_keyspaces);

    let keyspaces: Vec<Keyspace> = (0..n_keyspaces)
        .map(|i| {
            client
                .create_keyspace(&format!("ks{i:04}"))
                .expect("create keyspace")
        })
        .collect();

    let before = tb.ledger.snapshot();
    tb.runner.foreground("kvcsd-insert", threads, || {
        if n_keyspaces == 1 {
            run_threads(threads, |t| {
                let ks = &keyspaces[0];
                if bulk {
                    let mut w = ks.bulk_writer();
                    for (k, v) in workload.shard(t as u64, threads as u64) {
                        w.put(&k, &v).expect("bulk put");
                    }
                    w.finish().expect("bulk finish");
                } else {
                    for (k, v) in workload.shard(t as u64, threads as u64) {
                        ks.put(&k, &v).expect("put");
                    }
                }
            });
        } else {
            run_threads(n_keyspaces, |t| {
                let ks = &keyspaces[t as usize];
                let wl = PutWorkload::new(
                    workload.keys,
                    workload.key_bytes,
                    workload.value_bytes,
                    // Distinct data per keyspace.
                    (0x1000_0000u64 * (t as u64 + 1)) ^ workload.key(0)[0] as u64,
                );
                if bulk {
                    let mut w = ks.bulk_writer();
                    for (k, v) in wl.shard(0, 1) {
                        w.put(&k, &v).expect("bulk put");
                    }
                    w.finish().expect("bulk finish");
                } else {
                    for (k, v) in wl.shard(0, 1) {
                        ks.put(&k, &v).expect("put");
                    }
                }
            });
        }
        // "Once all keys are inserted, we invoke KV-CSD's background
        // compaction process and exit" — the invocation is cheap and
        // counted in the host-visible time.
        for ks in &keyspaces {
            ks.compact().expect("compact invocation");
        }
    });
    let insert_work = tb.ledger.snapshot().since(&before);
    let insert_s = tb.runner.last_elapsed_s();

    tb.runner.background("kvcsd-compaction", || {
        dev.run_pending_jobs();
    });
    let compact_s = tb.runner.last_elapsed_s();

    LoadedKvcsd {
        dev,
        client,
        keyspaces,
        insert_s,
        compact_s,
        insert_work,
    }
}

/// Run `queries_per_thread` random GETs per thread, thread `t` targeting
/// keyspace `t % keyspaces` (Figure 10 shape). Returns `(elapsed seconds,
/// phase work)`.
pub fn get_phase(
    tb: &mut Testbed,
    loaded: &LoadedKvcsd,
    threads: u32,
    queries_per_thread: u64,
    workload: &PutWorkload,
    seed: u64,
) -> (f64, LedgerSnapshot) {
    let before = tb.ledger.snapshot();
    tb.runner.foreground("kvcsd-get", threads, || {
        run_threads(threads, |t| {
            let ks = &loaded.keyspaces[t as usize % loaded.keyspaces.len()];
            // Regenerate the per-keyspace workload to know its keys.
            let wl = if loaded.keyspaces.len() == 1 {
                workload.clone()
            } else {
                PutWorkload::new(
                    workload.keys,
                    workload.key_bytes,
                    workload.value_bytes,
                    (0x1000_0000u64 * (t as u64 % loaded.keyspaces.len() as u64 + 1))
                        ^ workload.key(0)[0] as u64,
                )
            };
            let mut gets = GetWorkload::new(workload.keys, seed ^ (t as u64) << 32);
            for _ in 0..queries_per_thread {
                let i = gets.next_index();
                let v = ks.get(&wl.key(i)).expect("get");
                debug_assert!(!v.is_empty());
            }
        });
    });
    (
        tb.runner.last_elapsed_s(),
        tb.ledger.snapshot().since(&before),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_shared_keyspace_and_query() {
        let mut tb = Testbed::new();
        let wl = PutWorkload::paper_micro(2_000, 11);
        let loaded = load(&mut tb, 4, 1, &wl, true);
        assert!(loaded.insert_s > 0.0);
        assert!(
            loaded.compact_s > 0.0,
            "deferred compaction happens in background"
        );
        let stat = loaded.keyspaces[0].stat().unwrap();
        assert_eq!(stat.num_pairs, 2_000);
        let (get_s, work) = get_phase(&mut tb, &loaded, 4, 50, &wl, 99);
        assert!(get_s > 0.0);
        assert!(work.nand_read_pages > 0);
    }

    #[test]
    fn load_multi_keyspace() {
        let mut tb = Testbed::new();
        let wl = PutWorkload::paper_micro(500, 13);
        let loaded = load(&mut tb, 4, 4, &wl, true);
        assert_eq!(loaded.keyspaces.len(), 4);
        for ks in &loaded.keyspaces {
            assert_eq!(ks.stat().unwrap().num_pairs, 500);
        }
        // Keyspaces hold distinct data.
        let (g, _) = get_phase(&mut tb, &loaded, 4, 20, &wl, 5);
        assert!(g > 0.0);
    }

    #[test]
    fn compaction_is_hidden_from_host_clock() {
        let mut tb = Testbed::new();
        let wl = PutWorkload::paper_micro(3_000, 17);
        let loaded = load(&mut tb, 2, 1, &wl, true);
        // Foreground clock advanced only by the insert phase.
        assert!((tb.runner.now_secs() - loaded.insert_s).abs() < 1e-9);
        assert!(tb.runner.background_secs() >= loaded.compact_s * 0.99);
    }

    #[test]
    fn bulk_beats_single_puts() {
        let wl = PutWorkload::paper_micro(2_000, 19);
        let mut tb_bulk = Testbed::new();
        let bulk = load(&mut tb_bulk, 1, 1, &wl, true);
        let mut tb_single = Testbed::new();
        let single = load(&mut tb_single, 1, 1, &wl, false);
        assert!(
            single.insert_s > 2.0 * bulk.insert_s,
            "single puts {:.6}s vs bulk {:.6}s",
            single.insert_s,
            bulk.insert_s
        );
    }
}
