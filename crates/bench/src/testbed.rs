//! Testbed assembly: build a fresh simulated host + device per run.
//!
//! Each experiment run gets its own ledger, clock and SSD, exactly like
//! the paper's "we reset the device and insert keys into a newly-created
//! keyspace" / "a new DB instance on top of a newly-formatted ext4".

use std::sync::Arc;

use kvcsd_blockfs::{BlockFs, FsConfig};
use kvcsd_client::KvCsd;
use kvcsd_core::{DeviceConfig, KvCsdDevice};
use kvcsd_flash::{
    ConvConfig, ConventionalNamespace, FlashGeometry, NandArray, ZnsConfig, ZonedNamespace,
};
use kvcsd_proto::DeviceHandler;
use kvcsd_sim::config::SimConfig;
use kvcsd_sim::{IoLedger, PhaseRunner, TimeModel};

/// One experiment's simulated machine.
pub struct Testbed {
    pub cfg: SimConfig,
    pub ledger: Arc<IoLedger>,
    pub runner: PhaseRunner,
}

impl Testbed {
    /// Fresh testbed with the paper's hardware constants.
    pub fn new() -> Self {
        Self::with_config(SimConfig::default())
    }

    /// Fresh testbed with custom constants.
    pub fn with_config(cfg: SimConfig) -> Self {
        let ledger = Arc::new(IoLedger::new(cfg.hw.flash_channels, cfg.hw.page_bytes));
        let runner = PhaseRunner::new(Arc::clone(&ledger), TimeModel::new(cfg.clone()));
        Self {
            cfg,
            ledger,
            runner,
        }
    }

    fn geometry(&self, capacity_bytes: u64) -> FlashGeometry {
        // Scaled-device geometry: 64 KiB erase blocks keep zones small so
        // even tiny experiments get many zones per channel. Unwritten
        // zones cost no host memory (pages are stored sparsely).
        let channels = self.cfg.hw.flash_channels;
        let pages_per_block = 16u32;
        let block_bytes = pages_per_block as u64 * self.cfg.hw.page_bytes as u64;
        let need = (capacity_bytes as f64 * 1.25) as u64;
        let blocks_per_channel =
            (need.div_ceil(block_bytes).div_ceil(channels as u64) as u32).max(64);
        FlashGeometry {
            channels,
            blocks_per_channel,
            pages_per_block,
            page_bytes: self.cfg.hw.page_bytes,
        }
    }

    /// Build a KV-CSD device able to hold `capacity_bytes` of user data
    /// across up to `keyspaces` keyspaces (with headroom for logs,
    /// indexes and sort temporaries), plus a connected client.
    pub fn kvcsd(
        &self,
        capacity_bytes: u64,
        soc_dram_bytes: u64,
        keyspaces: u32,
    ) -> (Arc<KvCsdDevice>, KvCsd) {
        self.kvcsd_with_width(
            capacity_bytes,
            soc_dram_bytes,
            keyspaces,
            self.cfg.hw.flash_channels,
        )
    }

    /// As [`Testbed::kvcsd`] but with an explicit zone-cluster stripe
    /// width (used by the channel-parallelism ablation).
    pub fn kvcsd_with_width(
        &self,
        capacity_bytes: u64,
        soc_dram_bytes: u64,
        keyspaces: u32,
        cluster_width: u32,
    ) -> (Arc<KvCsdDevice>, KvCsd) {
        // Headroom: data passes through logs, sort runs, PIDX and
        // SORTED_VALUES transiently (~6x), and every live cluster
        // pre-reserves one stripe group of `channels` zones; a keyspace
        // plus its in-flight jobs holds at most ~12 clusters.
        let zone_bytes = 16 * self.cfg.hw.page_bytes as u64; // one 64 KiB block per zone
        let reserved =
            keyspaces.max(1) as u64 * 12 * self.cfg.hw.flash_channels as u64 * zone_bytes;
        let geom = self.geometry(capacity_bytes.max(1 << 20) * 6 + reserved);
        let nand = Arc::new(NandArray::new(geom, &self.cfg.hw, Arc::clone(&self.ledger)));
        let zns = Arc::new(ZonedNamespace::new(
            nand,
            ZnsConfig {
                zone_blocks: 1,
                max_open_zones: 1 << 20,
            },
        ));
        let mut cfg = self.cfg.clone();
        cfg.hw.soc_dram_bytes = soc_dram_bytes;
        let dev = Arc::new(KvCsdDevice::new(
            zns,
            cfg.cost.clone(),
            DeviceConfig {
                cluster_width,
                soc_dram_bytes,
                seed: 0xC5D,
                ..DeviceConfig::default()
            },
        ));
        let client = KvCsd::connect(
            Arc::clone(&dev) as Arc<dyn DeviceHandler>,
            Arc::clone(&self.ledger),
        );
        (dev, client)
    }

    /// Build the baseline's freshly-formatted filesystem over a
    /// conventional SSD sized for `capacity_bytes` of user data (with
    /// headroom for the WAL, L0 and compaction transients).
    pub fn blockfs(&self, capacity_bytes: u64) -> Arc<BlockFs> {
        let geom = self.geometry(capacity_bytes.max(1 << 20) * 6);
        let nand = Arc::new(NandArray::new(geom, &self.cfg.hw, Arc::clone(&self.ledger)));
        let conv = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
        // Scale the OS page cache with the dataset, as the paper's
        // data-size-to-memory-size ratio intends (a cache that swallows
        // the whole experiment would hide all read traffic).
        let cache_pages =
            (capacity_bytes / 16 / self.cfg.hw.page_bytes as u64).clamp(256, 65_536) as usize;
        Arc::new(BlockFs::format(
            conv,
            self.cfg.cost.clone(),
            FsConfig {
                page_cache_pages: cache_pages,
                journal: true,
            },
        ))
    }
}

impl Default for Testbed {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_testbeds_are_isolated() {
        let a = Testbed::new();
        let b = Testbed::new();
        a.ledger.charge_host_cpu(100.0);
        assert_eq!(b.ledger.snapshot().host_cpu_ns, 0);
    }

    #[test]
    fn kvcsd_testbed_runs_a_put() {
        let t = Testbed::new();
        let (_dev, client) = t.kvcsd(1 << 20, 8 << 20, 1);
        let ks = client.create_keyspace("x").unwrap();
        ks.put(b"k", b"v").unwrap();
        assert!(t.ledger.snapshot().pcie_msgs > 0);
    }

    #[test]
    fn blockfs_testbed_stores_files() {
        let t = Testbed::new();
        let fs = t.blockfs(1 << 20);
        let f = fs.create("x").unwrap();
        fs.append(f, b"hello").unwrap();
        assert_eq!(fs.read_at(f, 0, 5).unwrap(), b"hello");
    }
}
