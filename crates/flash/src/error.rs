//! Error type for flash operations.

use std::fmt;

/// Errors surfaced by the NAND model and its namespaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Attempt to program a page that was already programmed since its
    /// block was last erased (NAND program-once rule).
    PageAlreadyProgrammed { channel: u32, block: u64, page: u32 },
    /// Physical or logical address outside the device.
    AddressOutOfRange { addr: u64, limit: u64 },
    /// A ZNS write did not land on the zone's write pointer.
    NotSequential {
        zone: u32,
        write_pointer: u64,
        offset: u64,
    },
    /// A ZNS read reached past the zone's write pointer.
    ReadPastWritePointer {
        zone: u32,
        write_pointer: u64,
        end: u64,
    },
    /// Zone is in a state that does not permit the operation.
    BadZoneState {
        zone: u32,
        state: &'static str,
        op: &'static str,
    },
    /// A zone state change that is not an edge of the zone lifecycle
    /// table ([`crate::zns::ZONE_TRANSITIONS`]).
    IllegalZoneTransition {
        zone: u32,
        from: &'static str,
        to: &'static str,
    },
    /// The device ran out of free zones/blocks even after reclaim.
    DeviceFull,
    /// Too many zones simultaneously open.
    TooManyOpenZones { limit: u32 },
    /// Payload length is not acceptable for the operation.
    BadLength { len: usize, expect: String },
    /// Injected transient device error: the operation did not happen and
    /// an identical retry may succeed (media soft error, channel timeout).
    InjectedTransient { op: &'static str },
    /// Injected persistent device error: retries will keep failing
    /// (grown bad block, failed die).
    InjectedPersistent { op: &'static str },
    /// Power was lost. Every operation fails with this until the device
    /// is power-cycled and reopened.
    PowerLoss,
}

impl FlashError {
    /// True for errors where an identical retry may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, FlashError::InjectedTransient { .. })
    }

    /// True when the device lost power and needs a power cycle.
    pub fn is_power_loss(&self) -> bool {
        matches!(self, FlashError::PowerLoss)
    }
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::PageAlreadyProgrammed {
                channel,
                block,
                page,
            } => write!(
                f,
                "NAND program-once violation: channel {channel}, block {block}, page {page}"
            ),
            FlashError::AddressOutOfRange { addr, limit } => {
                write!(f, "address {addr} out of range (limit {limit})")
            }
            FlashError::NotSequential {
                zone,
                write_pointer,
                offset,
            } => write!(
                f,
                "zone {zone}: write at offset {offset} is not at write pointer {write_pointer}"
            ),
            FlashError::ReadPastWritePointer {
                zone,
                write_pointer,
                end,
            } => write!(
                f,
                "zone {zone}: read ends at {end}, past write pointer {write_pointer}"
            ),
            FlashError::BadZoneState { zone, state, op } => {
                write!(f, "zone {zone} is {state}; operation {op} not permitted")
            }
            FlashError::IllegalZoneTransition { zone, from, to } => {
                write!(f, "zone {zone}: illegal zone transition: {from} -> {to}")
            }
            FlashError::DeviceFull => write!(f, "device is full"),
            FlashError::TooManyOpenZones { limit } => {
                write!(f, "open-zone limit ({limit}) exceeded")
            }
            FlashError::BadLength { len, expect } => {
                write!(f, "bad payload length {len}, expected {expect}")
            }
            FlashError::InjectedTransient { op } => {
                write!(f, "injected transient error on {op}")
            }
            FlashError::InjectedPersistent { op } => {
                write!(f, "injected persistent error on {op}")
            }
            FlashError::PowerLoss => write!(f, "device power loss"),
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FlashError::NotSequential {
            zone: 3,
            write_pointer: 4096,
            offset: 0,
        };
        let s = e.to_string();
        assert!(s.contains("zone 3"));
        assert!(s.contains("4096"));
        let e = FlashError::TooManyOpenZones { limit: 14 };
        assert!(e.to_string().contains("14"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FlashError::DeviceFull, FlashError::DeviceFull);
        assert_ne!(
            FlashError::DeviceFull,
            FlashError::AddressOutOfRange { addr: 0, limit: 1 }
        );
    }
}
