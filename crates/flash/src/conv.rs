//! Conventional (block) namespace: a page-mapping FTL with garbage
//! collection, the substrate the software baseline's filesystem runs on.
//!
//! Logical page writes go to per-channel active blocks in round-robin
//! order, so large sequential writes stripe across all channels just like
//! a real SSD. Overwrites invalidate the old physical page; when free
//! blocks run low a greedy garbage collector relocates the remaining valid
//! pages of the emptiest sealed block and erases it. All relocation I/O is
//! charged to the ledger — the "GC tax" the paper's ZNS design avoids is
//! therefore measured, not asserted.

use std::collections::HashMap;
use std::sync::Arc;

use kvcsd_sim::sync::Mutex;
use kvcsd_sim::IoLedger;

use crate::error::FlashError;
use crate::nand::NandArray;
use crate::Result;

/// Configuration of the conventional namespace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvConfig {
    /// Fraction of physical capacity hidden as over-provisioning
    /// (enterprise SSDs commonly reserve ~7-28%).
    pub op_fraction: f64,
    /// Run garbage collection when the free-block pool drops below this.
    pub gc_free_blocks: u32,
    /// Effective bandwidth of the host's path to this namespace, in
    /// bytes/sec. On the paper's testbed the host reaches the SSD *as a
    /// block device through the CSD's SoC* (a PCIe Gen3 x4 back-link plus
    /// the ext4/block-layer data path), so host block I/O shares one
    /// ~1.2 GB/s pipe regardless of NAND channel parallelism. KV-CSD's
    /// on-SoC store talks to NAND directly and never pays this. Internal
    /// garbage-collection traffic stays inside the SSD and is exempt.
    pub bridge_bw_bps: f64,
}

impl Default for ConvConfig {
    fn default() -> Self {
        Self {
            op_fraction: 0.125,
            gc_free_blocks: 4,
            bridge_bw_bps: 1.2e9,
        }
    }
}

#[derive(Debug)]
struct Ftl {
    /// Logical page -> physical page.
    map: HashMap<u64, u64>,
    /// Physical page -> logical page (for GC relocation).
    rmap: HashMap<u64, u64>,
    /// Valid-page count per erase block.
    valid: HashMap<u64, u32>,
    /// Free (erased) blocks per channel.
    free: Vec<Vec<u64>>,
    /// Currently-filling block per channel: (block, next page index).
    active: Vec<Option<(u64, u32)>>,
    /// Sealed (fully programmed) blocks, candidates for GC.
    sealed: Vec<u64>,
    /// Round-robin channel cursor for allocation.
    rr: usize,
}

/// The conventional block namespace.
#[derive(Debug)]
pub struct ConventionalNamespace {
    nand: Arc<NandArray>,
    cfg: ConvConfig,
    logical_pages: u64,
    ftl: Mutex<Ftl>,
}

impl ConventionalNamespace {
    pub fn new(nand: Arc<NandArray>, cfg: ConvConfig) -> Self {
        let geom = *nand.geometry();
        let logical_pages = (geom.total_pages() as f64 / (1.0 + cfg.op_fraction)).floor() as u64;
        let mut free: Vec<Vec<u64>> = (0..geom.channels).map(|_| Vec::new()).collect();
        for block in 0..geom.total_blocks() {
            free[geom.channel_of_block(block) as usize].push(block);
        }
        // Pop from the back; reverse so low block numbers are used first.
        for f in &mut free {
            f.reverse();
        }
        Self {
            nand,
            cfg,
            logical_pages,
            ftl: Mutex::new(Ftl {
                map: HashMap::new(),
                rmap: HashMap::new(),
                valid: HashMap::new(),
                free,
                active: (0..geom.channels).map(|_| None).collect(),
                sealed: Vec::new(),
                rr: 0,
            }),
        }
    }

    pub fn nand(&self) -> &Arc<NandArray> {
        &self.nand
    }

    fn ledger(&self) -> &Arc<IoLedger> {
        self.nand.ledger()
    }

    /// Logical capacity in pages (physical minus over-provisioning).
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Logical capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.logical_pages * self.nand.geometry().page_bytes as u64
    }

    fn check_lpa(&self, lpa: u64) -> Result<()> {
        if lpa >= self.logical_pages {
            return Err(FlashError::AddressOutOfRange {
                addr: lpa,
                limit: self.logical_pages,
            });
        }
        Ok(())
    }

    /// Occupy the host-side bridge for one page transfer.
    fn charge_bridge(&self) {
        let ns = self.nand.geometry().page_bytes as f64 / self.cfg.bridge_bw_bps * 1e9;
        self.ledger().bridge_busy(ns as u64);
    }

    /// Write one logical page (shorter payloads are zero-padded).
    pub fn write(&self, lpa: u64, data: &[u8]) -> Result<()> {
        self.check_lpa(lpa)?;
        self.charge_bridge();
        let mut ftl = self.ftl.lock();
        let ppa = self.alloc_page(&mut ftl)?;
        self.nand.program(ppa, data)?;
        self.install_mapping(&mut ftl, lpa, ppa);
        Ok(())
    }

    /// Read one logical page. Unmapped pages read as zeroes without
    /// touching NAND (like a hole in a sparse device).
    pub fn read(&self, lpa: u64) -> Result<Vec<u8>> {
        self.check_lpa(lpa)?;
        let ppa = self.ftl.lock().map.get(&lpa).copied();
        match ppa {
            Some(ppa) => {
                self.charge_bridge();
                Ok(self.nand.read(ppa)?.into_vec())
            }
            None => Ok(vec![0u8; self.nand.geometry().page_bytes as usize]),
        }
    }

    /// Discard a logical page (TRIM), freeing its physical page for GC.
    pub fn trim(&self, lpa: u64) -> Result<()> {
        self.check_lpa(lpa)?;
        let mut ftl = self.ftl.lock();
        if let Some(ppa) = ftl.map.remove(&lpa) {
            ftl.rmap.remove(&ppa);
            let block = self.nand.geometry().block_of_ppa(ppa);
            if let Some(v) = ftl.valid.get_mut(&block) {
                *v = v.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// Number of currently free (erased, unallocated) blocks.
    pub fn free_blocks(&self) -> u64 {
        self.ftl.lock().free.iter().map(|f| f.len() as u64).sum()
    }

    /// Pages moved by garbage collection since creation.
    pub fn gc_moved_pages(&self) -> u64 {
        self.ledger().custom("ftl_gc_moved_pages")
    }

    // ---- internals ------------------------------------------------------

    fn install_mapping(&self, ftl: &mut Ftl, lpa: u64, ppa: u64) {
        let geom = self.nand.geometry();
        if let Some(old) = ftl.map.insert(lpa, ppa) {
            ftl.rmap.remove(&old);
            let old_block = geom.block_of_ppa(old);
            if let Some(v) = ftl.valid.get_mut(&old_block) {
                *v = v.saturating_sub(1);
            }
        }
        ftl.rmap.insert(ppa, lpa);
        *ftl.valid.entry(geom.block_of_ppa(ppa)).or_insert(0) += 1;
    }

    /// Allocate the next physical page, garbage-collecting if needed.
    fn alloc_page(&self, ftl: &mut Ftl) -> Result<u64> {
        let geom = *self.nand.geometry();
        // Reclaim until the free pool is healthy or nothing is reclaimable.
        while (ftl.free.iter().map(Vec::len).sum::<usize>() as u32) < self.cfg.gc_free_blocks {
            if !self.collect_garbage(ftl)? {
                break;
            }
        }
        let channels = geom.channels as usize;
        for probe in 0..channels {
            let c = (ftl.rr + probe) % channels;
            if ftl.active[c].is_none() {
                if let Some(block) = ftl.free[c].pop() {
                    ftl.active[c] = Some((block, 0));
                }
            }
            if let Some((block, next)) = ftl.active[c] {
                let ppa = geom.first_ppa_of_block(block) + next as u64;
                if next + 1 == geom.pages_per_block {
                    ftl.sealed.push(block);
                    ftl.active[c] = None;
                } else {
                    ftl.active[c] = Some((block, next + 1));
                }
                ftl.rr = (c + 1) % channels;
                return Ok(ppa);
            }
        }
        Err(FlashError::DeviceFull)
    }

    /// Greedy GC: relocate the valid pages of the emptiest sealed block,
    /// erase it and return it to the free pool. Returns `false` when no
    /// space-gaining victim exists (every sealed block is fully valid).
    fn collect_garbage(&self, ftl: &mut Ftl) -> Result<bool> {
        let geom = *self.nand.geometry();
        let victim_pos = {
            let valid = &ftl.valid;
            ftl.sealed
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| valid.get(b).copied().unwrap_or(0))
                .map(|(i, _)| i)
        };
        let Some(pos) = victim_pos else {
            return Ok(false);
        }; // nothing sealed yet
        let victim = ftl.sealed[pos];
        let victim_valid = ftl.valid.get(&victim).copied().unwrap_or(0);
        if victim_valid >= geom.pages_per_block {
            // Relocating a fully-valid block gains nothing; stop reclaiming.
            return Ok(false);
        }
        ftl.sealed.swap_remove(pos);

        let first = geom.first_ppa_of_block(victim);
        for p in 0..geom.pages_per_block as u64 {
            let ppa = first + p;
            let Some(lpa) = ftl.rmap.get(&ppa).copied() else {
                continue;
            };
            let data = self.nand.read(ppa)?;
            // Relocation must not recurse into GC: allocate directly.
            let new_ppa = self.alloc_for_gc(ftl, victim)?;
            self.nand.program(new_ppa, &data)?;
            ftl.rmap.remove(&ppa);
            ftl.map.insert(lpa, new_ppa);
            ftl.rmap.insert(new_ppa, lpa);
            *ftl.valid.entry(geom.block_of_ppa(new_ppa)).or_insert(0) += 1;
            self.ledger().bump("ftl_gc_moved_pages", 1);
        }
        ftl.valid.remove(&victim);
        self.nand.erase(victim)?;
        ftl.free[geom.channel_of_block(victim) as usize].push(victim);
        Ok(true)
    }

    /// Page allocation used during GC relocation; never triggers GC and
    /// never allocates inside the victim block.
    fn alloc_for_gc(&self, ftl: &mut Ftl, victim: u64) -> Result<u64> {
        let geom = *self.nand.geometry();
        let channels = geom.channels as usize;
        for probe in 0..channels {
            let c = (ftl.rr + probe) % channels;
            if ftl.active[c].is_none() {
                // Prefer a free block that is not the victim (the victim is
                // not in the free list yet, so any free block is safe).
                if let Some(block) = ftl.free[c].pop() {
                    debug_assert_ne!(block, victim);
                    ftl.active[c] = Some((block, 0));
                }
            }
            if let Some((block, next)) = ftl.active[c] {
                let ppa = geom.first_ppa_of_block(block) + next as u64;
                if next + 1 == geom.pages_per_block {
                    ftl.sealed.push(block);
                    ftl.active[c] = None;
                } else {
                    ftl.active[c] = Some((block, next + 1));
                }
                ftl.rr = (c + 1) % channels;
                return Ok(ppa);
            }
        }
        Err(FlashError::DeviceFull)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use kvcsd_sim::HardwareSpec;

    fn conv(blocks_per_channel: u32) -> ConventionalNamespace {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel,
            pages_per_block: 4,
            page_bytes: 256,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        ConventionalNamespace::new(
            nand,
            ConvConfig {
                op_fraction: 0.25,
                gc_free_blocks: 2,
                ..ConvConfig::default()
            },
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let c = conv(8);
        c.write(0, &[1u8; 256]).unwrap();
        c.write(7, &[2u8; 100]).unwrap();
        assert_eq!(c.read(0).unwrap(), vec![1u8; 256]);
        let p7 = c.read(7).unwrap();
        assert_eq!(&p7[..100], &[2u8; 100]);
    }

    #[test]
    fn unmapped_reads_are_zero_and_free() {
        let c = conv(8);
        let before = c.nand().ledger().snapshot();
        assert_eq!(c.read(5).unwrap(), vec![0u8; 256]);
        let d = c.nand().ledger().snapshot().since(&before);
        assert_eq!(d.nand_read_pages, 0);
    }

    #[test]
    fn overwrite_returns_latest_data() {
        let c = conv(8);
        for i in 0..10u8 {
            c.write(3, &[i; 16]).unwrap();
        }
        assert_eq!(c.read(3).unwrap()[0], 9);
    }

    #[test]
    fn writes_stripe_across_channels() {
        let c = conv(8);
        for lpa in 0..8 {
            c.write(lpa, &[1u8; 256]).unwrap();
        }
        let s = c.nand().ledger().snapshot();
        let busy: Vec<bool> = s.channel_busy_ns.iter().map(|&b| b > 0).collect();
        assert_eq!(busy, vec![true; 4], "all 4 channels should be used");
    }

    #[test]
    fn logical_capacity_excludes_over_provisioning() {
        let c = conv(8);
        // 4*8*4 = 128 physical pages, / 1.25 = 102 logical.
        assert_eq!(c.logical_pages(), 102);
        assert!(c.read(102).is_err());
        assert!(c.write(102, &[0]).is_err());
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_survive() {
        let c = conv(4); // 64 physical pages, 51 logical
                         // Overwrite a working set far beyond physical capacity.
        for round in 0..40u8 {
            for lpa in 0..40u64 {
                c.write(lpa, &[round ^ lpa as u8; 32]).unwrap();
            }
        }
        assert!(c.gc_moved_pages() > 0, "GC should have relocated pages");
        for lpa in 0..40u64 {
            assert_eq!(c.read(lpa).unwrap()[0], 39 ^ lpa as u8, "lpa {lpa}");
        }
        let s = c.nand().ledger().snapshot();
        assert!(s.nand_erase_blocks > 0);
        // Write amplification: programs exceed logical writes.
        assert!(s.nand_program_pages > 40 * 40);
    }

    #[test]
    fn trim_releases_pages_for_gc() {
        let c = conv(4);
        for lpa in 0..51u64 {
            c.write(lpa, &[1u8; 8]).unwrap();
        }
        for lpa in 0..51u64 {
            c.trim(lpa).unwrap();
        }
        // The device should now accept a full rewrite without error.
        for lpa in 0..51u64 {
            c.write(lpa, &[2u8; 8]).unwrap();
        }
        assert_eq!(c.read(50).unwrap()[0], 2);
    }

    #[test]
    fn trimmed_page_reads_zero() {
        let c = conv(8);
        c.write(1, &[9u8; 8]).unwrap();
        c.trim(1).unwrap();
        assert_eq!(c.read(1).unwrap(), vec![0u8; 256]);
    }

    #[test]
    fn device_full_when_everything_is_valid() {
        let c = conv(4); // 51 logical pages over 64 physical
        for lpa in 0..51u64 {
            c.write(lpa, &[1u8; 8]).unwrap();
        }
        // Keep overwriting: GC can always reclaim because overwrites
        // invalidate, so this must keep succeeding.
        for round in 0..20u8 {
            for lpa in 0..51u64 {
                c.write(lpa, &[round; 8]).unwrap();
            }
        }
        assert_eq!(c.read(0).unwrap()[0], 19);
    }

    #[test]
    fn free_block_accounting() {
        let c = conv(8);
        let initial = c.free_blocks();
        assert_eq!(initial, 32);
        // Fill one block's worth of pages (4 pages round-robin across 4
        // channels -> 4 active blocks leave the free pool).
        for lpa in 0..4u64 {
            c.write(lpa, &[1u8; 8]).unwrap();
        }
        assert_eq!(c.free_blocks(), 28);
    }
}
