//! Zoned namespace (ZNS) over the NAND array.
//!
//! Zones follow the NVMe ZNS command-set semantics the paper relies on:
//! only sequential writes at the write pointer, explicit reset to reclaim
//! space (no device-side garbage collection), and a bounded number of
//! simultaneously open zones. Each zone maps to erase blocks of a single
//! NAND channel; cross-channel parallelism is obtained by *striping across
//! zones*, which is exactly the job of the device store's zone clusters.

use std::sync::Arc;

use kvcsd_sim::fault::{FaultDecision, OpClass};
use kvcsd_sim::sync::{Mutex, Shared};
use kvcsd_sim::TransitionTable;

use crate::error::FlashError;
use crate::nand::NandArray;
use crate::Result;

/// Configuration of the zoned namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZnsConfig {
    /// Erase blocks per zone (all on one channel).
    pub zone_blocks: u32,
    /// Maximum number of zones simultaneously in the Open state
    /// (NVMe: Maximum Open Resources).
    pub max_open_zones: u32,
}

impl Default for ZnsConfig {
    fn default() -> Self {
        Self {
            zone_blocks: 4,
            max_open_zones: 1024,
        }
    }
}

/// Lifecycle state of a zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneState {
    /// Erased; write pointer at zero.
    Empty,
    /// Opened by a write; write pointer mid-zone.
    Open,
    /// Finished or filled to capacity; read-only until reset.
    Full,
    /// Administratively frozen (NVMe "zone set read only" analog):
    /// appends rejected at any fill level, reads still served; leaves
    /// only through Zone Reset.
    ReadOnly,
}

impl ZoneState {
    /// NVMe-style lowercase state name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            ZoneState::Empty => "empty",
            ZoneState::Open => "open",
            ZoneState::Full => "full",
            ZoneState::ReadOnly => "read-only",
        }
    }
}

/// The legal zone lifecycle, mirroring the NVMe ZNS state machine the
/// paper's device relies on. Self-edges are implicitly legal (idempotent
/// no-ops); every other state change must appear here or the mutation is
/// rejected with [`FlashError::IllegalZoneTransition`]. Notably absent:
/// `Full -> Open` — a Full zone can only be reclaimed through Zone Reset,
/// never reopened for writes.
pub static ZONE_TRANSITIONS: TransitionTable<ZoneState> = TransitionTable {
    machine: "zone",
    edges: &[
        // First append opens the zone.
        (ZoneState::Empty, ZoneState::Open),
        // Zone Finish is valid on an Empty zone (zero-capacity seal).
        (ZoneState::Empty, ZoneState::Full),
        // Filling to capacity or Zone Finish.
        (ZoneState::Open, ZoneState::Full),
        // Zone Reset.
        (ZoneState::Open, ZoneState::Empty),
        (ZoneState::Full, ZoneState::Empty),
        // Administrative freeze at any fill level; only Reset recovers.
        (ZoneState::Open, ZoneState::ReadOnly),
        (ZoneState::Full, ZoneState::ReadOnly),
        (ZoneState::ReadOnly, ZoneState::Empty),
    ],
};

#[derive(Debug)]
struct ZoneMeta {
    state: ZoneState,
    /// Write pointer in pages from the zone start.
    wp_pages: u32,
}

impl ZoneMeta {
    /// The single checkpoint through which every zone state change flows.
    fn transition(&mut self, zone: u32, to: ZoneState) -> Result<()> {
        match ZONE_TRANSITIONS.check(self.state, to) {
            Ok(()) => {
                self.state = to;
                Ok(())
            }
            Err(_) => Err(FlashError::IllegalZoneTransition {
                zone,
                from: self.state.name(),
                to: to.name(),
            }),
        }
    }
}

/// Public snapshot of one zone's status (NVMe Zone Descriptor analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneInfo {
    pub state: ZoneState,
    pub write_pointer_pages: u32,
    pub capacity_pages: u32,
    pub channel: u32,
}

/// The zoned namespace.
#[derive(Debug)]
pub struct ZonedNamespace {
    nand: Arc<NandArray>,
    cfg: ZnsConfig,
    zones: Vec<Mutex<ZoneMeta>>,
    /// Gauge of zones currently Open. Self-synchronized [`Shared`]
    /// counter so the debug-build race detector observes it; the value is
    /// kept consistent under the per-zone lock of the transitioning zone.
    open_count: Shared<u32>,
}

impl ZonedNamespace {
    /// Create a ZNS view covering the whole NAND array. Blocks that do not
    /// fill a whole zone at the end of each channel are left unused, as on
    /// real devices whose zone capacity is below zone size.
    pub fn new(nand: Arc<NandArray>, cfg: ZnsConfig) -> Self {
        let geom = *nand.geometry();
        let zones_per_channel = geom.blocks_per_channel / cfg.zone_blocks;
        let zone_count = zones_per_channel as usize * geom.channels as usize;
        Self {
            nand,
            cfg,
            zones: (0..zone_count)
                .map(|_| {
                    Mutex::new(ZoneMeta {
                        state: ZoneState::Empty,
                        wp_pages: 0,
                    })
                })
                .collect(),
            open_count: Shared::new(0),
        }
    }

    pub fn nand(&self) -> &Arc<NandArray> {
        &self.nand
    }

    pub fn config(&self) -> &ZnsConfig {
        &self.cfg
    }

    /// Number of zones exposed by the namespace.
    pub fn zone_count(&self) -> u32 {
        self.zones.len() as u32
    }

    /// Pages per zone.
    pub fn zone_capacity_pages(&self) -> u32 {
        self.cfg.zone_blocks * self.nand.geometry().pages_per_block
    }

    /// Bytes per zone.
    pub fn zone_capacity_bytes(&self) -> u64 {
        self.zone_capacity_pages() as u64 * self.nand.geometry().page_bytes as u64
    }

    /// Channel a zone's blocks live on.
    pub fn channel_of_zone(&self, zone: u32) -> u32 {
        zone % self.nand.geometry().channels
    }

    fn check_zone(&self, zone: u32) -> Result<()> {
        if zone as usize >= self.zones.len() {
            return Err(FlashError::AddressOutOfRange {
                addr: zone as u64,
                limit: self.zones.len() as u64,
            });
        }
        Ok(())
    }

    /// Erase block backing `page_ix` of `zone` (global block number).
    fn block_of(&self, zone: u32, block_in_zone: u32) -> u64 {
        let geom = self.nand.geometry();
        let channel = zone % geom.channels;
        let zone_in_channel = zone / geom.channels;
        channel as u64
            + geom.channels as u64
                * (zone_in_channel as u64 * self.cfg.zone_blocks as u64 + block_in_zone as u64)
    }

    fn ppa_of(&self, zone: u32, page_ix: u32) -> u64 {
        let geom = self.nand.geometry();
        let block_in_zone = page_ix / geom.pages_per_block;
        let page_in_block = page_ix % geom.pages_per_block;
        self.block_of(zone, block_in_zone) * geom.pages_per_block as u64 + page_in_block as u64
    }

    /// Zone descriptor (state, write pointer, capacity).
    pub fn zone_info(&self, zone: u32) -> Result<ZoneInfo> {
        self.check_zone(zone)?;
        let meta = self.zones[zone as usize].lock();
        Ok(ZoneInfo {
            state: meta.state,
            write_pointer_pages: meta.wp_pages,
            capacity_pages: self.zone_capacity_pages(),
            channel: self.channel_of_zone(zone),
        })
    }

    /// Zone Append: write `data` at the write pointer, zero-padding the
    /// tail of the last page. Returns the starting page index within the
    /// zone. Appending to a Full zone or past capacity is an error.
    ///
    /// When a fault fires mid-stripe, the write pointer is rolled back to
    /// cover exactly the pages that were durably programmed — including a
    /// torn final page on power loss, which then sits *below* the write
    /// pointer as a torn zone tail for the recovery layer to detect.
    pub fn append(&self, zone: u32, data: &[u8]) -> Result<u32> {
        self.check_zone(zone)?;
        if data.is_empty() {
            return Err(FlashError::BadLength {
                len: 0,
                expect: "> 0".into(),
            });
        }
        if let Some(inj) = self.nand.fault_injector() {
            match inj.decide(OpClass::ZnsAppend, data.len()) {
                FaultDecision::Ok => {}
                FaultDecision::Transient => {
                    return Err(FlashError::InjectedTransient { op: "zns-append" })
                }
                FaultDecision::Persistent => {
                    return Err(FlashError::InjectedPersistent { op: "zns-append" })
                }
                FaultDecision::PowerCut { .. } | FaultDecision::PoweredOff => {
                    return Err(FlashError::PowerLoss)
                }
            }
        }
        let page_bytes = self.nand.geometry().page_bytes as usize;
        let pages = data.len().div_ceil(page_bytes) as u32;
        let cap = self.zone_capacity_pages();

        // Reserve the write-pointer range under the zone lock, then program
        // outside it (the NAND layer is internally synchronized). The zone
        // is marked Full only after its last page durably programs: until
        // then the reserved write pointer at capacity already rejects
        // further appends, and keeping the zone Open means a mid-stripe
        // power cut never needs the illegal Full -> Open edge to roll back.
        let start = {
            let mut meta = self.zones[zone as usize].lock();
            match meta.state {
                ZoneState::Full | ZoneState::ReadOnly => {
                    return Err(FlashError::BadZoneState {
                        zone,
                        state: meta.state.name(),
                        op: "append",
                    })
                }
                ZoneState::Empty => {
                    let open = self.open_count.update(|c| {
                        *c += 1;
                        *c
                    });
                    if open > self.cfg.max_open_zones {
                        self.open_count.update(|c| *c -= 1);
                        return Err(FlashError::TooManyOpenZones {
                            limit: self.cfg.max_open_zones,
                        });
                    }
                    if let Err(e) = meta.transition(zone, ZoneState::Open) {
                        self.open_count.update(|c| *c -= 1);
                        return Err(e);
                    }
                }
                ZoneState::Open => {}
            }
            if meta.wp_pages + pages > cap {
                return Err(FlashError::NotSequential {
                    zone,
                    write_pointer: meta.wp_pages as u64,
                    offset: (meta.wp_pages + pages) as u64,
                });
            }
            let start = meta.wp_pages;
            meta.wp_pages += pages;
            start
        };

        let mut programmed = 0u32;
        let mut failure = None;
        for (i, chunk) in data.chunks(page_bytes).enumerate() {
            let ppa = self.ppa_of(zone, start + i as u32);
            match self.nand.program(ppa, chunk) {
                Ok(()) => programmed += 1,
                Err(e) => {
                    // A power cut can tear the page: its cells were partly
                    // written, so it counts as programmed and must stay
                    // below the rolled-back write pointer.
                    if e.is_power_loss() && self.nand.is_programmed(ppa) {
                        programmed += 1;
                    }
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            let mut meta = self.zones[zone as usize].lock();
            // Roll back over the pages that never made it — unless a
            // concurrent append already extended the zone past us. The
            // zone was never marked Full, so only the pointer moves.
            if meta.wp_pages == start + pages {
                meta.wp_pages = start + programmed;
            }
            return Err(e);
        }
        if start + pages == cap {
            let mut meta = self.zones[zone as usize].lock();
            if meta.state == ZoneState::Open && meta.wp_pages == cap {
                meta.transition(zone, ZoneState::Full)?;
                self.open_count.update(|c| *c -= 1);
            }
        }
        Ok(start)
    }

    /// Read `page_count` pages starting at `page_ix` in `zone`. Reads must
    /// stay below the write pointer.
    pub fn read_pages(&self, zone: u32, page_ix: u32, page_count: u32) -> Result<Vec<u8>> {
        self.check_zone(zone)?;
        let wp = self.zones[zone as usize].lock().wp_pages;
        let end = page_ix as u64 + page_count as u64;
        if end > wp as u64 {
            return Err(FlashError::ReadPastWritePointer {
                zone,
                write_pointer: wp as u64,
                end,
            });
        }
        let page_bytes = self.nand.geometry().page_bytes as usize;
        let mut out = Vec::with_capacity(page_count as usize * page_bytes);
        for p in page_ix..page_ix + page_count {
            out.extend_from_slice(&self.nand.read(self.ppa_of(zone, p))?);
        }
        Ok(out)
    }

    /// Byte-granularity read: fetches the whole pages covering
    /// `offset..offset+len` (charging their full I/O — this is where read
    /// amplification comes from) and returns just the requested span.
    pub fn read_bytes(&self, zone: u32, offset: u64, len: usize) -> Result<Vec<u8>> {
        let page_bytes = self.nand.geometry().page_bytes as u64;
        let first = (offset / page_bytes) as u32;
        let last = (offset + len as u64).div_ceil(page_bytes) as u32;
        let mut pages = self.read_pages(zone, first, last - first)?;
        let skip = (offset - first as u64 * page_bytes) as usize;
        pages.drain(..skip);
        pages.truncate(len);
        Ok(pages)
    }

    /// Zone Reset: erase the zone's programmed blocks and rewind its write
    /// pointer.
    pub fn reset(&self, zone: u32) -> Result<()> {
        self.check_zone(zone)?;
        let geom = self.nand.geometry();
        let mut meta = self.zones[zone as usize].lock();
        if meta.state == ZoneState::Open {
            self.open_count.update(|c| *c -= 1);
        }
        let used_blocks = meta.wp_pages.div_ceil(geom.pages_per_block);
        for b in 0..used_blocks {
            self.nand.erase(self.block_of(zone, b))?;
        }
        meta.transition(zone, ZoneState::Empty)?;
        meta.wp_pages = 0;
        Ok(())
    }

    /// Zone Finish: transition an Open or Empty zone to Full (read-only).
    pub fn finish(&self, zone: u32) -> Result<()> {
        self.check_zone(zone)?;
        let mut meta = self.zones[zone as usize].lock();
        let was_open = meta.state == ZoneState::Open;
        meta.transition(zone, ZoneState::Full)?;
        if was_open {
            self.open_count.update(|c| *c -= 1);
        }
        Ok(())
    }

    /// Mark a zone read-only (NVMe "set zone read only" analog): appends
    /// are rejected, reads below the write pointer keep working, and only
    /// Zone Reset returns the zone to service. Legal from Open or Full.
    pub fn mark_read_only(&self, zone: u32) -> Result<()> {
        self.check_zone(zone)?;
        let mut meta = self.zones[zone as usize].lock();
        let was_open = meta.state == ZoneState::Open;
        meta.transition(zone, ZoneState::ReadOnly)?;
        if was_open {
            self.open_count.update(|c| *c -= 1);
        }
        Ok(())
    }

    /// Number of zones currently Open.
    pub fn open_zones(&self) -> u32 {
        self.open_count.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use kvcsd_sim::{HardwareSpec, IoLedger};

    fn zns(max_open: u32) -> ZonedNamespace {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel: 8,
            pages_per_block: 4,
            page_bytes: 256,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        ZonedNamespace::new(
            nand,
            ZnsConfig {
                zone_blocks: 2,
                max_open_zones: max_open,
            },
        )
    }

    #[test]
    fn zone_layout() {
        let z = zns(16);
        // 8 blocks/channel, 2 blocks/zone => 4 zones/channel * 4 channels.
        assert_eq!(z.zone_count(), 16);
        assert_eq!(z.zone_capacity_pages(), 8);
        assert_eq!(z.zone_capacity_bytes(), 8 * 256);
        assert_eq!(z.channel_of_zone(0), 0);
        assert_eq!(z.channel_of_zone(5), 1);
    }

    #[test]
    fn append_and_read_roundtrip() {
        let z = zns(16);
        let data: Vec<u8> = (0..512).map(|i| i as u8).collect();
        let start = z.append(3, &data).unwrap();
        assert_eq!(start, 0);
        assert_eq!(z.read_pages(3, 0, 2).unwrap(), data);
        let next = z.append(3, &[0xAB; 100]).unwrap();
        assert_eq!(next, 2);
        let back = z.read_pages(3, 2, 1).unwrap();
        assert_eq!(&back[..100], &[0xAB; 100]);
        assert!(back[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn read_bytes_slices_within_pages() {
        let z = zns(16);
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        z.append(0, &data).unwrap();
        let got = z.read_bytes(0, 300, 400).unwrap();
        assert_eq!(got, &data[300..700]);
    }

    #[test]
    fn read_bytes_charges_whole_pages() {
        let z = zns(16);
        z.append(0, &vec![1u8; 1024]).unwrap();
        let before = z.nand().ledger().snapshot();
        z.read_bytes(0, 10, 16).unwrap(); // 16 bytes, 1 page
        let d = z.nand().ledger().snapshot().since(&before);
        assert_eq!(d.nand_read_pages, 1);
        assert_eq!(d.storage_read_bytes(), 256);
    }

    #[test]
    fn write_pointer_and_states_progress() {
        let z = zns(16);
        assert_eq!(z.zone_info(1).unwrap().state, ZoneState::Empty);
        z.append(1, &[1u8; 256]).unwrap();
        let info = z.zone_info(1).unwrap();
        assert_eq!(info.state, ZoneState::Open);
        assert_eq!(info.write_pointer_pages, 1);
        assert_eq!(z.open_zones(), 1);
        // Fill to capacity -> Full, open count released.
        z.append(1, &vec![2u8; 7 * 256]).unwrap();
        assert_eq!(z.zone_info(1).unwrap().state, ZoneState::Full);
        assert_eq!(z.open_zones(), 0);
    }

    #[test]
    fn append_to_full_zone_fails() {
        let z = zns(16);
        z.append(0, &vec![1u8; 8 * 256]).unwrap();
        let e = z.append(0, &[1]).unwrap_err();
        assert!(matches!(e, FlashError::BadZoneState { .. }));
    }

    #[test]
    fn append_past_capacity_fails_atomically() {
        let z = zns(16);
        z.append(0, &vec![1u8; 7 * 256]).unwrap();
        let e = z.append(0, &vec![1u8; 2 * 256]).unwrap_err();
        assert!(matches!(e, FlashError::NotSequential { .. }));
        // Write pointer unchanged; a fitting append still works.
        assert_eq!(z.zone_info(0).unwrap().write_pointer_pages, 7);
        z.append(0, &[1u8; 256]).unwrap();
    }

    #[test]
    fn read_past_write_pointer_fails() {
        let z = zns(16);
        z.append(0, &[1u8; 256]).unwrap();
        let e = z.read_pages(0, 0, 2).unwrap_err();
        assert!(matches!(e, FlashError::ReadPastWritePointer { .. }));
    }

    #[test]
    fn reset_rewinds_and_erases() {
        let z = zns(16);
        z.append(2, &vec![9u8; 1024]).unwrap();
        let before = z.nand().ledger().snapshot();
        z.reset(2).unwrap();
        let d = z.nand().ledger().snapshot().since(&before);
        assert_eq!(d.nand_erase_blocks, 1); // only the used block erased
        let info = z.zone_info(2).unwrap();
        assert_eq!(info.state, ZoneState::Empty);
        assert_eq!(info.write_pointer_pages, 0);
        assert_eq!(z.open_zones(), 0);
        // Zone is writable again from the start.
        assert_eq!(z.append(2, &[1u8; 256]).unwrap(), 0);
    }

    #[test]
    fn finish_makes_zone_readonly() {
        let z = zns(16);
        z.append(0, &[1u8; 256]).unwrap();
        z.finish(0).unwrap();
        assert_eq!(z.zone_info(0).unwrap().state, ZoneState::Full);
        assert_eq!(z.open_zones(), 0);
        assert!(z.append(0, &[1]).is_err());
        // Data below the write pointer is still readable.
        assert_eq!(z.read_pages(0, 0, 1).unwrap()[0], 1);
    }

    #[test]
    fn zone_table_read_only_edges() {
        use ZoneState::*;
        for (from, to) in [(Open, ReadOnly), (Full, ReadOnly), (ReadOnly, Empty)] {
            assert!(ZONE_TRANSITIONS.is_legal(from, to), "{from:?}->{to:?}");
        }
        // A frozen zone only leaves through Reset.
        assert!(!ZONE_TRANSITIONS.is_legal(ReadOnly, Open));
        assert!(!ZONE_TRANSITIONS.is_legal(ReadOnly, Full));
        assert!(!ZONE_TRANSITIONS.is_legal(Empty, ReadOnly));
        let err = ZONE_TRANSITIONS.check(ReadOnly, Full).unwrap_err();
        assert_eq!(err.machine, "zone");
        assert_eq!(err.from, "ReadOnly");
        assert_eq!(err.to, "Full");
        assert!(err.to_string().contains("illegal zone transition"));
    }

    #[test]
    fn mark_read_only_freezes_open_zone() {
        let z = zns(16);
        z.append(0, &[1u8; 256]).unwrap();
        assert_eq!(z.open_zones(), 1);
        z.mark_read_only(0).unwrap();
        let info = z.zone_info(0).unwrap();
        assert_eq!(info.state, ZoneState::ReadOnly);
        assert_eq!(z.open_zones(), 0, "freeze must release the open slot");
        // Appends are rejected with the zone's state in the error.
        match z.append(0, &[2u8; 256]).unwrap_err() {
            FlashError::BadZoneState { zone, state, op } => {
                assert_eq!(zone, 0);
                assert_eq!(state, "read-only");
                assert_eq!(op, "append");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // Reads below the write pointer keep working.
        assert_eq!(z.read_pages(0, 0, 1).unwrap()[0], 1);
    }

    #[test]
    fn mark_read_only_from_full_and_reset_recovers() {
        let z = zns(16);
        z.append(1, &vec![7u8; 8 * 256]).unwrap();
        assert_eq!(z.zone_info(1).unwrap().state, ZoneState::Full);
        z.mark_read_only(1).unwrap();
        assert_eq!(z.zone_info(1).unwrap().state, ZoneState::ReadOnly);
        assert_eq!(z.open_zones(), 0);
        // Finish has no edge out of ReadOnly.
        assert!(matches!(
            z.finish(1),
            Err(FlashError::IllegalZoneTransition { .. })
        ));
        // Reset is the only way back to service.
        z.reset(1).unwrap();
        assert_eq!(z.zone_info(1).unwrap().state, ZoneState::Empty);
        assert_eq!(z.append(1, &[1u8; 256]).unwrap(), 0);
    }

    #[test]
    fn mark_read_only_illegal_transitions_name_states() {
        let z = zns(16);
        // Empty -> ReadOnly has no edge.
        match z.mark_read_only(0).unwrap_err() {
            FlashError::IllegalZoneTransition { zone, from, to } => {
                assert_eq!(zone, 0);
                assert_eq!(from, "empty");
                assert_eq!(to, "read-only");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // Self-transitions are idempotent no-ops, and the open-zone slot
        // must not be double-released on a repeated freeze.
        z.append(0, &[1u8; 256]).unwrap();
        z.mark_read_only(0).unwrap();
        assert_eq!(z.open_zones(), 0);
        z.mark_read_only(0).unwrap();
        assert_eq!(z.open_zones(), 0);
        assert_eq!(z.zone_info(0).unwrap().state, ZoneState::ReadOnly);
    }

    #[test]
    fn open_zone_limit_enforced() {
        let z = zns(2);
        z.append(0, &[1u8; 256]).unwrap();
        z.append(1, &[1u8; 256]).unwrap();
        let e = z.append(2, &[1u8; 256]).unwrap_err();
        assert!(matches!(e, FlashError::TooManyOpenZones { limit: 2 }));
        // Resetting one frees a slot.
        z.reset(0).unwrap();
        z.append(2, &[1u8; 256]).unwrap();
    }

    #[test]
    fn zones_on_same_channel_share_busy_accounting() {
        let z = zns(16);
        // Zones 0 and 4 both live on channel 0; zone 1 on channel 1.
        z.append(0, &[1u8; 256]).unwrap();
        z.append(4, &[1u8; 256]).unwrap();
        z.append(1, &[1u8; 256]).unwrap();
        let s = z.nand().ledger().snapshot();
        assert!(s.channel_busy_ns[0] > s.channel_busy_ns[1]);
        assert_eq!(s.channel_busy_ns[2], 0);
    }

    #[test]
    fn distinct_zones_have_distinct_storage() {
        let z = zns(16);
        z.append(0, &[1u8; 256]).unwrap();
        z.append(5, &[2u8; 256]).unwrap();
        assert_eq!(z.read_pages(0, 0, 1).unwrap()[0], 1);
        assert_eq!(z.read_pages(5, 0, 1).unwrap()[0], 2);
    }

    #[test]
    fn empty_append_rejected() {
        let z = zns(16);
        assert!(matches!(
            z.append(0, &[]),
            Err(FlashError::BadLength { .. })
        ));
    }

    fn faulty_zns(plan: kvcsd_sim::FaultPlan) -> ZonedNamespace {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel: 8,
            pages_per_block: 4,
            page_bytes: 256,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let inj = Arc::new(kvcsd_sim::FaultInjector::new(plan));
        let nand = Arc::new(
            NandArray::new(geom, &HardwareSpec::default(), ledger).with_fault_injector(inj),
        );
        ZonedNamespace::new(
            nand,
            ZnsConfig {
                zone_blocks: 2,
                max_open_zones: 16,
            },
        )
    }

    #[test]
    fn mid_stripe_power_cut_leaves_torn_zone_tail() {
        // Cut at the 3rd NAND op: the 4-page append tears on its 3rd page.
        let z = faulty_zns(kvcsd_sim::FaultPlan::power_cut_at(3, 123));
        let data: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        let e = z.append(0, &data).unwrap_err();
        assert!(e.is_power_loss());
        let inj = z.nand().fault_injector().unwrap().clone();
        inj.power_restore();
        // The write pointer covers the two clean pages plus the torn one.
        let wp = z.zone_info(0).unwrap().write_pointer_pages;
        assert_eq!(wp, 3, "wp must cover durable pages incl. the torn tail");
        let back = z.read_pages(0, 0, wp).unwrap();
        assert_eq!(&back[..512], &data[..512], "clean prefix intact");
        assert_ne!(&back[512..768], &data[512..768], "third page is torn");
        // The zone accepts appends again exactly at the rolled-back wp.
        assert_eq!(z.append(0, &[0xEE; 256]).unwrap(), wp);
    }

    #[test]
    fn clean_power_cut_rolls_wp_fully_back() {
        // Cut at op 1 with torn writes disabled: nothing lands.
        let mut plan = kvcsd_sim::FaultPlan::power_cut_at(1, 5);
        plan.torn_writes = false;
        let z = faulty_zns(plan);
        assert!(z.append(0, &[1u8; 512]).unwrap_err().is_power_loss());
        z.nand().fault_injector().unwrap().power_restore();
        assert_eq!(z.zone_info(0).unwrap().write_pointer_pages, 0);
        assert_eq!(z.append(0, &[2u8; 256]).unwrap(), 0);
    }

    #[test]
    fn transient_append_error_is_retryable() {
        let plan = kvcsd_sim::FaultPlan {
            seed: 8,
            ..kvcsd_sim::FaultPlan::none()
        };
        let mut plan = plan.with_error_prob(0.5);
        plan.read_error_prob = 0.0;
        let z = faulty_zns(plan);
        // Retry until one append succeeds; the zone must stay consistent.
        let mut failures = 0;
        loop {
            match z.append(1, &[7u8; 256]) {
                Ok(start) => {
                    let wp = z.zone_info(1).unwrap().write_pointer_pages;
                    assert_eq!(wp, start + 1);
                    break;
                }
                Err(e) => {
                    assert!(e.is_transient(), "unexpected {e:?}");
                    failures += 1;
                    assert!(failures < 200);
                }
            }
        }
        assert!(
            failures > 0,
            "p=0.5 over many tries must fail at least once"
        );
    }

    #[test]
    fn full_to_open_is_an_illegal_transition() {
        // The one edge the lifecycle table rejects: a Full zone can only
        // be reclaimed through Zone Reset, never reopened for writes.
        let err = ZONE_TRANSITIONS
            .check(ZoneState::Full, ZoneState::Open)
            .unwrap_err();
        assert_eq!(err.machine, "zone");
        assert!(err.to_string().contains("illegal zone transition"));
        // Everything the device actually does is legal.
        assert!(ZONE_TRANSITIONS
            .check(ZoneState::Empty, ZoneState::Open)
            .is_ok());
        assert!(ZONE_TRANSITIONS
            .check(ZoneState::Open, ZoneState::Full)
            .is_ok());
        assert!(ZONE_TRANSITIONS
            .check(ZoneState::Full, ZoneState::Empty)
            .is_ok());
        assert!(ZONE_TRANSITIONS
            .check(ZoneState::Full, ZoneState::Full)
            .is_ok());
    }

    #[test]
    fn zone_stays_open_until_fill_completes_durably() {
        // A power cut tearing the capacity-filling append must leave the
        // zone Open (rolled-back write pointer), not Full: the Full state
        // is only entered once every page is durably programmed.
        let z = faulty_zns(kvcsd_sim::FaultPlan::power_cut_at(5, 77));
        let e = z.append(0, &vec![3u8; 8 * 256]).unwrap_err();
        assert!(e.is_power_loss());
        z.nand().fault_injector().unwrap().power_restore();
        let info = z.zone_info(0).unwrap();
        assert_eq!(info.state, ZoneState::Open);
        assert!(info.write_pointer_pages < 8);
    }

    #[test]
    fn bad_zone_ids_rejected() {
        let z = zns(16);
        assert!(z.zone_info(99).is_err());
        assert!(z.append(99, &[1]).is_err());
        assert!(z.reset(99).is_err());
    }
}
