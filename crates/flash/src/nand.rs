//! The raw NAND array: real storage plus NAND-rule enforcement.
//!
//! Three rules of NAND flash are enforced because both namespaces' logic
//! depends on them being real:
//!
//! 1. **program-once** — a page cannot be reprogrammed until its erase
//!    block is erased;
//! 2. **sequential-within-block** — pages of an erase block are programmed
//!    in order (this is what makes ZNS zones natural on flash);
//! 3. **erase granularity** — an erase affects an entire block.
//!
//! Every operation charges the shared [`IoLedger`] with busy time on the
//! channel that served it; the cost model's SSD term is the maximum channel
//! busy time, so striping quality directly shows in simulated results.

use std::collections::HashMap;
use std::sync::Arc;

use kvcsd_sim::fault::{FaultDecision, FaultInjector, OpClass};
use kvcsd_sim::sync::{Mutex, RwLock};
use kvcsd_sim::{HardwareSpec, IoLedger};

use crate::error::FlashError;
use crate::geometry::FlashGeometry;
use crate::Result;

#[derive(Debug, Default)]
struct ChannelState {
    /// Programmed page payloads keyed by PPA.
    pages: HashMap<u64, Box<[u8]>>,
    /// Next programmable page index per erase block (sequential rule).
    next_page: HashMap<u64, u32>,
}

/// The simulated NAND array shared by all namespaces on a device.
#[derive(Debug)]
pub struct NandArray {
    geom: FlashGeometry,
    ledger: Arc<IoLedger>,
    channels: Vec<Mutex<ChannelState>>,
    read_busy_ns: u64,
    program_busy_ns: u64,
    erase_busy_ns: u64,
    fault: RwLock<Option<Arc<FaultInjector>>>,
}

impl NandArray {
    /// Build a NAND array. `spec` supplies the timing constants; its
    /// channel count and page size must agree with `geom` (the geometry is
    /// authoritative for layout, the spec for time).
    pub fn new(geom: FlashGeometry, spec: &HardwareSpec, ledger: Arc<IoLedger>) -> Self {
        let per_byte = |bps: f64| (geom.page_bytes as f64 / bps * 1e9) as u64;
        Self {
            geom,
            ledger,
            channels: (0..geom.channels)
                .map(|_| Mutex::new(ChannelState::default()))
                .collect(),
            read_busy_ns: spec.page_op_ns + per_byte(spec.channel_read_bps),
            program_busy_ns: spec.page_op_ns + per_byte(spec.channel_write_bps),
            erase_busy_ns: spec.erase_ns,
            fault: RwLock::new(None),
        }
    }

    /// Attach a fault injector: every read/program/erase consults it
    /// before touching the media.
    pub fn with_fault_injector(self, inj: Arc<FaultInjector>) -> Self {
        *self.fault.write() = Some(inj);
        self
    }

    /// Install or remove the fault injector at runtime. Torture harnesses
    /// use this to arm faults only during specific phases of a run.
    pub fn set_fault_injector(&self, inj: Option<Arc<FaultInjector>>) {
        *self.fault.write() = inj;
    }

    /// The attached fault injector, if any (namespaces stacked on this
    /// array consult it for their own op classes).
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.fault.read().clone()
    }

    /// Consult the injector for a non-program op; returns the error to
    /// surface, if any.
    fn consult(&self, class: OpClass, op: &'static str) -> Result<()> {
        let Some(inj) = self.fault.read().clone() else {
            return Ok(());
        };
        match inj.decide(class, 0) {
            FaultDecision::Ok => Ok(()),
            FaultDecision::Transient => Err(FlashError::InjectedTransient { op }),
            FaultDecision::Persistent => Err(FlashError::InjectedPersistent { op }),
            FaultDecision::PowerCut { .. } | FaultDecision::PoweredOff => {
                Err(FlashError::PowerLoss)
            }
        }
    }

    pub fn geometry(&self) -> &FlashGeometry {
        &self.geom
    }

    pub fn ledger(&self) -> &Arc<IoLedger> {
        &self.ledger
    }

    fn check_ppa(&self, ppa: u64) -> Result<()> {
        let limit = self.geom.total_pages();
        if ppa >= limit {
            return Err(FlashError::AddressOutOfRange { addr: ppa, limit });
        }
        Ok(())
    }

    /// Program one page. `data` may be shorter than the page (it is
    /// zero-padded) but never longer.
    ///
    /// With a fault injector attached, a power cut landing on this op may
    /// leave a *torn* page: a strict prefix of `data` becomes durable, the
    /// page still counts as programmed (its cells were partially written),
    /// and the call returns [`FlashError::PowerLoss`].
    pub fn program(&self, ppa: u64, data: &[u8]) -> Result<()> {
        self.check_ppa(ppa)?;
        let page_bytes = self.geom.page_bytes as usize;
        if data.len() > page_bytes {
            return Err(FlashError::BadLength {
                len: data.len(),
                expect: format!("<= {page_bytes}"),
            });
        }
        let mut durable: &[u8] = data;
        let mut cut = false;
        if let Some(inj) = self.fault.read().clone() {
            match inj.decide(OpClass::NandProgram, data.len()) {
                FaultDecision::Ok => {}
                FaultDecision::Transient => {
                    return Err(FlashError::InjectedTransient { op: "nand-program" })
                }
                FaultDecision::Persistent => {
                    return Err(FlashError::InjectedPersistent { op: "nand-program" })
                }
                FaultDecision::PoweredOff => return Err(FlashError::PowerLoss),
                FaultDecision::PowerCut {
                    torn_prefix_bytes: None,
                } => {
                    // Cut before any cell was written: the op is cleanly lost.
                    return Err(FlashError::PowerLoss);
                }
                FaultDecision::PowerCut {
                    torn_prefix_bytes: Some(n),
                } => {
                    durable = &data[..n.min(data.len())];
                    cut = true;
                }
            }
        }
        let block = self.geom.block_of_ppa(ppa);
        let page_ix = self.geom.page_in_block(ppa);
        let chan = self.geom.channel_of_ppa(ppa);
        {
            let mut st = self.channels[chan as usize].lock();
            let next = st.next_page.entry(block).or_insert(0);
            if page_ix < *next {
                return Err(FlashError::PageAlreadyProgrammed {
                    channel: chan,
                    block,
                    page: page_ix,
                });
            }
            if page_ix != *next {
                // NAND requires in-order programming within a block.
                return Err(FlashError::NotSequential {
                    zone: 0,
                    write_pointer: *next as u64,
                    offset: page_ix as u64,
                });
            }
            *next += 1;
            let mut page = vec![0u8; page_bytes];
            page[..durable.len()].copy_from_slice(durable);
            st.pages.insert(ppa, page.into_boxed_slice());
        }
        self.ledger.nand_program(chan, 1, self.program_busy_ns);
        if cut {
            return Err(FlashError::PowerLoss);
        }
        Ok(())
    }

    /// Read one page back. Reading a page that was never programmed since
    /// the last erase is an internal error (namespaces guard against it).
    pub fn read(&self, ppa: u64) -> Result<Box<[u8]>> {
        self.check_ppa(ppa)?;
        self.consult(OpClass::NandRead, "nand-read")?;
        let chan = self.geom.channel_of_ppa(ppa);
        let data = {
            let st = self.channels[chan as usize].lock();
            st.pages.get(&ppa).cloned()
        };
        match data {
            Some(d) => {
                self.ledger.nand_read(chan, 1, self.read_busy_ns);
                Ok(d)
            }
            None => Err(FlashError::AddressOutOfRange {
                addr: ppa,
                limit: self.geom.total_pages(),
            }),
        }
    }

    /// True if `ppa` currently holds programmed data.
    ///
    /// A probe touches the page map without moving data, so it charges a
    /// custom counter rather than a `nand_read` (which would distort the
    /// paper-figure NAND read counts); the dedicated counter keeps the
    /// touch observable in the cost model instead of free.
    pub fn is_programmed(&self, ppa: u64) -> bool {
        if self.check_ppa(ppa).is_err() {
            return false;
        }
        self.ledger.bump("nand_page_probes", 1);
        let chan = self.geom.channel_of_ppa(ppa);
        self.channels[chan as usize].lock().pages.contains_key(&ppa)
    }

    /// Erase a whole block, discarding its pages.
    pub fn erase(&self, block: u64) -> Result<()> {
        if block >= self.geom.total_blocks() {
            return Err(FlashError::AddressOutOfRange {
                addr: block,
                limit: self.geom.total_blocks(),
            });
        }
        self.consult(OpClass::NandErase, "nand-erase")?;
        let chan = self.geom.channel_of_block(block);
        {
            let mut st = self.channels[chan as usize].lock();
            let first = self.geom.first_ppa_of_block(block);
            for p in 0..self.geom.pages_per_block as u64 {
                st.pages.remove(&(first + p));
            }
            st.next_page.remove(&block);
        }
        self.ledger.nand_erase(chan, self.erase_busy_ns);
        Ok(())
    }

    /// Number of currently programmed pages (for memory-usage diagnostics).
    pub fn programmed_pages(&self) -> u64 {
        self.channels
            .iter()
            // kvcsd-check: allow(ledger-charge) -- read-only harness diagnostic: counts map sizes, models no media op
            .map(|c| c.lock().pages.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> NandArray {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel: 8,
            pages_per_block: 4,
            page_bytes: 256,
        };
        let spec = HardwareSpec::default();
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        NandArray::new(geom, &spec, ledger)
    }

    #[test]
    fn program_read_roundtrip() {
        let n = array();
        let data = vec![7u8; 256];
        n.program(0, &data).unwrap();
        assert_eq!(&*n.read(0).unwrap(), &data[..]);
    }

    #[test]
    fn short_payload_is_zero_padded() {
        let n = array();
        n.program(0, &[1, 2, 3]).unwrap();
        let page = n.read(0).unwrap();
        assert_eq!(&page[..3], &[1, 2, 3]);
        assert!(page[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn oversized_payload_rejected() {
        let n = array();
        let e = n.program(0, &vec![0u8; 257]).unwrap_err();
        assert!(matches!(e, FlashError::BadLength { .. }));
    }

    #[test]
    fn program_once_enforced() {
        let n = array();
        n.program(0, &[1]).unwrap();
        let e = n.program(0, &[2]).unwrap_err();
        assert!(matches!(e, FlashError::PageAlreadyProgrammed { .. }));
    }

    #[test]
    fn sequential_within_block_enforced() {
        let n = array();
        // Block 0 holds ppas 0..4; skipping page 0 is illegal.
        let e = n.program(1, &[1]).unwrap_err();
        assert!(matches!(e, FlashError::NotSequential { .. }));
        n.program(0, &[1]).unwrap();
        n.program(1, &[1]).unwrap();
    }

    #[test]
    fn erase_allows_reprogramming() {
        let n = array();
        n.program(0, &[1]).unwrap();
        n.program(1, &[2]).unwrap();
        n.erase(0).unwrap();
        assert!(!n.is_programmed(0));
        n.program(0, &[3]).unwrap();
        assert_eq!(n.read(0).unwrap()[0], 3);
    }

    #[test]
    fn read_unprogrammed_is_error() {
        let n = array();
        assert!(n.read(2).is_err());
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let n = array();
        let total = n.geometry().total_pages();
        assert!(matches!(
            n.program(total, &[0]),
            Err(FlashError::AddressOutOfRange { .. })
        ));
        assert!(n.read(total).is_err());
        assert!(n.erase(n.geometry().total_blocks()).is_err());
    }

    #[test]
    fn ledger_records_channel_busy() {
        let n = array();
        // Block 1 is on channel 1.
        let ppa = n.geometry().first_ppa_of_block(1);
        n.program(ppa, &[1]).unwrap();
        let s = n.ledger().snapshot();
        assert_eq!(s.nand_program_pages, 1);
        assert!(s.channel_busy_ns[1] > 0);
        assert_eq!(s.channel_busy_ns[0], 0);
    }

    #[test]
    fn erase_charges_ledger() {
        let n = array();
        n.erase(2).unwrap();
        let s = n.ledger().snapshot();
        assert_eq!(s.nand_erase_blocks, 1);
        assert_eq!(s.channel_busy_ns[2], HardwareSpec::default().erase_ns);
    }

    fn faulty_array(plan: kvcsd_sim::FaultPlan) -> (NandArray, Arc<FaultInjector>) {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel: 8,
            pages_per_block: 4,
            page_bytes: 256,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let inj = Arc::new(FaultInjector::new(plan));
        let nand = NandArray::new(geom, &HardwareSpec::default(), ledger)
            .with_fault_injector(Arc::clone(&inj));
        (nand, inj)
    }

    #[test]
    fn power_cut_tears_page_and_blocks_further_ops() {
        let (n, inj) = faulty_array(kvcsd_sim::FaultPlan::power_cut_at(2, 77));
        n.program(0, &[0xAA; 256]).unwrap();
        let e = n.program(1, &[0xBB; 256]).unwrap_err();
        assert!(e.is_power_loss());
        // The torn page is programmed: a durable prefix of 0xBB, zeros after.
        assert!(n.is_programmed(1));
        // All ops fail until power is restored.
        assert!(n.read(0).unwrap_err().is_power_loss());
        assert!(n.erase(0).unwrap_err().is_power_loss());
        inj.power_restore();
        let page = n.read(1).unwrap();
        let prefix = page.iter().take_while(|&&b| b == 0xBB).count();
        assert!(prefix < 256, "torn page must be a strict prefix");
        assert!(
            page[prefix..].iter().all(|&b| b == 0),
            "tail must be unwritten"
        );
        // The torn page still obeys program-once; the next page is writable.
        assert!(matches!(
            n.program(1, &[1]),
            Err(FlashError::PageAlreadyProgrammed { .. })
        ));
        n.program(2, &[0xCC; 256]).unwrap();
    }

    #[test]
    fn transient_errors_do_not_mutate_state() {
        let plan = kvcsd_sim::FaultPlan {
            seed: 3,
            ..kvcsd_sim::FaultPlan::none()
        }
        .with_error_prob(1.0);
        let (n, _inj) = faulty_array(plan);
        let e = n.program(0, &[1; 256]).unwrap_err();
        assert!(e.is_transient());
        assert!(!n.is_programmed(0));
        assert_eq!(n.ledger().snapshot().nand_program_pages, 0);
    }

    #[test]
    fn persistent_errors_are_typed() {
        let plan = kvcsd_sim::FaultPlan {
            seed: 3,
            ..kvcsd_sim::FaultPlan::none()
        }
        .with_error_prob(1.0)
        .with_persistent_fraction(1.0);
        let (n, _inj) = faulty_array(plan);
        let e = n.program(0, &[1; 256]).unwrap_err();
        assert!(matches!(e, FlashError::InjectedPersistent { .. }));
        assert!(!e.is_transient());
    }

    #[test]
    fn programmed_page_count_tracks_state() {
        let n = array();
        assert_eq!(n.programmed_pages(), 0);
        n.program(0, &[1]).unwrap();
        n.program(1, &[1]).unwrap();
        assert_eq!(n.programmed_pages(), 2);
        n.erase(0).unwrap();
        assert_eq!(n.programmed_pages(), 0);
    }
}
