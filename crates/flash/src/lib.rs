//! Simulated NAND flash SSD for the KV-CSD reproduction.
//!
//! The paper's device is an E1.L NVMe **ZNS** SSD; its baseline (RocksDB on
//! ext4) runs on a **conventional** block SSD. This crate provides both
//! personalities over a shared NAND model:
//!
//! * [`NandArray`] — raw flash: channels x dies x blocks x pages, with real
//!   program-once/erase-before-reuse enforcement. Every page operation
//!   charges the [`kvcsd_sim::IoLedger`] with per-channel busy time, which
//!   is what makes channel striping and conflicts *measurable* rather than
//!   assumed.
//! * [`ZonedNamespace`] — zones with write pointers, sequential-write
//!   enforcement, append/reset/finish, and open-zone limits (NVMe ZNS
//!   command set semantics).
//! * [`ConventionalNamespace`] — a page-mapping FTL with round-robin
//!   channel striping, over-provisioning and greedy garbage collection;
//!   the substrate for the `kvcsd-blockfs` filesystem the baseline uses.
//!
//! Data is actually stored: what you program is what you read back, and the
//! test suites verify it.

pub mod conv;
pub mod error;
pub mod geometry;
pub mod nand;
pub mod zns;

pub use conv::{ConvConfig, ConventionalNamespace};
pub use error::FlashError;
pub use geometry::FlashGeometry;
pub use nand::NandArray;
pub use zns::{ZnsConfig, ZoneInfo, ZoneState, ZonedNamespace};

/// Result alias used throughout the flash crate.
pub type Result<T> = std::result::Result<T, FlashError>;
