//! Physical layout of the simulated NAND array and address arithmetic.

/// Geometry of the NAND array.
///
/// Physical page addresses (PPAs) are dense `u64`s laid out
/// block-major: `ppa = block_index * pages_per_block + page_in_block`,
/// where blocks are numbered `0..total_blocks` and block `b` lives on
/// channel `b % channels`. Striping consecutive blocks across channels is
/// what both namespaces rely on for I/O parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Independent NAND channels (the parallelism unit of the cost model).
    pub channels: u32,
    /// Erase blocks per channel.
    pub blocks_per_channel: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Page size in bytes (program/read granularity).
    pub page_bytes: u32,
}

impl Default for FlashGeometry {
    /// A scaled-down device: 16 channels x 64 blocks x 64 pages x 4 KiB
    /// = 256 MiB. Experiments construct larger or smaller arrays to fit
    /// the dataset being replayed.
    fn default() -> Self {
        Self {
            channels: 16,
            blocks_per_channel: 64,
            pages_per_block: 64,
            page_bytes: 4096,
        }
    }
}

impl FlashGeometry {
    /// Geometry with enough capacity for `bytes` of data plus the given
    /// over-provisioning fraction, preserving default channel/page shape.
    pub fn for_capacity(bytes: u64, op_fraction: f64) -> Self {
        let mut g = Self::default();
        let need = (bytes as f64 * (1.0 + op_fraction)).ceil() as u64;
        let block_bytes = g.block_bytes();
        let blocks = need.div_ceil(block_bytes).max(1);
        g.blocks_per_channel = (blocks.div_ceil(g.channels as u64) as u32).max(16);
        g
    }

    /// Total erase blocks in the device.
    pub fn total_blocks(&self) -> u64 {
        self.channels as u64 * self.blocks_per_channel as u64
    }

    /// Total pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Bytes per erase block.
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// Channel on which erase block `block` lives.
    pub fn channel_of_block(&self, block: u64) -> u32 {
        (block % self.channels as u64) as u32
    }

    /// Erase block containing physical page `ppa`.
    pub fn block_of_ppa(&self, ppa: u64) -> u64 {
        ppa / self.pages_per_block as u64
    }

    /// Page index within its erase block.
    pub fn page_in_block(&self, ppa: u64) -> u32 {
        (ppa % self.pages_per_block as u64) as u32
    }

    /// Channel on which physical page `ppa` lives.
    pub fn channel_of_ppa(&self, ppa: u64) -> u32 {
        self.channel_of_block(self.block_of_ppa(ppa))
    }

    /// First PPA of erase block `block`.
    pub fn first_ppa_of_block(&self, block: u64) -> u64 {
        block * self.pages_per_block as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity() {
        let g = FlashGeometry::default();
        assert_eq!(g.total_blocks(), 16 * 64);
        assert_eq!(g.capacity_bytes(), 16 * 64 * 64 * 4096);
        assert_eq!(g.block_bytes(), 64 * 4096);
    }

    #[test]
    fn address_math_roundtrip() {
        let g = FlashGeometry::default();
        for block in [0u64, 1, 17, 1023] {
            for page in [0u32, 1, 63] {
                let ppa = g.first_ppa_of_block(block) + page as u64;
                assert_eq!(g.block_of_ppa(ppa), block);
                assert_eq!(g.page_in_block(ppa), page);
                assert_eq!(g.channel_of_ppa(ppa), (block % 16) as u32);
            }
        }
    }

    #[test]
    fn consecutive_blocks_stripe_channels() {
        let g = FlashGeometry::default();
        let chans: Vec<u32> = (0..16).map(|b| g.channel_of_block(b)).collect();
        assert_eq!(chans, (0..16).collect::<Vec<_>>());
        assert_eq!(g.channel_of_block(16), 0);
    }

    #[test]
    fn for_capacity_is_sufficient() {
        let g = FlashGeometry::for_capacity(100 << 20, 0.25);
        assert!(g.capacity_bytes() >= (100 << 20) as u64 * 5 / 4);
        // And not absurdly oversized (within one block per channel).
        assert!(g.capacity_bytes() <= (100 << 20) as u64 * 5 / 4 + g.block_bytes() * 17);
    }

    #[test]
    fn for_capacity_handles_tiny_requests() {
        let g = FlashGeometry::for_capacity(1, 0.0);
        assert!(g.blocks_per_channel >= 4);
        assert!(g.capacity_bytes() > 0);
    }
}
