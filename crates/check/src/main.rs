//! CLI for the workspace lint pass. See the library docs for the rules.
//!
//! ```text
//! cargo run -p kvcsd-check                 # check the workspace root
//! cargo run -p kvcsd-check -- --root path  # check another tree
//! cargo run -p kvcsd-check -- --rule sync  # run a subset of rules
//! ```
//!
//! Exit status: 0 when clean, 1 on any violation (`-D` semantics — there
//! is no warn level), 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut rules: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a path"),
            },
            "--rule" => match args.next() {
                Some(v) if kvcsd_check::RULES.contains(&v.as_str()) => rules.push(v),
                Some(v) => return usage(&format!("unknown rule `{v}`")),
                None => return usage("--rule needs a name"),
            },
            "--help" | "-h" => {
                println!(
                    "kvcsd-check [--root <dir>] [--rule <{}>]...",
                    kvcsd_check::RULES.join("|")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    // Default to the workspace root: the manifest dir's grandparent when
    // running via `cargo run -p kvcsd-check`, else the current directory.
    let root = root.unwrap_or_else(|| {
        option_env!("CARGO_MANIFEST_DIR")
            .map(|d| {
                let p = PathBuf::from(d);
                p.ancestors().nth(2).map(PathBuf::from).unwrap_or(p)
            })
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let mut violations = kvcsd_check::check_tree(&root);
    if !rules.is_empty() {
        violations.retain(|v| rules.iter().any(|r| r == v.rule));
    }
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("kvcsd-check: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        println!("kvcsd-check: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("kvcsd-check: {msg}");
    eprintln!(
        "usage: kvcsd-check [--root <dir>] [--rule <{}>]...",
        kvcsd_check::RULES.join("|")
    );
    ExitCode::from(2)
}
