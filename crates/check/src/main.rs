//! CLI for the workspace lint pass. See the library docs for the rules.
//!
//! ```text
//! cargo run -p kvcsd-check                          # check the workspace root
//! cargo run -p kvcsd-check -- --root path           # check another tree
//! cargo run -p kvcsd-check -- --rule sync           # run a subset of rules
//! cargo run -p kvcsd-check -- --format json         # machine-readable report
//! cargo run -p kvcsd-check -- --baseline check_baseline.json
//! cargo run -p kvcsd-check -- --write-baseline check_baseline.json
//! ```
//!
//! Exit status: 0 when clean, 1 on any violation (`-D` semantics — there
//! is no warn level) or baseline drift, 2 on usage errors.
//!
//! The baseline records every *finding identity* — violations (which the
//! committed baseline keeps empty) and granted allow comments keyed on
//! `(file, rule, reason)`, line numbers deliberately omitted so ordinary
//! edits don't churn it. `--baseline` compares the current tree against
//! the committed file and fails loud on any drift in either direction:
//! a new exemption is a reviewable event even though it silences its
//! rule, and a stale baseline entry means the file no longer tells the
//! truth.

use std::path::PathBuf;
use std::process::ExitCode;

use kvcsd_check::{CheckReport, Violation};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut rules: Vec<String> = Vec::new();
    let mut json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a path"),
            },
            "--rule" => match args.next() {
                Some(v) if kvcsd_check::RULES.contains(&v.as_str()) => rules.push(v),
                Some(v) => return usage(&format!("unknown rule `{v}`")),
                None => return usage("--rule needs a name"),
            },
            "--format" => match args.next() {
                Some(v) if v == "json" => json = true,
                Some(v) if v == "text" => json = false,
                Some(v) => return usage(&format!("unknown format `{v}` (text|json)")),
                None => return usage("--format needs a name (text|json)"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a path"),
            },
            "--write-baseline" => match args.next() {
                Some(v) => write_baseline = Some(PathBuf::from(v)),
                None => return usage("--write-baseline needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "kvcsd-check [--root <dir>] [--rule <{}>]... [--format text|json] [--baseline <file>] [--write-baseline <file>]",
                    kvcsd_check::RULES.join("|")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    // Default to the workspace root: the manifest dir's grandparent when
    // running via `cargo run -p kvcsd-check`, else the current directory.
    let root = root.unwrap_or_else(|| {
        option_env!("CARGO_MANIFEST_DIR")
            .map(|d| {
                let p = PathBuf::from(d);
                p.ancestors().nth(2).map(PathBuf::from).unwrap_or(p)
            })
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let mut report = kvcsd_check::check_tree_report(&root);
    if !rules.is_empty() {
        report
            .violations
            .retain(|v| rules.iter().any(|r| r == v.rule));
        report.allows.retain(|a| rules.contains(&a.rule));
    }

    if let Some(path) = write_baseline {
        let text = baseline_text(&report);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("kvcsd-check: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "kvcsd-check: wrote baseline ({} violation(s), {} allow(s)) to {}",
            report.violations.len(),
            report.allows.len(),
            path.display()
        );
    }

    let mut drift = false;
    if let Some(path) = baseline {
        let committed = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("kvcsd-check: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let want = entry_lines(&committed);
        let have = entry_lines(&baseline_text(&report));
        for line in have.iter().filter(|l| !want.contains(*l)) {
            println!("baseline drift (new finding): {line}");
            drift = true;
        }
        for line in want.iter().filter(|l| !have.contains(*l)) {
            println!("baseline drift (stale entry): {line}");
            drift = true;
        }
        if drift {
            println!(
                "kvcsd-check: findings differ from {} — review, then refresh with --write-baseline",
                path.display()
            );
        }
    }

    if json {
        println!("{}", report_json(&root, &report));
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        if report.violations.is_empty() {
            println!(
                "kvcsd-check: clean ({}, {} allow(s) granted)",
                root.display(),
                report.allows.len()
            );
        } else {
            println!("kvcsd-check: {} violation(s)", report.violations.len());
        }
    }
    if report.violations.is_empty() && !drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Minimal JSON string escaping — the report contains no exotic control
/// characters, but backslashes and quotes appear in rule messages.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render entry lines as a JSON array literal indented for the report
/// wrapper; `[]` when empty.
fn json_array(entries: &[String]) -> String {
    if entries.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", entries.join(",\n"))
    }
}

fn violation_entry(v: &Violation, with_line: bool) -> String {
    let line = if with_line {
        format!("\"line\":{},", v.line)
    } else {
        String::new()
    };
    format!(
        "{{\"file\":\"{}\",{line}\"rule\":\"{}\",\"message\":\"{}\"}}",
        json_escape(&v.file.display().to_string()),
        v.rule,
        json_escape(&v.message)
    )
}

/// The full machine-readable report (`--format json`), line numbers
/// included.
fn report_json(root: &std::path::Path, report: &CheckReport) -> String {
    let violations: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("    {}", violation_entry(v, true)))
        .collect();
    let allows: Vec<String> = report
        .allows
        .iter()
        .map(|a| {
            format!(
                "    {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"reason\":\"{}\"}}",
                json_escape(&a.file),
                a.line,
                a.rule,
                json_escape(&a.reason)
            )
        })
        .collect();
    format!(
        "{{\n  \"root\": \"{}\",\n  \"violations\": {},\n  \"allows\": {}\n}}",
        json_escape(&root.display().to_string()),
        json_array(&violations),
        json_array(&allows)
    )
}

/// Canonical baseline serialization: one entry per line, sorted, line
/// numbers omitted so edits that merely move code don't churn the file.
fn baseline_text(report: &CheckReport) -> String {
    let mut violations: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("    {}", violation_entry(v, false)))
        .collect();
    violations.sort();
    violations.dedup();
    let mut allows: Vec<String> = report
        .allows
        .iter()
        .map(|a| {
            format!(
                "    {{\"file\":\"{}\",\"rule\":\"{}\",\"reason\":\"{}\"}}",
                json_escape(&a.file),
                a.rule,
                json_escape(&a.reason)
            )
        })
        .collect();
    allows.sort();
    allows.dedup();
    format!(
        "{{\n  \"violations\": {},\n  \"allows\": {}\n}}\n",
        json_array(&violations),
        json_array(&allows)
    )
}

/// The comparable entry lines of a baseline document: every line that is
/// an object literal, trimmed, trailing comma dropped. Comparing entry
/// *sets* keeps the diff independent of ordering and surrounding
/// whitespace.
fn entry_lines(text: &str) -> std::collections::BTreeSet<String> {
    text.lines()
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .filter(|l| l.starts_with("{\"file\""))
        .collect()
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("kvcsd-check: {msg}");
    eprintln!(
        "usage: kvcsd-check [--root <dir>] [--rule <{}>]... [--format text|json] [--baseline <file>] [--write-baseline <file>]",
        kvcsd_check::RULES.join("|")
    );
    ExitCode::from(2)
}
