//! `kvcsd-check`: the workspace lint pass.
//!
//! Fourteen repo-specific rules that `rustc`/`clippy` cannot express, each
//! guarding an invariant the reproduction's correctness argument leans on
//! (see `DESIGN.md` §9, §11 and §13):
//!
//! * **`sync`** — no `std::sync::{Mutex, RwLock}` outside
//!   `kvcsd-sim::sync` itself (and the mc scheduler's thread-parking
//!   internals). Every lock must go through the shims so the debug
//!   lock-order detector sees every acquisition.
//! * **`unwrap`** — no `.unwrap()` / `.expect(...)` in non-test library
//!   code. Fallible paths return typed errors; the rare justified panic
//!   carries an inline allow comment with a reason.
//! * **`time`** — no `Instant::now()` / `SystemTime::now()` outside
//!   `kvcsd-sim::clock`. Simulated time is virtual and deterministic;
//!   wall-clock self-timing goes through `kvcsd_sim::WallTimer`.
//! * **`sleep`** — no `thread::sleep` outside `kvcsd-sim`. Waiting is
//!   simulated by charging the virtual clock (admission stalls, retry
//!   backoff); a real sleep would couple test wall-time to simulated
//!   time and break determinism.
//! * **`atomics`** — no `std::sync::atomic` / `core::sync::atomic`,
//!   `static mut`, or `UnsafeCell` outside `crates/sim`. Raw atomics are
//!   invisible to the happens-before race detector; shared state goes
//!   through `kvcsd_sim::sync::Shared` or a shim lock.
//! * **`fsm-bypass`** — no direct `.state = ...` assignment or
//!   struct-update `state:` overwrite of keyspace/zone state outside the
//!   `transition_to`/`transition` checkpoints, whose transition tables
//!   are the lifecycle correctness argument.
//! * **`shared-raw`** — no `Arc<...>` of an interior-mutable type (std's
//!   `Atomic*`/`Cell`/`RefCell`/`UnsafeCell`/`OnceCell`, or any workspace
//!   struct with such a field, found by a cross-file pass) in library
//!   code: sharing one bypasses both detectors at once.
//! * **`router-bypass`** — no direct `KvCsdDevice::new`/`::reopen`
//!   construction outside `crates/cluster` (which builds per-shard
//!   stacks), `crates/sim`, and test/bench harnesses. Library code goes
//!   through the cluster router so health gating, failover and the
//!   replica log see every device.
//! * **`guard-across-wait`** — no shim `Mutex`/`RwLock` guard,
//!   `Shared` borrow or DRAM reservation live across a charged wait
//!   (`AdmissionGate` admission, `VirtualClock::advance*`,
//!   `BusResource::transfer`, `QueuePair::submit`/`poll_completions` —
//!   submit stalls at full queue depth, poll advances the clock to the
//!   next completion), directly or through a one-level local
//!   wrapper. The static twin of lockdep: a guard held across a stall
//!   serialises the pipeline the paper's host/device split exists to
//!   keep parallel.
//! * **`status-map`** — every `KvStatus` variant parsed from
//!   `crates/proto` must be matched by name in the `ClientError` status
//!   classification and in the cluster router's retry classification. A
//!   new wire status that silently falls into a `_ =>` arm gets retried
//!   or surfaced wrongly.
//! * **`ledger-charge`** — every function in `crates/flash`/`crates/sim`
//!   that touches the NAND page store or a bus occupancy accumulator
//!   must charge the `IoLedger` in the same scope (directly or through a
//!   one-level same-crate wrapper). Uncharged media work makes the
//!   paper's cost model lie.
//! * **`epoch-fence`** — no bus send primitive (`BusResource::xmit` /
//!   `::transfer`) in `crates/cluster` library code outside
//!   `replica.rs`, the fenced send path. Every replication artifact must
//!   cross the fabric through the epoch-stamped, sequence-numbered
//!   stop-and-wait protocol; a raw send would bypass the fencing that
//!   keeps a deposed primary from overwriting its successor's state.
//! * **`shim-spawn`** — no `std::thread::spawn` / `thread::Builder`
//!   outside `crates/sim` (which implements the shim). Threads spawned
//!   through `kvcsd_sim::sync::spawn` get fork/join happens-before edges
//!   for the race detector and become schedulable by the kvcsd-mc
//!   controlled scheduler; a raw spawn is invisible to both. Applies to
//!   tests and `#[cfg(test)]` regions too — multi-threaded tests are
//!   exactly where the detectors and the model checker earn their keep
//!   (deliberately-racy fixtures carry reasoned allows).
//! * **`window-bypass`** — no lock-step `QueuePair::execute` round-trip
//!   in `kvcsd-client`/`kvcsd-cluster` library code outside the
//!   in-flight window module (`crates/client/src/window.rs`), the one
//!   sanctioned transport driver. `execute` serialises the host/device
//!   boundary — submit, stall, claim, one command at a time — which
//!   starves the pipelined queue the async boundary exists to keep
//!   full; client hot paths go through `InflightWindow`'s
//!   submit/poll_completions so overlapped commands actually overlap.
//!
//! Exemptions are granted inline, and only with a reason:
//!
//! ```text
//! // kvcsd-check: allow(unwrap) -- heap invariant, cursor checked non-empty above
//! let top = heap.peek().unwrap();
//! ```
//!
//! The comment may sit on the offending line or the line above. An allow
//! with an unknown rule name or a missing ` -- reason` tail is itself a
//! violation — the allowlist is checked, not decorative.
//!
//! There is no `syn` here by design: the workspace builds offline with
//! zero external crates, so the checker runs on a small hand-rolled
//! scrub-and-scan lexer. It strips comments, string/char literals and
//! `#[cfg(test)]` regions, then token-scans what remains — which is
//! exact enough for these three rules (no macro-generated locks or
//! stringified `unwrap`s exist in this codebase).

use std::fmt;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod scope;

use lexer::Scrubbed;

/// The rule identifiers, as used in `allow(...)` comments and `--rule`.
pub const RULES: [&str; 14] = [
    "sync",
    "unwrap",
    "time",
    "sleep",
    "atomics",
    "fsm-bypass",
    "shared-raw",
    "router-bypass",
    "guard-across-wait",
    "status-map",
    "ledger-charge",
    "epoch-fence",
    "shim-spawn",
    "window-bypass",
];

/// Charged-wait primitives for the `guard-across-wait` rule: method
/// calls that stall the simulated pipeline by charging the virtual
/// clock ([`VirtualClock::advance`]/[`advance_to`]), consulting the
/// admission gate (`admit_write`/`admit_query`/`admit_job` — a
/// slowdown/stall band decision whose charge follows immediately), or
/// occupying the replication fabric (`BusResource::transfer` and the
/// fault-aware `BusResource::xmit`, which can burn a whole retry budget
/// of timeouts), or driving the pipelined transport
/// (`QueuePair::submit` stalls — advancing the clock — when the queue
/// is at full depth; `poll_completions` advances the clock to the next
/// completion when none is ready).
pub const WAIT_PRIMITIVES: [&str; 9] = [
    "advance",
    "advance_to",
    "admit_write",
    "admit_query",
    "admit_job",
    "transfer",
    "xmit",
    "submit",
    "poll_completions",
];

/// Ledger charge entry points for the `ledger-charge` rule — the
/// [`IoLedger`] methods that account for work.
pub const CHARGE_PRIMITIVES: [&str; 12] = [
    "nand_read",
    "nand_program",
    "nand_erase",
    "charge_host_cpu",
    "charge_soc_cpu",
    "dma_h2d",
    "dma_d2h",
    "dma_d2h_payload",
    "fs_call",
    "host_block_io",
    "bridge_busy",
    "bump",
];

/// Raw media/fabric touch markers for the `ledger-charge` rule: direct
/// access to the NAND page store (`ChannelState::pages`) or to a bus
/// channel's occupancy accumulator. A scope containing one of these must
/// also charge the ledger (or call a same-crate function that does).
const MEDIA_TOUCHES: [(&str, &str); 2] = [
    (".pages.", "NAND page store access"),
    ("busy_ns.update(", "bus occupancy accumulation"),
];

/// Bus send primitives for the `epoch-fence` rule: the methods that put
/// bytes on the replication fabric. In `crates/cluster`, only the fenced
/// send path (`replica.rs`) may call them.
pub const BUS_SEND_PRIMITIVES: [(&str, &str); 2] = [
    (".xmit(", "`BusResource::xmit` call"),
    (".transfer(", "`BusResource::transfer` call"),
];

/// Lock-step round-trip markers for the `window-bypass` rule: the
/// synchronous submit-stall-claim path on `QueuePair`. In client and
/// cluster library code, only the in-flight window module may drive the
/// transport; everything above it pipelines through `InflightWindow`.
pub const LOCKSTEP_PRIMITIVES: [(&str, &str); 1] =
    [(".execute(", "`QueuePair::execute` lock-step round-trip")];

/// Files whose job is to classify every [`KvStatus`] variant — the
/// `status-map` rule's coverage sites, with the role named in reports.
const STATUS_COVERAGE: [(&str, &str); 2] = [
    (
        "crates/client/src/error.rs",
        "the ClientError status classification",
    ),
    (
        "crates/cluster/src/router.rs",
        "the cluster router's retry classification",
    ),
];

/// One finding, printed as `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`], or `"allow"` for a malformed
    /// allow comment).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    pub sync: bool,
    pub unwrap: bool,
    pub time: bool,
    pub sleep: bool,
    pub atomics: bool,
    pub fsm_bypass: bool,
    pub shared_raw: bool,
    pub router_bypass: bool,
    pub guard_across_wait: bool,
    pub status_map: bool,
    pub ledger_charge: bool,
    pub epoch_fence: bool,
    pub shim_spawn: bool,
    pub window_bypass: bool,
}

impl RuleSet {
    pub fn none() -> Self {
        Self {
            sync: false,
            unwrap: false,
            time: false,
            sleep: false,
            atomics: false,
            fsm_bypass: false,
            shared_raw: false,
            router_bypass: false,
            guard_across_wait: false,
            status_map: false,
            ledger_charge: false,
            epoch_fence: false,
            shim_spawn: false,
            window_bypass: false,
        }
    }
}

/// Classify a file by its path (relative to the workspace root, `/`
/// separators). Policy:
///
/// * fixture trees (any `fixtures` component) are never checked — they
///   exist to *contain* violations;
/// * `sync` applies everywhere except `crates/sim/src/sync.rs` (the shim
///   implementation wraps `std::sync` by definition) and
///   `crates/sim/src/mc.rs` (the controlled scheduler parks real threads
///   on a raw `std::sync::Mutex`/`Condvar` pair — the shims it schedules
///   sit *above* it, so routing its own parking through them would
///   recurse);
/// * `time` applies everywhere — benches and test harnesses included, so
///   a stray wall-clock read cannot sneak into a determinism-sensitive
///   path — except `crates/sim/src/clock.rs` (home of `WallTimer`);
/// * `unwrap` applies to library source only: integration tests, benches
///   and examples are harnesses whose idiomatic failure mode is a panic,
///   as is the `kvcsd-bench` crate;
/// * `sleep` applies everywhere except `crates/sim/` — only the
///   simulation substrate may legitimately block a real thread (e.g. a
///   future wall-time throttle shim); everything above it waits by
///   charging the virtual clock;
/// * `atomics` applies everywhere except `crates/sim/` — the detector
///   shims, the virtual clock and the perturbation schedule are built
///   *from* atomics; everything above them must be visible to the race
///   detector, tests and benches included (harness stop flags use
///   `Shared<bool>`);
/// * `fsm-bypass` applies everywhere — the state machines live in
///   library code, and hits inside `fn transition_to`/`fn transition`
///   bodies or `#[cfg(test)]` regions (test setup constructs states
///   directly) are exempted by the scanner, not the path policy;
/// * `shared-raw` applies to library source only, like `unwrap`: it
///   exists to keep *product* shared state observable, and its taint set
///   is collected from library code outside `crates/sim/` (the shims are
///   interior-mutable by definition);
/// * `router-bypass` applies to library source only, minus
///   `crates/cluster/` (the shard builder is the sanctioned constructor),
///   `crates/sim/` (substrate) and `crates/bench/` (its testbed stands up
///   bare devices to measure them in isolation): harnesses and
///   `#[cfg(test)]` regions construct devices freely, but product code
///   must reach devices through the cluster router;
/// * `guard-across-wait` applies to library source outside `crates/sim/`
///   (the substrate *implements* the waits — the clock, the perturbation
///   schedule and the bus are below the rule, and lockdep plus the race
///   detector cover them dynamically) and outside `crates/bench/`
///   (single-threaded testbeds drive their clock while holding whatever
///   they like);
/// * `status-map` applies only to the designated coverage files
///   ([`STATUS_COVERAGE`]) — it asserts those files classify every
///   `KvStatus` variant, not that other files avoid anything;
/// * `ledger-charge` applies to library source in `crates/flash/` and
///   `crates/sim/` — the only crates that touch media or fabric state
///   directly — except `crates/sim/src/ledger.rs` itself (the charge
///   implementations are where the counters live by definition);
/// * `epoch-fence` applies to library source in `crates/cluster/` only,
///   minus `crates/cluster/src/replica.rs` — the fenced send path is the
///   one sanctioned caller of the bus send primitives, and code below
///   the cluster layer (`crates/sim/`) *implements* them;
/// * `shim-spawn` applies everywhere except `crates/sim/` — the shim
///   spawn wrapper and the scheduler's managed threads are built *from*
///   `std::thread` — with no test-region carve-out: harnesses and
///   `#[cfg(test)]` modules spawn real threads precisely to feed the
///   race detector and the mc scheduler, which only see shim spawns;
/// * `window-bypass` applies to library source in `crates/client/` and
///   `crates/cluster/` only, minus `crates/client/src/window.rs` — the
///   in-flight window is the one sanctioned transport driver; layers
///   below the client (`crates/proto/` owns `execute` itself) and
///   harnesses measuring the lock-step baseline are out of scope.
pub fn rules_for(rel_path: &str) -> RuleSet {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.iter().any(|p| *p == "fixtures" || *p == "target") {
        return RuleSet::none();
    }
    let harness = parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    RuleSet {
        sync: rel_path != "crates/sim/src/sync.rs" && rel_path != "crates/sim/src/mc.rs",
        unwrap: !harness && !rel_path.starts_with("crates/bench/"),
        time: rel_path != "crates/sim/src/clock.rs",
        sleep: !rel_path.starts_with("crates/sim/"),
        atomics: !rel_path.starts_with("crates/sim/"),
        fsm_bypass: true,
        shared_raw: !harness && !rel_path.starts_with("crates/sim/"),
        router_bypass: !harness
            && !rel_path.starts_with("crates/cluster/")
            && !rel_path.starts_with("crates/sim/")
            && !rel_path.starts_with("crates/bench/"),
        guard_across_wait: !harness
            && !rel_path.starts_with("crates/sim/")
            && !rel_path.starts_with("crates/bench/"),
        status_map: STATUS_COVERAGE.iter().any(|(p, _)| *p == rel_path),
        ledger_charge: !harness
            && (rel_path.starts_with("crates/flash/") || rel_path.starts_with("crates/sim/"))
            && rel_path != "crates/sim/src/ledger.rs",
        epoch_fence: !harness
            && rel_path.starts_with("crates/cluster/")
            && rel_path != "crates/cluster/src/replica.rs",
        shim_spawn: !rel_path.starts_with("crates/sim/"),
        window_bypass: !harness
            && (rel_path.starts_with("crates/client/") || rel_path.starts_with("crates/cluster/"))
            && rel_path != "crates/client/src/window.rs",
    }
}

/// Crate key for the per-crate call summaries: `crates/<name>/...` maps
/// to `<name>`, everything else (workspace `src/`, `tests/`, examples)
/// to `"root"`.
pub fn crate_key(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
}

/// Cross-file facts the single-file scanners can't see:
///
/// * `interior_mutable` — workspace structs with interior-mutable fields
///   (the `shared-raw` taint set), mapped to the defining file;
/// * `status_variants` — the `KvStatus` variant list parsed from
///   `crates/proto`, with the defining file (the `status-map` rule's
///   ground truth);
/// * `wait_fns` — per crate, functions whose body *directly* calls a
///   [`WAIT_PRIMITIVES`] method: the one-level call summary that lets
///   `guard-across-wait` see through local wrappers like
///   `Device::charge_wait`;
/// * `charge_fns` — the analogous per-crate summary of functions that
///   directly charge the [`IoLedger`], for `ledger-charge`.
#[derive(Debug, Clone, Default)]
pub struct CheckContext {
    pub interior_mutable: std::collections::BTreeMap<String, String>,
    pub status_variants: Vec<String>,
    pub status_enum_file: String,
    pub wait_fns: std::collections::BTreeMap<String, std::collections::BTreeMap<String, String>>,
    pub charge_fns: std::collections::BTreeMap<String, std::collections::BTreeMap<String, String>>,
}

/// Pass 1 of the tree check: collect the `shared-raw` taint set from
/// every library file outside `crates/sim/` (the shims wrap raw cells by
/// definition — that is their whole point), the `KvStatus` variant list
/// from `crates/proto`, and the per-crate charged-wait / ledger-charge
/// call summaries.
pub fn build_context(sources: &[(String, String)]) -> CheckContext {
    let mut ctx = CheckContext::default();
    for (rel, source) in sources {
        if rules_for(rel) == RuleSet::none() {
            continue;
        }
        let scrubbed = lexer::scrub(source);
        let test_lines = lexer::test_line_ranges(&scrubbed.code);
        if !rel.starts_with("crates/sim/") {
            for (name, offset) in lexer::collect_interior_mutable_structs(&scrubbed.code) {
                let line = scrubbed.line_of(offset);
                if test_lines.iter().any(|&(a, b)| line >= a && line <= b) {
                    continue; // test-local helper types stay local
                }
                ctx.interior_mutable
                    .entry(name)
                    .or_insert_with(|| rel.clone());
            }
        }
        if rel.starts_with("crates/proto/") && ctx.status_variants.is_empty() {
            let variants = lexer::collect_enum_variants(&scrubbed.code, "KvStatus");
            if !variants.is_empty() {
                ctx.status_variants = variants;
                ctx.status_enum_file = rel.clone();
            }
        }
        let scopes = scope::analyze(&scrubbed.code);
        let key = crate_key(rel).to_string();
        scope::wait_summary(
            &scopes,
            rel,
            &WAIT_PRIMITIVES,
            ctx.wait_fns.entry(key.clone()).or_default(),
        );
        scope::wait_summary(
            &scopes,
            rel,
            &CHARGE_PRIMITIVES,
            ctx.charge_fns.entry(key).or_default(),
        );
    }
    ctx
}

/// An `// kvcsd-check: allow(rule) -- reason` exemption. The reason is
/// kept for the machine-readable allow inventory ([`CheckReport`]).
#[derive(Debug, Clone)]
struct Allow {
    line: usize,
    rule: String,
    reason: String,
    used: std::cell::Cell<bool>,
}

const ALLOW_TAG: &str = "kvcsd-check:";

fn parse_allows(scrubbed: &Scrubbed, file: &Path, violations: &mut Vec<Violation>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, text) in &scrubbed.comments {
        // Doc comments (`///` and `//!` — captured text starts with `/`
        // or `!`) are documentation, not exemptions: they may *mention*
        // the allow syntax without granting anything.
        if text.starts_with('/') || text.starts_with('!') {
            continue;
        }
        let Some(ix) = text.find(ALLOW_TAG) else {
            continue;
        };
        let rest = text[ix + ALLOW_TAG.len()..].trim();
        let bad = |msg: String| Violation {
            file: file.to_path_buf(),
            line: *line,
            rule: "allow",
            message: msg,
        };
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            violations.push(bad(format!(
                "malformed allow comment (expected `{ALLOW_TAG} allow(<rule>) -- <reason>`): `{}`",
                text.trim()
            )));
            continue;
        };
        let (rule, tail) = args;
        let rule = rule.trim();
        if !RULES.contains(&rule) {
            violations.push(bad(format!(
                "allow names unknown rule `{rule}` (rules: {})",
                RULES.join(", ")
            )));
            continue;
        }
        // Strict separator: ` -- `. The legacy `:` form parses but is a
        // violation, so stale exemptions surface instead of silently
        // losing their force.
        let reason = match tail.trim_start().strip_prefix("--") {
            Some(r) => r.trim(),
            None => {
                violations.push(bad(format!(
                    "allow({rule}) without ` -- reason` — exemptions must say why \
                     (write `{ALLOW_TAG} allow({rule}) -- <reason>`)"
                )));
                continue;
            }
        };
        if reason.is_empty() {
            violations.push(bad(format!(
                "allow({rule}) has an empty reason — exemptions must say why"
            )));
            continue;
        }
        allows.push(Allow {
            line: *line,
            rule: rule.to_string(),
            reason: reason.to_string(),
            used: std::cell::Cell::new(false),
        });
    }
    allows
}

/// Check one file's source text with an empty cross-file context: the
/// `shared-raw` taint set is limited to the std interior-mutable types.
pub fn check_source(file: &Path, rel_path: &str, source: &str) -> Vec<Violation> {
    check_source_with_context(file, rel_path, source, &CheckContext::default())
}

/// Check one file's source text. `rel_path` picks the rule set; `file` is
/// the path reported in violations; `ctx` carries the cross-file facts
/// from [`build_context`].
pub fn check_source_with_context(
    file: &Path,
    rel_path: &str,
    source: &str,
    ctx: &CheckContext,
) -> Vec<Violation> {
    check_source_report(file, rel_path, source, ctx).0
}

/// A granted (well-formed) allow comment, for the machine-readable
/// inventory: the baseline diff keys on `(file, rule, reason)` so a
/// *new* exemption is loud in CI even when it silences its rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowRecord {
    pub file: String,
    /// 1-based line of the comment (reported, not part of the baseline
    /// identity — allows may move as files are edited).
    pub line: usize,
    pub rule: String,
    pub reason: String,
}

/// Like [`check_source_with_context`], but also returns the inventory of
/// well-formed allow comments the file grants.
pub fn check_source_report(
    file: &Path,
    rel_path: &str,
    source: &str,
    ctx: &CheckContext,
) -> (Vec<Violation>, Vec<AllowRecord>) {
    let rules = rules_for(rel_path);
    if rules == RuleSet::none() {
        return (Vec::new(), Vec::new());
    }
    let scrubbed = lexer::scrub(source);
    let test_lines = lexer::test_line_ranges(&scrubbed.code);
    let in_tests = |line: usize| test_lines.iter().any(|&(a, b)| line >= a && line <= b);

    let mut violations = Vec::new();
    let allows = parse_allows(&scrubbed, file, &mut violations);
    let mut push = |line: usize, rule: &'static str, message: String| {
        if let Some(a) = allows
            .iter()
            .find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
        {
            a.used.set(true);
            return;
        }
        violations.push(Violation {
            file: file.to_path_buf(),
            line,
            rule,
            message,
        });
    };

    if rules.sync {
        for hit in lexer::find_std_sync_locks(&scrubbed.code) {
            push(
                scrubbed.line_of(hit.offset),
                "sync",
                format!(
                    "{} — use the kvcsd_sim::sync shims so the lock-order detector sees every acquisition",
                    hit.what
                ),
            );
        }
    }
    if rules.unwrap {
        for hit in lexer::find_unwraps(&scrubbed.code) {
            let line = scrubbed.line_of(hit.offset);
            if in_tests(line) {
                continue;
            }
            push(
                line,
                "unwrap",
                format!(
                    "{} in non-test code — return a typed error, or add `// {ALLOW_TAG} allow(unwrap) -- <why this cannot fail>`",
                    hit.what
                ),
            );
        }
    }
    if rules.time {
        for hit in lexer::find_wall_clock(&scrubbed.code) {
            push(
                scrubbed.line_of(hit.offset),
                "time",
                format!(
                    "{} — simulated time is virtual; for harness self-timing use kvcsd_sim::WallTimer",
                    hit.what
                ),
            );
        }
    }
    if rules.sleep {
        for hit in lexer::find_thread_sleep(&scrubbed.code) {
            push(
                scrubbed.line_of(hit.offset),
                "sleep",
                format!(
                    "{} — waiting is simulated by charging the virtual clock, never by blocking a real thread",
                    hit.what
                ),
            );
        }
    }
    if rules.shim_spawn {
        for hit in lexer::find_thread_spawn(&scrubbed.code) {
            push(
                scrubbed.line_of(hit.offset),
                "shim-spawn",
                format!(
                    "{} — spawn through kvcsd_sim::sync::spawn so the fork/join happens-before edges reach the race detector and the thread is schedulable by the mc controlled scheduler",
                    hit.what
                ),
            );
        }
    }
    if rules.atomics {
        for hit in lexer::find_atomics(&scrubbed.code) {
            push(
                scrubbed.line_of(hit.offset),
                "atomics",
                format!(
                    "{} — raw shared state is invisible to the race detector; use kvcsd_sim::sync::Shared or a shim lock",
                    hit.what
                ),
            );
        }
    }
    if rules.fsm_bypass {
        let checkpoint_lines =
            lexer::fn_body_line_ranges(&scrubbed.code, &["transition_to", "transition"]);
        for hit in lexer::find_fsm_state_writes(&scrubbed.code) {
            let line = scrubbed.line_of(hit.offset);
            if in_tests(line)
                || checkpoint_lines
                    .iter()
                    .any(|&(a, b)| line >= a && line <= b)
            {
                continue;
            }
            push(
                line,
                "fsm-bypass",
                format!(
                    "{} outside a transition checkpoint — route lifecycle changes through transition_to()/transition() so the transition tables stay authoritative",
                    hit.what
                ),
            );
        }
    }
    if rules.shared_raw {
        let tainted: std::collections::BTreeSet<String> =
            ctx.interior_mutable.keys().cloned().collect();
        for hit in lexer::find_arc_wraps(&scrubbed.code, &tainted) {
            let line = scrubbed.line_of(hit.offset);
            if in_tests(line) {
                continue;
            }
            let mut message = format!(
                "{} — both detectors are blind to it; share a shim lock or kvcsd_sim::sync::Shared instead",
                hit.what
            );
            if let Some(leaf) = hit
                .what
                .strip_prefix("`Arc<")
                .and_then(|r| r.split('>').next())
            {
                if let Some(def) = ctx.interior_mutable.get(leaf) {
                    message.push_str(&format!(" (interior-mutable field declared in {def})"));
                }
            }
            push(line, "shared-raw", message);
        }
    }
    if rules.router_bypass {
        for hit in lexer::find_device_construction(&scrubbed.code) {
            let line = scrubbed.line_of(hit.offset);
            if in_tests(line) {
                continue;
            }
            push(
                line,
                "router-bypass",
                format!(
                    "{} outside crates/cluster — build devices through the cluster router (ShardInstance) so health gating, failover and replication see them",
                    hit.what
                ),
            );
        }
    }

    if rules.guard_across_wait || rules.ledger_charge {
        let scopes = scope::analyze(&scrubbed.code);
        let key = crate_key(rel_path);
        let empty = std::collections::BTreeMap::new();
        if rules.guard_across_wait {
            let wait_fns = ctx.wait_fns.get(key).unwrap_or(&empty);
            let wait_reason = |c: &scope::CallSite| -> Option<String> {
                if c.method && WAIT_PRIMITIVES.contains(&c.leaf.as_str()) {
                    Some(format!("`{}` (a charged wait)", c.leaf))
                } else {
                    wait_fns.get(&c.leaf).map(|via| format!("`{via}`"))
                }
            };
            for s in &scopes {
                if in_tests(scrubbed.line_of(s.offset)) {
                    continue;
                }
                for g in &s.guards {
                    // One finding per guard: the first charged wait
                    // inside its live range, anchored at the wait line.
                    let Some((c, why)) = s
                        .calls_in_range(g)
                        .filter(|c| c.leaf != s.name)
                        .find_map(|c| wait_reason(c).map(|w| (c, w)))
                    else {
                        continue;
                    };
                    let held = if g.name.is_empty() {
                        g.kind.describe().to_string()
                    } else {
                        format!("{} `{}`", g.kind.describe(), g.name)
                    };
                    push(
                        scrubbed.line_of(c.offset),
                        "guard-across-wait",
                        format!(
                            "{held} (bound on line {}) is live across {why} — drop it before stalling, or the stall serialises every thread behind the lock",
                            scrubbed.line_of(g.offset)
                        ),
                    );
                }
                // A guard constructed *inside* a wait call's argument
                // list is live for the whole call too: temporaries drop
                // at the end of the full statement, after the wait.
                for c in &s.calls {
                    if in_tests(scrubbed.line_of(c.offset)) {
                        continue;
                    }
                    let Some(why) = wait_reason(c) else {
                        continue;
                    };
                    let args = &scrubbed.code[c.args.0..c.args.1];
                    if let Some(pat) = [".lock()", ".read()", ".write()"]
                        .iter()
                        .find(|p| args.contains(*p))
                    {
                        push(
                            scrubbed.line_of(c.offset),
                            "guard-across-wait",
                            format!(
                                "temporary guard (`{pat}` in the argument list) is live across {why} — read the value into a local and drop the guard before waiting"
                            ),
                        );
                    }
                }
            }
        }
        if rules.ledger_charge {
            let charge_fns = ctx.charge_fns.get(key).unwrap_or(&empty);
            for s in &scopes {
                if in_tests(scrubbed.line_of(s.offset)) {
                    continue;
                }
                let charges = s.calls.iter().any(|c| {
                    (c.method && CHARGE_PRIMITIVES.contains(&c.leaf.as_str()))
                        || (c.leaf != s.name && charge_fns.contains_key(&c.leaf))
                });
                if charges {
                    continue;
                }
                let body = &scrubbed.code[s.body.0..s.body.1];
                for (marker, what) in MEDIA_TOUCHES {
                    if let Some(ix) = body.find(marker) {
                        push(
                            scrubbed.line_of(s.body.0 + ix),
                            "ledger-charge",
                            format!(
                                "{what} in `{}` with no IoLedger charge in the same scope — uncharged media/fabric work makes the cost model lie",
                                s.name
                            ),
                        );
                    }
                }
            }
        }
    }
    if rules.epoch_fence {
        for (needle, what) in BUS_SEND_PRIMITIVES {
            let mut from = 0;
            while let Some(ix) = scrubbed.code[from..].find(needle) {
                let off = from + ix;
                from = off + needle.len();
                let line = scrubbed.line_of(off);
                if in_tests(line) {
                    continue;
                }
                push(
                    line,
                    "epoch-fence",
                    format!(
                        "{what} outside the fenced send path — every replication artifact must cross the bus through ReplicaLog's epoch-stamped ship/reseed protocol (crates/cluster/src/replica.rs), or a deposed primary can slip unfenced bytes past the receive fence"
                    ),
                );
            }
        }
    }
    if rules.window_bypass {
        for (needle, what) in LOCKSTEP_PRIMITIVES {
            let mut from = 0;
            while let Some(ix) = scrubbed.code[from..].find(needle) {
                let off = from + ix;
                from = off + needle.len();
                let line = scrubbed.line_of(off);
                if in_tests(line) {
                    continue;
                }
                push(
                    line,
                    "window-bypass",
                    format!(
                        "{what} outside the in-flight window — client/cluster hot paths drive the device through InflightWindow's submit/poll_completions pipeline (crates/client/src/window.rs); a synchronous round-trip here drains the queue depth the async boundary exists to keep full"
                    ),
                );
            }
        }
    }
    if rules.status_map && !ctx.status_variants.is_empty() {
        let role = STATUS_COVERAGE
            .iter()
            .find(|(p, _)| *p == rel_path)
            .map(|(_, r)| *r)
            .unwrap_or("this status classification");
        let bytes = scrubbed.code.as_bytes();
        for v in &ctx.status_variants {
            let needle = format!("KvStatus::{v}");
            let mut matched = false;
            let mut from = 0;
            while let Some(ix) = scrubbed.code[from..].find(&needle) {
                let off = from + ix;
                from = off + needle.len();
                let after = bytes.get(off + needle.len()).copied().unwrap_or(0);
                if after.is_ascii_alphanumeric() || after == b'_' {
                    continue; // prefix of a longer variant name
                }
                if in_tests(scrubbed.line_of(off)) {
                    continue;
                }
                matched = true;
                break;
            }
            if !matched {
                push(
                    1,
                    "status-map",
                    format!(
                        "`KvStatus::{v}` (declared in {}) is not matched in {role} — classify it by name so a catch-all arm cannot misroute a new wire status",
                        ctx.status_enum_file
                    ),
                );
            }
        }
    }

    for a in &allows {
        if !a.used.get() {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: a.line,
                rule: "allow",
                message: format!(
                    "unused allow({}) — nothing on this or the next line trips the rule",
                    a.rule
                ),
            });
        }
    }
    violations.sort_by_key(|v| v.line);
    let records = allows
        .iter()
        .map(|a| AllowRecord {
            file: rel_path.to_string(),
            line: a.line,
            rule: a.rule.clone(),
            reason: a.reason.clone(),
        })
        .collect();
    (violations, records)
}

/// Recursively collect the `.rs` files to check under `root`, as
/// `(absolute, workspace-relative)` pairs, sorted for stable output.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push((path, rel));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The full result of a tree sweep: findings plus the allow inventory,
/// the unit the JSON output and the committed baseline serialize.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    pub violations: Vec<Violation>,
    pub allows: Vec<AllowRecord>,
}

/// Check every `.rs` file under `root`, in two passes: pass 1 reads all
/// sources and builds the cross-file [`CheckContext`]; pass 2 scans each
/// file against it. I/O errors surface as violations (line 0) rather
/// than aborting the sweep.
pub fn check_tree(root: &Path) -> Vec<Violation> {
    check_tree_report(root).violations
}

/// [`check_tree`], keeping the allow inventory alongside the violations.
pub fn check_tree_report(root: &Path) -> CheckReport {
    let mut report = CheckReport::default();
    let files = match collect_rs_files(root) {
        Ok(f) => f,
        Err(e) => {
            report.violations.push(Violation {
                file: root.to_path_buf(),
                line: 0,
                rule: "allow",
                message: format!("cannot walk tree: {e}"),
            });
            return report;
        }
    };
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (path, rel) in files {
        match std::fs::read_to_string(&path) {
            Ok(source) => sources.push((rel, source)),
            Err(e) => report.violations.push(Violation {
                file: path.clone(),
                line: 0,
                rule: "allow",
                message: format!("cannot read: {e}"),
            }),
        }
    }
    let ctx = build_context(&sources);
    for (rel, source) in &sources {
        let (violations, allows) = check_source_report(Path::new(rel), rel, source, &ctx);
        report.violations.extend(violations);
        report.allows.extend(allows);
    }
    report
}
