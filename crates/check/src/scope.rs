//! Block-structured scope analysis on top of the scrub-and-scan lexer.
//!
//! The flat token scanners in [`crate::lexer`] can ban an identifier but
//! cannot see *lifetimes*: whether a lock guard bound on one line is
//! still live when a charged wait happens five lines later. This module
//! adds exactly enough structure for that class of rule without growing
//! a real parser:
//!
//! * **function spans** — every `fn name(...) { ... }` in a file, with
//!   its brace-matched body;
//! * **a block tree** — nested `{}` scopes inside each body (plain
//!   blocks, `match` arms, closure bodies), so a binding's live range
//!   ends at its enclosing block's close brace;
//! * **binding sites** — `let`-bindings whose initializer *ends in* a
//!   known guard/reservation constructor (`.lock()`, `.read()`,
//!   `.write()` with empty argument lists, `.reserve(...)`), with the
//!   binder name so an explicit `drop(name)` can end the range early.
//!   "Ends in" is the load-bearing part: `let n = m.lock().len();`
//!   drops its temporary guard at the end of the statement and is *not*
//!   a guard binding;
//! * **call sites** — every `leaf(...)` call in a body with its byte
//!   offset and argument span, so rules can ask "does a call to a
//!   charged-wait function fall inside this live range?" and, via a
//!   per-crate summary of which local functions themselves wait, reason
//!   one call level deep.
//!
//! Everything operates on scrubbed code (comments/literals blanked), so
//! offsets map 1:1 onto the original source for line reporting.
//!
//! Known limits, inherited from being a lexer-shaped analysis: struct
//! literals contribute phantom blocks (harmless — `let` statements
//! cannot appear directly inside them); guards bound by destructuring
//! patterns are tracked without a name (their range runs to the block
//! close, `drop` cannot end it early); waits inside a closure body are
//! attributed to the enclosing range even though the closure may run
//! later (conservative — allowlist the rare deliberate deferral).

/// What kind of guard a `let` binds. The names are used verbatim in
/// violation messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// `.lock()` on a shim `Mutex` (or anything lock-shaped).
    MutexGuard,
    /// `.read()` with no arguments: shim `RwLock`/`Shared` read borrow.
    ReadGuard,
    /// `.write()` with no arguments: shim `RwLock`/`Shared` write borrow.
    WriteGuard,
    /// `.reserve(...)` / `.reserve_up_to(...)`: a DRAM reservation.
    Reservation,
}

impl GuardKind {
    pub fn describe(self) -> &'static str {
        match self {
            GuardKind::MutexGuard => "Mutex guard",
            GuardKind::ReadGuard => "read guard",
            GuardKind::WriteGuard => "write guard",
            GuardKind::Reservation => "DRAM reservation",
        }
    }
}

/// A `let` that binds a guard. Live from the end of its statement to
/// [`GuardBinding::live_end`].
#[derive(Debug, Clone)]
pub struct GuardBinding {
    /// Binder name; empty for destructuring patterns.
    pub name: String,
    pub kind: GuardKind,
    /// Offset of the `let` keyword (line reporting).
    pub offset: usize,
    /// Live range start: just past the binding statement's `;`.
    pub live_start: usize,
    /// Live range end: enclosing block close, or an explicit
    /// `drop(name)` site.
    pub live_end: usize,
    /// True when the range was ended early by an explicit `drop`.
    pub dropped_explicitly: bool,
}

/// One `leaf(...)` call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Offset of the callee identifier.
    pub offset: usize,
    /// Last path segment of the callee (`self.gate.admit_write` →
    /// `admit_write`).
    pub leaf: String,
    /// Whether the call was written as a method (`recv.leaf(...)`) or a
    /// bare/path call (`leaf(...)`, `a::leaf(...)`).
    pub method: bool,
    /// Byte span of the argument list, opening paren inclusive to the
    /// matching close paren exclusive.
    pub args: (usize, usize),
}

/// One function's scope analysis.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// Offset of the `fn` keyword.
    pub offset: usize,
    /// Body span: `{` inclusive .. matching `}` inclusive.
    pub body: (usize, usize),
    /// Guard bindings in source order.
    pub guards: Vec<GuardBinding>,
    /// Every call site in the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnScope {
    /// Calls that fall inside `guard`'s live range.
    pub fn calls_in_range<'a>(
        &'a self,
        guard: &GuardBinding,
    ) -> impl Iterator<Item = &'a CallSite> {
        let (a, b) = (guard.live_start, guard.live_end);
        self.calls
            .iter()
            .filter(move |c| c.offset >= a && c.offset < b)
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn at(bytes: &[u8], ix: usize) -> u8 {
    bytes.get(ix).copied().unwrap_or(0)
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Brace/paren/bracket-matched end of a region opened at `open`
/// (returns the index of the matching closer, or `len` if unbalanced).
fn match_delim(bytes: &[u8], open: usize) -> usize {
    let (o, c) = match bytes[open] {
        b'{' => (b'{', b'}'),
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        let b = bytes[i];
        if b == o {
            depth += 1;
        } else if b == c {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// All `fn` item offsets in scrubbed code (word-bounded, with a body).
fn fn_starts(code: &str) -> Vec<(usize, String, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(ix) = code[from..].find("fn ") {
        let start = from + ix;
        from = start + 3;
        if start > 0 && is_ident(bytes[start - 1]) {
            continue;
        }
        let name_start = skip_ws(bytes, start + 3);
        let mut j = name_start;
        while j < bytes.len() && is_ident(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            continue; // `fn` in `Fn(...)` bounds etc.
        }
        let name = code[name_start..j].to_string();
        // Scan to the body's `{`, skipping the argument list and any
        // return type; a `;` first means a bodyless trait declaration.
        // A where-clause could legally contain braces in general Rust,
        // but not in this workspace (same assumption as the fsm scanner).
        let mut k = j;
        while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
            if bytes[k] == b'(' {
                k = match_delim(bytes, k);
            }
            k += 1;
        }
        if k < bytes.len() && bytes[k] == b'{' {
            out.push((start, name, k));
        }
    }
    out
}

/// Leaf path segment ending at `end` (exclusive): walks identifier and
/// `::` bytes backwards, returns the final segment.
fn leaf_ending_at(code: &str, end: usize) -> (usize, String, bool) {
    let bytes = code.as_bytes();
    let mut s = end;
    while s > 0 && (is_ident(bytes[s - 1]) || bytes[s - 1] == b':') {
        s -= 1;
    }
    let path = &code[s..end];
    let leaf = path.rsplit("::").next().unwrap_or(path);
    let leaf_start = end - leaf.len();
    // Method call if the path is preceded by a `.` receiver.
    let method = leaf_start == s && s > 0 && bytes[s - 1] == b'.';
    (leaf_start, leaf.to_string(), method)
}

/// Collect every call site in `code[span]`.
fn collect_calls(code: &str, span: (usize, usize)) -> Vec<CallSite> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = span.0;
    while i < span.1 {
        if bytes[i] == b'(' && i > 0 && is_ident(bytes[i - 1]) {
            let (leaf_start, leaf, method) = leaf_ending_at(code, i);
            let close = match_delim(bytes, i);
            // Keywords and declarations are not calls.
            if !matches!(
                leaf.as_str(),
                "fn" | "if" | "while" | "for" | "match" | "return"
            ) {
                out.push(CallSite {
                    offset: leaf_start,
                    leaf,
                    method,
                    args: (i, close.min(span.1)),
                });
            }
        }
        i += 1;
    }
    out
}

/// If the expression ending at `end` (exclusive, trailing whitespace
/// already trimmed) is a guard constructor call, return its kind.
/// `end` points just past the closing `)`.
pub(crate) fn guard_ctor_ending_at(code: &str, end: usize) -> Option<GuardKind> {
    let bytes = code.as_bytes();
    if end == 0 || at(bytes, end - 1) != b')' {
        return None;
    }
    // Find the matching open paren by walking backwards.
    let mut depth = 0i32;
    let mut open = end - 1;
    loop {
        match bytes[open] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if open == 0 {
            return None;
        }
        open -= 1;
    }
    let (_, leaf, method) = leaf_ending_at(code, open);
    if !method {
        return None; // bare `lock(...)` fn call, not a guard ctor
    }
    let args_empty = code[open + 1..end - 1].trim().is_empty();
    match leaf.as_str() {
        "lock" if args_empty => Some(GuardKind::MutexGuard),
        "read" if args_empty => Some(GuardKind::ReadGuard),
        "write" if args_empty => Some(GuardKind::WriteGuard),
        "reserve" | "reserve_up_to" => Some(GuardKind::Reservation),
        _ => None,
    }
}

/// Analyze every function in `code` (scrubbed). See the module docs.
pub fn analyze(code: &str) -> Vec<FnScope> {
    let bytes = code.as_bytes();
    let mut scopes = Vec::new();
    for (fn_off, name, body_open) in fn_starts(code) {
        let body_close = match_delim(bytes, body_open);
        let mut guards = Vec::new();

        // Walk statements: find `let` keywords, their `=`, and the `;`
        // terminating the initializer at delimiter depth 0 relative to
        // the initializer start.
        let mut i = body_open;
        while i < body_close {
            if bytes[i] == b'l'
                && code[i..].starts_with("let")
                && (i == 0 || !is_ident(bytes[i - 1]))
                && !is_ident(at(bytes, i + 3))
            {
                let let_off = i;
                // Pattern: up to `=` at depth 0 (skip `==`; `<=` etc.
                // cannot appear in a pattern position).
                let mut j = i + 3;
                let mut depth = 0i32;
                let mut eq = None;
                while j < body_close {
                    match bytes[j] {
                        b'(' | b'[' | b'<' => depth += 1,
                        b')' | b']' | b'>' => depth -= 1,
                        b'=' if depth <= 0 && at(bytes, j + 1) != b'=' => {
                            eq = Some(j);
                            break;
                        }
                        b';' | b'{' => break, // `let x;` or malformed
                        _ => {}
                    }
                    j += 1;
                }
                let Some(eq) = eq else {
                    i += 3;
                    continue;
                };
                // Binder name: `let [mut] ident` (destructuring → "").
                let mut p = skip_ws(bytes, let_off + 3);
                if code[p..].starts_with("mut") && !is_ident(at(bytes, p + 3)) {
                    p = skip_ws(bytes, p + 3);
                }
                let name_start = p;
                while p < eq && is_ident(bytes[p]) {
                    p += 1;
                }
                let binder = {
                    let cand = &code[name_start..p];
                    // A simple binder is followed by `:` (type) or the `=`.
                    let after = skip_ws(bytes, p);
                    if !cand.is_empty() && (after == eq || at(bytes, after) == b':') {
                        cand.to_string()
                    } else {
                        String::new()
                    }
                };
                // Initializer: from `=` to the `;` at depth 0.
                let mut k = eq + 1;
                let mut d = 0i32;
                while k < body_close {
                    match bytes[k] {
                        b'(' | b'[' | b'{' => d += 1,
                        b')' | b']' | b'}' => d -= 1,
                        b';' if d == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let stmt_end = k; // offset of `;` (or block close)
                                  // `let Some(r) = expr else { ... };` — the initializer
                                  // proper ends before a depth-0 `else`.
                let mut expr_end = stmt_end;
                {
                    let mut d = 0i32;
                    let mut m = eq + 1;
                    while m < stmt_end {
                        match bytes[m] {
                            b'(' | b'[' | b'{' => d += 1,
                            b')' | b']' | b'}' => d -= 1,
                            b'e' if d == 0
                                && code[m..].starts_with("else")
                                && !is_ident(at(bytes, m + 4))
                                && !is_ident(bytes[m - 1]) =>
                            {
                                expr_end = m;
                                break;
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                }
                let init_end = {
                    let mut e = expr_end;
                    while e > eq + 1 && bytes[e - 1].is_ascii_whitespace() {
                        e -= 1;
                    }
                    // `m.lock()?` never appears (guards aren't Results),
                    // but tolerate a trailing `?` anyway.
                    if e > eq + 1 && bytes[e - 1] == b'?' {
                        e - 1
                    } else {
                        e
                    }
                };
                if let Some(kind) = guard_ctor_ending_at(code, init_end) {
                    // Enclosing block: deepest `{` whose span contains
                    // the let. Walk from body_open tracking open braces.
                    let block_close = enclosing_block_close(bytes, body_open, body_close, let_off);
                    guards.push(GuardBinding {
                        name: binder,
                        kind,
                        offset: let_off,
                        live_start: stmt_end + 1,
                        live_end: block_close,
                        dropped_explicitly: false,
                    });
                }
                i = stmt_end + 1;
                continue;
            }
            i += 1;
        }

        let calls = collect_calls(code, (body_open, body_close));

        // Explicit drops end live ranges early: `drop(name)` /
        // `mem::drop(name)` with the bare binder as the sole argument.
        for c in &calls {
            if c.leaf != "drop" || c.method {
                continue;
            }
            let arg = code[c.args.0 + 1..c.args.1].trim();
            for g in guards.iter_mut() {
                if !g.name.is_empty()
                    && arg == g.name
                    && c.offset >= g.live_start
                    && c.offset < g.live_end
                {
                    g.live_end = c.offset;
                    g.dropped_explicitly = true;
                }
            }
        }

        scopes.push(FnScope {
            name,
            offset: fn_off,
            body: (body_open, body_close),
            guards,
            calls,
        });
    }
    scopes
}

/// Close offset of the deepest block containing `pos` within a function
/// body (`body_open..=body_close`).
fn enclosing_block_close(bytes: &[u8], body_open: usize, body_close: usize, pos: usize) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    let mut i = body_open;
    let mut best = body_close;
    while i <= body_close && i < bytes.len() {
        match bytes[i] {
            b'{' => stack.push(i),
            b'}' => {
                if let Some(open) = stack.pop() {
                    if open <= pos && pos < i {
                        best = i;
                        // The first close after `pos` whose open precedes
                        // it is the innermost enclosing block.
                        return best;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    best
}

/// Per-crate one-level call summary: the names of functions whose body
/// *directly* calls one of `primitives` (by callee leaf name), mapped to
/// a short description for reports. Feed `analyze` output from every
/// file of a crate.
pub fn wait_summary(
    scopes: &[FnScope],
    rel_path: &str,
    primitives: &[&str],
    out: &mut std::collections::BTreeMap<String, String>,
) {
    for s in scopes {
        if primitives.contains(&s.name.as_str()) {
            continue; // the primitive itself, not a one-level wrapper
        }
        if let Some(c) = s
            .calls
            .iter()
            .find(|c| primitives.contains(&c.leaf.as_str()))
        {
            out.entry(s.name.clone())
                .or_insert_with(|| format!("{} ({rel_path} calls `{}`)", s.name, c.leaf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn fns(src: &str) -> Vec<FnScope> {
        analyze(&scrub(src).code)
    }

    #[test]
    fn finds_functions_and_bodies() {
        let s = fns("fn a() { x(); }\nimpl T { fn b(&self, k: u8) -> u8 { y() } }\ntrait Q { fn c(&self); }");
        let names: Vec<&str> = s.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"], "bodyless trait fn skipped");
    }

    #[test]
    fn guard_binding_requires_ctor_at_expression_end() {
        let s = fns("fn f(&self) {\n    let g = self.m.lock();\n    let n = self.m.lock().len();\n    let v = self.m.lock().clone();\n    let r = self.rw.read();\n    let w = self.rw.write();\n    let d = self.budget.reserve(bytes);\n}");
        let kinds: Vec<(String, GuardKind)> = s[0]
            .guards
            .iter()
            .map(|g| (g.name.clone(), g.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("g".to_string(), GuardKind::MutexGuard),
                ("r".to_string(), GuardKind::ReadGuard),
                ("w".to_string(), GuardKind::WriteGuard),
                ("d".to_string(), GuardKind::Reservation),
            ],
            "{:#?}",
            s[0].guards
        );
    }

    #[test]
    fn read_write_with_args_are_not_guards() {
        let s = fns(
            "fn f(&self) {\n    let page = self.nand.read(ppa);\n    let n = file.write(buf);\n}",
        );
        assert!(s[0].guards.is_empty(), "{:#?}", s[0].guards);
    }

    #[test]
    fn live_range_ends_at_enclosing_block_close() {
        let src = "fn f(&self) {\n    {\n        let g = self.m.lock();\n        inner();\n    }\n    outer();\n}";
        let s = fns(src);
        let g = &s[0].guards[0];
        let outer_off = src.find("outer").expect("present");
        let inner_off = src.find("inner").expect("present");
        assert!(g.live_start < inner_off && inner_off < g.live_end);
        assert!(outer_off > g.live_end, "outer() is past the block close");
    }

    #[test]
    fn explicit_drop_ends_the_range() {
        let src = "fn f(&self) {\n    let g = self.m.lock();\n    use_it(&g);\n    drop(g);\n    later();\n}";
        let s = fns(src);
        let g = &s[0].guards[0];
        assert!(g.dropped_explicitly);
        let later = src.find("later").expect("present");
        assert!(later > g.live_end, "later() is past the drop");
        let use_it = src.find("use_it").expect("present");
        assert!(use_it < g.live_end);
    }

    #[test]
    fn match_arm_blocks_scope_their_bindings() {
        let src = "fn f(&self) {\n    match x {\n        A => {\n            let g = self.m.lock();\n            a();\n        }\n        B => {\n            b();\n        }\n    }\n    tail();\n}";
        let s = fns(src);
        let g = &s[0].guards[0];
        let a = src.find("a();").expect("present");
        let b = src.find("b();").expect("present");
        assert!(a >= g.live_start && a < g.live_end, "same arm is in range");
        assert!(b >= g.live_end, "sibling arm is out of range");
    }

    #[test]
    fn early_return_does_not_extend_the_range() {
        // The range is textual: code after an early return but inside
        // the block still counts (it is reachable on the other path).
        let src = "fn f(&self) -> u8 {\n    let g = self.m.lock();\n    if c {\n        return 0;\n    }\n    after();\n    1\n}";
        let s = fns(src);
        let g = &s[0].guards[0];
        let after = src.find("after").expect("present");
        assert!(after >= g.live_start && after < g.live_end);
    }

    #[test]
    fn closure_bodies_are_inside_the_enclosing_range() {
        let src =
            "fn f(&self) {\n    let g = self.m.lock();\n    jobs.push(move || deferred());\n}";
        let s = fns(src);
        let g = &s[0].guards[0];
        let call = s[0]
            .calls
            .iter()
            .find(|c| c.leaf == "deferred")
            .expect("closure call collected");
        assert!(call.offset >= g.live_start && call.offset < g.live_end);
    }

    #[test]
    fn call_sites_carry_leaf_method_and_args() {
        let s =
            fns("fn f(&self) { self.gate.admit_write(&sample); helper(); path::to::thing(1, 2); }");
        let calls: Vec<(&str, bool)> = s[0]
            .calls
            .iter()
            .map(|c| (c.leaf.as_str(), c.method))
            .collect();
        assert_eq!(
            calls,
            vec![("admit_write", true), ("helper", false), ("thing", false)]
        );
    }

    #[test]
    fn wait_summary_is_one_level_deep() {
        let code = scrub(
            "fn charge_wait(&self, ns: u64) { self.clock.advance(ns); }\nfn wrapper(&self) { self.charge_wait(5); }\nfn clean(&self) { work(); }",
        )
        .code;
        let scopes = analyze(&code);
        let mut sum = std::collections::BTreeMap::new();
        wait_summary(&scopes, "demo.rs", &["advance"], &mut sum);
        assert!(sum.contains_key("charge_wait"), "{sum:?}");
        assert!(
            !sum.contains_key("wrapper"),
            "two levels from the primitive: {sum:?}"
        );
        assert!(!sum.contains_key("clean"), "{sum:?}");
    }

    #[test]
    fn destructuring_guards_run_to_block_end() {
        let src = "fn f(&self) {\n    let (a, b) = self.m.lock();\n    tail();\n}";
        let s = fns(src);
        // Initializer ends in .lock() so it is a guard, but unnamed.
        assert_eq!(s[0].guards.len(), 1);
        assert!(s[0].guards[0].name.is_empty());
    }
}
