//! Scrub-and-scan lexing for the lint rules.
//!
//! [`scrub`] blanks comments and string/char literals out of Rust source
//! (preserving byte offsets and newlines), so the rule scanners can do
//! plain substring matching over real code without tripping on doc
//! comments, error messages or test fixtures embedded in strings. It is
//! a lexer, not a parser: good enough for the three rules, with the
//! known limits documented on each scanner.

/// Source with comments and literals blanked to spaces.
pub struct Scrubbed {
    /// Same length and line structure as the input; comments, string
    /// literals and char literals replaced by spaces.
    pub code: String,
    /// Line comments as `(1-based line, text after //)` — the carrier
    /// for `kvcsd-check: allow(...)` exemptions.
    pub comments: Vec<(usize, String)>,
    line_starts: Vec<usize>,
}

impl Scrubbed {
    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank every non-newline byte of `bytes[range]`.
fn blank(bytes: &mut [u8], from: usize, to: usize) {
    for b in &mut bytes[from..to] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Strip comments and literals. See module docs.
pub fn scrub(source: &str) -> Scrubbed {
    let mut bytes = source.as_bytes().to_vec();
    let len = bytes.len();
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            source
                .bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let line_of = |off: usize| line_starts.partition_point(|&s| s <= off);

    let mut comments = Vec::new();
    let mut i = 0;
    while i < len {
        let b = bytes[i];
        let next = |k: usize| bytes.get(i + k).copied().unwrap_or(0);
        let prev_ident = i > 0 && is_ident(bytes[i - 1]);
        if b == b'/' && next(1) == b'/' {
            let start = i;
            while i < len && bytes[i] != b'\n' {
                i += 1;
            }
            comments.push((
                line_of(start),
                String::from_utf8_lossy(&bytes[start + 2..i]).into_owned(),
            ));
            blank(&mut bytes, start, i);
        } else if b == b'/' && next(1) == b'*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < len && depth > 0 {
                if bytes[i] == b'/' && next_at(&bytes, i + 1) == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && next_at(&bytes, i + 1) == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut bytes, start, i);
        } else if !prev_ident && (b == b'r' || b == b'b') && raw_string_start(&bytes, i).is_some() {
            let (quote_ix, hashes) = match raw_string_start(&bytes, i) {
                Some(x) => x,
                None => unreachable!(),
            };
            let start = i;
            i = quote_ix + 1;
            // Scan for `"` followed by `hashes` hashes.
            'raw: while i < len {
                if bytes[i] == b'"' {
                    let mut j = i + 1;
                    let mut h = 0;
                    while h < hashes && j < len && bytes[j] == b'#' {
                        j += 1;
                        h += 1;
                    }
                    if h == hashes {
                        i = j;
                        break 'raw;
                    }
                }
                i += 1;
            }
            blank(&mut bytes, start, i);
        } else if b == b'"' || (!prev_ident && b == b'b' && next(1) == b'"') {
            let start = i;
            i += if b == b'"' { 1 } else { 2 };
            while i < len {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            blank(&mut bytes, start, i.min(len));
        } else if b == b'\'' || (!prev_ident && b == b'b' && next(1) == b'\'') {
            let q = if b == b'\'' { i } else { i + 1 };
            // Char literal vs lifetime. Three shapes close with a quote:
            //
            // * escaped:   `'\n'`, `'\''`, `'\u{1F600}'` — a `\` right
            //   after the tick; scan (bounded) for the closing quote;
            // * word-like: `'a'`, `'_'`, `'é'` — a run of identifier or
            //   non-ASCII bytes then a quote. The same run *not* followed
            //   by a quote is a lifetime (`'a`, `'static`) or a loop
            //   label (`'outer:`), including `<'a>('x')` where the old
            //   fixed-window scan used to eat the next literal's opener;
            // * punctuation: `'}'`, `' '` — any other single byte framed
            //   by quotes.
            let mut end = None;
            if next_at(&bytes, q + 1) == b'\\' {
                let mut j = q + 3; // at least one escaped byte
                while j < len && j <= q + 16 {
                    if bytes[j] == b'\'' {
                        end = Some(j);
                        break;
                    }
                    j += 1;
                }
            } else if is_ident(next_at(&bytes, q + 1)) || next_at(&bytes, q + 1) >= 0x80 {
                let mut j = q + 1;
                while j < len && (is_ident(bytes[j]) || bytes[j] >= 0x80) {
                    j += 1;
                }
                if next_at(&bytes, j) == b'\'' {
                    end = Some(j); // `'a'`-shaped literal
                } // else: lifetime or loop label — keep the tick
            } else if next_at(&bytes, q + 1) != b'\''
                && next_at(&bytes, q + 1) != b'\n'
                && next_at(&bytes, q + 1) != 0
                && next_at(&bytes, q + 2) == b'\''
            {
                end = Some(q + 2); // punctuation literal like `'}'`
            }
            if let Some(e) = end {
                blank(&mut bytes, i, e + 1);
                i = e + 1;
            } else {
                i += 1; // lifetime: keep the tick, scan on
            }
        } else {
            i += 1;
        }
    }

    Scrubbed {
        code: String::from_utf8_lossy(&bytes).into_owned(),
        comments,
        line_starts,
    }
}

fn next_at(bytes: &[u8], ix: usize) -> u8 {
    bytes.get(ix).copied().unwrap_or(0)
}

/// If `bytes[i..]` starts a raw (byte) string — `r"`, `r#"`, `br##"` … —
/// return `(index of the opening quote, number of hashes)`.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if next_at(bytes, j) == b'b' {
        j += 1;
    }
    if next_at(bytes, j) != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while next_at(bytes, j) == b'#' {
        j += 1;
        hashes += 1;
    }
    if next_at(bytes, j) == b'"' {
        Some((j, hashes))
    } else {
        None
    }
}

/// 1-based line ranges covered by `#[cfg(test)]` items (attribute through
/// the matching close brace, or the terminating `;`).
pub fn test_line_ranges(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            bytes
                .iter()
                .enumerate()
                .filter(|&(_, b)| *b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let line_of = |off: usize| line_starts.partition_point(|&s| s <= off);

    let mut ranges = Vec::new();
    for start in find_all(code, "#[cfg(test)]") {
        let mut i = start + "#[cfg(test)]".len();
        // Find the item's body: first `{` (brace-match it) or `;`.
        while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b';' {
            i += 1;
        }
        let end = if i < bytes.len() && bytes[i] == b'{' {
            let mut depth = 0usize;
            let mut j = i;
            loop {
                if j >= bytes.len() {
                    break j;
                }
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break j;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        } else {
            i
        };
        ranges.push((
            line_of(start),
            line_of(end.min(bytes.len().saturating_sub(1))),
        ));
    }
    ranges
}

/// One scanner match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Byte offset into the scrubbed code.
    pub offset: usize,
    /// Human description of what matched.
    pub what: String,
}

fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(ix) = hay[from..].find(needle) {
        out.push(from + ix);
        from += ix + needle.len();
    }
    out
}

/// Word-boundary check around `hay[ix..ix+len]`.
fn bounded(hay: &[u8], ix: usize, len: usize) -> bool {
    (ix == 0 || !is_ident(hay[ix - 1])) && !is_ident(next_at(hay, ix + len))
}

/// `.unwrap()` and `.expect(` method calls (the receiver must be a method
/// chain — a bare `unwrap(` function call is not flagged).
pub fn find_unwraps(code: &str) -> Vec<Hit> {
    let bytes = code.as_bytes();
    let mut hits = Vec::new();
    for name in ["unwrap", "expect"] {
        for ix in find_all(code, name) {
            if !bounded(bytes, ix, name.len()) {
                continue;
            }
            // Walk back over whitespace to require a `.` receiver.
            let mut back = ix;
            while back > 0 && bytes[back - 1].is_ascii_whitespace() {
                back -= 1;
            }
            if back == 0 || bytes[back - 1] != b'.' {
                continue;
            }
            // Forward over whitespace to require a call.
            let mut fwd = ix + name.len();
            while fwd < bytes.len() && bytes[fwd].is_ascii_whitespace() {
                fwd += 1;
            }
            if next_at(bytes, fwd) != b'(' {
                continue;
            }
            hits.push(Hit {
                offset: ix,
                what: format!("`.{name}(...)`"),
            });
        }
    }
    hits.sort_by_key(|h| h.offset);
    hits
}

/// `Instant::now` / `SystemTime::now` wall-clock reads.
pub fn find_wall_clock(code: &str) -> Vec<Hit> {
    let bytes = code.as_bytes();
    let mut hits = Vec::new();
    for name in ["Instant::now", "SystemTime::now"] {
        for ix in find_all(code, name) {
            if bounded(bytes, ix, name.len()) {
                hits.push(Hit {
                    offset: ix,
                    what: format!("`{name}()`"),
                });
            }
        }
    }
    hits.sort_by_key(|h| h.offset);
    hits
}

/// `thread::sleep` calls (also matches the qualified `std::thread::sleep`
/// path, which ends in the same token pair). A local function merely
/// *named* `sleep` is not flagged — the `thread::` segment is required.
pub fn find_thread_sleep(code: &str) -> Vec<Hit> {
    let bytes = code.as_bytes();
    let needle = "thread::sleep";
    let mut hits = Vec::new();
    for ix in find_all(code, needle) {
        if bounded(bytes, ix, needle.len()) {
            hits.push(Hit {
                offset: ix,
                what: "`thread::sleep(...)`".to_string(),
            });
        }
    }
    hits
}

/// Raw thread creation for the `shim-spawn` rule: `thread::spawn` (also
/// matching the qualified `std::thread::spawn` path, which ends in the
/// same token pair) and `thread::Builder`, the named/stack-sized escape
/// hatch that reaches the same unmanaged spawn. A local function merely
/// *named* `spawn` — like `kvcsd_sim::sync::spawn` itself at a call
/// site — is not flagged; the `thread::` segment is required.
pub fn find_thread_spawn(code: &str) -> Vec<Hit> {
    let bytes = code.as_bytes();
    let mut hits = Vec::new();
    for needle in ["thread::spawn", "thread::Builder"] {
        for ix in find_all(code, needle) {
            if bounded(bytes, ix, needle.len()) {
                hits.push(Hit {
                    offset: ix,
                    what: format!("`{needle}`"),
                });
            }
        }
    }
    hits.sort_by_key(|h| h.offset);
    hits
}

/// Direct `KvCsdDevice::new` / `KvCsdDevice::reopen` construction — the
/// `router-bypass` rule. A type merely *named* `KvCsdDevice` in a
/// signature or field is fine; only the constructor paths are flagged.
pub fn find_device_construction(code: &str) -> Vec<Hit> {
    let bytes = code.as_bytes();
    let mut hits = Vec::new();
    for needle in ["KvCsdDevice::new", "KvCsdDevice::reopen"] {
        for ix in find_all(code, needle) {
            if bounded(bytes, ix, needle.len()) {
                hits.push(Hit {
                    offset: ix,
                    what: format!("`{needle}(...)`"),
                });
            }
        }
    }
    hits.sort_by_key(|h| h.offset);
    hits
}

/// `std::sync::Mutex` / `std::sync::RwLock`, whether path-qualified at a
/// use site or pulled in through a `use std::sync::...` import. Limits:
/// renamed imports (`as M`) and `use std::{sync::Mutex}` nesting are not
/// recognized — neither appears in this workspace, and the plain-path
/// scan still catches the eventual qualified uses.
pub fn find_std_sync_locks(code: &str) -> Vec<Hit> {
    let bytes = code.as_bytes();
    let mut hits = Vec::new();
    let mut import_ranges: Vec<(usize, usize)> = Vec::new();
    for ix in find_all(code, "use std::sync::") {
        if ix > 0 && is_ident(bytes[ix - 1]) {
            continue;
        }
        let end = code[ix..].find(';').map(|e| ix + e).unwrap_or(code.len());
        import_ranges.push((ix, end));
        let body = &code[ix..end];
        for lock in ["Mutex", "RwLock"] {
            if find_all(body, lock)
                .iter()
                .any(|&o| bounded(body.as_bytes(), o, lock.len()))
            {
                hits.push(Hit {
                    offset: ix,
                    what: format!("imports std::sync::{lock}"),
                });
            }
        }
    }
    for lock in ["Mutex", "RwLock"] {
        let path = format!("std::sync::{lock}");
        for ix in find_all(code, &path) {
            if !bounded(bytes, ix, path.len()) {
                continue;
            }
            if import_ranges.iter().any(|&(a, b)| ix >= a && ix < b) {
                continue; // already reported as an import
            }
            hits.push(Hit {
                offset: ix,
                what: format!("uses std::sync::{lock}"),
            });
        }
    }
    hits.sort_by_key(|h| h.offset);
    hits
}

/// `std::sync::atomic` / `core::sync::atomic` paths (imports and use
/// sites), `static mut` items, and `UnsafeCell` mentions — the raw
/// shared-state escape hatches the happens-before detector cannot see.
pub fn find_atomics(code: &str) -> Vec<Hit> {
    let bytes = code.as_bytes();
    let mut hits = Vec::new();
    for path in ["std::sync::atomic", "core::sync::atomic"] {
        for ix in find_all(code, path) {
            // `core::` must not match inside `libcore::` etc.; the tail
            // may continue (`::AtomicU64`), so only the start is bounded.
            if ix == 0 || !is_ident(bytes[ix - 1]) {
                hits.push(Hit {
                    offset: ix,
                    what: format!("`{path}` path"),
                });
            }
        }
    }
    for ix in find_all(code, "static mut") {
        if bounded(bytes, ix, "static mut".len()) {
            hits.push(Hit {
                offset: ix,
                what: "`static mut` item".to_string(),
            });
        }
    }
    for ix in find_all(code, "UnsafeCell") {
        if bounded(bytes, ix, "UnsafeCell".len()) {
            hits.push(Hit {
                offset: ix,
                what: "`UnsafeCell`".to_string(),
            });
        }
    }
    hits.sort_by_key(|h| h.offset);
    hits.dedup_by_key(|h| h.offset);
    hits
}

/// 1-based line ranges of the bodies of functions named one of `names`
/// (signature through the matching close brace). Used to exempt the FSM
/// transition checkpoints from the `fsm-bypass` rule: the checked
/// `transition_to`/`transition` functions are *where* the state write is
/// supposed to live.
pub fn fn_body_line_ranges(code: &str, names: &[&str]) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            bytes
                .iter()
                .enumerate()
                .filter(|&(_, b)| *b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let line_of = |off: usize| line_starts.partition_point(|&s| s <= off);

    let mut ranges = Vec::new();
    for name in names {
        let needle = format!("fn {name}");
        for start in find_all(code, &needle) {
            if !bounded(bytes, start, needle.len()) {
                continue;
            }
            // Scan to the body's opening brace (past generics, args and
            // any where-clause — none of which contain `{` in this
            // codebase), then brace-match to its close.
            let mut i = start + needle.len();
            while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b';' {
                i += 1;
            }
            if i >= bytes.len() || bytes[i] == b';' {
                continue; // trait method declaration: no body to exempt
            }
            let mut depth = 0usize;
            let mut j = i;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            ranges.push((line_of(start), line_of(j.min(bytes.len() - 1))));
        }
    }
    ranges.sort_unstable();
    ranges
}

/// Direct keyspace/zone FSM state writes: `.state = ...` assignments and
/// `state: ...` fields inside *struct-update* literals (`Foo { state: x,
/// ..old }`). Only files that name `KeyspaceState` or `ZoneState` are
/// scanned at all, so unrelated `state` fields (RNG internals, metadata
/// write cursors) never trip it. Limits: a struct-update literal is
/// recognized by a `..base` (with a real base expression — rest patterns
/// `..}` are ignored) at brace depth 1 within 4 KiB of the field; exact
/// type resolution is out of scope for a lexer, so the rare false
/// positive carries an inline allow with its justification.
pub fn find_fsm_state_writes(code: &str) -> Vec<Hit> {
    let bytes = code.as_bytes();
    let gated = ["KeyspaceState", "ZoneState"].iter().any(|t| {
        find_all(code, t)
            .iter()
            .any(|&ix| bounded(bytes, ix, t.len()))
    });
    if !gated {
        return Vec::new();
    }
    let mut hits = Vec::new();
    for ix in find_all(code, ".state") {
        if is_ident(next_at(bytes, ix + ".state".len())) {
            continue; // `.states`, `.state_of`, ...
        }
        let mut j = ix + ".state".len();
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        // Plain assignment only: `==`, `=>`, and compound ops (`+=` etc.,
        // whose operator precedes the `=`) all fail this test.
        if next_at(bytes, j) == b'=' && !matches!(next_at(bytes, j + 1), b'=' | b'>') {
            hits.push(Hit {
                offset: ix,
                what: "`.state = ...` assignment".to_string(),
            });
        }
    }
    for ix in find_all(code, "state") {
        if !bounded(bytes, ix, "state".len()) {
            continue;
        }
        let mut j = ix + "state".len();
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if next_at(bytes, j) != b':' || next_at(bytes, j + 1) == b':' {
            continue; // not a field init (or a `state::` path)
        }
        // A struct-update base at depth 1 before the literal closes marks
        // this as an in-place overwrite of an existing value's state.
        let mut depth = 1i32;
        let mut k = j + 1;
        let stop = (ix + 4096).min(bytes.len());
        while k < stop && depth > 0 {
            match bytes[k] {
                b'{' | b'(' | b'[' => depth += 1,
                b'}' | b')' | b']' => depth -= 1,
                b'.' if depth == 1 && next_at(bytes, k + 1) == b'.' => {
                    let mut m = k + 2;
                    while m < bytes.len() && bytes[m].is_ascii_whitespace() {
                        m += 1;
                    }
                    if next_at(bytes, m) != b'}' && next_at(bytes, m) != 0 {
                        hits.push(Hit {
                            offset: ix,
                            what: "`state: ...` in a struct-update literal".to_string(),
                        });
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
    }
    hits.sort_by_key(|h| h.offset);
    hits
}

/// Names of structs whose body declares an interior-mutable field
/// (`Atomic*`, `Cell<`, `RefCell<`, `UnsafeCell<`, `OnceCell<`), as
/// `(name, byte offset of the declaration)`. Feeds the cross-file
/// `shared-raw` taint set.
pub fn collect_interior_mutable_structs(code: &str) -> Vec<(String, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for ix in find_all(code, "struct ") {
        if ix > 0 && is_ident(bytes[ix - 1]) {
            continue;
        }
        let mut j = ix + "struct ".len();
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && is_ident(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = code[name_start..j].to_string();
        // Find the body: `{` (brace-match) — tuple and unit structs are
        // covered too, their `(`/`;` terminates the scan harmlessly.
        while j < bytes.len() && !matches!(bytes[j], b'{' | b'(' | b';') {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] == b';' {
            continue;
        }
        let (open, close) = (bytes[j], if bytes[j] == b'{' { b'}' } else { b')' });
        let body_start = j;
        let mut depth = 0usize;
        while j < bytes.len() {
            if bytes[j] == open {
                depth += 1;
            } else if bytes[j] == close {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let body = &code[body_start..j.min(code.len())];
        if interior_mutable_type_in(body) {
            out.push((name, ix));
        }
    }
    out
}

/// Variant names of `enum <name>` in scrubbed code, in declaration
/// order. Lexical: finds the enum keyword, brace-matches the body, and
/// takes the leading identifier of every depth-1 segment (skipping
/// `#[...]` attributes; doc comments are already blanked). Feeds the
/// `status-map` rule's cross-file variant list.
pub fn collect_enum_variants(code: &str, name: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let needle = format!("enum {name}");
    let Some(ix) = find_all(code, &needle)
        .into_iter()
        .find(|&ix| bounded(bytes, ix, needle.len()))
    else {
        return Vec::new();
    };
    let mut j = ix + needle.len();
    while j < bytes.len() && bytes[j] != b'{' {
        j += 1;
    }
    if j >= bytes.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = false;
    while j < bytes.len() {
        let b = bytes[j];
        match b {
            b'{' | b'(' | b'[' => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
                j += 1;
            }
            b'}' | b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                j += 1;
            }
            b',' if depth == 1 => {
                expect_variant = true;
                j += 1;
            }
            b'#' if depth == 1 => {
                // Attribute: skip the bracketed group.
                while j < bytes.len() && bytes[j] != b'[' {
                    j += 1;
                }
                let mut d = 0i32;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => d += 1,
                        b']' => {
                            d -= 1;
                            if d == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ if depth == 1 && expect_variant && is_ident(b) => {
                let start = j;
                while j < bytes.len() && is_ident(bytes[j]) {
                    j += 1;
                }
                out.push(code[start..j].to_string());
                expect_variant = false;
            }
            _ => j += 1,
        }
    }
    out
}

/// Does `text` mention one of the std interior-mutable types, word-bounded?
fn interior_mutable_type_in(text: &str) -> bool {
    let bytes = text.as_bytes();
    for t in ["Cell", "RefCell", "UnsafeCell", "OnceCell"] {
        if find_all(text, t)
            .iter()
            .any(|&ix| bounded(bytes, ix, t.len()) && next_at(bytes, ix + t.len()) != 0)
        {
            return true;
        }
    }
    find_all(text, "Atomic")
        .iter()
        .any(|&ix| (ix == 0 || !is_ident(bytes[ix - 1])) && is_ident(next_at(bytes, ix + 6)))
}

/// `Arc<T>` where `T`'s head type is interior-mutable — either one of the
/// std types directly or a name in `tainted` (structs found by
/// [`collect_interior_mutable_structs`] outside the sync shims). Sharing
/// such a value bypasses both the lock-order and the race detector;
/// library code must wrap a shim lock or `Shared` instead.
pub fn find_arc_wraps(code: &str, tainted: &std::collections::BTreeSet<String>) -> Vec<Hit> {
    let bytes = code.as_bytes();
    let mut hits = Vec::new();
    for ix in find_all(code, "Arc<") {
        // Path-qualified `sync::Arc<` is fine (the `:` before it), but a
        // different type merely *ending* in `Arc` is not ours.
        if ix > 0 && is_ident(bytes[ix - 1]) {
            continue;
        }
        let mut j = ix + "Arc<".len();
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        // Head type path: segments up to the next `<`, `>`, or `,`.
        let head_start = j;
        while j < bytes.len() && (is_ident(bytes[j]) || bytes[j] == b':') {
            j += 1;
        }
        let head = &code[head_start..j];
        let leaf = head.rsplit("::").next().unwrap_or(head);
        let is_std_im = matches!(leaf, "Cell" | "RefCell" | "UnsafeCell" | "OnceCell")
            || (leaf.starts_with("Atomic") && leaf.len() > "Atomic".len());
        if is_std_im || tainted.contains(leaf) {
            hits.push(Hit {
                offset: ix,
                what: format!("`Arc<{leaf}>` shares an interior-mutable type"),
            });
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let x = \"unwrap() inside\"; // .unwrap() in comment\nlet y = 1;\n";
        let s = scrub(src);
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let y = 1;"));
        assert_eq!(s.code.len(), src.len());
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].0, 1);
        assert!(s.comments[0].1.contains(".unwrap() in comment"));
    }

    #[test]
    fn scrub_handles_raw_strings_and_chars() {
        let src = r####"let a = r#"Mutex " inside"#; let b = 'x'; let c = '\''; let d: &'static str = r"ok";"####;
        let s = scrub(src);
        assert!(!s.code.contains("Mutex"));
        assert!(!s.code.contains("inside"));
        assert!(s.code.contains("&'static str"), "lifetime preserved");
        assert!(!s.code.contains('\u{27}') || s.code.contains("'static"));
    }

    #[test]
    fn scrub_handles_nested_block_comments() {
        let src = "/* outer /* Instant::now() */ still comment */ let x = 1;";
        let s = scrub(src);
        assert!(!s.code.contains("Instant"));
        assert!(!s.code.contains("still"));
        assert!(s.code.contains("let x = 1;"));
    }

    #[test]
    fn scrub_handles_hashed_raw_strings() {
        // A `"#` inside a `##`-fenced raw string must not close it, and
        // the `br#` byte-string prefix is recognized too.
        let src = r####"let a = r##"has "# and Mutex inside"##; let b = br#"unwrap() too"#; let ok = 1;"####;
        let s = scrub(src);
        assert!(!s.code.contains("Mutex"), "{}", s.code);
        assert!(!s.code.contains("unwrap"), "{}", s.code);
        assert!(s.code.contains("let ok = 1;"), "{}", s.code);
        // A raw *identifier* is not a raw string: nothing after it is eaten.
        let s = scrub("let r#fn = 1; let live = Instant::now();");
        assert!(s.code.contains("Instant::now"), "{}", s.code);
    }

    #[test]
    fn scrub_handles_deeply_nested_block_comments() {
        let src = "/* 1 /* 2 /* SystemTime::now() */ 2 */ thread::sleep(d); */ let x = 1; /* a /* b */ c */ let y = 2;";
        let s = scrub(src);
        assert!(!s.code.contains("SystemTime"), "{}", s.code);
        assert!(!s.code.contains("sleep"), "depth tracking: {}", s.code);
        assert!(s.code.contains("let x = 1;"), "{}", s.code);
        assert!(s.code.contains("let y = 2;"), "{}", s.code);
    }

    #[test]
    fn lifetime_vs_char_literal_disambiguation() {
        // `<'a>('x')`: the lifetime must not swallow the literal's opener
        // (the old fixed-window scan blanked `'a>('` as a "literal").
        let s =
            scrub("fn f<'a>(c: char) -> &'a str { if c == 'x' { unreachable() } else { q() } }");
        assert!(s.code.contains("<'a>"), "lifetime kept: {}", s.code);
        assert!(s.code.contains("&'a str"), "{}", s.code);
        assert!(!s.code.contains("'x'"), "literal blanked: {}", s.code);
        assert!(s.code.contains("unreachable()"), "{}", s.code);

        // Loop labels and `'static` are lifetimes; `'_'` is a literal.
        let s = scrub("'outer: loop { break 'outer; }; let u = '_'; let l: &'static str;");
        assert!(s.code.contains("'outer: loop"), "{}", s.code);
        assert!(s.code.contains("break 'outer;"), "{}", s.code);
        assert!(!s.code.contains("'_'"), "{}", s.code);
        assert!(s.code.contains("&'static str"), "{}", s.code);

        // Long escapes, multi-byte chars, punctuation chars, byte chars.
        let s = scrub(
            r"let a = '\u{1F600}'; let b = 'é'; let c = '}'; let d = b'\n'; let e = ' '; done();",
        );
        for lit in ["1F600", "é", "'}'", "b'", "' '"] {
            assert!(!s.code.contains(lit), "{lit} blanked: {}", s.code);
        }
        assert!(s.code.contains("done();"), "{}", s.code);

        // An escaped quote literal does not derail the scan.
        let s = scrub(r"let q = '\''; let live = Instant::now();");
        assert!(s.code.contains("Instant::now"), "{}", s.code);
        assert!(!s.code.contains(r"'\''"), "{}", s.code);
    }

    #[test]
    fn line_of_is_one_based() {
        let s = scrub("a\nb\nc\n");
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(2), 2);
        assert_eq!(s.line_of(4), 3);
    }

    #[test]
    fn finds_method_unwraps_only() {
        let code = "x.unwrap(); y.expect(\"gone\"); unwrap(); my_unwrap(); z.unwrap_or(1); w.expect_err(\"e\");";
        let hits = find_unwraps(&scrub(code).code);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].what.contains("unwrap"));
        assert!(hits[1].what.contains("expect"));
    }

    #[test]
    fn finds_wall_clock_reads() {
        let code = "let t = std::time::Instant::now(); let s = SystemTime::now(); fn now() {}";
        let hits = find_wall_clock(code);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn finds_thread_sleeps() {
        let code =
            "thread::sleep(d); std::thread::sleep(d); sleep(d); my_thread::sleeper(); fn sleep() {}";
        let hits = find_thread_sleep(code);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.what.contains("thread::sleep")));
    }

    #[test]
    fn finds_std_sync_imports_and_paths() {
        let code = "use std::sync::{Arc, Mutex};\nlet l: std::sync::RwLock<u8>;\nuse std::sync::atomic::AtomicU64;\nlet a = Arc::new(1);";
        let hits = find_std_sync_locks(code);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].what.contains("Mutex"));
        assert!(hits[1].what.contains("RwLock"));
    }

    #[test]
    fn import_is_not_double_counted() {
        let code = "use std::sync::Mutex;";
        let hits = find_std_sync_locks(code);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn cfg_test_ranges_cover_the_block() {
        let code = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let ranges = test_line_ranges(code);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn finds_raw_thread_spawns() {
        let code = "std::thread::spawn(f);\nthread::Builder::new().spawn(g);\nkvcsd_sim::sync::spawn(h);\nlet spawner = my_thread::spawner();\n";
        let hits = find_thread_spawn(code);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].what, "`thread::spawn`");
        assert_eq!(hits[1].what, "`thread::Builder`");
    }

    #[test]
    fn finds_atomic_escape_hatches() {
        let code = "use std::sync::atomic::AtomicU64;\nstatic mut X: u64 = 0;\nlet c: UnsafeCell<u8>;\ncore::sync::atomic::fence(o);\nstatic muted: u8 = 0;\n";
        let hits = find_atomics(code);
        assert_eq!(hits.len(), 4, "{hits:?}");
    }

    #[test]
    fn fn_body_ranges_cover_named_fns_only() {
        let code = "fn transition_to(&mut self) {\n    self.state = to;\n}\nfn other() {\n    x();\n}\nfn transition(a: u8) {\n    go();\n}\n";
        let ranges = fn_body_line_ranges(code, &["transition_to", "transition"]);
        assert_eq!(ranges, vec![(1, 3), (7, 9)]);
    }

    #[test]
    fn fsm_writes_need_the_content_gate() {
        let ungated = "self.state = x;"; // no KeyspaceState/ZoneState named
        assert!(find_fsm_state_writes(ungated).is_empty());
        let gated = "use KeyspaceState;\nself.state = x;\nself.state == y;\nself.states = z;\nself.state += 1;\nmatch s { S { state: a, .. } => a }\nS { state: b, ..old }\n";
        let hits = find_fsm_state_writes(gated);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].what.contains("assignment"));
        assert!(hits[1].what.contains("struct-update"));
    }

    #[test]
    fn interior_mutable_structs_are_collected() {
        let code = "struct A { n: u64 }\nstruct B { c: Cell<u8> }\nstruct C { a: AtomicUsize }\nstruct D(RefCell<u8>);\n";
        let names: Vec<String> = collect_interior_mutable_structs(code)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["B", "C", "D"]);
    }

    #[test]
    fn enum_variants_are_collected_in_order() {
        let code = "/// doc\npub enum KvStatus {\n    KeyNotFound,\n    #[allow(dead_code)]\n    BadKeyspaceState { state: &'static str, op: &'static str },\n    TransientDeviceError(String),\n    Busy,\n}\npub enum Other { X }";
        let v = collect_enum_variants(&scrub(code).code, "KvStatus");
        assert_eq!(
            v,
            vec![
                "KeyNotFound",
                "BadKeyspaceState",
                "TransientDeviceError",
                "Busy"
            ]
        );
        assert_eq!(collect_enum_variants(code, "Missing"), Vec::<String>::new());
    }

    #[test]
    fn arc_wraps_respect_the_taint_set() {
        let tainted: std::collections::BTreeSet<String> =
            ["Gauge".to_string()].into_iter().collect();
        let code = "Arc<Mutex<u8>>; Arc<AtomicU64>; Arc<std::cell::RefCell<u8>>; Arc<Gauge>; Arc<Clean>; MyArc<AtomicU64>;";
        let hits = find_arc_wraps(code, &tainted);
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert!(hits[0].what.contains("AtomicU64"));
        assert!(hits[1].what.contains("RefCell"));
        assert!(hits[2].what.contains("Gauge"));
    }
}
