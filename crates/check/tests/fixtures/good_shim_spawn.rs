//! Fixture: shim spawns and a reasoned raw-spawn allow scan clean.

use kvcsd_sim::sync::spawn;

pub fn managed() {
    spawn(|| {}).join().ok();
}

pub fn qualified() {
    kvcsd_sim::sync::spawn(|| {}).join().ok();
}

pub fn deliberately_raw() {
    // kvcsd-check: allow(shim-spawn) -- racy fixture needs a thread with no fork edge
    std::thread::spawn(|| {}).join().ok();
}
