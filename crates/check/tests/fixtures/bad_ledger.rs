//! Fixture: media/fabric touches with no IoLedger charge in scope.

impl Array {
    pub fn peek(&self, ppa: u64) -> bool {
        let st = self.channels[0].lock();
        st.pages.contains_key(&ppa)
    }

    pub fn occupy(&self, ns: u64) {
        self.busy_ns.update(|t| t + ns);
    }
}
