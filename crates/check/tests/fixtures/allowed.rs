//! Fixture: every would-be violation carries a valid exemption or sits
//! in a `#[cfg(test)]` region — this file must scan clean.

pub fn head(v: &[u32]) -> u32 {
    // kvcsd-check: allow(unwrap) -- callers are required to pass non-empty slices
    *v.first().unwrap()
}

pub fn tail(v: &[u32]) -> u32 {
    *v.last().expect("non-empty") // kvcsd-check: allow(unwrap) -- same contract as head()
}

pub fn not_a_real_unwrap() -> &'static str {
    // Mentions of ".unwrap()" inside string literals are scrubbed before
    // scanning, as is this comment.
    "never call .unwrap() in library code"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_idiomatic() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        assert_eq!(super::head(&[7, 8]), 7);
    }
}
