//! Fixture: real thread sleeps outside `kvcsd-sim`.

use std::thread;
use std::time::Duration;

pub fn nap() {
    thread::sleep(Duration::from_millis(10));
}

pub fn qualified_nap() {
    std::thread::sleep(Duration::from_micros(1));
}

pub fn sleep(_d: Duration) {
    // A local function named `sleep` is fine; only `thread::sleep` trips.
}
