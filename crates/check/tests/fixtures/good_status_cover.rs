//! Fixture: a coverage file that classifies every variant by name.

pub fn classify(s: &KvStatus) -> u8 {
    match s {
        KvStatus::KeyNotFound => 0,
        KvStatus::Busy => 1,
        KvStatus::MediaError(_) => 2,
    }
}
