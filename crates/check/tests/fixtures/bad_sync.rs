//! Fixture: raw `std::sync` lock use. Never compiled; scanned by the
//! checker's integration tests under a fake library path.

use std::sync::Mutex;

pub struct Counter {
    n: Mutex<u64>,
}

pub fn fresh() -> std::sync::RwLock<Vec<u8>> {
    std::sync::RwLock::new(Vec::new())
}
