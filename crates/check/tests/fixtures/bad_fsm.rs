//! Fixture: keyspace FSM state writes outside the checkpoints. Naming
//! `KeyspaceState` arms the content gate; only the `sneaky` write and
//! the struct-update literal must trip — the `transition_to` body, the
//! comparison, the rest-pattern match and the exempted line are silent.

#[derive(Clone)]
pub struct Ks {
    pub state: KeyspaceState,
    pub pairs: u64,
}

impl Ks {
    pub fn transition_to(&mut self, to: KeyspaceState) {
        self.state = to;
    }

    pub fn sneaky(&mut self) {
        self.state = KeyspaceState::Writable;
    }

    pub fn reworded(&self, st: KeyspaceState) -> Ks {
        Ks {
            state: st,
            ..self.clone()
        }
    }

    pub fn is_empty(&self) -> bool {
        self.state == KeyspaceState::Empty
    }

    pub fn named(k: &Ks) -> bool {
        matches!(k, Ks { state: KeyspaceState::Empty, .. })
    }

    pub fn restore(&mut self, st: KeyspaceState) {
        // kvcsd-check: allow(fsm-bypass) -- decode path reinstalls persisted state verbatim
        self.state = st;
    }
}
