//! Fixture: client library code driving the queue pair lock-step
//! instead of pipelining through the in-flight window.

impl Api {
    pub fn get_now(&self, key: Vec<u8>) -> KvResponse {
        self.qp.execute(KvCommand::Get { ks: self.ks, key })
    }

    pub fn put_now(&self, key: Vec<u8>, value: Vec<u8>) -> KvResponse {
        let cmd = KvCommand::Put {
            ks: self.ks,
            key,
            value,
        };
        self.qp.execute(cmd)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn lock_step_baselines_are_exempt() {
        let qp = test_qp();
        qp.execute(ping());
    }
}
