//! Fixture: a coverage file with a catch-all arm hiding two variants.

pub fn classify(s: &KvStatus) -> u8 {
    match s {
        KvStatus::KeyNotFound => 0,
        _ => 9,
    }
}
