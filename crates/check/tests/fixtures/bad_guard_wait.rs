//! Fixture: shim guards held across charged waits — the exact hazard
//! `guard-across-wait` exists for.

impl Engine {
    pub fn ingest(&self, bytes: u64) {
        let mut stats = self.stats.lock();
        self.gate.admit_write(bytes);
        *stats += bytes;
    }

    pub fn snapshot(&self) -> u64 {
        let view = self.table.read();
        self.clock.advance(10);
        view.len() as u64
    }

    pub fn tick(&self) {
        self.clock.advance(self.stats.lock().pending_ns());
    }
}
