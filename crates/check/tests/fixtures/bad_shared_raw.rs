//! Fixture: `Arc` sharing of std interior-mutable types (the
//! workspace-struct taint variant is exercised by the cross-file context
//! test). Lines 8 and 12 must trip; the exempted function is silent.

use std::cell::RefCell;
use std::sync::Arc;

pub fn leak_counter() -> Arc<RefCell<u64>> {
    Arc::new(RefCell::new(0))
}

pub fn leak_cell(a: Arc<std::cell::Cell<u64>>) -> u64 {
    a.get()
}

// kvcsd-check: allow(shared-raw) -- built once before any thread exists, read-only after publication
pub fn frozen() -> Arc<RefCell<&'static str>> {
    Arc::new(RefCell::new("ok"))
}
