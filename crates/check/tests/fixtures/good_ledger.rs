//! Fixture: every media/fabric touch charges the ledger in the same
//! scope — directly or through a same-crate one-level wrapper.

impl Array {
    pub fn probe(&self, ppa: u64) -> bool {
        self.ledger.bump("page_probes", 1);
        let st = self.channels[0].lock();
        st.pages.contains_key(&ppa)
    }

    pub fn occupy(&self, ns: u64) {
        self.busy_ns.update(|t| t + ns);
        self.ledger.bridge_busy(ns);
    }

    fn charge_probe(&self) {
        self.ledger.bump("page_probes", 1);
    }

    pub fn peek_via_wrapper(&self, ppa: u64) -> bool {
        self.charge_probe();
        self.channels[0].lock().pages.contains_key(&ppa)
    }
}
