//! Fixture: malformed or unused exemptions — the allowlist is checked,
//! not decorative.

pub fn unknown_rule(v: &[u32]) -> u32 {
    // kvcsd-check: allow(panics) -- not a rule name, so this grants nothing
    *v.first().unwrap()
}

pub fn legacy_separator(v: &[u32]) -> u32 {
    // kvcsd-check: allow(unwrap): the pre-v2 colon syntax grants nothing
    *v.last().unwrap()
}

pub fn empty_reason(v: &[u32]) -> u32 {
    // kvcsd-check: allow(unwrap) --
    *v.first().unwrap()
}

// kvcsd-check: allow(time) -- nothing on the next line reads the clock
pub fn idle() {}
