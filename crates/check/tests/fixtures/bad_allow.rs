//! Fixture: malformed or unused exemptions — the allowlist is checked,
//! not decorative.

pub fn unknown_rule(v: &[u32]) -> u32 {
    // kvcsd-check: allow(panics): not a rule name, so this grants nothing
    *v.first().unwrap()
}

pub fn no_reason(v: &[u32]) -> u32 {
    // kvcsd-check: allow(unwrap):
    *v.last().unwrap()
}

// kvcsd-check: allow(time): nothing on the next line reads the clock
pub fn idle() {}
