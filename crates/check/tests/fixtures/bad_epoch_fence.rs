//! Fixture: cluster library code putting bytes on the replication bus
//! directly instead of going through the fenced send path.

impl Router {
    pub fn ship_raw(&self, art: &Artifact) -> u64 {
        self.bus.xmit(art.wire_bytes())
    }

    pub fn leak_bytes(&self, n: u64) {
        self.bus.transfer(n);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn harness_sends_are_exempt() {
        let bus = test_bus();
        bus.xmit(64);
    }
}
