//! Fixture: a sanctioned lock-step round-trip, annotated with a
//! reasoned allow — the tag must be consumed (no unused-allow
//! violation). Pipelined submissions through the window scan clean
//! without any annotation.

impl Prober {
    pub fn handshake(&self) -> KvResponse {
        // kvcsd-check: allow(window-bypass) -- one-shot connection handshake before the window exists; nothing to pipeline
        self.qp.execute(KvCommand::Ping)
    }

    pub fn ingest(&self, cmds: Vec<KvCommand>) {
        let mut ops = Vec::new();
        for cmd in cmds {
            ops.push(self.window.submit(None, cmd));
        }
        for op in ops {
            let _ = self.window.wait(op);
        }
    }
}
