//! Fixture: a pretend wire-status enum for the status-map tests.

#[derive(Debug)]
pub enum KvStatus {
    KeyNotFound,
    Busy,
    MediaError(String),
}
