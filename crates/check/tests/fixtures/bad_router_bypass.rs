//! Fixture: bare device construction outside the cluster crate. Both
//! constructor paths must trip; the type in a signature, the string
//! mention, the `#[cfg(test)]` region and the allowed line are silent.

use kvcsd_core::KvCsdDevice;

pub fn bare(zns: Zns, cfg: Cfg) -> KvCsdDevice {
    KvCsdDevice::new(zns, CostModel::default(), cfg)
}

pub fn bare_reopen(zns: Zns, cfg: Cfg) -> KvCsdDevice {
    KvCsdDevice::reopen(zns, CostModel::default(), cfg)
}

pub fn takes_a_device(_dev: &KvCsdDevice) {
    // Naming the type is fine; only the constructors trip.
    let _tag = "KvCsdDevice::new is also fine inside a string";
}

pub fn sanctioned(zns: Zns, cfg: Cfg) -> KvCsdDevice {
    // kvcsd-check: allow(router-bypass) -- recovery tool reopens the raw device image
    KvCsdDevice::reopen(zns, CostModel::default(), cfg)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_may_build_devices() {
        let _dev = KvCsdDevice::new(zns(), CostModel::default(), cfg());
    }
}
