//! Fixture: raw shared-state escape hatches, scanned under a fake
//! library path. Lines 5, 7, 10 and 13 must each trip `atomics`; the
//! exempted block at the end must stay silent.

use std::sync::atomic::{AtomicU64, Ordering};

static mut SCRATCH: u64 = 0;

pub struct Cellish {
    slot: std::cell::UnsafeCell<u64>,
}

pub fn load(c: &core::sync::atomic::AtomicU32) -> u32 {
    c.load(Ordering::SeqCst)
}

pub fn seeded() -> u64 {
    // kvcsd-check: allow(atomics) -- control arm for the Shared<T> overhead benchmark
    let x = std::sync::atomic::AtomicU64::new(1);
    x.into_inner()
}
