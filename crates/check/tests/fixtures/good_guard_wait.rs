//! Fixture: clean guard/wait interleavings — block scoping, explicit
//! drop, and waiting before binding all keep guards off the stall path.

impl Engine {
    pub fn ingest(&self, bytes: u64) {
        {
            let mut stats = self.stats.lock();
            *stats += bytes;
        }
        self.gate.admit_write(bytes);
    }

    pub fn record(&self, bytes: u64) {
        self.gate.admit_query(bytes);
        let mut stats = self.stats.lock();
        *stats += bytes;
    }

    pub fn drain(&self) {
        let pending = self.queue.lock();
        let n = pending.pending_ns();
        drop(pending);
        self.clock.advance(n);
    }
}
