//! Fixture: panicking accessors in non-test library code.

pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn tail(v: &[u32]) -> u32 {
    *v.last().expect("non-empty input")
}

pub fn fine(v: &[u32]) -> u32 {
    // `unwrap_or` and friends are total; only `.unwrap()` / `.expect(...)`
    // trip the rule.
    v.first().copied().unwrap_or(0)
}
