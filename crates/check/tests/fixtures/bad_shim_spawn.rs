//! Fixture: raw `std::thread` spawns outside `crates/sim`. Never
//! compiled; scanned by the checker's integration tests under a fake
//! library path.

use std::thread;

pub fn bare() {
    thread::spawn(|| {}).join().ok();
}

pub fn named() {
    let _ = thread::Builder::new().name("w".into()).spawn(|| {});
}

#[cfg(test)]
mod tests {
    // No test-region carve-out: a raw spawn in a test hides the thread
    // from the detectors just the same.
    fn in_tests_too() {
        std::thread::spawn(|| {}).join().ok();
    }
}

pub fn spawn() {
    // A local function named `spawn` is fine; only `thread::spawn` and
    // `thread::Builder` trip.
}
