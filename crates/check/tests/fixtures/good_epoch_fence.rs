//! Fixture: a sanctioned direct bus send, annotated with a reasoned
//! allow — the tag must be consumed (no unused-allow violation).

impl Prober {
    pub fn measure_link(&self) -> u64 {
        // kvcsd-check: allow(epoch-fence) -- link probe carries no artifact; nothing to fence
        self.bus.xmit(PROBE_BYTES)
    }
}
