//! Scope-tree engine tests through the public API: nested blocks, early
//! `return`, `match` arms and closures — the shapes the `guard-across-wait`
//! rule's live ranges must get right.

use kvcsd_check::lexer::scrub;
use kvcsd_check::scope::{analyze, FnScope, GuardKind};

fn fns(src: &str) -> Vec<FnScope> {
    analyze(&scrub(src).code)
}

#[test]
fn nested_blocks_bound_guard_lifetimes() {
    let src = "fn f(&self) {\n    outer_before();\n    {\n        {\n            let g = self.m.lock();\n            deep();\n        }\n        mid();\n    }\n    outer_after();\n}";
    let s = fns(src);
    let g = &s[0].guards[0];
    assert_eq!(g.kind, GuardKind::MutexGuard);
    let deep = src.find("deep").expect("present");
    let mid = src.find("mid").expect("present");
    let after = src.find("outer_after").expect("present");
    assert!(deep >= g.live_start && deep < g.live_end, "same block");
    assert!(mid >= g.live_end, "parent block is out of range");
    assert!(after >= g.live_end, "function tail is out of range");
}

#[test]
fn early_return_keeps_the_textual_range() {
    // Live ranges are textual: code after an early `return` inside the
    // same block is still reachable on the other path, so it stays in
    // range — the conservative direction for a lint.
    let src = "fn f(&self) -> u8 {\n    let g = self.m.lock();\n    if empty {\n        return 0;\n    }\n    tail();\n    1\n}";
    let s = fns(src);
    let g = &s[0].guards[0];
    let tail = src.find("tail").expect("present");
    assert!(tail >= g.live_start && tail < g.live_end);
}

#[test]
fn match_arms_are_separate_scopes() {
    let src = "fn f(&self) {\n    match cmd {\n        Cmd::Put => {\n            let w = self.tbl.write();\n            apply();\n        }\n        Cmd::Get => {\n            serve();\n        }\n    }\n    finish();\n}";
    let s = fns(src);
    let g = &s[0].guards[0];
    assert_eq!(g.kind, GuardKind::WriteGuard);
    let apply = src.find("apply").expect("present");
    let serve = src.find("serve").expect("present");
    let finish = src.find("finish").expect("present");
    assert!(apply >= g.live_start && apply < g.live_end);
    assert!(serve >= g.live_end, "sibling arm out of range");
    assert!(finish >= g.live_end, "post-match code out of range");
}

#[test]
fn closures_stay_in_the_enclosing_range() {
    // A wait captured into a closure may run later, but the engine is
    // deliberately conservative: the call site is inside the textual
    // range, so it counts (allowlist the rare deliberate deferral).
    let src = "fn f(&self) {\n    let g = self.m.lock();\n    queue.push(move || self.clock.advance(5));\n}";
    let s = fns(src);
    let g = &s[0].guards[0];
    let advance = s[0]
        .calls
        .iter()
        .find(|c| c.leaf == "advance")
        .expect("closure-body call collected");
    assert!(advance.offset >= g.live_start && advance.offset < g.live_end);
    assert!(advance.method, "receiver call is recognized as a method");
}

#[test]
fn explicit_drop_and_shadowing_rebind() {
    let src = "fn f(&self) {\n    let g = self.m.lock();\n    first(&g);\n    drop(g);\n    between();\n    let g = self.m.lock();\n    second(&g);\n}";
    let s = fns(src);
    assert_eq!(s[0].guards.len(), 2, "{:#?}", s[0].guards);
    let (a, b) = (&s[0].guards[0], &s[0].guards[1]);
    assert!(a.dropped_explicitly);
    let between = src.find("between").expect("present");
    assert!(between >= a.live_end, "after the drop");
    assert!(between < b.offset, "before the rebind");
    let second = src.find("second").expect("present");
    assert!(second >= b.live_start && second < b.live_end);
}

#[test]
fn reservation_guards_are_tracked() {
    let src = "fn f(&self) -> bool {\n    let Some(r) = self.budget.reserve(len) else {\n        return false;\n    };\n    self.install(r);\n    true\n}";
    let s = fns(src);
    // `let Some(r) = ...` is a destructuring pattern: tracked, unnamed.
    assert_eq!(s[0].guards.len(), 1, "{:#?}", s[0].guards);
    assert_eq!(s[0].guards[0].kind, GuardKind::Reservation);
    assert!(s[0].guards[0].name.is_empty());
}
