//! Integration tests for `kvcsd-check`: the seeded fixtures under
//! `tests/fixtures/` must trip exactly the rules they seed, files with
//! valid exemptions must scan clean, and the binary must exit non-zero
//! on a dirty tree and zero on the real workspace.

use kvcsd_check::{
    build_context, check_source, check_source_with_context, rules_for, RuleSet, Violation,
};
use std::path::Path;

/// Scan a fixture as if it were library source, so every rule applies.
/// (The literal `tests/fixtures/` path is exempt from all rules — that is
/// itself asserted below — hence the pretend path.)
fn scan(name: &str, source: &str) -> Vec<Violation> {
    let rel = format!("crates/demo/src/{name}");
    check_source(Path::new(&rel), &rel, source)
}

#[test]
fn fixture_trees_are_never_checked() {
    assert_eq!(
        rules_for("crates/check/tests/fixtures/bad_sync.rs"),
        RuleSet::none()
    );
    assert_eq!(rules_for("target/debug/build/out.rs"), RuleSet::none());
}

#[test]
fn seeded_sync_violations_are_flagged() {
    let v = scan("bad_sync.rs", include_str!("fixtures/bad_sync.rs"));
    assert!(v.len() >= 2, "import + direct path, got {v:#?}");
    assert!(v.iter().all(|v| v.rule == "sync"), "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("kvcsd_sim::sync")));
}

#[test]
fn seeded_unwrap_violations_are_flagged() {
    let v = scan("bad_unwrap.rs", include_str!("fixtures/bad_unwrap.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![4, 8], "unwrap_or must not trip it: {v:#?}");
    assert!(v.iter().all(|v| v.rule == "unwrap"));
}

#[test]
fn seeded_time_violations_are_flagged() {
    let v = scan("bad_time.rs", include_str!("fixtures/bad_time.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![6, 10], "the `use` line alone is fine: {v:#?}");
    assert!(v.iter().all(|v| v.rule == "time"));
}

#[test]
fn seeded_sleep_violations_are_flagged() {
    let v = scan("bad_sleep.rs", include_str!("fixtures/bad_sleep.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![7, 11],
        "a local fn named sleep must not trip it: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "sleep"));
    assert!(v.iter().any(|v| v.message.contains("virtual clock")));
}

#[test]
fn sleep_rule_exempts_the_sim_crate_only() {
    assert!(rules_for("crates/sim/src/clock.rs").sync);
    assert!(!rules_for("crates/sim/src/clock.rs").sleep);
    assert!(rules_for("crates/core/src/device.rs").sleep);
    assert!(rules_for("tests/overload.rs").sleep);
}

#[test]
fn sleep_allows_are_honored() {
    let v = scan(
        "allowed_sleep.rs",
        "pub fn pace() {\n    // kvcsd-check: allow(sleep): wall-time pacing knob for manual demos\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n",
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn seeded_atomics_violations_are_flagged() {
    let v = scan("bad_atomics.rs", include_str!("fixtures/bad_atomics.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![5, 7, 10, 13],
        "import, static mut, UnsafeCell, core path — and nothing else: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "atomics"));
    assert!(v.iter().any(|v| v.message.contains("Shared")));
}

#[test]
fn seeded_fsm_violations_are_flagged() {
    let v = scan("bad_fsm.rs", include_str!("fixtures/bad_fsm.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![18, 23],
        "checkpoint body, `==`, rest pattern and the allow stay silent: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "fsm-bypass"));
    assert!(v.iter().any(|v| v.message.contains("transition_to")));
}

#[test]
fn seeded_shared_raw_violations_are_flagged() {
    let v = scan(
        "bad_shared_raw.rs",
        include_str!("fixtures/bad_shared_raw.rs"),
    );
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![8, 12], "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "shared-raw"));
}

#[test]
fn shared_raw_taint_crosses_files() {
    let gauge = "pub struct HitGauge {\n    hits: std::cell::Cell<u64>,\n}\n";
    let share =
        "use std::sync::Arc;\npub fn publish(g: HitGauge) -> Arc<HitGauge> {\n    Arc::new(g)\n}\n";
    let sources = vec![
        ("crates/demo/src/gauge.rs".to_string(), gauge.to_string()),
        ("crates/demo/src/share.rs".to_string(), share.to_string()),
    ];
    let ctx = build_context(&sources);
    assert!(
        ctx.interior_mutable.contains_key("HitGauge"),
        "pass 1 must collect the tainted struct: {ctx:?}"
    );
    let rel = "crates/demo/src/share.rs";
    let v = check_source_with_context(Path::new(rel), rel, share, &ctx);
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].rule, "shared-raw");
    assert!(
        v[0].message.contains("gauge.rs"),
        "report names the defining file: {}",
        v[0].message
    );
    // Without the context the same file scans clean — the taint really
    // is cross-file knowledge.
    let solo = scan("share.rs", share);
    assert!(solo.is_empty(), "{solo:#?}");
}

#[test]
fn sim_substrate_is_exempt_from_the_shared_state_rules() {
    assert!(!rules_for("crates/sim/src/clock.rs").atomics);
    assert!(!rules_for("crates/sim/src/perturb.rs").atomics);
    assert!(rules_for("crates/core/src/device.rs").atomics);
    assert!(
        rules_for("tests/stress_mt.rs").atomics,
        "harness stop flags must use Shared<bool>, not AtomicBool"
    );
    assert!(!rules_for("tests/stress_mt.rs").shared_raw);
    assert!(rules_for("crates/core/src/keyspace.rs").fsm_bypass);
    assert!(rules_for("crates/flash/src/zns.rs").fsm_bypass);
}

#[test]
fn seeded_router_bypass_violations_are_flagged() {
    let v = scan(
        "bad_router_bypass.rs",
        include_str!("fixtures/bad_router_bypass.rs"),
    );
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![8, 12],
        "type mentions, strings, cfg(test) and the allow stay silent: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "router-bypass"));
    assert!(v.iter().any(|v| v.message.contains("cluster router")));
}

#[test]
fn router_bypass_exempts_the_sanctioned_constructors() {
    assert!(!rules_for("crates/cluster/src/shard.rs").router_bypass);
    assert!(!rules_for("crates/sim/src/fault.rs").router_bypass);
    assert!(
        !rules_for("crates/bench/src/testbed.rs").router_bypass,
        "the bench testbed measures bare devices in isolation"
    );
    assert!(!rules_for("tests/cluster_torture.rs").router_bypass);
    assert!(!rules_for("examples/quickstart.rs").router_bypass);
    assert!(rules_for("crates/core/src/device.rs").router_bypass);
    assert!(rules_for("crates/client/src/api.rs").router_bypass);
    assert!(rules_for("crates/hostsim/src/lib.rs").router_bypass);
}

#[test]
fn valid_allows_and_test_regions_scan_clean() {
    let v = scan("allowed.rs", include_str!("fixtures/allowed.rs"));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn bad_allows_are_themselves_violations() {
    let v = scan("bad_allow.rs", include_str!("fixtures/bad_allow.rs"));
    let mut kinds: Vec<(usize, &str)> = v.iter().map(|v| (v.line, v.rule)).collect();
    kinds.sort();
    assert_eq!(
        kinds,
        vec![
            (5, "allow"),   // unknown rule name
            (6, "unwrap"),  // ...so the unwrap below it still fires
            (10, "allow"),  // empty reason
            (11, "unwrap"), // ...likewise
            (14, "allow"),  // unused allow
        ],
        "{v:#?}"
    );
    assert!(v.iter().any(|v| v.message.contains("unknown rule")));
    assert!(v.iter().any(|v| v.message.contains("no reason")));
    assert!(v.iter().any(|v| v.message.contains("unused allow")));
}

// ---- binary-level tests -------------------------------------------------

fn run_check(args: &[&str]) -> (bool, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_kvcsd-check"))
        .args(args)
        .output()
        .expect("spawn kvcsd-check");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Build a throwaway tree containing one file made of `lines`.
fn temp_tree(tag: &str, lines: &[&str]) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("kvcsd-check-{}-{tag}", std::process::id()));
    let src = root.join("src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(src.join("lib.rs"), lines.join("\n")).expect("write");
    root
}

#[test]
fn binary_exits_nonzero_on_dirty_tree() {
    let root = temp_tree("dirty", &["use std::sync::Mutex;", "pub fn f() {}"]);
    let (ok, stdout) = run_check(&["--root", root.to_str().expect("utf8 path")]);
    std::fs::remove_dir_all(&root).ok();
    assert!(!ok, "expected failure exit: {stdout}");
    assert!(stdout.contains("[sync]"), "{stdout}");
    assert!(stdout.contains("violation(s)"), "{stdout}");
}

#[test]
fn binary_rule_filter_narrows_the_scan() {
    let root = temp_tree("filtered", &["use std::sync::Mutex;", "pub fn f() {}"]);
    let (ok, stdout) = run_check(&[
        "--root",
        root.to_str().expect("utf8 path"),
        "--rule",
        "time",
    ]);
    std::fs::remove_dir_all(&root).ok();
    assert!(ok, "sync finding must be filtered out: {stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    // The acceptance gate: the real tree stays clean. Matches the CI
    // `check` job, which runs the binary with its default root.
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let (ok, stdout) = run_check(&["--root", ws.to_str().expect("utf8 path")]);
    assert!(ok, "workspace must be checker-clean:\n{stdout}");
}

#[test]
fn binary_rejects_unknown_arguments() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_kvcsd-check"))
        .arg("--frobnicate")
        .output()
        .expect("spawn kvcsd-check");
    assert_eq!(out.status.code(), Some(2));
}
