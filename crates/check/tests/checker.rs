//! Integration tests for `kvcsd-check`: the seeded fixtures under
//! `tests/fixtures/` must trip exactly the rules they seed, files with
//! valid exemptions must scan clean, and the binary must exit non-zero
//! on a dirty tree and zero on the real workspace.

use kvcsd_check::{
    build_context, check_source, check_source_with_context, rules_for, RuleSet, Violation,
};
use std::path::Path;

/// Scan a fixture as if it were library source, so every rule applies.
/// (The literal `tests/fixtures/` path is exempt from all rules — that is
/// itself asserted below — hence the pretend path.)
fn scan(name: &str, source: &str) -> Vec<Violation> {
    let rel = format!("crates/demo/src/{name}");
    check_source(Path::new(&rel), &rel, source)
}

#[test]
fn fixture_trees_are_never_checked() {
    assert_eq!(
        rules_for("crates/check/tests/fixtures/bad_sync.rs"),
        RuleSet::none()
    );
    assert_eq!(rules_for("target/debug/build/out.rs"), RuleSet::none());
}

#[test]
fn seeded_sync_violations_are_flagged() {
    let v = scan("bad_sync.rs", include_str!("fixtures/bad_sync.rs"));
    assert!(v.len() >= 2, "import + direct path, got {v:#?}");
    assert!(v.iter().all(|v| v.rule == "sync"), "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("kvcsd_sim::sync")));
}

#[test]
fn seeded_unwrap_violations_are_flagged() {
    let v = scan("bad_unwrap.rs", include_str!("fixtures/bad_unwrap.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![4, 8], "unwrap_or must not trip it: {v:#?}");
    assert!(v.iter().all(|v| v.rule == "unwrap"));
}

#[test]
fn seeded_time_violations_are_flagged() {
    let v = scan("bad_time.rs", include_str!("fixtures/bad_time.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![6, 10], "the `use` line alone is fine: {v:#?}");
    assert!(v.iter().all(|v| v.rule == "time"));
}

#[test]
fn seeded_sleep_violations_are_flagged() {
    let v = scan("bad_sleep.rs", include_str!("fixtures/bad_sleep.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![7, 11],
        "a local fn named sleep must not trip it: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "sleep"));
    assert!(v.iter().any(|v| v.message.contains("virtual clock")));
}

#[test]
fn sleep_rule_exempts_the_sim_crate_only() {
    assert!(rules_for("crates/sim/src/clock.rs").sync);
    assert!(!rules_for("crates/sim/src/clock.rs").sleep);
    assert!(rules_for("crates/core/src/device.rs").sleep);
    assert!(rules_for("tests/overload.rs").sleep);
}

#[test]
fn sleep_allows_are_honored() {
    let v = scan(
        "allowed_sleep.rs",
        "pub fn pace() {\n    // kvcsd-check: allow(sleep) -- wall-time pacing knob for manual demos\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n",
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn seeded_atomics_violations_are_flagged() {
    let v = scan("bad_atomics.rs", include_str!("fixtures/bad_atomics.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![5, 7, 10, 13],
        "import, static mut, UnsafeCell, core path — and nothing else: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "atomics"));
    assert!(v.iter().any(|v| v.message.contains("Shared")));
}

#[test]
fn seeded_fsm_violations_are_flagged() {
    let v = scan("bad_fsm.rs", include_str!("fixtures/bad_fsm.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![18, 23],
        "checkpoint body, `==`, rest pattern and the allow stay silent: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "fsm-bypass"));
    assert!(v.iter().any(|v| v.message.contains("transition_to")));
}

#[test]
fn seeded_shared_raw_violations_are_flagged() {
    let v = scan(
        "bad_shared_raw.rs",
        include_str!("fixtures/bad_shared_raw.rs"),
    );
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![8, 12], "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "shared-raw"));
}

#[test]
fn shared_raw_taint_crosses_files() {
    let gauge = "pub struct HitGauge {\n    hits: std::cell::Cell<u64>,\n}\n";
    let share =
        "use std::sync::Arc;\npub fn publish(g: HitGauge) -> Arc<HitGauge> {\n    Arc::new(g)\n}\n";
    let sources = vec![
        ("crates/demo/src/gauge.rs".to_string(), gauge.to_string()),
        ("crates/demo/src/share.rs".to_string(), share.to_string()),
    ];
    let ctx = build_context(&sources);
    assert!(
        ctx.interior_mutable.contains_key("HitGauge"),
        "pass 1 must collect the tainted struct: {ctx:?}"
    );
    let rel = "crates/demo/src/share.rs";
    let v = check_source_with_context(Path::new(rel), rel, share, &ctx);
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].rule, "shared-raw");
    assert!(
        v[0].message.contains("gauge.rs"),
        "report names the defining file: {}",
        v[0].message
    );
    // Without the context the same file scans clean — the taint really
    // is cross-file knowledge.
    let solo = scan("share.rs", share);
    assert!(solo.is_empty(), "{solo:#?}");
}

#[test]
fn sim_substrate_is_exempt_from_the_shared_state_rules() {
    assert!(!rules_for("crates/sim/src/clock.rs").atomics);
    assert!(!rules_for("crates/sim/src/perturb.rs").atomics);
    assert!(rules_for("crates/core/src/device.rs").atomics);
    assert!(
        rules_for("tests/stress_mt.rs").atomics,
        "harness stop flags must use Shared<bool>, not AtomicBool"
    );
    assert!(!rules_for("tests/stress_mt.rs").shared_raw);
    assert!(rules_for("crates/core/src/keyspace.rs").fsm_bypass);
    assert!(rules_for("crates/flash/src/zns.rs").fsm_bypass);
}

#[test]
fn seeded_shim_spawn_violations_are_flagged() {
    let v = scan(
        "bad_shim_spawn.rs",
        include_str!("fixtures/bad_shim_spawn.rs"),
    );
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![8, 12, 20],
        "bare spawn, Builder, and the cfg(test) spawn — no test carve-out: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "shim-spawn"), "{v:#?}");
    assert!(v
        .iter()
        .any(|v| v.message.contains("kvcsd_sim::sync::spawn")));
    assert!(v
        .iter()
        .any(|v| v.message.contains("mc controlled scheduler")));
}

#[test]
fn shim_spawns_and_reasoned_raw_spawn_allows_scan_clean() {
    let v = scan(
        "good_shim_spawn.rs",
        include_str!("fixtures/good_shim_spawn.rs"),
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn shim_spawn_exempts_the_sim_crate_only() {
    assert!(!rules_for("crates/sim/src/sync.rs").shim_spawn);
    assert!(
        !rules_for("crates/sim/src/mc.rs").shim_spawn,
        "the controlled scheduler's managed threads are raw by definition"
    );
    assert!(rules_for("crates/core/src/dram.rs").shim_spawn);
    assert!(rules_for("crates/mc/src/harnesses.rs").shim_spawn);
    assert!(
        rules_for("tests/stress_mt.rs").shim_spawn && rules_for("tests/race.rs").shim_spawn,
        "harness threads must be shim-spawned (racy fixtures carry allows)"
    );
}

#[test]
fn mc_scheduler_is_exempt_from_the_sync_rule() {
    assert!(
        !rules_for("crates/sim/src/mc.rs").sync,
        "the scheduler parks threads on a raw Mutex/Condvar below the shims"
    );
    assert!(rules_for("crates/sim/src/clock.rs").sync);
    assert!(rules_for("crates/mc/src/explore.rs").sync);
}

#[test]
fn seeded_router_bypass_violations_are_flagged() {
    let v = scan(
        "bad_router_bypass.rs",
        include_str!("fixtures/bad_router_bypass.rs"),
    );
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![8, 12],
        "type mentions, strings, cfg(test) and the allow stay silent: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "router-bypass"));
    assert!(v.iter().any(|v| v.message.contains("cluster router")));
}

#[test]
fn router_bypass_exempts_the_sanctioned_constructors() {
    assert!(!rules_for("crates/cluster/src/shard.rs").router_bypass);
    assert!(!rules_for("crates/sim/src/fault.rs").router_bypass);
    assert!(
        !rules_for("crates/bench/src/testbed.rs").router_bypass,
        "the bench testbed measures bare devices in isolation"
    );
    assert!(!rules_for("tests/cluster_torture.rs").router_bypass);
    assert!(!rules_for("examples/quickstart.rs").router_bypass);
    assert!(rules_for("crates/core/src/device.rs").router_bypass);
    assert!(rules_for("crates/client/src/api.rs").router_bypass);
    assert!(rules_for("crates/hostsim/src/lib.rs").router_bypass);
}

#[test]
fn valid_allows_and_test_regions_scan_clean() {
    let v = scan("allowed.rs", include_str!("fixtures/allowed.rs"));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn bad_allows_are_themselves_violations() {
    let v = scan("bad_allow.rs", include_str!("fixtures/bad_allow.rs"));
    let mut kinds: Vec<(usize, &str)> = v.iter().map(|v| (v.line, v.rule)).collect();
    kinds.sort();
    assert_eq!(
        kinds,
        vec![
            (5, "allow"),   // unknown rule name
            (6, "unwrap"),  // ...so the unwrap below it still fires
            (10, "allow"),  // legacy `:` separator grants nothing
            (11, "unwrap"), // ...likewise
            (15, "allow"),  // empty reason after ` -- `
            (16, "unwrap"), // ...likewise
            (19, "allow"),  // unused allow
        ],
        "{v:#?}"
    );
    assert!(v.iter().any(|v| v.message.contains("unknown rule")));
    assert!(v.iter().any(|v| v.message.contains("without ` -- reason`")));
    assert!(v.iter().any(|v| v.message.contains("empty reason")));
    assert!(v.iter().any(|v| v.message.contains("unused allow")));
}

// ---- flow rules (scope-tree engine) -------------------------------------

#[test]
fn seeded_guard_across_wait_violations_are_flagged() {
    let v = scan(
        "bad_guard_wait.rs",
        include_str!("fixtures/bad_guard_wait.rs"),
    );
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![7, 13, 18],
        "admission stall, clock charge, temporary in args: {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "guard-across-wait"));
    assert!(v.iter().any(|v| v.message.contains("Mutex guard `stats`")));
    assert!(v.iter().any(|v| v.message.contains("read guard `view`")));
    assert!(v.iter().any(|v| v.message.contains("temporary guard")));
}

#[test]
fn clean_guard_wait_interleavings_scan_clean() {
    let v = scan(
        "good_guard_wait.rs",
        include_str!("fixtures/good_guard_wait.rs"),
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn guard_across_wait_sees_one_level_wrappers() {
    let wrapper =
        "impl Device {\n    pub fn charge_wait(&self, ns: u64) {\n        self.clock.advance(ns);\n    }\n}\n";
    let holder = "impl Device {\n    pub fn commit(&self) {\n        let log = self.log.lock();\n        self.charge_wait(5);\n        log.seal();\n    }\n}\n";
    let sources = vec![
        ("crates/demo/src/device.rs".to_string(), wrapper.to_string()),
        ("crates/demo/src/commit.rs".to_string(), holder.to_string()),
    ];
    let ctx = build_context(&sources);
    let rel = "crates/demo/src/commit.rs";
    let v = check_source_with_context(Path::new(rel), rel, holder, &ctx);
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].rule, "guard-across-wait");
    assert!(
        v[0].message.contains("charge_wait") && v[0].message.contains("device.rs"),
        "one-level summary names the wrapper and its defining file: {}",
        v[0].message
    );
    // Without the cross-file summary the same file scans clean — the
    // wrapper knowledge really is one call level deep.
    let solo = scan("commit.rs", holder);
    assert!(solo.is_empty(), "{solo:#?}");
}

#[test]
fn guard_across_wait_exempts_substrate_and_bench() {
    assert!(rules_for("crates/core/src/device.rs").guard_across_wait);
    assert!(rules_for("crates/cluster/src/router.rs").guard_across_wait);
    assert!(!rules_for("crates/sim/src/bus.rs").guard_across_wait);
    assert!(!rules_for("crates/bench/src/testbed.rs").guard_across_wait);
    assert!(!rules_for("tests/cluster_torture.rs").guard_across_wait);
}

#[test]
fn seeded_ledger_charge_violations_are_flagged() {
    let rel = "crates/flash/src/demo.rs";
    let v = check_source(Path::new(rel), rel, include_str!("fixtures/bad_ledger.rs"));
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![6, 10], "page store + bus occupancy: {v:#?}");
    assert!(v.iter().all(|v| v.rule == "ledger-charge"));
    assert!(v.iter().any(|v| v.message.contains("NAND page store")));
    assert!(v.iter().any(|v| v.message.contains("bus occupancy")));
}

#[test]
fn charged_media_touches_scan_clean() {
    let rel = "crates/flash/src/demo.rs";
    let src = include_str!("fixtures/good_ledger.rs");
    let sources = vec![(rel.to_string(), src.to_string())];
    let ctx = build_context(&sources);
    let v = check_source_with_context(Path::new(rel), rel, src, &ctx);
    assert!(
        v.is_empty(),
        "direct charges and the same-crate wrapper both count: {v:#?}"
    );
}

#[test]
fn ledger_charge_scope_is_flash_and_sim_library_code() {
    assert!(rules_for("crates/flash/src/nand.rs").ledger_charge);
    assert!(rules_for("crates/sim/src/bus.rs").ledger_charge);
    assert!(!rules_for("crates/sim/src/ledger.rs").ledger_charge);
    assert!(!rules_for("crates/core/src/device.rs").ledger_charge);
    assert!(!rules_for("crates/flash/tests/nand_torture.rs").ledger_charge);
}

#[test]
fn seeded_epoch_fence_violations_are_flagged() {
    let rel = "crates/cluster/src/demo.rs";
    let v = check_source(
        Path::new(rel),
        rel,
        include_str!("fixtures/bad_epoch_fence.rs"),
    );
    let hits: Vec<(usize, &str)> = v.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(
        hits,
        vec![(6, "epoch-fence"), (10, "epoch-fence")],
        "xmit + transfer flagged, cfg(test) send exempt: {v:#?}"
    );
    assert!(v.iter().any(|v| v.message.contains("`BusResource::xmit`")));
    assert!(v
        .iter()
        .any(|v| v.message.contains("`BusResource::transfer`")));
    assert!(v.iter().all(|v| v.message.contains("fenced send path")));
}

#[test]
fn reasoned_epoch_fence_allow_scans_clean() {
    let rel = "crates/cluster/src/demo.rs";
    let v = check_source(
        Path::new(rel),
        rel,
        include_str!("fixtures/good_epoch_fence.rs"),
    );
    assert!(v.is_empty(), "allow consumed, no unused-allow: {v:#?}");
}

#[test]
fn epoch_fence_scope_is_cluster_library_minus_the_send_path() {
    assert!(rules_for("crates/cluster/src/router.rs").epoch_fence);
    assert!(rules_for("crates/cluster/src/shard.rs").epoch_fence);
    assert!(
        !rules_for("crates/cluster/src/replica.rs").epoch_fence,
        "the fenced send path itself is the sanctioned sender"
    );
    assert!(
        !rules_for("crates/sim/src/bus.rs").epoch_fence,
        "the sim layer implements the primitives"
    );
    assert!(!rules_for("tests/partition.rs").epoch_fence);
    assert!(!rules_for("crates/client/src/api.rs").epoch_fence);
}

#[test]
fn seeded_window_bypass_violations_are_flagged() {
    let rel = "crates/client/src/demo.rs";
    let v = check_source(
        Path::new(rel),
        rel,
        include_str!("fixtures/bad_window_bypass.rs"),
    );
    let hits: Vec<(usize, &str)> = v.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(
        hits,
        vec![(6, "window-bypass"), (15, "window-bypass")],
        "both execute calls flagged, cfg(test) baseline exempt: {v:#?}"
    );
    assert!(v
        .iter()
        .all(|v| v.message.contains("InflightWindow") && v.message.contains("lock-step")));
}

#[test]
fn reasoned_window_bypass_allow_and_pipelined_path_scan_clean() {
    let rel = "crates/client/src/demo.rs";
    let v = check_source(
        Path::new(rel),
        rel,
        include_str!("fixtures/good_window_bypass.rs"),
    );
    assert!(v.is_empty(), "allow consumed, window path clean: {v:#?}");
}

#[test]
fn window_bypass_scope_is_client_and_cluster_minus_the_window_module() {
    assert!(rules_for("crates/client/src/api.rs").window_bypass);
    assert!(rules_for("crates/client/src/accel.rs").window_bypass);
    assert!(rules_for("crates/cluster/src/router.rs").window_bypass);
    assert!(
        !rules_for("crates/client/src/window.rs").window_bypass,
        "the in-flight window is the sanctioned transport driver"
    );
    assert!(
        !rules_for("crates/proto/src/transport.rs").window_bypass,
        "the proto layer owns execute itself"
    );
    assert!(!rules_for("crates/bench/src/bin/ingest.rs").window_bypass);
    assert!(!rules_for("tests/pipeline.rs").window_bypass);
}

#[test]
fn pipeline_submit_and_poll_are_charged_waits() {
    let src = "impl Pump {\n\
               \x20   pub fn drive(&self) {\n\
               \x20       let stats = self.stats.lock();\n\
               \x20       self.qp.submit(ping());\n\
               \x20       stats.note();\n\
               \x20   }\n\
               \x20   pub fn drain(&self) {\n\
               \x20       let view = self.view.read();\n\
               \x20       self.qp.poll_completions();\n\
               \x20       view.observe();\n\
               \x20   }\n\
               }\n";
    let v = scan("pump.rs", src);
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        vec![4, 9],
        "a guard across submit (depth stall) and across poll (clock advance): {v:#?}"
    );
    assert!(v.iter().all(|v| v.rule == "guard-across-wait"), "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("`submit`")));
    assert!(v.iter().any(|v| v.message.contains("`poll_completions`")));
}

#[test]
fn status_map_flags_unclassified_variants() {
    let enum_src = include_str!("fixtures/status_enum.rs");
    let bad = include_str!("fixtures/bad_status_cover.rs");
    let good = include_str!("fixtures/good_status_cover.rs");
    let rel = "crates/client/src/error.rs";
    let sources = vec![
        (
            "crates/proto/src/status.rs".to_string(),
            enum_src.to_string(),
        ),
        (rel.to_string(), bad.to_string()),
    ];
    let ctx = build_context(&sources);
    assert_eq!(ctx.status_variants, ["KeyNotFound", "Busy", "MediaError"]);
    let v = check_source_with_context(Path::new(rel), rel, bad, &ctx);
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "status-map" && v.line == 1));
    assert!(v.iter().any(|v| v.message.contains("KvStatus::Busy")));
    assert!(v.iter().any(|v| v.message.contains("KvStatus::MediaError")));
    let clean = check_source_with_context(Path::new(rel), rel, good, &ctx);
    assert!(clean.is_empty(), "{clean:#?}");
}

#[test]
fn status_map_applies_only_to_the_coverage_files() {
    assert!(rules_for("crates/client/src/error.rs").status_map);
    assert!(rules_for("crates/cluster/src/router.rs").status_map);
    assert!(!rules_for("crates/proto/src/status.rs").status_map);
    assert!(!rules_for("crates/client/src/api.rs").status_map);
}

// ---- binary-level tests -------------------------------------------------

fn run_check(args: &[&str]) -> (bool, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_kvcsd-check"))
        .args(args)
        .output()
        .expect("spawn kvcsd-check");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Build a throwaway tree containing one file made of `lines`.
fn temp_tree(tag: &str, lines: &[&str]) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("kvcsd-check-{}-{tag}", std::process::id()));
    let src = root.join("src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(src.join("lib.rs"), lines.join("\n")).expect("write");
    root
}

#[test]
fn binary_exits_nonzero_on_dirty_tree() {
    let root = temp_tree("dirty", &["use std::sync::Mutex;", "pub fn f() {}"]);
    let (ok, stdout) = run_check(&["--root", root.to_str().expect("utf8 path")]);
    std::fs::remove_dir_all(&root).ok();
    assert!(!ok, "expected failure exit: {stdout}");
    assert!(stdout.contains("[sync]"), "{stdout}");
    assert!(stdout.contains("violation(s)"), "{stdout}");
}

#[test]
fn binary_rule_filter_narrows_the_scan() {
    let root = temp_tree("filtered", &["use std::sync::Mutex;", "pub fn f() {}"]);
    let (ok, stdout) = run_check(&[
        "--root",
        root.to_str().expect("utf8 path"),
        "--rule",
        "time",
    ]);
    std::fs::remove_dir_all(&root).ok();
    assert!(ok, "sync finding must be filtered out: {stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    // The acceptance gate: the real tree stays clean. Matches the CI
    // `check` job, which runs the binary with its default root.
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let (ok, stdout) = run_check(&["--root", ws.to_str().expect("utf8 path")]);
    assert!(ok, "workspace must be checker-clean:\n{stdout}");
}

#[test]
fn binary_json_output_and_baseline_detect_allow_drift() {
    let root = temp_tree(
        "json",
        &[
            "pub fn f(v: &[u32]) -> u32 {",
            "    // kvcsd-check: allow(unwrap) -- fixture reason",
            "    *v.first().unwrap()",
            "}",
        ],
    );
    let root_s = root.to_str().expect("utf8 path");
    let (ok, stdout) = run_check(&["--root", root_s, "--format", "json"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"violations\""), "{stdout}");
    assert!(stdout.contains("\"allows\""), "{stdout}");
    assert!(stdout.contains("fixture reason"), "{stdout}");

    let base = root.join("base.json");
    let base_s = base.to_str().expect("utf8 path");
    let (ok, stdout) = run_check(&["--root", root_s, "--write-baseline", base_s]);
    assert!(ok, "{stdout}");
    let (ok, stdout) = run_check(&["--root", root_s, "--baseline", base_s]);
    assert!(ok, "fresh baseline must compare clean: {stdout}");

    // A brand-new allow keeps the tree violation-free but must still be
    // loud against the baseline.
    std::fs::write(
        root.join("src").join("extra.rs"),
        "pub fn g(v: &[u32]) -> u32 {\n    // kvcsd-check: allow(unwrap) -- second reason\n    *v.last().unwrap()\n}\n",
    )
    .expect("write");
    let (ok, stdout) = run_check(&["--root", root_s, "--baseline", base_s]);
    std::fs::remove_dir_all(&root).ok();
    assert!(!ok, "baseline drift must fail the run: {stdout}");
    assert!(stdout.contains("baseline drift (new finding)"), "{stdout}");
    assert!(stdout.contains("second reason"), "{stdout}");
}

#[test]
fn workspace_matches_the_committed_baseline() {
    // The CI drift gate, asserted in-tree as well: findings against the
    // real workspace must equal check_baseline.json exactly.
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let base = ws.join("check_baseline.json");
    let (ok, stdout) = run_check(&[
        "--root",
        ws.to_str().expect("utf8 path"),
        "--baseline",
        base.to_str().expect("utf8 path"),
    ]);
    assert!(ok, "workspace drifted from check_baseline.json:\n{stdout}");
}

#[test]
fn binary_rejects_unknown_arguments() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_kvcsd-check"))
        .arg("--frobnicate")
        .output()
        .expect("spawn kvcsd-check");
    assert_eq!(out.status.code(), Some(2));
}
