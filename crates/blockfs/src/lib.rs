//! A minimal host filesystem over the conventional-namespace SSD.
//!
//! The paper's baseline (RocksDB) "operates on a POSIX filesystem and
//! depends on host computing resources to carry out all database
//! operations". This crate is that substrate: a deliberately small
//! ext4-flavoured filesystem providing the pieces whose *costs* matter to
//! the evaluation —
//!
//! * per-call VFS overhead and per-I/O block-layer overhead (charged to
//!   the ledger; the "host software tax" of DESIGN.md),
//! * a metadata **journal**: every namespace/metadata mutation writes a
//!   journal page before the inode page, doubling small-write metadata
//!   traffic exactly the way ext4's ordered mode does,
//! * an **OS page cache** with LRU eviction (RocksDB's reads benefit from
//!   it; the paper drops it before every query run, and so can you via
//!   [`BlockFs::drop_caches`]),
//! * page-granularity extents: partial-page appends are absorbed by the
//!   cache's dirty tail and written out on page fill or fsync, and every
//!   device write is a whole page — which is where the baseline's small-
//!   record read/write amplification comes from.
//!
//! Files store real bytes; everything round-trips.

pub mod cache;
pub mod error;
pub mod fs;

pub use cache::LruCache;
pub use error::FsError;
pub use fs::{BlockFs, FsConfig, FsStats};

/// Result alias for filesystem operations.
pub type Result<T> = std::result::Result<T, FsError>;
