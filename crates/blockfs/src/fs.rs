//! The filesystem proper: append-only files over page-granularity extents,
//! with a metadata journal and an OS page cache.
//!
//! The API surface is exactly what an LSM-tree engine needs from POSIX —
//! create/open/append/read_at/fsync/unlink/list — because that is how the
//! baseline uses it (WAL and SSTables are append-only; reads are random).

use std::collections::HashMap;
use std::sync::Arc;

use kvcsd_flash::ConventionalNamespace;
use kvcsd_sim::config::CostModel;
use kvcsd_sim::sync::Mutex;
use kvcsd_sim::IoLedger;

use crate::cache::LruCache;
use crate::error::FsError;
use crate::Result;

/// Filesystem tuning knobs.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// OS page cache capacity, in pages.
    pub page_cache_pages: usize,
    /// Write a journal page per metadata mutation (ext4 ordered-mode
    /// analog). Disable to measure the journal's cost.
    pub journal: bool,
}

impl Default for FsConfig {
    fn default() -> Self {
        Self {
            page_cache_pages: 16 * 1024,
            journal: true,
        }
    }
}

/// Open-file handle. Remains valid until the file is unlinked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(u64);

/// Aggregate filesystem statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsStats {
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub journal_page_writes: u64,
    pub inode_page_writes: u64,
    pub data_page_writes: u64,
    pub data_page_reads: u64,
}

#[derive(Debug)]
struct Inode {
    size: u64,
    /// LPA of each fully-written page, in file order.
    pages: Vec<u64>,
    /// Buffered partial tail (dirty page-cache analog).
    tail: Vec<u8>,
    /// LPA the tail was last fsynced to, for in-place (FTL-remapped)
    /// rewrite when it grows or fills.
    tail_lpa: Option<u64>,
}

#[derive(Debug)]
struct FsInner {
    files: HashMap<String, u64>,
    inodes: HashMap<u64, Inode>,
    next_ino: u64,
    free_lpas: Vec<u64>,
    next_lpa: u64,
    journal_cursor: u64,
    cache: LruCache<(u64, u64), Arc<Vec<u8>>>,
    stats: FsStats,
}

/// Number of LPAs reserved at the front of the device for metadata:
/// a cyclic journal area and an inode table area.
const JOURNAL_LPAS: u64 = 32;
const INODE_LPAS: u64 = 32;
const META_LPAS: u64 = JOURNAL_LPAS + INODE_LPAS;

/// The filesystem.
pub struct BlockFs {
    dev: Arc<ConventionalNamespace>,
    cost: CostModel,
    cfg: FsConfig,
    page_bytes: usize,
    inner: Mutex<FsInner>,
}

impl std::fmt::Debug for BlockFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockFs")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl BlockFs {
    /// Format a fresh filesystem on `dev`.
    pub fn format(dev: Arc<ConventionalNamespace>, cost: CostModel, cfg: FsConfig) -> Self {
        let page_bytes = dev.nand().geometry().page_bytes as usize;
        let cache = LruCache::new(cfg.page_cache_pages);
        Self {
            dev,
            cost,
            cfg,
            page_bytes,
            inner: Mutex::new(FsInner {
                files: HashMap::new(),
                inodes: HashMap::new(),
                next_ino: 1,
                free_lpas: Vec::new(),
                next_lpa: META_LPAS,
                journal_cursor: 0,
                cache,
                stats: FsStats::default(),
            }),
        }
    }

    fn ledger(&self) -> &Arc<IoLedger> {
        self.dev.nand().ledger()
    }

    /// The device this filesystem sits on.
    pub fn device(&self) -> &Arc<ConventionalNamespace> {
        &self.dev
    }

    /// The host cost model this filesystem charges against.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Page size of the underlying device.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    // ---- metadata I/O ----------------------------------------------------

    fn journal_write(&self, inner: &mut FsInner) -> Result<()> {
        if !self.cfg.journal {
            return Ok(());
        }
        let lpa = inner.journal_cursor % JOURNAL_LPAS;
        inner.journal_cursor += 1;
        self.ledger().host_block_io();
        self.dev.write(lpa, &inner.journal_cursor.to_le_bytes())?;
        inner.stats.journal_page_writes += 1;
        Ok(())
    }

    fn inode_write(&self, inner: &mut FsInner, ino: u64) -> Result<()> {
        let lpa = JOURNAL_LPAS + ino % INODE_LPAS;
        self.ledger().host_block_io();
        self.dev.write(lpa, &ino.to_le_bytes())?;
        inner.stats.inode_page_writes += 1;
        Ok(())
    }

    fn alloc_lpa(&self, inner: &mut FsInner) -> Result<u64> {
        if let Some(lpa) = inner.free_lpas.pop() {
            return Ok(lpa);
        }
        if inner.next_lpa >= self.dev.logical_pages() {
            return Err(FsError::NoSpace);
        }
        let lpa = inner.next_lpa;
        inner.next_lpa += 1;
        Ok(lpa)
    }

    // ---- namespace ops ----------------------------------------------------

    /// Create an empty file. Fails if the path exists.
    pub fn create(&self, path: &str) -> Result<FileId> {
        self.ledger().fs_call();
        let mut inner = self.inner.lock();
        if inner.files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        inner.files.insert(path.to_string(), ino);
        inner.inodes.insert(
            ino,
            Inode {
                size: 0,
                pages: Vec::new(),
                tail: Vec::new(),
                tail_lpa: None,
            },
        );
        self.journal_write(&mut inner)?;
        self.inode_write(&mut inner, ino)?;
        Ok(FileId(ino))
    }

    /// Open an existing file.
    pub fn open(&self, path: &str) -> Result<FileId> {
        self.ledger().fs_call();
        let inner = self.inner.lock();
        inner
            .files
            .get(path)
            .map(|&ino| FileId(ino))
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    /// True if the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.lock().files.contains_key(path)
    }

    /// All file paths, unsorted.
    pub fn list(&self) -> Vec<String> {
        self.ledger().fs_call();
        self.inner.lock().files.keys().cloned().collect()
    }

    /// Delete a file, trimming its pages on the device.
    pub fn unlink(&self, path: &str) -> Result<()> {
        self.ledger().fs_call();
        let mut inner = self.inner.lock();
        let ino = inner
            .files
            .remove(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let inode = inner.inodes.remove(&ino).ok_or_else(|| {
            FsError::Corrupt(format!("no inode {ino} for directory entry {path}"))
        })?;
        for lpa in inode.pages.iter().chain(inode.tail_lpa.iter()) {
            self.dev.trim(*lpa)?;
            inner.free_lpas.push(*lpa);
        }
        inner.cache.retain(|&(cino, _)| cino != ino);
        self.journal_write(&mut inner)?;
        self.inode_write(&mut inner, ino)?;
        Ok(())
    }

    // ---- data ops ----------------------------------------------------------

    /// Append bytes to the end of the file.
    pub fn append(&self, id: FileId, data: &[u8]) -> Result<()> {
        self.ledger().fs_call();
        self.ledger()
            .charge_host_cpu(data.len() as f64 * self.cost.memcpy_ns_per_byte);
        let mut inner = self.inner.lock();
        let page_bytes = self.page_bytes;
        // Two-phase to appease the borrow checker: mutate the inode,
        // collecting full pages to flush, then do device I/O.
        let mut to_flush: Vec<(u64, Vec<u8>, u64)> = Vec::new(); // (page_idx, data, lpa)
        {
            let inode = inner.inodes.get_mut(&id.0).ok_or(FsError::StaleHandle)?;
            inode.size += data.len() as u64;
            let mut rest = data;
            while !rest.is_empty() {
                let room = page_bytes - inode.tail.len();
                let take = room.min(rest.len());
                inode.tail.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if inode.tail.len() == page_bytes {
                    let page_idx = inode.pages.len() as u64 + to_flush.len() as u64;
                    // Reuse the fsync-assigned LPA if the tail was already
                    // persisted once (FTL absorbs the rewrite).
                    let lpa = inode.tail_lpa.take();
                    let full = std::mem::take(&mut inode.tail);
                    to_flush.push((page_idx, full, lpa.unwrap_or(u64::MAX)));
                }
            }
        }
        for (page_idx, page, lpa_hint) in to_flush {
            let lpa = if lpa_hint == u64::MAX {
                self.alloc_lpa(&mut inner)?
            } else {
                lpa_hint
            };
            self.ledger().host_block_io();
            self.dev.write(lpa, &page)?;
            inner.stats.data_page_writes += 1;
            let inode = inner.inodes.get_mut(&id.0).ok_or(FsError::StaleHandle)?;
            debug_assert_eq!(inode.pages.len() as u64, page_idx);
            inode.pages.push(lpa);
            inner.cache.insert((id.0, page_idx), Arc::new(page));
        }
        Ok(())
    }

    /// Current file size in bytes.
    pub fn len(&self, id: FileId) -> Result<u64> {
        let inner = self.inner.lock();
        inner
            .inodes
            .get(&id.0)
            .map(|i| i.size)
            .ok_or(FsError::StaleHandle)
    }

    /// Read up to `len` bytes at `offset`. Returns fewer bytes at EOF.
    pub fn read_at(&self, id: FileId, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.ledger().fs_call();
        let mut inner = self.inner.lock();
        let page_bytes = self.page_bytes as u64;
        let (size, n_full_pages) = {
            let inode = inner.inodes.get(&id.0).ok_or(FsError::StaleHandle)?;
            (inode.size, inode.pages.len() as u64)
        };
        if offset >= size {
            return Ok(Vec::new());
        }
        let end = (offset + len as u64).min(size);
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut pos = offset;
        while pos < end {
            let page_idx = pos / page_bytes;
            let in_page = (pos % page_bytes) as usize;
            let take = ((end - pos) as usize).min(page_bytes as usize - in_page);
            if page_idx >= n_full_pages {
                // Served from the in-memory dirty tail.
                let inode = inner.inodes.get(&id.0).ok_or(FsError::StaleHandle)?;
                out.extend_from_slice(&inode.tail[in_page..in_page + take]);
            } else if let Some(page) = inner.cache.get(&(id.0, page_idx)).map(Arc::clone) {
                inner.stats.cache_hits += 1;
                out.extend_from_slice(&page[in_page..in_page + take]);
            } else {
                inner.stats.cache_misses += 1;
                let lpa = inner.inodes[&id.0].pages[page_idx as usize];
                self.ledger().host_block_io();
                let page = Arc::new(self.dev.read(lpa)?);
                inner.stats.data_page_reads += 1;
                out.extend_from_slice(&page[in_page..in_page + take]);
                inner.cache.insert((id.0, page_idx), page);
            }
            pos += take as u64;
        }
        self.ledger()
            .charge_host_cpu(out.len() as f64 * self.cost.memcpy_ns_per_byte);
        Ok(out)
    }

    /// Read exactly `len` bytes or fail.
    pub fn read_exact_at(&self, id: FileId, offset: u64, len: usize) -> Result<Vec<u8>> {
        let out = self.read_at(id, offset, len)?;
        if out.len() != len {
            return Err(FsError::ShortRead {
                requested: len,
                available: out.len(),
            });
        }
        Ok(out)
    }

    /// Persist the dirty tail and metadata (fsync).
    pub fn fsync(&self, id: FileId) -> Result<()> {
        self.ledger().fs_call();
        let mut inner = self.inner.lock();
        let tail: Option<(Vec<u8>, Option<u64>)> = {
            let inode = inner.inodes.get(&id.0).ok_or(FsError::StaleHandle)?;
            if inode.tail.is_empty() {
                None
            } else {
                Some((inode.tail.clone(), inode.tail_lpa))
            }
        };
        if let Some((tail, lpa)) = tail {
            let lpa = match lpa {
                Some(l) => l,
                None => self.alloc_lpa(&mut inner)?,
            };
            self.ledger().host_block_io();
            self.dev.write(lpa, &tail)?;
            inner.stats.data_page_writes += 1;
            let inode = inner.inodes.get_mut(&id.0).ok_or(FsError::StaleHandle)?;
            inode.tail_lpa = Some(lpa);
        }
        self.journal_write(&mut inner)?;
        self.inode_write(&mut inner, id.0)?;
        Ok(())
    }

    /// Drop the clean page cache (the paper cleans the OS cache before
    /// every RocksDB query run). Dirty tails are not lost: they live in
    /// the inode until fsync or page fill.
    pub fn drop_caches(&self) {
        self.inner.lock().cache.clear();
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> FsStats {
        let mut inner = self.inner.lock();
        let mut s = inner.stats;
        s.cache_hits = inner.cache.hits();
        s.cache_misses = inner.cache.misses();
        // Keep the struct's own counters (they track data pages precisely).
        let _ = &mut inner;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_flash::{ConvConfig, FlashGeometry, NandArray};
    use kvcsd_sim::HardwareSpec;

    fn fs_with(pages_cache: usize) -> BlockFs {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel: 64,
            pages_per_block: 16,
            page_bytes: 512,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let dev = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
        BlockFs::format(
            dev,
            CostModel::default(),
            FsConfig {
                page_cache_pages: pages_cache,
                journal: true,
            },
        )
    }

    fn fs() -> BlockFs {
        fs_with(1024)
    }

    #[test]
    fn create_open_exists_list() {
        let fs = fs();
        let f = fs.create("wal.log").unwrap();
        assert!(fs.exists("wal.log"));
        assert_eq!(fs.open("wal.log").unwrap(), f);
        assert!(matches!(fs.open("nope"), Err(FsError::NotFound(_))));
        assert!(matches!(
            fs.create("wal.log"),
            Err(FsError::AlreadyExists(_))
        ));
        assert_eq!(fs.list(), vec!["wal.log".to_string()]);
    }

    #[test]
    fn append_read_roundtrip_across_pages() {
        let fs = fs();
        let f = fs.create("data").unwrap();
        let payload: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        fs.append(f, &payload).unwrap();
        assert_eq!(fs.len(f).unwrap(), 3000);
        assert_eq!(fs.read_at(f, 0, 3000).unwrap(), payload);
        assert_eq!(fs.read_at(f, 700, 900).unwrap(), &payload[700..1600]);
    }

    #[test]
    fn many_small_appends_accumulate() {
        let fs = fs();
        let f = fs.create("wal").unwrap();
        for i in 0..100u32 {
            fs.append(f, &i.to_le_bytes()).unwrap();
        }
        assert_eq!(fs.len(f).unwrap(), 400);
        let back = fs.read_at(f, 0, 400).unwrap();
        for i in 0..100u32 {
            assert_eq!(&back[i as usize * 4..][..4], &i.to_le_bytes());
        }
    }

    #[test]
    fn reads_at_eof_are_short_not_errors() {
        let fs = fs();
        let f = fs.create("x").unwrap();
        fs.append(f, b"hello").unwrap();
        assert_eq!(fs.read_at(f, 3, 100).unwrap(), b"lo");
        assert_eq!(fs.read_at(f, 5, 10).unwrap(), Vec::<u8>::new());
        assert!(matches!(
            fs.read_exact_at(f, 0, 6),
            Err(FsError::ShortRead {
                requested: 6,
                available: 5
            })
        ));
    }

    #[test]
    fn tail_is_readable_before_fsync() {
        let fs = fs();
        let f = fs.create("x").unwrap();
        fs.append(f, b"partial page bytes").unwrap();
        // Nothing flushed yet (18 bytes < 512) -> no data page writes.
        assert_eq!(fs.stats().data_page_writes, 0);
        assert_eq!(fs.read_at(f, 0, 18).unwrap(), b"partial page bytes");
    }

    #[test]
    fn fsync_persists_tail_and_reuses_lpa() {
        let fs = fs();
        let f = fs.create("x").unwrap();
        fs.append(f, &[1u8; 100]).unwrap();
        fs.fsync(f).unwrap();
        let w1 = fs.stats().data_page_writes;
        assert_eq!(w1, 1);
        fs.append(f, &[2u8; 100]).unwrap();
        fs.fsync(f).unwrap();
        assert_eq!(fs.stats().data_page_writes, 2);
        // Data still correct after repeated tail rewrites.
        let back = fs.read_at(f, 0, 200).unwrap();
        assert_eq!(&back[..100], &[1u8; 100]);
        assert_eq!(&back[100..], &[2u8; 100]);
    }

    #[test]
    fn fsync_writes_journal_and_inode_pages() {
        let fs = fs();
        let f = fs.create("x").unwrap();
        let before = fs.stats();
        fs.append(f, &[1u8; 10]).unwrap();
        fs.fsync(f).unwrap();
        let after = fs.stats();
        assert_eq!(after.journal_page_writes - before.journal_page_writes, 1);
        assert_eq!(after.inode_page_writes - before.inode_page_writes, 1);
    }

    #[test]
    fn unlink_frees_space_for_reuse() {
        let fs = fs();
        let f = fs.create("big").unwrap();
        fs.append(f, &vec![9u8; 512 * 8]).unwrap();
        fs.unlink("big").unwrap();
        assert!(!fs.exists("big"));
        // Handle went stale.
        assert!(matches!(fs.len(f), Err(FsError::StaleHandle)));
        assert!(matches!(fs.append(f, &[0]), Err(FsError::StaleHandle)));
        // Space is reusable.
        let g = fs.create("big2").unwrap();
        fs.append(g, &vec![7u8; 512 * 8]).unwrap();
        assert_eq!(fs.read_at(g, 0, 1).unwrap()[0], 7);
    }

    #[test]
    fn page_cache_serves_repeated_reads() {
        let fs = fs();
        let f = fs.create("hot").unwrap();
        fs.append(f, &vec![3u8; 512 * 4]).unwrap();
        let r0 = fs.stats().data_page_reads;
        // Pages were cached at write time; reads hit the cache.
        fs.read_at(f, 0, 512 * 4).unwrap();
        assert_eq!(fs.stats().data_page_reads, r0);
        // After dropping caches, reads go to the device.
        fs.drop_caches();
        fs.read_at(f, 0, 512 * 4).unwrap();
        assert_eq!(fs.stats().data_page_reads, r0 + 4);
        // And are cached again.
        fs.read_at(f, 0, 512 * 4).unwrap();
        assert_eq!(fs.stats().data_page_reads, r0 + 4);
    }

    #[test]
    fn tiny_cache_thrashes() {
        let fs = fs_with(2);
        let f = fs.create("cold").unwrap();
        fs.append(f, &vec![1u8; 512 * 16]).unwrap();
        fs.drop_caches();
        fs.read_at(f, 0, 512 * 16).unwrap();
        fs.read_at(f, 0, 512 * 16).unwrap();
        // With a 2-page cache and 16-page scans, second scan misses too.
        assert_eq!(fs.stats().data_page_reads, 32);
    }

    #[test]
    fn read_amplification_is_visible_in_ledger() {
        let fs = fs();
        let f = fs.create("r").unwrap();
        fs.append(f, &vec![5u8; 512 * 2]).unwrap();
        fs.drop_caches();
        let before = fs.device().nand().ledger().snapshot();
        // 16-byte logical read costs one full 512 B page read.
        fs.read_at(f, 100, 16).unwrap();
        let d = fs.device().nand().ledger().snapshot().since(&before);
        assert_eq!(d.storage_read_bytes(), 512);
    }

    #[test]
    fn ledger_counts_fs_calls_and_block_ios() {
        let fs = fs();
        let before = fs.device().nand().ledger().snapshot();
        let f = fs.create("c").unwrap();
        fs.append(f, &vec![0u8; 512]).unwrap();
        let d = fs.device().nand().ledger().snapshot().since(&before);
        assert!(d.fs_calls >= 2); // create + append
        assert!(d.host_block_ios >= 3); // journal + inode + data page
    }

    #[test]
    fn large_file_survives_gc_pressure() {
        // Fill a large fraction of the device, delete, refill — the FTL
        // underneath must keep remapping without data corruption.
        let fs = fs();
        for round in 0..3 {
            let name = format!("gen{round}");
            let f = fs.create(&name).unwrap();
            let pattern = vec![round as u8 + 1; 512 * 200];
            fs.append(f, &pattern).unwrap();
            let back = fs.read_at(f, 0, 512 * 200).unwrap();
            assert_eq!(back, pattern);
            fs.unlink(&name).unwrap();
        }
    }
}
