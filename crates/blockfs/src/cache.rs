//! A small LRU cache used as the OS page cache (here) and as the block
//! cache of the software LSM baseline.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Least-recently-used cache with a fixed entry capacity.
///
/// Eviction order is maintained with a recency index (`BTreeMap<stamp,
/// key>`), giving O(log n) touch/insert/evict without unsafe code.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    stamp: u64,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries. A capacity of zero
    /// disables caching entirely (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            stamp: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn touch(&mut self, key: &K) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some((_, entry_stamp)) = self.map.get_mut(key) {
            let old = *entry_stamp;
            *entry_stamp = stamp;
            self.recency.remove(&old);
            self.recency.insert(stamp, key.clone());
        }
    }

    /// Look up a key, refreshing its recency on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.map.contains_key(key) {
            self.hits += 1;
            self.touch(key);
            Some(&self.map[key].0)
        } else {
            self.misses += 1;
            None
        }
    }

    /// True if present, *without* counting a hit or refreshing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Insert or replace; evicts the least-recently-used entry on overflow.
    /// Returns the evicted entry, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return Some((key, value));
        }
        if let Some((_, old_stamp)) = self.map.remove(&key) {
            self.recency.remove(&old_stamp);
        }
        self.stamp += 1;
        self.recency.insert(self.stamp, key.clone());
        self.map.insert(key, (value, self.stamp));
        if self.map.len() > self.capacity {
            if let Some((_, victim_key)) = self.recency.pop_first() {
                if let Some((v, _)) = self.map.remove(&victim_key) {
                    return Some((victim_key, v));
                }
            }
        }
        None
    }

    /// Remove a specific entry.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (v, stamp) = self.map.remove(key)?;
        self.recency.remove(&stamp);
        Some(v)
    }

    /// Drop everything (the `echo 3 > drop_caches` analog).
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }

    /// Remove all entries matching a predicate (e.g. one file's pages).
    pub fn retain(&mut self, mut pred: impl FnMut(&K) -> bool) {
        let doomed: Vec<(K, u64)> = self
            .map
            .iter()
            .filter(|(k, _)| !pred(k))
            .map(|(k, (_, s))| (k.clone(), *s))
            .collect();
        for (k, s) in doomed {
            self.map.remove(&k);
            self.recency.remove(&s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_insert() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"missing"), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // a is now more recent than b
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert!(c.peek(&"a").is_some());
        assert!(c.peek(&"b").is_none());
        assert!(c.peek(&"c").is_some());
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert("a", 1), Some(("a", 1)));
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_and_clear() {
        let mut c = LruCache::new(4);
        c.insert(1, "x");
        c.insert(2, "y");
        assert_eq!(c.remove(&1), Some("x"));
        assert_eq!(c.remove(&1), None);
        c.clear();
        assert!(c.is_empty());
        // Recency index must be clean: inserting still works.
        c.insert(3, "z");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn retain_filters_entries() {
        let mut c = LruCache::new(8);
        for i in 0..8 {
            c.insert(i, i * 10);
        }
        c.retain(|&k| k % 2 == 0);
        assert_eq!(c.len(), 4);
        assert!(c.peek(&2).is_some());
        assert!(c.peek(&3).is_none());
        // Structure stays consistent for further inserts/evictions.
        for i in 100..110 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn eviction_sequence_is_lru_exact() {
        let mut c = LruCache::new(3);
        c.insert('a', ());
        c.insert('b', ());
        c.insert('c', ());
        c.get(&'a');
        c.get(&'b');
        // LRU order now: c, a, b
        assert_eq!(c.insert('d', ()).map(|(k, _)| k), Some('c'));
        assert_eq!(c.insert('e', ()).map(|(k, _)| k), Some('a'));
        assert_eq!(c.insert('f', ()).map(|(k, _)| k), Some('b'));
    }

    #[test]
    fn stress_against_reference_model() {
        use std::collections::VecDeque;
        let mut c = LruCache::new(16);
        let mut model: VecDeque<u32> = VecDeque::new(); // front = LRU
        let mut x = 12345u32;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let key = x % 48;
            if x.is_multiple_of(3) {
                if c.get(&key).is_some() {
                    model.retain(|&k| k != key);
                    model.push_back(key);
                }
            } else {
                let evicted = c.insert(key, ());
                model.retain(|&k| k != key);
                model.push_back(key);
                if let Some((ek, _)) = evicted {
                    assert_eq!(model.pop_front(), Some(ek));
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
