//! Filesystem error type.

use kvcsd_flash::FlashError;
use std::fmt;

/// Errors surfaced by [`crate::BlockFs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file with the given path.
    NotFound(String),
    /// A file with the given path already exists.
    AlreadyExists(String),
    /// The filesystem ran out of space.
    NoSpace,
    /// Read past end of file with `exact` semantics.
    ShortRead { requested: usize, available: usize },
    /// A stale file handle (file deleted while open).
    StaleHandle,
    /// Error from the underlying flash device.
    Flash(FlashError),
    /// On-device metadata inconsistency (journal/inode cross-check).
    Corrupt(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "file not found: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::ShortRead {
                requested,
                available,
            } => {
                write!(
                    f,
                    "short read: requested {requested}, available {available}"
                )
            }
            FsError::StaleHandle => write!(f, "stale file handle"),
            FsError::Flash(e) => write!(f, "flash error: {e}"),
            FsError::Corrupt(m) => write!(f, "filesystem corrupt: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<FlashError> for FsError {
    fn from(e: FlashError) -> Self {
        match e {
            FlashError::DeviceFull => FsError::NoSpace,
            other => FsError::Flash(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_full_maps_to_no_space() {
        assert_eq!(FsError::from(FlashError::DeviceFull), FsError::NoSpace);
    }

    #[test]
    fn other_flash_errors_are_wrapped() {
        let e = FsError::from(FlashError::AddressOutOfRange { addr: 9, limit: 4 });
        assert!(matches!(e, FsError::Flash(_)));
        assert!(e.to_string().contains("flash error"));
    }
}
