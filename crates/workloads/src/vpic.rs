//! Synthetic VPIC particle dump.
//!
//! "Our sample dataset is a partial VPIC simulation dump consisting of
//! 256M particles in the form of 16 binary files. Each VPIC particle is
//! 48 bytes, consisting of a 16B particle ID and a 32B payload made up of
//! 8 numeric attributes with one of them being the kinetic energy that we
//! used for secondary index construction and queries."
//!
//! The real dump is LANL data we do not have; this generator produces the
//! same record schema with physically plausible attribute distributions.
//! Kinetic energy follows an exponential distribution (the classic tail
//! shape of particle energies in kinetic plasma simulations), which makes
//! "energy > t" thresholds map to selectivities analytically:
//! `P(E > t) = exp(-t/mean)`, so `t = -mean * ln(selectivity)`.

use kvcsd_sim::XorShift64;

/// Bytes per particle ID.
pub const PARTICLE_ID_BYTES: usize = 16;
/// Bytes per particle payload (8 x f32 attributes).
pub const PAYLOAD_BYTES: usize = 32;
/// Bytes per particle record.
pub const PARTICLE_BYTES: usize = PARTICLE_ID_BYTES + PAYLOAD_BYTES;

/// Index of the kinetic-energy attribute within the payload.
pub const ENERGY_ATTR: usize = 7;
/// Byte offset of the kinetic energy within the *value* (payload).
pub const ENERGY_OFFSET: usize = ENERGY_ATTR * 4;

/// One decoded particle.
#[derive(Debug, Clone, PartialEq)]
pub struct Particle {
    /// 16-byte particle ID (unique across the dump).
    pub id: [u8; PARTICLE_ID_BYTES],
    /// The 8 f32 attributes: x, y, z, ux, uy, uz, w(eight), energy.
    pub attrs: [f32; 8],
}

impl Particle {
    /// The 32-byte payload as stored in the value.
    pub fn payload(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(PAYLOAD_BYTES);
        for a in self.attrs {
            v.extend_from_slice(&a.to_le_bytes());
        }
        v
    }

    /// Kinetic energy.
    pub fn energy(&self) -> f32 {
        self.attrs[ENERGY_ATTR]
    }
}

/// A deterministic synthetic dump: `particles` records over `files`
/// shards (the paper's dump has 16 files, one loader thread each).
#[derive(Debug, Clone)]
pub struct VpicDump {
    pub particles: u64,
    pub files: u32,
    pub mean_energy: f64,
    seed: u64,
}

impl VpicDump {
    pub fn new(particles: u64, files: u32, seed: u64) -> Self {
        Self {
            particles,
            files,
            mean_energy: 1.0,
            seed,
        }
    }

    /// Particles in shard `file` (the last shard absorbs the remainder).
    pub fn shard_len(&self, file: u32) -> u64 {
        let base = self.particles / self.files as u64;
        if file == self.files - 1 {
            self.particles - base * (self.files as u64 - 1)
        } else {
            base
        }
    }

    /// Global index of particle `i` of shard `file`.
    fn global_index(&self, file: u32, i: u64) -> u64 {
        (self.particles / self.files as u64) * file as u64 + i
    }

    /// Generate particle `g` (global index). Deterministic.
    pub fn particle(&self, g: u64) -> Particle {
        let mut rng = XorShift64::new(self.seed ^ g.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 1);
        let mut id = [0u8; PARTICLE_ID_BYTES];
        // IDs: 8-byte mixed global index (unique) + 8 random tag bytes.
        id[..8].copy_from_slice(&mix(self.seed ^ g).to_be_bytes());
        id[8..].copy_from_slice(&rng.next_u64().to_be_bytes());
        let mut attrs = [0f32; 8];
        // Position in [0, 100)^3, momentum ~ N(0,1)-ish via CLT.
        for a in attrs.iter_mut().take(3) {
            *a = (rng.next_f64() * 100.0) as f32;
        }
        for a in attrs.iter_mut().take(6).skip(3) {
            let clt: f64 = (0..4).map(|_| rng.next_f64()).sum::<f64>() - 2.0;
            *a = clt as f32;
        }
        attrs[6] = (0.5 + rng.next_f64()) as f32; // statistical weight
                                                  // Exponential energy: -mean * ln(1-u).
        let u = rng.next_f64();
        attrs[ENERGY_ATTR] = (-self.mean_energy * (1.0 - u).ln().max(-60.0)) as f32;
        Particle { id, attrs }
    }

    /// Iterate one file shard.
    pub fn shard(&self, file: u32) -> impl Iterator<Item = Particle> + '_ {
        let n = self.shard_len(file);
        (0..n).map(move |i| self.particle(self.global_index(file, i)))
    }

    /// Energy threshold `t` such that approximately `selectivity` of
    /// particles have `energy > t` (exponential tail: `t = -mean ln s`).
    pub fn energy_threshold(&self, selectivity: f64) -> f32 {
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        (-self.mean_energy * selectivity.ln()) as f32
    }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn record_shape_matches_paper() {
        let d = VpicDump::new(100, 16, 1);
        let p = d.particle(0);
        assert_eq!(p.id.len(), 16);
        assert_eq!(p.payload().len(), 32);
        assert_eq!(PARTICLE_BYTES, 48);
    }

    #[test]
    fn shards_cover_all_particles() {
        let d = VpicDump::new(1003, 16, 2);
        let total: u64 = (0..16).map(|f| d.shard_len(f)).sum();
        assert_eq!(total, 1003);
        // Last shard has the remainder.
        assert_eq!(d.shard_len(15), 1003 - 62 * 15);
    }

    #[test]
    fn ids_are_unique() {
        let d = VpicDump::new(20_000, 16, 3);
        let mut seen = HashSet::new();
        for f in 0..16 {
            for p in d.shard(f) {
                assert!(seen.insert(p.id), "duplicate particle id");
            }
        }
        assert_eq!(seen.len(), 20_000);
    }

    #[test]
    fn particles_are_deterministic() {
        let d = VpicDump::new(100, 4, 7);
        assert_eq!(d.particle(42), d.particle(42));
        let d2 = VpicDump::new(100, 4, 8);
        assert_ne!(d.particle(42), d2.particle(42));
    }

    #[test]
    fn energy_is_positive_with_exponential_tail() {
        let d = VpicDump::new(50_000, 16, 5);
        let energies: Vec<f32> = (0..50_000).map(|g| d.particle(g).energy()).collect();
        assert!(energies.iter().all(|&e| e >= 0.0));
        let mean: f64 = energies.iter().map(|&e| e as f64).sum::<f64>() / 50_000.0;
        assert!(
            (mean - 1.0).abs() < 0.05,
            "mean energy {mean} should be ~1.0"
        );
    }

    #[test]
    fn threshold_hits_requested_selectivity() {
        let d = VpicDump::new(100_000, 16, 6);
        for sel in [0.001, 0.01, 0.05, 0.20] {
            let t = d.energy_threshold(sel);
            let hits = (0..100_000).filter(|&g| d.particle(g).energy() > t).count();
            let got = hits as f64 / 100_000.0;
            assert!(
                (got - sel).abs() / sel < 0.25,
                "selectivity {sel}: threshold {t} hit {got}"
            );
        }
    }

    #[test]
    fn payload_roundtrips_energy() {
        let d = VpicDump::new(10, 2, 9);
        let p = d.particle(3);
        let payload = p.payload();
        let e = f32::from_le_bytes(
            payload[ENERGY_OFFSET..ENERGY_OFFSET + 4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(e, p.energy());
    }

    #[test]
    fn attributes_look_physical() {
        let d = VpicDump::new(1000, 4, 11);
        for g in 0..1000 {
            let p = d.particle(g);
            for i in 0..3 {
                assert!((0.0..100.0).contains(&p.attrs[i]), "position in box");
            }
            assert!(p.attrs[6] > 0.0, "weight positive");
        }
    }
}
