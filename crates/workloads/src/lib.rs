//! Workload generators for the KV-CSD evaluation.
//!
//! * [`kv`] — synthetic random key-value workloads (the micro benchmarks:
//!   16 B keys, configurable values, uniform random GET sets);
//! * [`vpic`] — a synthetic VPIC-like particle dump: 48 B particles (16 B
//!   particle ID + 8 numeric attributes including kinetic energy) sharded
//!   into 16 files, plus energy-threshold helpers for driving query
//!   selectivity from 0.1% to 20% as the macro benchmark does.
//!
//! All generators are seeded and deterministic.

pub mod kv;
pub mod vpic;

pub use kv::{GetWorkload, PutWorkload};
pub use vpic::{Particle, VpicDump, PARTICLE_BYTES, PARTICLE_ID_BYTES, PAYLOAD_BYTES};
