//! One shard of the cluster: a full simulated device stack.
//!
//! A [`ShardInstance`] owns everything a single `kvcsd-core` device needs —
//! NAND array, ZNS namespace, I/O ledger, virtual clock and fault
//! injector — so shards fail, stall and account for time independently.
//! The router never reaches around an instance to its internals; the
//! accessors here exist for tests and for the router's failover path.

use std::sync::Arc;

use kvcsd_core::KvCsdDevice;
use kvcsd_flash::{NandArray, ZonedNamespace};
use kvcsd_sim::sync::Shared;
use kvcsd_sim::{CostModel, FaultInjector, FaultPlan, HardwareSpec, IoLedger, VirtualClock};

use crate::ClusterConfig;

/// Router-visible health of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Primary is serving.
    Healthy,
    /// Primary died; the router is promoting the replica. Commands bounce
    /// with the retryable `KvStatus::FailoverInProgress`.
    FailingOver,
    /// Primary died and there is nothing to promote (replication off).
    /// Commands fail with the non-retryable `KvStatus::ShardUnavailable`.
    Dead,
}

/// A complete device stack for one shard.
pub struct ShardInstance {
    device: Arc<KvCsdDevice>,
    ledger: Arc<IoLedger>,
    clock: Arc<VirtualClock>,
    injector: Arc<FaultInjector>,
    /// Fencing epoch this instance was built to serve. A promotion mints
    /// the next epoch, so an instance whose epoch trails the shard's
    /// current epoch is a deposed primary: the router rejects its acks
    /// with `KvStatus::EpochFenced` and the replica log rejects its ships
    /// at the receive fence.
    epoch: u64,
}

impl ShardInstance {
    /// Build a fresh stack for shard `device_id` under `plan`, serving
    /// fencing epoch `epoch`. The plan is re-keyed per device, so one
    /// fleet-wide seed yields deterministic but *distinct* failure
    /// schedules per shard.
    pub fn build(cfg: &ClusterConfig, device_id: u32, plan: FaultPlan, epoch: u64) -> Self {
        let ledger = Arc::new(IoLedger::new(
            cfg.geometry.channels,
            cfg.geometry.page_bytes,
        ));
        let nand = Arc::new(NandArray::new(
            cfg.geometry,
            &HardwareSpec::default(),
            Arc::clone(&ledger),
        ));
        let injector = Arc::new(FaultInjector::new(plan.for_device(device_id)));
        nand.set_fault_injector(Some(Arc::clone(&injector)));
        let zns = Arc::new(ZonedNamespace::new(nand, cfg.zns));
        let clock = Arc::new(VirtualClock::new());
        let mut dev_cfg = cfg.device.clone();
        dev_cfg.seed ^= (device_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        dev_cfg.clock = Some(Arc::clone(&clock));
        let device = Arc::new(KvCsdDevice::new(zns, CostModel::default(), dev_cfg));
        Self {
            device,
            ledger,
            clock,
            injector,
            epoch,
        }
    }

    /// The fencing epoch this instance serves.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn device(&self) -> &Arc<KvCsdDevice> {
        &self.device
    }

    pub fn ledger(&self) -> &Arc<IoLedger> {
        &self.ledger
    }

    /// This shard's private virtual clock. Latency charged here never
    /// moves any other shard's clock — the stall-isolation property the
    /// torture test asserts.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }
}

/// Per-shard health flag plus promotion generation, in shim-checked
/// shared cells so the race detector covers router state.
pub struct HealthCell {
    health: Shared<ShardHealth>,
    generation: Shared<u32>,
}

impl HealthCell {
    pub fn new() -> Self {
        Self {
            health: Shared::new(ShardHealth::Healthy),
            generation: Shared::new(0),
        }
    }

    pub fn get(&self) -> ShardHealth {
        self.health.get()
    }

    pub fn set(&self, h: ShardHealth) {
        self.health.set(h);
    }

    /// Atomically move `Healthy -> FailingOver`; returns `false` if some
    /// other path already began (or finished) a failover.
    pub fn begin_failover(&self) -> bool {
        self.health.update(|h| {
            if *h == ShardHealth::Healthy {
                *h = ShardHealth::FailingOver;
                true
            } else {
                false
            }
        })
    }

    /// Number of completed promotions on this shard.
    pub fn generation(&self) -> u32 {
        self.generation.get()
    }

    pub fn bump_generation(&self) -> u32 {
        self.generation.update(|g| {
            *g += 1;
            *g
        })
    }
}

impl Default for HealthCell {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_sim::fault::OpClass;

    #[test]
    fn shards_get_distinct_deterministic_fault_schedules() {
        let cfg = ClusterConfig::default();
        let plan = FaultPlan::none().with_error_prob(0.5);
        let a = ShardInstance::build(&cfg, 0, plan.clone(), 1);
        let b = ShardInstance::build(&cfg, 1, plan.clone(), 1);
        let a2 = ShardInstance::build(&cfg, 0, plan, 1);
        let seq = |s: &ShardInstance| {
            (0..32)
                .map(|_| s.injector().decide(OpClass::NandRead, 0))
                .collect::<Vec<_>>()
        };
        let (sa, sb, sa2) = (seq(&a), seq(&b), seq(&a2));
        assert_eq!(sa, sa2, "same device id => same schedule");
        assert_ne!(sa, sb, "different device ids => different schedules");
    }

    #[test]
    fn shard_clocks_are_independent() {
        let cfg = ClusterConfig::default();
        let a = ShardInstance::build(&cfg, 0, FaultPlan::none(), 1);
        let b = ShardInstance::build(&cfg, 1, FaultPlan::none(), 1);
        a.clock().advance(1_000_000);
        assert_eq!(a.clock().now_ns(), 1_000_000);
        assert_eq!(b.clock().now_ns(), 0, "shard B must not observe A's time");
    }

    #[test]
    fn health_cell_failover_cas_fires_once() {
        let h = HealthCell::new();
        assert!(h.begin_failover());
        assert!(!h.begin_failover(), "second detector must lose the race");
        assert_eq!(h.get(), ShardHealth::FailingOver);
        h.set(ShardHealth::Healthy);
        assert_eq!(h.bump_generation(), 1);
    }
}
