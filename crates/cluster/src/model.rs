//! A distilled 2-shard replication/failover protocol model for the
//! kvcsd-mc network explorer.
//!
//! `tests/partition.rs` tortures the full cluster under *sampled* link
//! faults; this module is the complementary exhaustive front: a small,
//! deterministic protocol scenario whose every bus decision comes from an
//! explicit script (`FaultInjector::set_bus_script`), so an explorer can
//! enumerate all decision sequences up to a bound and check the PR-7
//! invariants on each one — not just on the seeds a torture run happened
//! to draw.
//!
//! The model keeps the real protocol pieces (a [`ReplicaLog`] per
//! direction: stop-and-wait shipping, epoch fencing, per-keyspace
//! idempotency, anti-entropy generation exchange) and strips everything
//! else — no device stacks, no router, no compaction. One scenario run:
//!
//! 1. Primary **A** (epoch 1) ships two writes to its replica **B**.
//!    A write counts as *acked* only if `ship` returned `Ok` **and** the
//!    replica's fence still matches A's epoch — the model analogue of a
//!    fence-nack on the ack path.
//! 2. If a ship exhausts its retry budget (`LinkDown`), A is deposed: B
//!    raises the fence to epoch 2 and promotes from its replica state.
//!    *Invariant: every epoch-1-acked write is in the promoted state.*
//! 3. The deposed A retries a write at epoch 1. *Invariant: it cannot
//!    install state past the fence (at most one primary acks per
//!    epoch).*
//! 4. B acks a fresh write at epoch 2 on the reverse channel, the link
//!    heals (script cleared), and bounded anti-entropy rounds reconcile
//!    A. *Invariant: convergence within the round budget.*
//!
//! All bus traffic crosses [`ReplicaLog`] — the fenced send path — never
//! raw `BusResource` primitives, so the model obeys the same
//! `epoch-fence` lint as production cluster code.

use std::sync::Arc;

use kvcsd_core::{ArtifactPayload, KeyspaceArtifacts};
use kvcsd_sim::{
    BusConfig, BusFault, BusResource, FaultInjector, FaultPlan, IoLedger, VirtualClock,
};

use crate::replica::{ReplicaLog, ShipError, ShipPolicy};

/// Epoch A is primary under; B promotes to `EPOCH_A + 1`.
const EPOCH_A: u64 = 1;
const EPOCH_B: u64 = 2;

/// Anti-entropy passes allowed after heal before the model declares
/// non-convergence.
const RECONCILE_ROUNDS: usize = 4;

/// What one scripted scenario run did — the explorer prunes on
/// `decisions_consumed` (extending a script past what a run read cannot
/// change its outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelOutcome {
    /// Link-lane decisions the run consumed (scripted + past-the-end
    /// defaults).
    pub decisions_consumed: usize,
    /// Whether A was deposed and B promoted.
    pub failed_over: bool,
    /// Keyspaces A acked at epoch 1.
    pub acked_epoch1: Vec<String>,
}

fn sealed(name: &str, pairs: u64) -> KeyspaceArtifacts {
    KeyspaceArtifacts {
        name: name.to_string(),
        pairs,
        data_bytes: pairs * 16,
        min_key: Some(vec![0]),
        max_key: Some(vec![0xFF]),
        payload: ArtifactPayload::SealedLogs {
            klog: vec![0u8; 64],
            vlog: vec![0u8; 128],
        },
    }
}

/// A tight retry budget so a scenario consumes a small, bounded number
/// of link decisions — what keeps exhaustive enumeration tractable.
fn model_policy() -> ShipPolicy {
    ShipPolicy {
        max_attempts: 2,
        timeout_ns: 1_000,
        base_backoff_ns: 1_000,
        max_backoff_ns: 1_000,
    }
}

fn channel(injector: &Arc<FaultInjector>) -> ReplicaLog {
    let ledger = Arc::new(IoLedger::new(1, 4096));
    let bus = BusResource::new(BusConfig::default(), ledger).with_faults(Arc::clone(injector));
    ReplicaLog::with_policy(0, bus, Arc::new(VirtualClock::new()), model_policy())
}

/// Run the 2-shard failover scenario with every link decision taken from
/// `script` (clean single deliveries past its end). Returns what the run
/// consumed and decided, or a description of the violated invariant.
pub fn run_two_shard(script: &[BusFault]) -> Result<ModelOutcome, String> {
    let injector = Arc::new(FaultInjector::new(FaultPlan::none()));
    injector.set_bus_script(script.to_vec());
    // A -> B replication: `chan`'s receiver state is B's replica store.
    let chan = channel(&injector);
    // B -> A after promotion: `chan_back`'s receiver state is A's store.
    let chan_back = channel(&injector);

    let mut acked: Vec<String> = Vec::new();
    let mut failed_over = false;
    for (ks, pairs) in [("w1", 10u64), ("w2", 20u64)] {
        match chan.ship(ks, sealed(ks, pairs), EPOCH_A) {
            Ok(_) => {
                let fence = chan.applied_epoch();
                if fence != EPOCH_A {
                    return Err(format!(
                        "primary A acked '{ks}' at epoch {EPOCH_A} but the replica fence is at \
                         {fence} — an ack crossed an epoch fence"
                    ));
                }
                acked.push(ks.to_string());
            }
            Err(ShipError::LinkDown { .. }) => {
                failed_over = true;
                break;
            }
        }
    }

    if !failed_over {
        // Clean path: both writes acked, replica holds both.
        for ks in &acked {
            if !chan
                .latest_per_keyspace()
                .iter()
                .any(|(s, _)| &s.keyspace == ks)
            {
                return Err(format!("acked write '{ks}' missing from the replica store"));
            }
        }
        let decisions_consumed = injector.bus_script_consumed();
        return Ok(ModelOutcome {
            decisions_consumed,
            failed_over,
            acked_epoch1: acked,
        });
    }

    // B promotes: fence first, then take over the replica state.
    chan.advance_epoch(EPOCH_B);
    let promoted = chan.latest_per_keyspace();
    for ks in &acked {
        if !promoted.iter().any(|(s, _)| &s.keyspace == ks) {
            return Err(format!(
                "acked write '{ks}' lost across failover — not in B's promoted state"
            ));
        }
    }

    // The deposed primary retries at its stale epoch. Whatever the wire
    // does (deliver, duplicate, late), nothing may land past the fence.
    let stale = chan.ship("w1", sealed("w1", 99), EPOCH_A);
    if chan.applied_epoch() < EPOCH_B {
        return Err(format!(
            "fence regressed to {} after a stale-epoch ship (result {stale:?})",
            chan.applied_epoch()
        ));
    }
    if chan
        .latest_per_keyspace()
        .iter()
        .any(|(_, a)| a.pairs == 99)
    {
        return Err(
            "deposed primary installed state past the epoch fence — two primaries acked in one \
             epoch"
                .to_string(),
        );
    }

    // B is primary at epoch 2 now; its ack path is the reverse channel.
    let b_acked = match chan_back.ship("w3", sealed("w3", 30), EPOCH_B) {
        Ok(_) => {
            if chan_back.applied_epoch() != EPOCH_B {
                return Err(format!(
                    "primary B acked 'w3' at epoch {EPOCH_B} but A's fence is at {}",
                    chan_back.applied_epoch()
                ));
            }
            true
        }
        Err(ShipError::LinkDown { .. }) => false,
    };

    // Heal: the script stops owning the link, and the plan underneath is
    // fault-free. Capture consumption first — clearing resets the count.
    let decisions_consumed = injector.bus_script_consumed();
    injector.clear_bus_script();

    // Anti-entropy: B reconciles A from its authority state (the promoted
    // artifacts plus w3 if it was acked) over the healed link.
    let mut authority: Vec<(String, KeyspaceArtifacts)> = promoted
        .iter()
        .map(|(s, a)| (s.keyspace.clone(), a.clone()))
        .collect();
    if b_acked {
        authority.push(("w3".to_string(), sealed("w3", 30)));
    }
    let mut converged = authority.is_empty();
    for _ in 0..RECONCILE_ROUNDS {
        if converged {
            break;
        }
        let Some(gens) = chan_back.exchange_generations() else {
            continue;
        };
        for (ks, art) in &authority {
            if !gens.iter().any(|(name, ..)| name == ks) {
                let _ = chan_back.ship(ks, art.clone(), EPOCH_B);
            }
        }
        let have = chan_back.generations();
        converged = authority
            .iter()
            .all(|(ks, _)| have.iter().any(|(name, ..)| name == ks));
    }
    if !converged {
        return Err(format!(
            "anti-entropy failed to converge within {RECONCILE_ROUNDS} rounds after heal"
        ));
    }

    Ok(ModelOutcome {
        decisions_consumed,
        failed_over,
        acked_epoch1: acked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_script_acks_both_writes_without_failover() {
        let out = run_two_shard(&[]).expect("clean run must satisfy every invariant");
        assert!(!out.failed_over);
        assert_eq!(out.acked_epoch1, vec!["w1".to_string(), "w2".to_string()]);
        assert_eq!(out.decisions_consumed, 2, "one delivery per write");
    }

    #[test]
    fn double_drop_deposes_a_and_promotes_b() {
        // w1 delivers; both attempts of w2 drop -> LinkDown -> failover.
        let out = run_two_shard(&[
            BusFault::Deliver {
                copies: 1,
                delay_ns: 0,
            },
            BusFault::Drop,
            BusFault::Drop,
        ])
        .expect("failover path must satisfy every invariant");
        assert!(out.failed_over);
        assert_eq!(out.acked_epoch1, vec!["w1".to_string()]);
        // w1 (1) + w2 (2) + stale retry (up to 2) + w3 (1) decisions.
        assert!(out.decisions_consumed >= 5);
    }

    #[test]
    fn duplicates_and_late_deliveries_stay_idempotent() {
        let out = run_two_shard(&[
            BusFault::Deliver {
                copies: 2,
                delay_ns: 0,
            },
            BusFault::Late { copies: 1 },
            BusFault::Deliver {
                copies: 1,
                delay_ns: 0,
            },
        ])
        .expect("dup/late wire behavior must stay idempotent");
        assert!(!out.failed_over);
        assert_eq!(out.acked_epoch1.len(), 2);
    }
}
