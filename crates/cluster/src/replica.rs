//! The sealed-artifact replication channel — the *fenced send path*.
//!
//! A primary never streams raw writes to its replica. Following the
//! index-shipping replication model, it ships the *finished products* —
//! sealed KLOG/VLOG pairs and compacted PIDX/SORTED_VALUES/SIDX
//! clusters — as [`KeyspaceArtifacts`] wrapped in a [`ReplicaShip`]
//! envelope. Promotion is then artifact installation, not log replay:
//! the replica never re-sorts or re-indexes anything that was already
//! compacted on the primary.
//!
//! Since the bus can drop, duplicate, delay and partition (see
//! `FaultInjector::decide_bus`), shipping is a stop-and-wait protocol:
//! every envelope carries a monotonic sequence number and the sender's
//! fencing epoch, the sender retries on ack timeout with capped
//! exponential backoff charged to a virtual clock, and the receiver
//! applies idempotently — duplicates and late retransmits are absorbed
//! by a per-keyspace newest-`seq` check, and any ship below the highest
//! epoch the replica has accepted is rejected at the fence (a deposed
//! primary cannot overwrite its successor's state).
//!
//! Every message crosses the fabric through [`BusResource::xmit`], which
//! charges wire bytes, message overhead and busy time for *every copy
//! that occupied the wire* — duplicated and dropped messages are never
//! free. This module is the only place in `crates/cluster` allowed to
//! touch the bus send primitives (the `epoch-fence` lint pins that).

use std::collections::HashMap;
use std::sync::Arc;

use kvcsd_core::KeyspaceArtifacts;
use kvcsd_proto::{ReplicaShip, ShardId, ShipKind, SHIP_HEADER_BYTES};
use kvcsd_sim::sync::{Mutex, Shared};
use kvcsd_sim::{BusResource, BusXmit, VirtualClock};

/// Wire bytes of one entry in an anti-entropy generation digest:
/// keyspace-name hash (8), newest seq (8), payload length (8), pair
/// count (8).
pub const GEN_ENTRY_BYTES: u64 = 32;

/// Retry discipline for one ship over the unreliable bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShipPolicy {
    /// Total send attempts (first try included) before the link is
    /// declared down.
    pub max_attempts: u32,
    /// Virtual nanoseconds the sender waits for an ack before
    /// retransmitting; charged to the channel clock on every timeout.
    pub timeout_ns: u64,
    /// First retransmit backoff; doubles per attempt.
    pub base_backoff_ns: u64,
    /// Backoff cap.
    pub max_backoff_ns: u64,
}

impl Default for ShipPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            timeout_ns: 50_000,
            base_backoff_ns: 100_000,
            max_backoff_ns: 5_000_000,
        }
    }
}

impl ShipPolicy {
    /// Backoff before the `attempt`-th retransmit (1-based), doubling
    /// from the base and capped.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_backoff_ns
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        shifted.min(self.max_backoff_ns)
    }
}

/// A ship that was acked by the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipOutcome {
    /// Sequence number the envelope carried.
    pub seq: u64,
    /// Send attempts spent (1 = first try acked).
    pub attempts: u32,
    /// Fabric nanoseconds all attempts occupied.
    pub fabric_ns: u64,
}

/// A ship the sender gave up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipError {
    /// Every attempt timed out (dropped, late, or partitioned): the link
    /// is down as far as this primary can tell. The artifact may or may
    /// not have reached the replica — anti-entropy reconciliation closes
    /// the gap after heal.
    LinkDown { attempts: u32 },
}

#[derive(Debug, Default)]
struct ReplicaState {
    /// Newest accepted ship per keyspace — the replica's durable state.
    applied: HashMap<String, (ReplicaShip, KeyspaceArtifacts)>,
    /// Ships that installed new state.
    accepted: u64,
    /// Deliveries absorbed by the idempotency check (duplicates and
    /// stale retransmits).
    duplicates: u64,
    /// Deliveries rejected at the epoch fence.
    fenced: u64,
}

/// The per-shard replication channel plus the replica's artifact store.
pub struct ReplicaLog {
    shard: ShardId,
    bus: BusResource,
    clock: Arc<VirtualClock>,
    policy: ShipPolicy,
    seq: Shared<u64>,
    /// Highest epoch the replica has accepted a ship from; the fence.
    applied_epoch: Shared<u64>,
    state: Mutex<ReplicaState>,
}

impl ReplicaLog {
    pub fn new(shard: ShardId, bus: BusResource, clock: Arc<VirtualClock>) -> Self {
        Self::with_policy(shard, bus, clock, ShipPolicy::default())
    }

    pub fn with_policy(
        shard: ShardId,
        bus: BusResource,
        clock: Arc<VirtualClock>,
        policy: ShipPolicy,
    ) -> Self {
        Self {
            shard,
            bus,
            clock,
            policy,
            seq: Shared::new(0),
            applied_epoch: Shared::new(0),
            state: Mutex::new(ReplicaState::default()),
        }
    }

    /// The virtual clock ack timeouts and retransmit backoff are charged
    /// to.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    fn envelope(&self, keyspace: &str, art: &KeyspaceArtifacts, epoch: u64) -> ReplicaShip {
        let seq = self.seq.update(|s| {
            *s += 1;
            *s
        });
        ReplicaShip {
            seq,
            epoch,
            shard: self.shard,
            keyspace: keyspace.to_string(),
            kind: art.ship_kind(),
            payload_bytes: art.wire_bytes(),
        }
    }

    /// Ship one keyspace's artifacts across the unreliable bus, stamped
    /// with the sender's fencing `epoch`. Stop-and-wait: retransmit on
    /// ack timeout up to the policy budget, charging each timeout plus a
    /// capped doubling backoff to the channel clock. `Ok` means the
    /// replica acked; `Err(LinkDown)` means every attempt timed out and
    /// anti-entropy must close the gap after heal.
    pub fn ship(
        &self,
        keyspace: &str,
        art: KeyspaceArtifacts,
        epoch: u64,
    ) -> Result<ShipOutcome, ShipError> {
        let ship = self.envelope(keyspace, &art, epoch);
        let seq = ship.seq;
        let wire = ship.wire_size();
        let mut fabric_ns = 0u64;
        for attempt in 1..=self.policy.max_attempts {
            match self.bus.xmit(wire) {
                BusXmit::Delivered { ns, copies } => {
                    fabric_ns = fabric_ns.saturating_add(ns);
                    for _ in 0..copies {
                        self.apply(ship.clone(), art.clone());
                    }
                    return Ok(ShipOutcome {
                        seq,
                        attempts: attempt,
                        fabric_ns,
                    });
                }
                BusXmit::Late { ns, copies } => {
                    // The replica receives every copy, but the ack misses
                    // the timeout window: the sender retransmits and the
                    // idempotency check absorbs the overlap.
                    fabric_ns = fabric_ns.saturating_add(ns);
                    for _ in 0..copies {
                        self.apply(ship.clone(), art.clone());
                    }
                }
                BusXmit::Dropped { ns } => {
                    fabric_ns = fabric_ns.saturating_add(ns);
                }
                BusXmit::Partitioned => {}
            }
            self.clock.advance(self.policy.timeout_ns);
            if attempt < self.policy.max_attempts {
                self.clock.advance(self.policy.backoff_ns(attempt));
            }
        }
        Err(ShipError::LinkDown {
            attempts: self.policy.max_attempts,
        })
    }

    /// Install artifacts locally without crossing the bus — used by a
    /// freshly promoted primary to re-seed the channel from its own
    /// replayed state (the data is already on this side of any
    /// partition, so no wire cost and no fault exposure).
    pub fn reseed(&self, keyspace: &str, art: KeyspaceArtifacts, epoch: u64) {
        let ship = self.envelope(keyspace, &art, epoch);
        self.apply(ship, art);
    }

    /// Receiver-side delivery of one envelope: fence stale epochs, absorb
    /// duplicates and stale retransmits, install anything newer.
    fn apply(&self, ship: ReplicaShip, art: KeyspaceArtifacts) {
        let epoch_ok = self.applied_epoch.update(|e| {
            if ship.epoch < *e {
                false
            } else {
                *e = ship.epoch;
                true
            }
        });
        let mut st = self.state.lock();
        if !epoch_ok {
            st.fenced += 1;
            return;
        }
        match st.applied.get(&ship.keyspace) {
            Some((have, _)) if have.seq >= ship.seq => st.duplicates += 1,
            _ => {
                st.accepted += 1;
                st.applied.insert(ship.keyspace.clone(), (ship, art));
            }
        }
    }

    /// The newest accepted ship per keyspace, in `seq` order — what
    /// promotion replays. A later ship for a keyspace superseded the
    /// earlier one at apply time (a compacted payload replaces the sealed
    /// logs it was built from), so this installs exactly one artifact set
    /// per keyspace.
    pub fn latest_per_keyspace(&self) -> Vec<(ReplicaShip, KeyspaceArtifacts)> {
        let st = self.state.lock();
        let mut out: Vec<(ReplicaShip, KeyspaceArtifacts)> = st.applied.values().cloned().collect();
        out.sort_by_key(|(s, _)| s.seq);
        out
    }

    /// The replica's per-keyspace artifact generations, sorted by name —
    /// one side of the anti-entropy exchange.
    pub fn generations(&self) -> Vec<(String, ShipKind, u64, u64)> {
        let st = self.state.lock();
        let mut out: Vec<(String, ShipKind, u64, u64)> = st
            .applied
            .values()
            .map(|(s, a)| (s.keyspace.clone(), s.kind, s.payload_bytes, a.pairs))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The anti-entropy generation exchange: ship the digest request and
    /// the replica's answer over the (still unreliable) bus, then return
    /// the generations. `None` means the exchange itself was lost —
    /// reconciliation retries on a later pass.
    pub fn exchange_generations(&self) -> Option<Vec<(String, ShipKind, u64, u64)>> {
        let gens = self.generations();
        let digest = SHIP_HEADER_BYTES + GEN_ENTRY_BYTES * gens.len() as u64;
        match self.bus.xmit(digest) {
            BusXmit::Delivered { .. } => Some(gens),
            BusXmit::Late { .. } | BusXmit::Dropped { .. } | BusXmit::Partitioned => None,
        }
    }

    /// True while the channel's link is inside a partition window.
    pub fn is_partitioned(&self) -> bool {
        self.bus.is_partitioned()
    }

    /// Distinct keyspaces with installed artifacts.
    pub fn len(&self) -> usize {
        self.state.lock().applied.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ships that installed new state.
    pub fn accepted(&self) -> u64 {
        self.state.lock().accepted
    }

    /// Deliveries absorbed by the idempotency check.
    pub fn duplicates(&self) -> u64 {
        self.state.lock().duplicates
    }

    /// Deliveries rejected at the epoch fence.
    pub fn fenced(&self) -> u64 {
        self.state.lock().fenced
    }

    /// Highest epoch the replica has accepted a ship from.
    pub fn applied_epoch(&self) -> u64 {
        self.applied_epoch.get()
    }

    /// Raise the receive fence to `epoch` without shipping anything.
    /// Called at promotion: the deposed primary must be fenced even
    /// before the successor ships (or reseeds) its first artifact —
    /// otherwise a shard whose replica log was empty at deposition would
    /// accept stale-epoch ships. The fence never regresses.
    pub fn advance_epoch(&self, epoch: u64) {
        self.applied_epoch.update(|e| *e = (*e).max(epoch));
    }

    /// Drop the installed artifacts — used when a freshly promoted
    /// primary re-seeds the channel from scratch. The epoch fence and the
    /// diagnostic counters survive: a deposed primary stays fenced across
    /// the re-seed.
    pub fn clear(&self) {
        self.state.lock().applied.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_core::ArtifactPayload;
    use kvcsd_sim::{BusConfig, FaultInjector, FaultPlan, IoLedger};

    fn sealed(pairs: u64) -> KeyspaceArtifacts {
        KeyspaceArtifacts {
            name: "t".into(),
            pairs,
            data_bytes: pairs * 16,
            min_key: Some(vec![0]),
            max_key: Some(vec![0xFF]),
            payload: ArtifactPayload::SealedLogs {
                klog: vec![0u8; 64],
                vlog: vec![0u8; 128],
            },
        }
    }

    fn bus() -> (BusResource, Arc<IoLedger>) {
        let ledger = Arc::new(IoLedger::new(1, 4096));
        (
            BusResource::new(BusConfig::default(), Arc::clone(&ledger)),
            ledger,
        )
    }

    fn faulty_bus(plan: FaultPlan) -> (BusResource, Arc<IoLedger>, Arc<FaultInjector>) {
        let ledger = Arc::new(IoLedger::new(1, 4096));
        let inj = Arc::new(FaultInjector::new(plan));
        (
            BusResource::new(BusConfig::default(), Arc::clone(&ledger)).with_faults(inj.clone()),
            ledger,
            inj,
        )
    }

    #[test]
    fn ships_are_sequenced_and_charged_to_the_fabric_ledger() {
        let (bus, ledger) = bus();
        let log = ReplicaLog::new(2, bus, Arc::new(VirtualClock::new()));
        let s1 = log.ship("t", sealed(10), 1).unwrap();
        let s2 = log.ship("t", sealed(20), 1).unwrap();
        assert_eq!((s1.seq, s2.seq), (1, 2));
        assert_eq!((s1.attempts, s2.attempts), (1, 1));
        assert!(s1.fabric_ns > 0, "a ship must occupy the fabric");
        assert_eq!(ledger.custom("bus_msgs"), 2);
        assert!(ledger.custom("bus_bytes") > 0);
        // A clean first-attempt ack charges no timeout to the clock.
        assert_eq!(log.clock().now_ns(), 0);
    }

    #[test]
    fn replay_set_keeps_only_the_newest_ship_per_keyspace() {
        let (bus, _ledger) = bus();
        let log = ReplicaLog::new(0, bus, Arc::new(VirtualClock::new()));
        log.ship("a", sealed(1), 1).unwrap();
        log.ship("b", sealed(2), 1).unwrap();
        log.ship("a", sealed(3), 1).unwrap();
        let latest = log.latest_per_keyspace();
        assert_eq!(latest.len(), 2);
        let a = latest.iter().find(|(s, _)| s.keyspace == "a").unwrap();
        assert_eq!(a.1.pairs, 3, "newer ship for 'a' supersedes the first");
        assert_eq!(a.0.seq, 3);
    }

    #[test]
    fn duplicate_delivery_is_idempotent_but_charged() {
        // Satellite: dup_prob = 1.0 delivers every artifact twice. The
        // replica must install exactly one copy while the ledger charges
        // both — duplicates occupied the fabric.
        let (bus, ledger, _) = faulty_bus(FaultPlan::none().with_link_faults(0.0, 1.0, 0.0, 0.0));
        let log = ReplicaLog::new(1, bus, Arc::new(VirtualClock::new()));
        let out = log.ship("t", sealed(10), 1).unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.accepted(), 1);
        assert_eq!(log.duplicates(), 1, "second copy absorbed, not installed");
        assert_eq!(ledger.custom("bus_msgs"), 2, "both copies charged");
        let wire = log.latest_per_keyspace()[0].0.wire_size();
        assert_eq!(ledger.custom("bus_bytes"), 2 * wire);
        // A second identical-content ship (new seq) installs normally.
        log.ship("t", sealed(10), 1).unwrap();
        assert_eq!(log.accepted(), 2);
        assert_eq!(log.duplicates(), 2);
    }

    #[test]
    fn drops_exhaust_the_retry_budget_with_charged_timeouts() {
        // drop_prob = 1.0: every attempt is lost, the sender burns its
        // whole budget, and each timeout + capped backoff lands on the
        // channel clock while each attempt still occupied the fabric.
        let (bus, ledger, _inj) =
            faulty_bus(FaultPlan::none().with_link_faults(1.0, 0.0, 0.0, 0.0));
        let log = ReplicaLog::new(1, bus, Arc::new(VirtualClock::new()));
        let err = log.ship("t", sealed(1), 1).unwrap_err();
        let policy = ShipPolicy::default();
        assert_eq!(
            err,
            ShipError::LinkDown {
                attempts: policy.max_attempts
            }
        );
        assert_eq!(log.len(), 0, "nothing delivered");
        assert_eq!(
            ledger.custom("bus_msgs"),
            policy.max_attempts as u64,
            "every dropped attempt occupied the fabric"
        );
        let timeouts = policy.timeout_ns * policy.max_attempts as u64;
        let backoffs: u64 = (1..policy.max_attempts).map(|a| policy.backoff_ns(a)).sum();
        assert_eq!(log.clock().now_ns(), timeouts + backoffs);
    }

    #[test]
    fn scheduled_partition_times_out_then_heals_and_ships() {
        // Partition opens at attempt 2 and heals after the retry budget
        // of the first ship burns through it.
        let plan = FaultPlan::none().with_partition_at(2, Some(3));
        let (bus, ledger, inj) = faulty_bus(plan);
        let log = ReplicaLog::new(1, bus, Arc::new(VirtualClock::new()));
        log.ship("a", sealed(1), 1).unwrap(); // bus op 1: clean
                                              // Bus ops 2-4 partitioned; the heal fires at op 5 and the fourth
                                              // attempt of this ship delivers.
        let out = log.ship("b", sealed(2), 1).unwrap();
        assert_eq!(out.attempts, 4);
        assert!(!inj.is_partitioned());
        assert_eq!(log.len(), 2);
        // Partitioned attempts never occupied the fabric.
        assert_eq!(ledger.custom("bus_msgs"), 2);
    }

    #[test]
    fn late_delivery_installs_once_despite_the_retransmit() {
        // reorder_prob = 1.0 on the first draw only is not expressible
        // with one probability, so drive the protocol by hand: a Late
        // outcome applies the message, the sender retransmits, and the
        // duplicate is absorbed. With reorder always on, every attempt
        // applies — the budget exhausts but the replica converged.
        let (bus, _ledger, _) = faulty_bus(FaultPlan::none().with_link_faults(0.0, 0.0, 1.0, 0.0));
        let log = ReplicaLog::new(1, bus, Arc::new(VirtualClock::new()));
        let err = log.ship("t", sealed(5), 1).unwrap_err();
        assert!(matches!(err, ShipError::LinkDown { .. }));
        assert_eq!(log.len(), 1, "the late originals all arrived");
        assert_eq!(log.accepted(), 1);
        assert_eq!(
            log.duplicates(),
            ShipPolicy::default().max_attempts as u64 - 1,
            "every retransmit after the first was absorbed"
        );
    }

    #[test]
    fn stale_epoch_ships_are_fenced_and_do_not_overwrite() {
        let (bus, _ledger) = bus();
        let log = ReplicaLog::new(1, bus, Arc::new(VirtualClock::new()));
        log.ship("t", sealed(10), 2).unwrap();
        assert_eq!(log.applied_epoch(), 2);
        // A deposed primary (epoch 1) ships: delivered, but rejected.
        log.ship("t", sealed(99), 1).unwrap();
        assert_eq!(log.fenced(), 1);
        assert_eq!(log.latest_per_keyspace()[0].1.pairs, 10);
        // The fence survives a promotion re-seed.
        log.clear();
        log.reseed("t", sealed(11), 3);
        log.ship("t", sealed(99), 1).unwrap();
        assert_eq!(log.fenced(), 2);
        assert_eq!(log.latest_per_keyspace()[0].1.pairs, 11);
    }

    #[test]
    fn promotion_raises_the_fence_even_with_nothing_to_reseed() {
        let (bus, _ledger) = bus();
        let log = ReplicaLog::new(1, bus, Arc::new(VirtualClock::new()));
        log.advance_epoch(2);
        log.ship("t", sealed(9), 1).unwrap();
        assert_eq!(log.fenced(), 1, "stale ship rejected on an empty log");
        assert!(log.is_empty());
        log.advance_epoch(1);
        assert_eq!(log.applied_epoch(), 2, "the fence never regresses");
    }

    #[test]
    fn generation_exchange_reports_sorted_generations() {
        let (bus, ledger) = bus();
        let log = ReplicaLog::new(1, bus, Arc::new(VirtualClock::new()));
        log.ship("b", sealed(2), 1).unwrap();
        log.ship("a", sealed(1), 1).unwrap();
        let before = ledger.custom("bus_msgs");
        let gens = log.exchange_generations().unwrap();
        assert_eq!(ledger.custom("bus_msgs"), before + 1, "digest is charged");
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[0].0, "a");
        assert_eq!(gens[1].0, "b");
        assert_eq!(gens[0].3, 1);
    }
}
