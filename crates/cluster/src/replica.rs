//! The sealed-artifact replication log.
//!
//! A primary never streams raw writes to its replica. Following the
//! index-shipping replication model, it ships the *finished products* —
//! sealed KLOG/VLOG pairs and compacted PIDX/SORTED_VALUES/SIDX
//! clusters — as [`KeyspaceArtifacts`] wrapped in a [`ReplicaShip`]
//! envelope. Promotion is then artifact installation, not log replay:
//! the replica never re-sorts or re-indexes anything that was already
//! compacted on the primary.
//!
//! Every ship crosses the fabric through a [`BusResource`], which charges
//! wire bytes, message overhead and busy time to the cluster's fabric
//! ledger — replication is never free in the simulation's accounting.

use std::collections::HashMap;

use kvcsd_core::KeyspaceArtifacts;
use kvcsd_proto::{ReplicaShip, ShardId};
use kvcsd_sim::sync::{Mutex, Shared};
use kvcsd_sim::BusResource;

/// The per-shard replica: an ordered log of shipped artifacts.
pub struct ReplicaLog {
    shard: ShardId,
    bus: BusResource,
    seq: Shared<u64>,
    log: Mutex<Vec<(ReplicaShip, KeyspaceArtifacts)>>,
}

impl ReplicaLog {
    pub fn new(shard: ShardId, bus: BusResource) -> Self {
        Self {
            shard,
            bus,
            seq: Shared::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Ship one keyspace's artifacts to the replica, paying the fabric
    /// cost. Returns the ship's sequence number and the simulated fabric
    /// nanoseconds the transfer occupied.
    pub fn ship(&self, keyspace: &str, art: KeyspaceArtifacts) -> (u64, u64) {
        let seq = self.seq.update(|s| {
            *s += 1;
            *s
        });
        let ship = ReplicaShip {
            seq,
            shard: self.shard,
            keyspace: keyspace.to_string(),
            kind: art.ship_kind(),
            payload_bytes: art.wire_bytes(),
        };
        let ns = self.bus.transfer(ship.wire_size());
        self.log.lock().push((ship, art));
        (seq, ns)
    }

    /// The newest ship per keyspace, in shipping order. A later ship for
    /// the same keyspace supersedes the earlier one (a compacted payload
    /// replaces the sealed logs it was built from), so promotion installs
    /// exactly one artifact set per keyspace.
    pub fn latest_per_keyspace(&self) -> Vec<(ReplicaShip, KeyspaceArtifacts)> {
        let log = self.log.lock();
        let mut newest: HashMap<String, usize> = HashMap::new();
        for (i, (ship, _)) in log.iter().enumerate() {
            newest.insert(ship.keyspace.clone(), i);
        }
        let mut picked: Vec<usize> = newest.into_values().collect();
        picked.sort_unstable();
        picked.iter().map(|&i| log[i].clone()).collect()
    }

    /// Number of ships accepted so far.
    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything — used when a freshly promoted primary re-seeds
    /// its replica from scratch.
    pub fn clear(&self) {
        self.log.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_core::ArtifactPayload;
    use kvcsd_sim::{BusConfig, IoLedger};
    use std::sync::Arc;

    fn sealed(pairs: u64) -> KeyspaceArtifacts {
        KeyspaceArtifacts {
            name: "t".into(),
            pairs,
            data_bytes: pairs * 16,
            min_key: Some(vec![0]),
            max_key: Some(vec![0xFF]),
            payload: ArtifactPayload::SealedLogs {
                klog: vec![0u8; 64],
                vlog: vec![0u8; 128],
            },
        }
    }

    fn bus() -> (BusResource, Arc<IoLedger>) {
        let ledger = Arc::new(IoLedger::new(1, 4096));
        (
            BusResource::new(BusConfig::default(), Arc::clone(&ledger)),
            ledger,
        )
    }

    #[test]
    fn ships_are_sequenced_and_charged_to_the_fabric_ledger() {
        let (bus, ledger) = bus();
        let log = ReplicaLog::new(2, bus);
        let (s1, ns1) = log.ship("t", sealed(10));
        let (s2, _) = log.ship("t", sealed(20));
        assert_eq!((s1, s2), (1, 2));
        assert!(ns1 > 0, "a ship must occupy the fabric");
        assert_eq!(ledger.custom("bus_msgs"), 2);
        assert!(ledger.custom("bus_bytes") > 0);
    }

    #[test]
    fn replay_set_keeps_only_the_newest_ship_per_keyspace() {
        let (bus, _ledger) = bus();
        let log = ReplicaLog::new(0, bus);
        log.ship("a", sealed(1));
        log.ship("b", sealed(2));
        log.ship("a", sealed(3));
        let latest = log.latest_per_keyspace();
        assert_eq!(latest.len(), 2);
        let a = latest.iter().find(|(s, _)| s.keyspace == "a").unwrap();
        assert_eq!(a.1.pairs, 3, "newer ship for 'a' supersedes the first");
        assert_eq!(a.0.seq, 3);
    }
}
