//! A sharded multi-device KV-CSD cluster with replication and failover.
//!
//! The single-device crates reproduce the paper's prototype; the ROADMAP
//! north star is a production-scale deployment, and this crate models its
//! first structural step: **N independent simulated KV-CSD instances
//! behind a host-side router**. ZCSD motivates treating computational
//! storage devices as independently-failing instances; Vardoulakis et al.
//! supply the replication shape — ship the *built* indexes (and the
//! sealed logs that precede them), never a write stream, so a replica is
//! promoted by installing artifacts rather than re-doing compaction work.
//!
//! The moving parts:
//!
//! * [`ShardStrategy`] — hash- or range-partitions every keyspace's keys
//!   across the shards; each cluster-level keyspace exists on every
//!   device under the same name.
//! * [`ClusterRouter`] — implements [`kvcsd_proto::DeviceHandler`], so
//!   the ordinary `kvcsd-client` sessions work unchanged against a whole
//!   fleet (routed sessions). Point ops go to the owning shard; RANGE and
//!   SIDX queries scatter-gather and merge in (secondary-)key order.
//! * [`replica::ReplicaLog`] — the sealed-artifact log a primary ships to
//!   its designated peer over a ledger-charged [`kvcsd_sim::BusResource`].
//! * Failover — when the fault injector kills a primary (including
//!   mid-compaction, which the idempotent seal makes safe), the router
//!   promotes a replacement from the replica log and replays it; every
//!   *sealed-and-shipped* write remains readable. Clients see one
//!   [`kvcsd_proto::KvStatus::FailoverInProgress`] bounce and their
//!   immediate resend lands on the promoted replica.
//!
//! Each shard runs its own virtual clock, ledger and fault injector:
//! a stalled or dead shard charges time only to commands routed at its
//! keyspace ranges, never to the rest of the fleet. All router/replica
//! shared state uses the `kvcsd_sim::sync` shims, so lockdep and the
//! happens-before race detector cover the cluster layer from day one.
//!
//! Durability contract (DESIGN.md §12): a PUT ack means device-buffered
//! (volatile, as on the single device); a COMPACT ack means sealed on the
//! primary *and* shipped to the replica log; artifacts in the replica log
//! survive any single-device death.

pub mod model;
pub mod replica;
pub mod router;
pub mod shard;

pub use model::{run_two_shard, ModelOutcome};
pub use replica::{ReplicaLog, ShipError, ShipOutcome, ShipPolicy};
pub use router::{ClusterRouter, FailoverEvent};
pub use shard::{ShardHealth, ShardInstance};

use kvcsd_core::DeviceConfig;
use kvcsd_flash::{FlashGeometry, ZnsConfig};
use kvcsd_sim::fault::FaultPlan;
use kvcsd_sim::BusConfig;

/// How keys are partitioned across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStrategy {
    /// FNV-1a hash of the key, modulo the shard count. Spreads any
    /// keyspace uniformly; range queries always touch every shard.
    HashKeys,
    /// Split points dividing the key space into contiguous runs: keys
    /// below `boundaries[0]` go to shard 0, and so on. Requires exactly
    /// `shards - 1` boundaries; range queries touch only covering shards
    /// (the router still scatters to all — pruning is future work — but
    /// per-shard results stay contiguous).
    RangeKeys { boundaries: Vec<Vec<u8>> },
}

impl ShardStrategy {
    /// The shard owning `key` in an `n`-shard cluster.
    pub fn shard_for(&self, key: &[u8], n: u32) -> u32 {
        match self {
            ShardStrategy::HashKeys => {
                let mut h = 0xCBF2_9CE4_8422_2325u64;
                for &b in key {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1_0000_01B3);
                }
                (h % n as u64) as u32
            }
            ShardStrategy::RangeKeys { boundaries } => {
                (boundaries.partition_point(|b| b.as_slice() <= key) as u32).min(n - 1)
            }
        }
    }
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shards (device instances). Each gets its own NAND array,
    /// ZNS namespace, ledger, clock and fault injector.
    pub shards: u32,
    pub strategy: ShardStrategy,
    /// Ship sealed artifacts to a replica log and promote on failure.
    /// When off, a dead primary makes its shard `ShardUnavailable`.
    pub replicate: bool,
    /// Fabric constants for every shard's replication channel.
    pub bus: BusConfig,
    /// Per-device flash geometry.
    pub geometry: FlashGeometry,
    pub zns: ZnsConfig,
    /// Per-device configuration; each shard clones this (the router
    /// installs a per-shard clock on top).
    pub device: DeviceConfig,
    /// One declarative fault plan for the whole fleet. Shard `i`'s
    /// injector is built from `plan.for_device(i)` and its replication
    /// link's from `plan.for_link(i)`, so per-shard device *and* link
    /// failure schedules are deterministic and distinct under one seed —
    /// and independent of each other (the link lane draws from its own
    /// generator, so enabling link faults never perturbs device faults).
    pub fault_plan: FaultPlan,
    /// Stop-and-wait retry discipline for every replication ship.
    pub ship: ShipPolicy,
    /// When a seal-time ship exhausts its retry budget (the replication
    /// link looks down), depose the primary as *suspected* — promote the
    /// replica side under a freshly minted fencing epoch — instead of
    /// acking without replica durability. The deposed instance is kept
    /// around (it is not dead hardware) and every ack or ship it attempts
    /// is rejected at the epoch fence, so at most one primary acks per
    /// epoch even while both sides of a partition keep executing.
    ///
    /// When off, the seal bounces with a retryable error, the shard keeps
    /// its primary, and anti-entropy reconciliation re-ships the gap
    /// after the partition heals (availability over replica durability).
    pub partition_failover: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            shards: 3,
            strategy: ShardStrategy::HashKeys,
            replicate: true,
            bus: BusConfig::default(),
            geometry: FlashGeometry {
                channels: 8,
                blocks_per_channel: 256,
                pages_per_block: 16,
                page_bytes: 4096,
            },
            zns: ZnsConfig::default(),
            device: DeviceConfig {
                cluster_width: 8,
                soc_dram_bytes: 8 << 20,
                ..DeviceConfig::default()
            },
            fault_plan: FaultPlan::none(),
            ship: ShipPolicy::default(),
            partition_failover: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_sharding_is_deterministic_and_covers_all_shards() {
        let s = ShardStrategy::HashKeys;
        let mut hit = [false; 4];
        for i in 0..200u32 {
            let key = format!("key-{i:08}");
            let a = s.shard_for(key.as_bytes(), 4);
            assert_eq!(a, s.shard_for(key.as_bytes(), 4));
            hit[a as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "200 keys must touch all 4 shards");
    }

    #[test]
    fn range_sharding_respects_boundaries() {
        let s = ShardStrategy::RangeKeys {
            boundaries: vec![b"g".to_vec(), b"p".to_vec()],
        };
        assert_eq!(s.shard_for(b"apple", 3), 0);
        assert_eq!(s.shard_for(b"g", 3), 1, "boundary key goes right");
        assert_eq!(s.shard_for(b"melon", 3), 1);
        assert_eq!(s.shard_for(b"zebra", 3), 2);
    }
}
