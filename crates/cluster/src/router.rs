//! The host-side cluster router.
//!
//! [`ClusterRouter`] owns N [`ShardInstance`]s and implements
//! [`DeviceHandler`], so an unmodified `kvcsd-client` session drives the
//! whole fleet through one queue pair ("routed sessions"). Every
//! cluster-level keyspace exists on every shard under the same name; the
//! [`crate::ShardStrategy`] decides which shard owns each key.
//!
//! * Point ops (`Put`, `Get`) go to the owning shard only.
//! * `Range` / `SidxRange` / `SidxGet` scatter to the covering shards and
//!   the router merges the per-shard result sets back into global
//!   (secondary-)key order.
//! * `Compact` fans out to every shard; right after each shard's
//!   synchronous seal the router exports the sealed-log artifacts and
//!   ships them to the shard's replica log. When deferred jobs finish
//!   (`run_background`), the built indexes are shipped too.
//! * A primary that dies (fault-injector power cut — detected either as a
//!   `PowerLoss` response or by the injector's powered-off latch) is
//!   promoted from its replica log: artifacts are installed on a fresh
//!   instance, sealed-log installs are re-compacted through the checked
//!   DEGRADED → COMPACTING edge, and the route table is repointed. While
//!   that runs, commands bounce with the *retryable*
//!   `FailoverInProgress`; the client's fail-fast resend lands on the
//!   promoted replica.
//!
//! Backpressure composes per shard: each device keeps its own
//! `AdmissionGate`, ledger and virtual clock, so a stalled or dead shard
//! charges stall time only to commands routed at its keys — never to the
//! rest of the fleet.

use std::collections::HashMap;
use std::sync::Arc;

use kvcsd_core::{ArtifactPayload, KvCsdDevice};
use kvcsd_proto::{
    Bound, DeviceHandler, JobId, JobState, KeyspaceDesc, KeyspaceStat, KeyspaceState, KvCommand,
    KvResponse, KvStatus, SecondaryIndexSpec, ShardId, ShipKind,
};
use kvcsd_sim::sync::{Mutex, RwLock, Shared};
use kvcsd_sim::{BusResource, FaultInjector, FaultPlan, IoLedger, VirtualClock};

use crate::replica::{ReplicaLog, ShipError, ShipOutcome};
use crate::shard::{HealthCell, ShardHealth, ShardInstance};
use crate::ClusterConfig;

/// One shard's slice of a scatter-gathered entry set.
type Entries = Vec<(Vec<u8>, Vec<u8>)>;

/// One completed promotion, for reproducibility auditing: the torture
/// suite asserts that the same seed yields the identical event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverEvent {
    pub shard: ShardId,
    /// 1-based promotion count on this shard.
    pub generation: u32,
    /// Artifact sets installed from the replica log.
    pub replayed_artifacts: u32,
    /// Of those, sealed-log installs that were re-compacted during
    /// promotion (the mid-compaction death case).
    pub recompacted: u32,
    /// `true` when the old primary was deposed on *suspicion* (its
    /// replication link looked down) rather than observed dead. A
    /// suspected primary is kept around, fenced at the old epoch — the
    /// split-brain case the partition torture suite drives directly.
    pub suspected: bool,
}

/// Disposition of a shard-level error during cluster fan-out / polling;
/// see [`ClusterRouter::classify_shard_error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardErrorClass {
    /// The shard is mid-promotion: bounce to the client as retryable.
    Failover,
    /// The shard already applied this fan-out step (idempotent resend).
    AlreadyApplied,
    /// Transient overload: keep polling / resending.
    Transient,
    /// Permanent for this command.
    Permanent,
}

/// Which cluster-level job a client job id maps to.
#[derive(Debug, Clone)]
enum JobKind {
    Compact,
    Sidx(String),
}

#[derive(Debug, Clone)]
struct JobTarget {
    ks: u32,
    kind: JobKind,
}

/// One cluster-level keyspace and its per-shard local ids.
#[derive(Debug, Clone)]
struct ClusterKeyspace {
    id: u32,
    name: String,
    /// `local[i]` is the keyspace id on shard `i`'s current primary;
    /// repointed on promotion.
    local: Vec<u32>,
    /// Secondary-index specs seen so far, recorded for merge ordering.
    specs: Vec<SecondaryIndexSpec>,
}

#[derive(Default)]
struct RouteTable {
    next_ks: u32,
    next_job: u64,
    keyspaces: HashMap<u32, ClusterKeyspace>,
    by_name: HashMap<String, u32>,
    jobs: HashMap<u64, JobTarget>,
}

struct ShardState {
    id: ShardId,
    primary: RwLock<ShardInstance>,
    /// The previous primary after a *suspected* deposition (partition
    /// failover). It still executes commands — that is the point: its
    /// acks and ships must be rejected at the epoch fence, never by
    /// making the instance magically unreachable.
    deposed: Mutex<Option<ShardInstance>>,
    replica: ReplicaLog,
    /// This shard's replication-link fault injector. It belongs to the
    /// *link*, not the primary, so it survives promotions: a new primary
    /// inherits the same (possibly still partitioned) network.
    link: Arc<FaultInjector>,
    /// Current fencing epoch; minted (`+1`) at every promotion.
    epoch: Shared<u64>,
    /// Set when a ship gave up on a down link: the primary may hold
    /// artifacts the replica never saw. Cleared by a successful
    /// anti-entropy pass after the partition heals.
    needs_reconcile: Shared<bool>,
    health: HealthCell,
}

/// The router: N shards, a route table and a failover event log.
pub struct ClusterRouter {
    cfg: ClusterConfig,
    shards: Vec<ShardState>,
    fabric: Arc<IoLedger>,
    /// Router-side virtual time: every fan-out advances it by the
    /// *slowest* shard's busy delta, never the sum — the host drives all
    /// shards' queues concurrently (see [`ClusterRouter::drive_concurrent`]).
    host_clock: Arc<VirtualClock>,
    routes: Mutex<RouteTable>,
    events: Mutex<Vec<FailoverEvent>>,
}

impl ClusterRouter {
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.shards > 0, "a cluster needs at least one shard");
        if let crate::ShardStrategy::RangeKeys { boundaries } = &cfg.strategy {
            assert_eq!(
                boundaries.len() + 1,
                cfg.shards as usize,
                "range sharding needs exactly shards-1 boundaries"
            );
        }
        // One fabric ledger shared by every shard's bus, so aggregate
        // replication traffic is observable in one place.
        let fabric = Arc::new(IoLedger::new(cfg.shards, 4096));
        let shards = (0..cfg.shards)
            .map(|id| {
                // The link's fault lane is keyed per link id and draws
                // from its own generator, so the same fleet seed yields
                // the same device schedules with or without link faults.
                let link = Arc::new(FaultInjector::new(cfg.fault_plan.clone().for_link(id)));
                let bus =
                    BusResource::new(cfg.bus, Arc::clone(&fabric)).with_faults(Arc::clone(&link));
                ShardState {
                    id,
                    primary: RwLock::new(ShardInstance::build(&cfg, id, cfg.fault_plan.clone(), 1)),
                    deposed: Mutex::new(None),
                    replica: ReplicaLog::with_policy(
                        id,
                        bus,
                        Arc::new(VirtualClock::new()),
                        cfg.ship,
                    ),
                    link,
                    epoch: Shared::new(1),
                    needs_reconcile: Shared::new(false),
                    health: HealthCell::new(),
                }
            })
            .collect();
        Self {
            cfg,
            shards,
            fabric,
            host_clock: Arc::new(VirtualClock::new()),
            routes: Mutex::new(RouteTable::default()),
            events: Mutex::new(Vec::new()),
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Aggregate replication-fabric accounting (bus_bytes / bus_msgs /
    /// bus_busy_ns across every shard's channel).
    pub fn fabric_ledger(&self) -> &Arc<IoLedger> {
        &self.fabric
    }

    /// The router's own virtual clock. Each fan-out advances it by the
    /// slowest shard's busy-time delta, so it reads as the wall time of
    /// a host driving every shard's queue concurrently. A pipelined
    /// [`kvcsd_proto::QueuePair`] over the router uses it as its
    /// execution probe (`crates/bench/src/bin/ingest.rs`).
    pub fn host_clock(&self) -> &Arc<VirtualClock> {
        &self.host_clock
    }

    pub fn shard_health(&self, ix: u32) -> ShardHealth {
        self.shards[ix as usize].health.get()
    }

    /// The current primary's private virtual clock for shard `ix`.
    pub fn shard_clock(&self, ix: u32) -> Arc<VirtualClock> {
        Arc::clone(self.shards[ix as usize].primary.read().clock())
    }

    /// The current primary's I/O ledger for shard `ix`.
    pub fn shard_ledger(&self, ix: u32) -> Arc<IoLedger> {
        Arc::clone(self.shards[ix as usize].primary.read().ledger())
    }

    /// Ships currently held in shard `ix`'s replica log.
    pub fn replica_depth(&self, ix: u32) -> usize {
        self.shards[ix as usize].replica.len()
    }

    /// Shard `ix`'s replication channel — counters (`accepted` /
    /// `duplicates` / `fenced`), generations and the channel clock that
    /// ack timeouts are charged to.
    pub fn replica_log(&self, ix: u32) -> &ReplicaLog {
        &self.shards[ix as usize].replica
    }

    /// Shard `ix`'s current fencing epoch.
    pub fn shard_epoch(&self, ix: u32) -> u64 {
        self.shards[ix as usize].epoch.get()
    }

    /// The fault injector on shard `ix`'s replication link. Torture
    /// harness hook: partition (`partition_now`) / heal (`heal_link_now`)
    /// the link directly, or read its event log for determinism audits.
    pub fn shard_link(&self, ix: u32) -> Arc<FaultInjector> {
        Arc::clone(&self.shards[ix as usize].link)
    }

    /// Completed promotions, in order.
    pub fn events(&self) -> Vec<FailoverEvent> {
        self.events.lock().clone()
    }

    /// Run every healthy shard's deferred jobs and ship freshly built
    /// indexes to the replica logs. Returns the number of jobs run.
    /// Models the device fleet's background processing; the router also
    /// grants background time on every `PollJob`, so a polling client
    /// makes progress without an external driver.
    pub fn run_background(&self) -> usize {
        let all: Vec<usize> = (0..self.shards.len()).collect();
        self.drive_concurrent(&all, |ix| self.run_shard_background(ix))
            .into_iter()
            .sum()
    }

    /// Total busy virtual time shard `ix` has accumulated so far:
    /// device-side compute and transfer from the primary's ledger, its
    /// private clock, and the replication channel clock. Only *deltas*
    /// of this metric are meaningful — see [`ClusterRouter::drive_concurrent`].
    fn shard_busy_ns(&self, ix: usize) -> u64 {
        let st = &self.shards[ix];
        let (clock_ns, s) = {
            let inst = st.primary.read();
            (inst.clock().now_ns(), inst.ledger().snapshot())
        };
        clock_ns
            + s.host_cpu_ns
            + s.soc_cpu_ns
            + s.bridge_busy_ns
            + s.max_channel_busy_ns()
            + st.replica.clock().now_ns()
    }

    /// Run `f` once per shard in `shards` (in order, so results and
    /// errors keep shard-order semantics), then advance the router clock
    /// by the *maximum* per-shard busy delta: the host drives every
    /// shard's queue concurrently, so a fan-out costs the slowest
    /// shard's time, not the sum of all shards'.
    fn drive_concurrent<R>(&self, shards: &[usize], mut f: impl FnMut(usize) -> R) -> Vec<R> {
        let before: Vec<u64> = shards.iter().map(|&ix| self.shard_busy_ns(ix)).collect();
        let out: Vec<R> = shards.iter().map(|&ix| f(ix)).collect();
        let worst = shards
            .iter()
            .zip(&before)
            .map(|(&ix, &b)| self.shard_busy_ns(ix).saturating_sub(b))
            .max()
            .unwrap_or(0);
        self.host_clock.advance(worst);
        out
    }

    fn run_shard_background(&self, ix: usize) -> usize {
        let st = &self.shards[ix];
        if st.health.get() != ShardHealth::Healthy {
            return 0;
        }
        let (ran, died) = {
            let inst = st.primary.read();
            let ran = if inst.device().pending_jobs() > 0 {
                inst.device().run_pending_jobs()
            } else {
                0
            };
            (ran, inst.injector().is_powered_off())
        };
        // The guard is dropped before promotion: the RwLock shim is not
        // reentrant and failover takes the write side.
        if died {
            self.failover(ix, false);
        } else if ran > 0 && self.cfg.replicate {
            self.ship_compacted(ix);
        }
        // Anti-entropy rides on background time: once the link is out of
        // its partition window, a polling client drives the replica back
        // into convergence without any external daemon.
        let st = &self.shards[ix];
        if self.cfg.replicate && st.needs_reconcile.get() && !st.replica.is_partitioned() {
            self.reconcile_shard(ix);
        }
        ran
    }

    /// Anti-entropy for every shard: exchange per-keyspace artifact
    /// generations with each replica and re-ship only the gaps. Returns
    /// the number of artifacts re-shipped. Shards still inside a
    /// partition window are skipped — a later pass retries them.
    pub fn reconcile(&self) -> usize {
        let mut shipped = 0;
        for ix in 0..self.shards.len() {
            shipped += self.reconcile_shard(ix);
        }
        shipped
    }

    fn reconcile_shard(&self, ix: usize) -> usize {
        let st = &self.shards[ix];
        if !self.cfg.replicate
            || st.health.get() != ShardHealth::Healthy
            || st.replica.is_partitioned()
        {
            return 0;
        }
        // The generation digest itself crosses the (still unreliable)
        // bus; a lost exchange just means a later pass retries.
        let Some(gens) = st.replica.exchange_generations() else {
            st.needs_reconcile.set(true);
            return 0;
        };
        let mut targets: Vec<(String, u32)> = {
            let routes = self.routes.lock();
            routes
                .keyspaces
                .values()
                .map(|ck| (ck.name.clone(), ck.local[ix]))
                .collect()
        };
        // Ship in name order: the link lane draws faults per bus op, so
        // the ship order must not depend on hash-map iteration order.
        targets.sort();
        let epoch = st.epoch.get();
        let mut gaps: Vec<(String, kvcsd_core::KeyspaceArtifacts)> = Vec::new();
        {
            let inst = st.primary.read();
            for (name, local) in targets {
                let Ok(art) = inst.device().export_keyspace_artifacts(local) else {
                    continue;
                };
                // Compare the primary's artifact fingerprint against the
                // replica's generation; only mismatches re-ship.
                let fp = (art.ship_kind(), art.wire_bytes(), art.pairs);
                let have = gens.iter().find(|g| g.0 == name).map(|g| (g.1, g.2, g.3));
                if have != Some(fp) {
                    gaps.push((name, art));
                }
            }
        }
        let mut shipped = 0;
        for (name, art) in gaps {
            match st.replica.ship(&name, art, epoch) {
                Ok(_) => shipped += 1,
                // Link went down again mid-pass: keep the flag, retry on
                // a later pass.
                Err(ShipError::LinkDown { .. }) => {
                    st.needs_reconcile.set(true);
                    return shipped;
                }
            }
        }
        st.needs_reconcile.set(false);
        shipped
    }

    /// Ship every keyspace on shard `ix` whose artifacts are compacted.
    /// Sealed logs were already shipped at seal time; shipping only the
    /// compacted form here keeps the replica log bounded.
    fn ship_compacted(&self, ix: usize) {
        let mut targets: Vec<(String, u32)> = {
            let routes = self.routes.lock();
            routes
                .keyspaces
                .values()
                .map(|ck| (ck.name.clone(), ck.local[ix]))
                .collect()
        };
        // Deterministic ship order (see reconcile_shard).
        targets.sort();
        let st = &self.shards[ix];
        let mut died = false;
        // Export under the primary's read guard, but ship only after it
        // drops: a replica ship occupies the fabric bus (a charged wait),
        // and holding the shard lock across it would stall every command
        // routed at this shard for the transfer's duration.
        let mut to_ship: Vec<(String, kvcsd_core::KeyspaceArtifacts)> = Vec::new();
        {
            let inst = st.primary.read();
            for (name, local) in targets {
                match inst.device().export_keyspace_artifacts(local) {
                    Ok(art) if matches!(art.payload, ArtifactPayload::Compacted { .. }) => {
                        to_ship.push((name, art));
                    }
                    Ok(_) => {}
                    Err(_) => {
                        if inst.injector().is_powered_off() {
                            died = true;
                            break;
                        }
                    }
                }
            }
        }
        let epoch = st.epoch.get();
        for (name, art) in to_ship {
            if let Err(ShipError::LinkDown { .. }) = st.replica.ship(&name, art, epoch) {
                // Background shipping never deposes the primary — nothing
                // is gating a client ack here. Flag the gap; anti-entropy
                // closes it after the partition heals.
                st.needs_reconcile.set(true);
                break;
            }
        }
        if died {
            self.failover(ix, false);
        }
    }

    /// Ship one keyspace's sealed logs right after a successful seal.
    /// This gates the compaction ack: `Ok` means the artifacts are in the
    /// replica log (or replication is off); an `Err` is always retryable
    /// and means the caller must NOT ack durability to the client.
    fn ship_sealed(&self, ix: usize, name: &str, local: u32) -> Result<(), KvStatus> {
        if !self.cfg.replicate {
            return Ok(());
        }
        let st = &self.shards[ix];
        let mut died = false;
        // Same discipline as ship_compacted: never hold the primary's
        // guard across the fabric transfer.
        let mut to_ship = None;
        {
            let inst = st.primary.read();
            match inst.device().export_keyspace_artifacts(local) {
                Ok(art) => to_ship = Some(art),
                // An empty keyspace seals to nothing exportable; that is
                // not a death, just nothing to ship.
                Err(_) => died = inst.injector().is_powered_off(),
            }
        }
        if died {
            self.failover(ix, false);
            return Err(KvStatus::FailoverInProgress { shard: st.id });
        }
        if let Some(art) = to_ship {
            let epoch = st.epoch.get();
            if let Err(ShipError::LinkDown { .. }) = st.replica.ship(name, art, epoch) {
                st.needs_reconcile.set(true);
                if self.cfg.partition_failover {
                    // The primary cannot prove durability across the
                    // partition. Depose it on suspicion and promote the
                    // replica side under a new fencing epoch; the client's
                    // resend lands on the new primary.
                    self.failover(ix, true);
                    return Err(KvStatus::FailoverInProgress { shard: st.id });
                }
                // Availability mode: keep the primary, bounce the ack as
                // retryable. Anti-entropy re-ships after heal.
                return Err(KvStatus::TransientDeviceError(format!(
                    "shard {}: replication link down, seal not replicated",
                    st.id
                )));
            }
        }
        Ok(())
    }

    /// Promote shard `ix`'s replica under a freshly minted fencing epoch.
    /// Exactly one caller wins the CAS; the rest observe `FailingOver`
    /// and bounce their commands. `suspected` marks a partition
    /// deposition: the old primary is not dead, so it is kept around
    /// (fenced at its stale epoch) instead of dropped.
    fn failover(&self, ix: usize, suspected: bool) {
        let st = &self.shards[ix];
        if !st.health.begin_failover() {
            return;
        }
        if !self.cfg.replicate {
            st.health.set(ShardHealth::Dead);
            return;
        }
        // Mint the successor epoch *before* building the successor: from
        // here on, every ack and ship from the old primary is fenced.
        let epoch = st.epoch.update(|e| {
            *e += 1;
            *e
        });
        // Raise the replica's receive fence immediately: even if nothing
        // reseeds below (empty log at deposition), the old primary's
        // ships must already be stale.
        st.replica.advance_epoch(epoch);
        // The dead hardware is replaced, so the promoted instance runs a
        // clean fault plan: the fleet schedule kills each primary once.
        // The replication *link* keeps its injector — a new device does
        // not repair the network.
        let fresh = ShardInstance::build(&self.cfg, st.id, FaultPlan::none(), epoch);
        let mut replayed = 0u32;
        let mut recompacted = 0u32;
        let mut installed: HashMap<String, u32> = HashMap::new();
        for (ship, art) in st.replica.latest_per_keyspace() {
            let Ok(local) = fresh.device().import_keyspace_artifacts(&art) else {
                continue;
            };
            replayed += 1;
            installed.insert(art.name.clone(), local);
            if matches!(ship.kind, ShipKind::SealedLogs) {
                // Sealed logs install DEGRADED; promotion re-runs the
                // compaction through the checked DEGRADED -> COMPACTING
                // edge so the shard comes back queryable.
                if let KvResponse::JobStarted { .. } =
                    fresh.device().handle(KvCommand::Compact { ks: local })
                {
                    fresh.device().run_pending_jobs();
                    recompacted += 1;
                }
            }
        }
        // Keyspaces that never shipped anything come back empty: their
        // acked PUTs were device-buffered only, which is exactly the
        // single-device (no-WAL) durability contract.
        let mut names: Vec<String> = {
            let routes = self.routes.lock();
            routes
                .keyspaces
                .values()
                .map(|ck| ck.name.clone())
                .collect()
        };
        names.sort();
        for name in &names {
            if !installed.contains_key(name) {
                if let KvResponse::Created { ks } = fresh
                    .device()
                    .handle(KvCommand::CreateKeyspace { name: name.clone() })
                {
                    installed.insert(name.clone(), ks);
                }
            }
        }
        // Re-seed the replica log from the promoted primary so a second
        // death on this shard still has artifacts to replay. This is a
        // *local* install at the new epoch — the promoted primary is on
        // the replica's side of any partition, so no wire crossing and no
        // fault exposure. The fence itself survives the clear, keeping
        // the deposed primary's ships rejected.
        st.replica.clear();
        let mut reseed: Vec<(&String, &u32)> = installed.iter().collect();
        reseed.sort();
        for (name, local) in reseed {
            if let Ok(art) = fresh.device().export_keyspace_artifacts(*local) {
                st.replica.reseed(name, art, epoch);
            }
        }
        {
            let mut routes = self.routes.lock();
            for ck in routes.keyspaces.values_mut() {
                if let Some(local) = installed.get(&ck.name) {
                    ck.local[ix] = *local;
                }
            }
        }
        let old = std::mem::replace(&mut *st.primary.write(), fresh);
        // A suspected primary is alive on the far side of the partition;
        // keep it so tests (and honesty) can drive the split-brain case.
        // A dead one is gone hardware.
        *st.deposed.lock() = if suspected { Some(old) } else { None };
        let generation = st.health.bump_generation();
        self.events.lock().push(FailoverEvent {
            shard: st.id,
            generation,
            replayed_artifacts: replayed,
            recompacted,
            suspected,
        });
        st.health.set(ShardHealth::Healthy);
    }

    /// Execute one command on shard `ix`, translating shard death into
    /// the cluster-level statuses.
    fn exec_on(&self, ix: usize, cmd: KvCommand) -> Result<KvResponse, KvStatus> {
        let st = &self.shards[ix];
        match st.health.get() {
            ShardHealth::Healthy => {}
            ShardHealth::FailingOver => {
                return Err(KvStatus::FailoverInProgress { shard: st.id });
            }
            ShardHealth::Dead => return Err(KvStatus::ShardUnavailable { shard: st.id }),
        }
        let (resp, died, stale) = {
            let inst = st.primary.read();
            let resp = inst.device().handle(cmd);
            let died = matches!(resp, KvResponse::Err(KvStatus::PowerLoss))
                || inst.injector().is_powered_off();
            // The ack fence: the command executed, but if a promotion
            // minted a newer epoch meanwhile, this instance is deposed
            // and its ack must not reach the client.
            let stale = inst.epoch() != st.epoch.get();
            (resp, died, stale)
        };
        if died {
            self.failover(ix, false);
            return Err(if self.cfg.replicate {
                KvStatus::FailoverInProgress { shard: st.id }
            } else {
                KvStatus::ShardUnavailable { shard: st.id }
            });
        }
        if stale {
            return Err(KvStatus::EpochFenced { shard: st.id });
        }
        resp.into_result()
    }

    fn shard_count(&self) -> u32 {
        self.cfg.shards
    }

    /// How a shard-level status error affects a cluster-level fan-out or
    /// job poll. The match is deliberately exhaustive *by name* over
    /// every [`KvStatus`] variant (the `status-map` lint enforces it):
    /// a new wire status must be placed here consciously, not fall into
    /// a catch-all arm that silently retries or fails it.
    fn classify_shard_error(e: &KvStatus) -> ShardErrorClass {
        match e {
            // Mid-promotion (or a stale-epoch ack rejected at the
            // fence): surface immediately so the client's fail-fast
            // resend lands on the current-epoch primary.
            KvStatus::FailoverInProgress { .. } | KvStatus::EpochFenced { .. } => {
                ShardErrorClass::Failover
            }
            // Re-submission after a mid-fanout failover: the shard
            // already applied this step (sealed, or built the index), so
            // the fan-out may treat it as done.
            KvStatus::BadKeyspaceState { .. } | KvStatus::IndexExists => {
                ShardErrorClass::AlreadyApplied
            }
            // Transient overload/backoff signals: the work is not lost,
            // the next poll or resend may find it finished.
            KvStatus::Busy | KvStatus::Stalled | KvStatus::TransientDeviceError(_) => {
                ShardErrorClass::Transient
            }
            // Everything else is permanent for this command.
            KvStatus::KeyspaceNotFound
            | KvStatus::KeyspaceExists
            | KvStatus::KeyNotFound
            | KvStatus::BadKey
            | KvStatus::BadValue
            | KvStatus::IndexNotFound
            | KvStatus::BadIndexSpec
            | KvStatus::JobNotFound
            | KvStatus::DeviceFull
            | KvStatus::DeadlineExceeded
            | KvStatus::MediaError(_)
            | KvStatus::PowerLoss
            | KvStatus::ShardUnavailable { .. }
            | KvStatus::Internal(_) => ShardErrorClass::Permanent,
        }
    }

    fn lookup(&self, ks: u32) -> Result<ClusterKeyspace, KvStatus> {
        self.routes
            .lock()
            .keyspaces
            .get(&ks)
            .cloned()
            .ok_or(KvStatus::KeyspaceNotFound)
    }

    /// Shards whose key span can intersect `[lo, hi]`. Hash sharding
    /// scatters everywhere; range sharding prunes non-covering shards so
    /// a stalled shard never sees (or stalls) other key ranges' queries.
    fn shards_for_range(&self, lo: &Bound, hi: &Bound) -> Vec<usize> {
        let n = self.shard_count() as usize;
        match &self.cfg.strategy {
            crate::ShardStrategy::HashKeys => (0..n).collect(),
            crate::ShardStrategy::RangeKeys { boundaries } => (0..n)
                .filter(|&i| {
                    // Shard i spans [boundaries[i-1], boundaries[i]).
                    let disjoint_above = i > 0 && !hi.admits_from_above(&boundaries[i - 1]);
                    let disjoint_below = i < n - 1
                        && match lo {
                            Bound::Unbounded => false,
                            Bound::Included(k) | Bound::Excluded(k) => k >= &boundaries[i],
                        };
                    !disjoint_above && !disjoint_below
                })
                .collect(),
        }
    }

    fn merge_entries(
        mut parts: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
        limit: Option<u64>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all: Vec<(Vec<u8>, Vec<u8>)> = parts.drain(..).flatten().collect();
        all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        if let Some(l) = limit {
            all.truncate(l as usize);
        }
        all
    }

    /// Merge secondary-index result sets into global secondary-key order
    /// (ties broken by primary key), using the recorded spec to re-derive
    /// each record's encoded secondary key.
    fn merge_sidx_entries(
        mut parts: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
        spec: Option<&SecondaryIndexSpec>,
        limit: Option<u64>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all: Vec<(Vec<u8>, Vec<u8>)> = parts.drain(..).flatten().collect();
        all.sort_unstable_by(|a, b| match spec {
            Some(s) => s
                .extract(&a.1)
                .cmp(&s.extract(&b.1))
                .then_with(|| a.0.cmp(&b.0)),
            None => a.0.cmp(&b.0),
        });
        if let Some(l) = limit {
            all.truncate(l as usize);
        }
        all
    }

    fn agg_state(states: &[KeyspaceState]) -> KeyspaceState {
        // Worst-first: a cluster keyspace is only as healthy as its most
        // troubled shard, and only writable/queryable if all shards are.
        let rank = |s: &KeyspaceState| match s {
            KeyspaceState::Degraded => 0,
            KeyspaceState::ReadOnly => 1,
            KeyspaceState::Compacting => 2,
            KeyspaceState::Writable => 3,
            KeyspaceState::Compacted => 4,
            KeyspaceState::Empty => 5,
        };
        states
            .iter()
            .min_by_key(|s| rank(s))
            .copied()
            .unwrap_or(KeyspaceState::Empty)
    }

    fn wrap(deadline_ns: Option<u64>, cmd: KvCommand) -> KvCommand {
        match deadline_ns {
            Some(deadline_ns) => KvCommand::WithDeadline {
                deadline_ns,
                cmd: Box::new(cmd),
            },
            None => cmd,
        }
    }

    // ---- command implementations ------------------------------------------

    fn do_create(&self, name: &str) -> Result<KvResponse, KvStatus> {
        if self.routes.lock().by_name.contains_key(name) {
            return Err(KvStatus::KeyspaceExists);
        }
        let mut local = Vec::with_capacity(self.shard_count() as usize);
        for ix in 0..self.shard_count() as usize {
            let id = match self.exec_on(
                ix,
                KvCommand::CreateKeyspace {
                    name: name.to_string(),
                },
            ) {
                Ok(KvResponse::Created { ks }) => ks,
                // A retry after a partial failure finds the keyspace
                // already present on early shards: recover its id and
                // keep going — cluster-level creation is idempotent.
                Err(KvStatus::KeyspaceExists) => match self.exec_on(
                    ix,
                    KvCommand::OpenKeyspace {
                        name: name.to_string(),
                    },
                )? {
                    KvResponse::Opened { ks, .. } => ks,
                    other => return Err(unexpected(&other)),
                },
                Ok(other) => return Err(unexpected(&other)),
                Err(e) => return Err(e),
            };
            local.push(id);
        }
        let mut routes = self.routes.lock();
        let id = routes.next_ks;
        routes.next_ks += 1;
        routes.by_name.insert(name.to_string(), id);
        routes.keyspaces.insert(
            id,
            ClusterKeyspace {
                id,
                name: name.to_string(),
                local,
                specs: Vec::new(),
            },
        );
        Ok(KvResponse::Created { ks: id })
    }

    fn do_open(&self, name: &str) -> Result<KvResponse, KvStatus> {
        let id = {
            let routes = self.routes.lock();
            *routes.by_name.get(name).ok_or(KvStatus::KeyspaceNotFound)?
        };
        let stat = self.do_stat(id)?;
        match stat {
            KvResponse::Stat(s) => Ok(KvResponse::Opened {
                ks: id,
                state: s.state,
            }),
            other => Err(unexpected(&other)),
        }
    }

    fn do_delete_ks(&self, ks: u32) -> Result<KvResponse, KvStatus> {
        let ck = self.lookup(ks)?;
        for ix in 0..self.shard_count() as usize {
            match self.exec_on(ix, KvCommand::DeleteKeyspace { ks: ck.local[ix] }) {
                Ok(_) | Err(KvStatus::KeyspaceNotFound) => {}
                Err(e) => return Err(e),
            }
        }
        let mut routes = self.routes.lock();
        routes.by_name.remove(&ck.name);
        routes.keyspaces.remove(&ks);
        Ok(KvResponse::Deleted)
    }

    fn do_list(&self) -> Result<KvResponse, KvStatus> {
        let mut cks: Vec<ClusterKeyspace> =
            self.routes.lock().keyspaces.values().cloned().collect();
        cks.sort_unstable_by_key(|ck| ck.id);
        let mut out = Vec::with_capacity(cks.len());
        for ck in cks {
            let mut states = Vec::new();
            for ix in 0..self.shard_count() as usize {
                if let Ok(KvResponse::Stat(s)) =
                    self.exec_on(ix, KvCommand::Stat { ks: ck.local[ix] })
                {
                    states.push(s.state);
                }
            }
            out.push(KeyspaceDesc {
                id: ck.id,
                name: ck.name,
                state: Self::agg_state(&states),
            });
        }
        Ok(KvResponse::Keyspaces(out))
    }

    fn do_bulk_put(
        &self,
        deadline_ns: Option<u64>,
        ck: &ClusterKeyspace,
        payload: kvcsd_proto::BulkPayload,
    ) -> Result<KvResponse, KvStatus> {
        let n = self.shard_count();
        let mut per_shard: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); n as usize];
        for (k, v) in payload.iter() {
            let ix = self.cfg.strategy.shard_for(k, n) as usize;
            per_shard[ix].push((k.to_vec(), v.to_vec()));
        }
        // Scatter to every covered shard concurrently — the write costs
        // the slowest shard's time — then gather counts (first error in
        // shard order wins).
        let covered: Vec<usize> = (0..n as usize)
            .filter(|&ix| !per_shard[ix].is_empty())
            .collect();
        let results = self.drive_concurrent(&covered, |ix| -> Result<u64, KvStatus> {
            let pairs = std::mem::take(&mut per_shard[ix]);
            let mut sent = 0u64;
            let mut b = kvcsd_proto::BulkBuilder::default_size();
            for (k, v) in &pairs {
                if !b.push(k, v) {
                    // Sub-message full: flush it and continue packing.
                    sent += self.send_bulk(deadline_ns, ix, ck.local[ix], b)?;
                    b = kvcsd_proto::BulkBuilder::default_size();
                    if !b.push(k, v) {
                        return Err(KvStatus::BadValue);
                    }
                }
            }
            sent += self.send_bulk(deadline_ns, ix, ck.local[ix], b)?;
            Ok(sent)
        });
        let mut inserted = 0u64;
        for sent in results {
            inserted += sent?;
        }
        Ok(KvResponse::BulkPutOk { inserted })
    }

    fn send_bulk(
        &self,
        deadline_ns: Option<u64>,
        ix: usize,
        local: u32,
        b: kvcsd_proto::BulkBuilder,
    ) -> Result<u64, KvStatus> {
        if b.is_empty() {
            return Ok(0);
        }
        match self.exec_on(
            ix,
            Self::wrap(
                deadline_ns,
                KvCommand::BulkPut {
                    ks: local,
                    payload: b.finish(),
                },
            ),
        )? {
            KvResponse::BulkPutOk { inserted } => Ok(inserted),
            other => Err(unexpected(&other)),
        }
    }

    /// Fan a job-starting command out to every shard, ship the sealed
    /// artifacts, and hand back one cluster-level job id.
    fn do_cluster_job(
        &self,
        deadline_ns: Option<u64>,
        ks: u32,
        kind: JobKind,
        make: impl Fn(u32) -> KvCommand,
        ship_after: bool,
    ) -> Result<KvResponse, KvStatus> {
        let ck = self.lookup(ks)?;
        for ix in 0..self.shard_count() as usize {
            match self.exec_on(ix, Self::wrap(deadline_ns, make(ck.local[ix]))) {
                Ok(KvResponse::JobStarted { .. }) => {
                    // The seal-time ship gates the ack: a client must
                    // never see this job as started-and-durable unless
                    // the sealed artifacts reached the replica log.
                    if ship_after {
                        self.ship_sealed(ix, &ck.name, ck.local[ix])?;
                    }
                }
                // The job-state poll is derived from keyspace states, so
                // treating an already-applied resend as started is safe
                // and idempotent.
                Ok(_) => {}
                Err(e) => match Self::classify_shard_error(&e) {
                    ShardErrorClass::AlreadyApplied => {}
                    ShardErrorClass::Failover
                    | ShardErrorClass::Transient
                    | ShardErrorClass::Permanent => return Err(e),
                },
            }
        }
        let mut routes = self.routes.lock();
        routes.next_job += 1;
        let id = routes.next_job;
        routes.jobs.insert(id, JobTarget { ks, kind });
        Ok(KvResponse::JobStarted { job: JobId(id) })
    }

    /// Cluster jobs are polled by *deriving* progress from per-shard
    /// keyspace states instead of tracking per-device job ids — device
    /// job tables die with their primary, keyspace states survive
    /// promotion. Each poll also grants the fleet background time, so a
    /// polling client drives its own jobs to completion.
    fn do_poll(&self, job: u64) -> Result<KvResponse, KvStatus> {
        let target = self
            .routes
            .lock()
            .jobs
            .get(&job)
            .cloned()
            .ok_or(KvStatus::JobNotFound)?;
        self.run_background();
        let ck = self.lookup(target.ks)?;
        let mut worst: Option<KvStatus> = None;
        let mut running = false;
        let mut missing_index = false;
        let all: Vec<usize> = (0..self.shard_count() as usize).collect();
        let results = self.drive_concurrent(&all, |ix| {
            self.exec_on(ix, KvCommand::Stat { ks: ck.local[ix] })
        });
        for (ix, resp) in results.into_iter().enumerate() {
            let stat = match resp {
                Ok(KvResponse::Stat(s)) => s,
                Ok(other) => return Err(unexpected(&other)),
                Err(e) => match Self::classify_shard_error(&e) {
                    ShardErrorClass::Failover => return Err(e),
                    // A transiently overloaded shard has not failed the
                    // job — the next poll re-examines it.
                    ShardErrorClass::Transient => {
                        running = true;
                        continue;
                    }
                    ShardErrorClass::AlreadyApplied | ShardErrorClass::Permanent => {
                        worst = Some(e);
                        continue;
                    }
                },
            };
            match stat.state {
                KeyspaceState::Degraded => {
                    worst = Some(KvStatus::MediaError(format!(
                        "shard {ix}: compaction left keyspace degraded"
                    )));
                }
                KeyspaceState::ReadOnly => {
                    worst = Some(KvStatus::DeviceFull);
                }
                KeyspaceState::Compacting | KeyspaceState::Writable => running = true,
                KeyspaceState::Compacted | KeyspaceState::Empty => {
                    if let JobKind::Sidx(name) = &target.kind {
                        if stat.state == KeyspaceState::Compacted
                            && !stat.secondary_indexes.iter().any(|n| n == name)
                        {
                            missing_index = true;
                        }
                    }
                }
            }
        }
        let state = if let Some(e) = worst {
            JobState::Failed(e)
        } else if running || missing_index {
            JobState::Running
        } else {
            JobState::Done
        };
        Ok(KvResponse::Job { state })
    }

    fn do_scatter_entries(
        &self,
        ck: &ClusterKeyspace,
        shards: &[usize],
        make: impl Fn(u32) -> KvCommand,
    ) -> Result<Vec<Entries>, KvStatus> {
        // Every covering shard is driven concurrently (router time is
        // the slowest shard's); errors still surface in shard order.
        let results = self.drive_concurrent(shards, |ix| self.exec_on(ix, make(ck.local[ix])));
        let mut parts = Vec::with_capacity(results.len());
        for resp in results {
            match resp? {
                KvResponse::Entries(es) => parts.push(es),
                other => return Err(unexpected(&other)),
            }
        }
        Ok(parts)
    }

    fn do_stat(&self, ks: u32) -> Result<KvResponse, KvStatus> {
        let ck = self.lookup(ks)?;
        let mut states = Vec::new();
        let mut num_pairs = 0u64;
        let mut data_bytes = 0u64;
        let mut min_key: Option<Vec<u8>> = None;
        let mut max_key: Option<Vec<u8>> = None;
        let mut secondary: Vec<String> = Vec::new();
        let all: Vec<usize> = (0..self.shard_count() as usize).collect();
        let results = self.drive_concurrent(&all, |ix| {
            self.exec_on(ix, KvCommand::Stat { ks: ck.local[ix] })
        });
        for resp in results {
            let s = match resp? {
                KvResponse::Stat(s) => s,
                other => return Err(unexpected(&other)),
            };
            states.push(s.state);
            num_pairs += s.num_pairs;
            data_bytes += s.data_bytes;
            min_key = match (min_key, s.min_key) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            max_key = match (max_key, s.max_key) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            for n in s.secondary_indexes {
                if !secondary.contains(&n) {
                    secondary.push(n);
                }
            }
        }
        secondary.sort_unstable();
        Ok(KvResponse::Stat(KeyspaceStat {
            id: ck.id,
            name: ck.name.clone(),
            state: Self::agg_state(&states),
            num_pairs,
            min_key,
            max_key,
            secondary_indexes: secondary,
            data_bytes,
        }))
    }

    fn dispatch(&self, cmd: KvCommand) -> Result<KvResponse, KvStatus> {
        let (deadline_ns, cmd) = cmd.unwrap_deadline();
        let n = self.shard_count();
        match cmd {
            KvCommand::CreateKeyspace { name } => self.do_create(&name),
            KvCommand::OpenKeyspace { name } => self.do_open(&name),
            KvCommand::ListKeyspaces => self.do_list(),
            KvCommand::DeleteKeyspace { ks } => self.do_delete_ks(ks),
            KvCommand::Put { ks, key, value } => {
                let ck = self.lookup(ks)?;
                let ix = self.cfg.strategy.shard_for(&key, n) as usize;
                self.exec_on(
                    ix,
                    Self::wrap(
                        deadline_ns,
                        KvCommand::Put {
                            ks: ck.local[ix],
                            key,
                            value,
                        },
                    ),
                )
            }
            KvCommand::BulkPut { ks, payload } => {
                let ck = self.lookup(ks)?;
                self.do_bulk_put(deadline_ns, &ck, payload)
            }
            KvCommand::Flush { ks } => {
                let ck = self.lookup(ks)?;
                for ix in 0..n as usize {
                    self.exec_on(
                        ix,
                        Self::wrap(deadline_ns, KvCommand::Flush { ks: ck.local[ix] }),
                    )?;
                }
                Ok(KvResponse::Flushed)
            }
            KvCommand::Compact { ks } => self.do_cluster_job(
                deadline_ns,
                ks,
                JobKind::Compact,
                |local| KvCommand::Compact { ks: local },
                true,
            ),
            KvCommand::CompactAndIndex { ks, specs } => {
                {
                    let mut routes = self.routes.lock();
                    if let Some(ck) = routes.keyspaces.get_mut(&ks) {
                        for spec in &specs {
                            if !ck.specs.iter().any(|s| s.name == spec.name) {
                                ck.specs.push(spec.clone());
                            }
                        }
                    }
                }
                self.do_cluster_job(
                    deadline_ns,
                    ks,
                    JobKind::Compact,
                    move |local| KvCommand::CompactAndIndex {
                        ks: local,
                        specs: specs.clone(),
                    },
                    true,
                )
            }
            KvCommand::BuildSecondaryIndex { ks, spec } => {
                {
                    let mut routes = self.routes.lock();
                    if let Some(ck) = routes.keyspaces.get_mut(&ks) {
                        if !ck.specs.iter().any(|s| s.name == spec.name) {
                            ck.specs.push(spec.clone());
                        }
                    }
                }
                self.do_cluster_job(
                    deadline_ns,
                    ks,
                    JobKind::Sidx(spec.name.clone()),
                    move |local| KvCommand::BuildSecondaryIndex {
                        ks: local,
                        spec: spec.clone(),
                    },
                    false,
                )
            }
            KvCommand::PollJob { job } => self.do_poll(job.0),
            KvCommand::Get { ks, key } => {
                let ck = self.lookup(ks)?;
                let ix = self.cfg.strategy.shard_for(&key, n) as usize;
                self.exec_on(
                    ix,
                    Self::wrap(
                        deadline_ns,
                        KvCommand::Get {
                            ks: ck.local[ix],
                            key,
                        },
                    ),
                )
            }
            KvCommand::Range { ks, lo, hi, limit } => {
                let ck = self.lookup(ks)?;
                let shards = self.shards_for_range(&lo, &hi);
                let parts = self.do_scatter_entries(&ck, &shards, |local| {
                    Self::wrap(
                        deadline_ns,
                        KvCommand::Range {
                            ks: local,
                            lo: lo.clone(),
                            hi: hi.clone(),
                            limit,
                        },
                    )
                })?;
                Ok(KvResponse::Entries(Self::merge_entries(parts, limit)))
            }
            KvCommand::SidxGet { ks, index, key } => {
                let ck = self.lookup(ks)?;
                let shards: Vec<usize> = (0..n as usize).collect();
                let parts = self.do_scatter_entries(&ck, &shards, |local| {
                    Self::wrap(
                        deadline_ns,
                        KvCommand::SidxGet {
                            ks: local,
                            index: index.clone(),
                            key: key.clone(),
                        },
                    )
                })?;
                let spec = ck.specs.iter().find(|s| s.name == index);
                Ok(KvResponse::Entries(Self::merge_sidx_entries(
                    parts, spec, None,
                )))
            }
            KvCommand::SidxRange {
                ks,
                index,
                lo,
                hi,
                limit,
            } => {
                let ck = self.lookup(ks)?;
                // Secondary keys are unrelated to the primary sharding
                // axis, so a secondary range always scatters everywhere.
                let shards: Vec<usize> = (0..n as usize).collect();
                let parts = self.do_scatter_entries(&ck, &shards, |local| {
                    Self::wrap(
                        deadline_ns,
                        KvCommand::SidxRange {
                            ks: local,
                            index: index.clone(),
                            lo: lo.clone(),
                            hi: hi.clone(),
                            limit,
                        },
                    )
                })?;
                let spec = ck.specs.iter().find(|s| s.name == index);
                Ok(KvResponse::Entries(Self::merge_sidx_entries(
                    parts, spec, limit,
                )))
            }
            KvCommand::Stat { ks } => self.do_stat(ks),
            KvCommand::WithDeadline { .. } => {
                unreachable!("unwrap_deadline flattens nesting")
            }
        }
    }
}

fn unexpected(resp: &KvResponse) -> KvStatus {
    KvStatus::Internal(format!("unexpected shard response: {resp:?}"))
}

impl DeviceHandler for ClusterRouter {
    fn handle(&self, cmd: KvCommand) -> KvResponse {
        match self.dispatch(cmd) {
            Ok(resp) => resp,
            Err(e) => KvResponse::Err(e),
        }
    }
}

// Promoted devices are reachable through the router only; tests reach a
// shard's device directly to assert internals.
impl ClusterRouter {
    /// Test/inspection handle on shard `ix`'s current primary device.
    pub fn with_shard_device<R>(&self, ix: u32, f: impl FnOnce(&KvCsdDevice) -> R) -> R {
        let inst = self.shards[ix as usize].primary.read();
        f(inst.device())
    }

    /// The fault injector attached to shard `ix`'s current primary.
    /// Torture harness hook: lets a test cut power directly and watch the
    /// router discover the death on the next routed command.
    pub fn shard_injector(&self, ix: u32) -> Arc<kvcsd_sim::FaultInjector> {
        Arc::clone(self.shards[ix as usize].primary.read().injector())
    }

    /// Cut power to shard `ix`'s primary at its next flash operation.
    /// Torture harness hook: deterministic alternative to probability
    /// plans when a test wants to kill a specific shard at a specific
    /// point.
    pub fn kill_shard(&self, ix: u32) {
        let st = &self.shards[ix as usize];
        let died = {
            let inst = st.primary.read();
            // A plan-driven injector may already have powered off; either
            // way the next command (or this call) observes the death.
            inst.injector().power_off_now();
            true
        };
        if died {
            self.failover(ix as usize, false);
        }
    }

    /// Whether shard `ix` currently holds a deposed (suspected, fenced)
    /// ex-primary.
    pub fn has_deposed(&self, ix: u32) -> bool {
        self.shards[ix as usize].deposed.lock().is_some()
    }

    /// Test/inspection handle on shard `ix`'s deposed ex-primary.
    pub fn with_deposed_device<R>(&self, ix: u32, f: impl FnOnce(&KvCsdDevice) -> R) -> Option<R> {
        let deposed = self.shards[ix as usize].deposed.lock();
        deposed.as_ref().map(|inst| f(inst.device()))
    }

    /// Execute one *local* command on shard `ix`'s deposed ex-primary —
    /// the split-brain probe. The command really executes (the deposed
    /// device is alive on the far side of the partition), but the ack is
    /// rejected at the epoch fence: at most one primary acks per epoch.
    pub fn exec_on_deposed(&self, ix: u32, cmd: KvCommand) -> Result<KvResponse, KvStatus> {
        let st = &self.shards[ix as usize];
        let deposed = st.deposed.lock();
        let inst = deposed
            .as_ref()
            .ok_or_else(|| KvStatus::Internal(format!("shard {}: no deposed primary", st.id)))?;
        let resp = inst.device().handle(cmd);
        if inst.epoch() != st.epoch.get() {
            return Err(KvStatus::EpochFenced { shard: st.id });
        }
        resp.into_result()
    }

    /// Have shard `ix`'s deposed ex-primary ship keyspace `name` to the
    /// replica log, stamped with its stale epoch. The receive fence must
    /// reject it — the companion probe to [`Self::exec_on_deposed`].
    pub fn ship_from_deposed(&self, ix: u32, name: &str) -> Result<ShipOutcome, ShipError> {
        let st = &self.shards[ix as usize];
        let (art, epoch) = {
            let deposed = st.deposed.lock();
            // kvcsd-check: allow(unwrap) -- torture-harness hook; calling it without a deposed primary is a test bug
            let inst = deposed.as_ref().expect("no deposed primary to ship from");
            let local = inst
                .device()
                .keyspaces()
                .list()
                .iter()
                .find(|(_, n, _)| n.as_str() == name)
                .map(|(id, _, _)| *id)
                // kvcsd-check: allow(unwrap) -- torture-harness hook; the test names a keyspace it created
                .expect("deposed primary does not hold this keyspace");
            let art = inst
                .device()
                .export_keyspace_artifacts(local)
                // kvcsd-check: allow(unwrap) -- torture-harness hook; the test sealed this keyspace before deposing
                .expect("deposed keyspace has nothing exportable");
            (art, inst.epoch())
        };
        st.replica.ship(name, art, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardStrategy;
    use kvcsd_proto::SecondaryKeyType;

    fn router(shards: u32) -> ClusterRouter {
        ClusterRouter::new(ClusterConfig {
            shards,
            ..ClusterConfig::default()
        })
    }

    fn ok(resp: KvResponse) -> KvResponse {
        match resp {
            KvResponse::Err(e) => panic!("unexpected error: {e}"),
            r => r,
        }
    }

    fn create(r: &ClusterRouter, name: &str) -> u32 {
        match ok(r.handle(KvCommand::CreateKeyspace { name: name.into() })) {
            KvResponse::Created { ks } => ks,
            r => panic!("{r:?}"),
        }
    }

    fn put(r: &ClusterRouter, ks: u32, k: &[u8], v: &[u8]) {
        ok(r.handle(KvCommand::Put {
            ks,
            key: k.to_vec(),
            value: v.to_vec(),
        }));
    }

    fn compact(r: &ClusterRouter, ks: u32) {
        let job = match ok(r.handle(KvCommand::Compact { ks })) {
            KvResponse::JobStarted { job } => job,
            r => panic!("{r:?}"),
        };
        for _ in 0..16 {
            match ok(r.handle(KvCommand::PollJob { job })) {
                KvResponse::Job {
                    state: JobState::Done,
                } => return,
                KvResponse::Job { .. } => {}
                r => panic!("{r:?}"),
            }
        }
        panic!("compaction did not finish");
    }

    /// The same busy metric `drive_concurrent` uses, reconstructed from
    /// the public accessors.
    fn busy(r: &ClusterRouter, ix: u32) -> u64 {
        let s = r.shard_ledger(ix).snapshot();
        r.shard_clock(ix).now_ns()
            + s.host_cpu_ns
            + s.soc_cpu_ns
            + s.bridge_busy_ns
            + s.max_channel_busy_ns()
            + r.replica_log(ix).clock().now_ns()
    }

    #[test]
    fn fan_out_charges_the_slowest_shard_not_the_sum() {
        let r = router(2);
        let ks = create(&r, "t");
        let b0 = [busy(&r, 0), busy(&r, 1)];
        let h0 = r.host_clock().now_ns();
        let mut b = kvcsd_proto::BulkBuilder::default_size();
        for i in 0..400u32 {
            assert!(b.push(format!("k{i:05}").as_bytes(), &[9u8; 32]));
        }
        ok(r.handle(KvCommand::BulkPut {
            ks,
            payload: b.finish(),
        }));
        let d = [busy(&r, 0) - b0[0], busy(&r, 1) - b0[1]];
        let h = r.host_clock().now_ns() - h0;
        assert!(d[0] > 0 && d[1] > 0, "both shards did work: {d:?}");
        assert_eq!(h, d[0].max(d[1]), "router time is the slowest shard's");
        assert!(h < d[0] + d[1], "fan-out must not serialize shard time");
    }

    #[test]
    fn puts_spread_across_shards_and_range_merges_in_key_order() {
        let r = router(3);
        let ks = create(&r, "orders");
        for i in 0..120u32 {
            let k = format!("k{i:05}");
            put(&r, ks, k.as_bytes(), &i.to_be_bytes());
        }
        compact(&r, ks);
        // Every shard must actually hold a slice of the keyspace.
        for ix in 0..3 {
            let pairs = r.with_shard_device(ix, |d| {
                d.keyspaces()
                    .list()
                    .iter()
                    .map(|(id, _, _)| *id)
                    .next()
                    .map(|id| d.keyspaces().with(id, |k| Ok(k.pairs)).unwrap())
                    .unwrap_or(0)
            });
            assert!(pairs > 0, "shard {ix} holds no keys");
        }
        let es = match ok(r.handle(KvCommand::Range {
            ks,
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
            limit: None,
        })) {
            KvResponse::Entries(es) => es,
            r => panic!("{r:?}"),
        };
        assert_eq!(es.len(), 120);
        assert!(
            es.windows(2).all(|w| w[0].0 < w[1].0),
            "merged range must be strictly key-ordered"
        );
        let limited = match ok(r.handle(KvCommand::Range {
            ks,
            lo: Bound::Included(b"k00010".to_vec()),
            hi: Bound::Unbounded,
            limit: Some(7),
        })) {
            KvResponse::Entries(es) => es,
            r => panic!("{r:?}"),
        };
        let want: Vec<Vec<u8>> = (10..17).map(|i| format!("k{i:05}").into_bytes()).collect();
        assert_eq!(
            limited.iter().map(|e| e.0.clone()).collect::<Vec<_>>(),
            want
        );
    }

    #[test]
    fn sidx_query_scatter_gathers_in_secondary_key_order() {
        let r = router(3);
        let ks = create(&r, "sensors");
        // value = 4-byte BE reading; sidx over it. Readings descend as
        // keys ascend, so secondary order must differ from primary order.
        for i in 0..90u32 {
            let k = format!("s{i:05}");
            put(&r, ks, k.as_bytes(), &(1_000 - i).to_be_bytes());
        }
        let spec = SecondaryIndexSpec {
            name: "reading".into(),
            value_offset: 0,
            value_len: 4,
            key_type: SecondaryKeyType::U32,
        };
        let job = match ok(r.handle(KvCommand::CompactAndIndex {
            ks,
            specs: vec![spec],
        })) {
            KvResponse::JobStarted { job } => job,
            r => panic!("{r:?}"),
        };
        loop {
            match ok(r.handle(KvCommand::PollJob { job })) {
                KvResponse::Job {
                    state: JobState::Done,
                } => break,
                KvResponse::Job {
                    state: JobState::Failed(e),
                } => panic!("job failed: {e}"),
                _ => {}
            }
        }
        let es = match ok(r.handle(KvCommand::SidxRange {
            ks,
            index: "reading".into(),
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
            limit: Some(10),
        })) {
            KvResponse::Entries(es) => es,
            r => panic!("{r:?}"),
        };
        assert_eq!(es.len(), 10);
        // Lowest readings first => highest key indices first.
        let want: Vec<Vec<u8>> = (0..10)
            .map(|i| format!("s{:05}", 89 - i).into_bytes())
            .collect();
        assert_eq!(es.iter().map(|e| e.0.clone()).collect::<Vec<_>>(), want);
    }

    #[test]
    fn killed_primary_fails_over_and_acked_sealed_writes_survive() {
        let r = router(2);
        let ks = create(&r, "t");
        for i in 0..80u32 {
            let k = format!("k{i:04}");
            put(&r, ks, k.as_bytes(), &i.to_be_bytes());
        }
        compact(&r, ks);
        assert!(r.replica_depth(0) > 0, "seal must have shipped artifacts");
        r.kill_shard(0);
        assert_eq!(r.shard_health(0), ShardHealth::Healthy, "promotion done");
        let events = r.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].shard, 0);
        assert_eq!(events[0].generation, 1);
        assert!(events[0].replayed_artifacts >= 1);
        // Every sealed (compacted) write is still readable post-promotion.
        for i in 0..80u32 {
            let k = format!("k{i:04}");
            match ok(r.handle(KvCommand::Get {
                ks,
                key: k.as_bytes().to_vec(),
            })) {
                KvResponse::Value(v) => assert_eq!(v, i.to_be_bytes()),
                r => panic!("{r:?}"),
            }
        }
    }

    #[test]
    fn link_down_seal_deposes_the_primary_and_fences_its_acks() {
        // One shard, link partitioned from the first bus op: the
        // seal-time ship burns its retry budget, the router deposes the
        // primary on suspicion, and the deposed instance keeps executing
        // but never acks.
        let r = ClusterRouter::new(ClusterConfig {
            shards: 1,
            fault_plan: FaultPlan::none().with_partition_at(1, None),
            ..ClusterConfig::default()
        });
        let ks = create(&r, "t");
        put(&r, ks, b"k1", b"v1");
        let resp = r.handle(KvCommand::Compact { ks });
        assert!(
            matches!(
                resp,
                KvResponse::Err(KvStatus::FailoverInProgress { shard: 0 })
            ),
            "a seal that cannot reach the replica must not ack: {resp:?}"
        );
        let events = r.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].suspected, "deposed on suspicion, not death");
        assert_eq!(r.shard_epoch(0), 2);
        assert!(r.has_deposed(0));
        // The deposed ex-primary still executes, but the ack is fenced.
        let local = r
            .with_deposed_device(0, |d| {
                d.keyspaces()
                    .list()
                    .iter()
                    .find(|(_, n, _)| n == "t")
                    .map(|(id, _, _)| *id)
                    .unwrap()
            })
            .unwrap();
        let err = r
            .exec_on_deposed(
                0,
                KvCommand::Put {
                    ks: local,
                    key: b"k2".to_vec(),
                    value: b"v2".to_vec(),
                },
            )
            .unwrap_err();
        assert_eq!(err, KvStatus::EpochFenced { shard: 0 });
        // ...and after the partition heals, its ships are rejected at the
        // replica's receive fence.
        let fenced_before = r.replica_log(0).fenced();
        r.shard_link(0).heal_link_now();
        r.ship_from_deposed(0, "t").unwrap();
        assert_eq!(r.replica_log(0).fenced(), fenced_before + 1);
    }

    #[test]
    fn anti_entropy_reconcile_closes_the_gap_after_heal() {
        // Availability mode: the primary survives the partition with
        // unreplicated artifacts; reconcile() re-ships exactly the gap.
        let r = ClusterRouter::new(ClusterConfig {
            shards: 1,
            partition_failover: false,
            ..ClusterConfig::default()
        });
        let ks = create(&r, "t");
        for i in 0..30u32 {
            put(&r, ks, format!("k{i:03}").as_bytes(), &i.to_be_bytes());
        }
        r.shard_link(0).partition_now();
        let resp = r.handle(KvCommand::Compact { ks });
        assert!(
            matches!(resp, KvResponse::Err(KvStatus::TransientDeviceError(_))),
            "seal across a partition must bounce retryably: {resp:?}"
        );
        assert_eq!(r.events().len(), 0, "availability mode never deposes");
        assert_eq!(r.replica_depth(0), 0, "nothing crossed the partition");
        assert_eq!(r.reconcile(), 0, "reconcile skips partitioned links");
        r.shard_link(0).heal_link_now();
        assert_eq!(r.reconcile(), 1, "exactly the gap re-ships");
        assert_eq!(r.replica_depth(0), 1);
        // The retried compact now seals-and-ships cleanly.
        compact(&r, ks);
        assert_eq!(r.reconcile(), 0, "replica already converged");
    }

    #[test]
    fn unreplicated_cluster_reports_dead_shards_as_unavailable() {
        let r = ClusterRouter::new(ClusterConfig {
            shards: 2,
            replicate: false,
            ..ClusterConfig::default()
        });
        let ks = create(&r, "t");
        for i in 0..40u32 {
            let k = format!("k{i:04}");
            put(&r, ks, k.as_bytes(), b"v");
        }
        r.kill_shard(1);
        assert_eq!(r.shard_health(1), ShardHealth::Dead);
        // Keys on shard 0 still work; keys on shard 1 are unavailable.
        let (mut live, mut dead) = (0, 0);
        for i in 0..40u32 {
            let k = format!("k{i:04}");
            match r.handle(KvCommand::Get {
                ks,
                key: k.as_bytes().to_vec(),
            }) {
                KvResponse::Err(KvStatus::ShardUnavailable { shard: 1 }) => dead += 1,
                KvResponse::Err(KvStatus::KeyNotFound) | KvResponse::Err(_) => live += 1,
                _ => live += 1,
            }
        }
        assert!(dead > 0, "some keys must map to the dead shard");
        assert!(live > 0, "healthy shard must keep serving");
    }

    #[test]
    fn range_sharding_prunes_scatter_to_covering_shards() {
        let r = ClusterRouter::new(ClusterConfig {
            shards: 3,
            strategy: ShardStrategy::RangeKeys {
                boundaries: vec![b"h".to_vec(), b"q".to_vec()],
            },
            ..ClusterConfig::default()
        });
        let shards = r.shards_for_range(
            &Bound::Included(b"a".to_vec()),
            &Bound::Excluded(b"c".to_vec()),
        );
        assert_eq!(shards, vec![0]);
        let shards = r.shards_for_range(&Bound::Included(b"j".to_vec()), &Bound::Unbounded);
        assert_eq!(shards, vec![1, 2]);
        let all = r.shards_for_range(&Bound::Unbounded, &Bound::Unbounded);
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn stat_aggregates_across_the_fleet() {
        let r = router(3);
        let ks = create(&r, "agg");
        for i in 0..60u32 {
            let k = format!("k{i:04}");
            put(&r, ks, k.as_bytes(), b"value!");
        }
        compact(&r, ks);
        match ok(r.handle(KvCommand::Stat { ks })) {
            KvResponse::Stat(s) => {
                assert_eq!(s.num_pairs, 60);
                assert_eq!(s.state, KeyspaceState::Compacted);
                assert_eq!(s.min_key.as_deref(), Some(&b"k0000"[..]));
                assert_eq!(s.max_key.as_deref(), Some(&b"k0059"[..]));
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn pruned_range_queries_never_touch_non_covering_shards() {
        let r = ClusterRouter::new(ClusterConfig {
            shards: 2,
            strategy: ShardStrategy::RangeKeys {
                boundaries: vec![b"m".to_vec()],
            },
            ..ClusterConfig::default()
        });
        let ks = create(&r, "t");
        for i in 0..40u32 {
            put(&r, ks, format!("a{i:04}").as_bytes(), b"v");
            put(&r, ks, format!("z{i:04}").as_bytes(), b"v");
        }
        compact(&r, ks);
        let ranges_before = r.shard_ledger(1).custom("dev_ranges");
        let clock_before = r.shard_clock(1).now_ns();
        let es = match ok(r.handle(KvCommand::Range {
            ks,
            lo: Bound::Included(b"a".to_vec()),
            hi: Bound::Excluded(b"b".to_vec()),
            limit: None,
        })) {
            KvResponse::Entries(es) => es,
            r => panic!("{r:?}"),
        };
        assert_eq!(es.len(), 40);
        // Shard 1 covers [m, inf): the query must not have reached it, so
        // it can neither serve it nor charge stall time to it.
        assert_eq!(r.shard_ledger(1).custom("dev_ranges"), ranges_before);
        assert_eq!(r.shard_clock(1).now_ns(), clock_before);
    }
}
