//! Deterministic logical-thread execution.

/// Run `n` logical threads, collecting their results in thread order.
///
/// Execution is deliberately sequential: simulated time does not depend
/// on wall-clock interleaving but on the work each thread charges to the
/// ledger, and the time model divides by the pinned core count. Running
/// serially makes every experiment bit-for-bit reproducible while
/// modelling the same parallel phase.
pub fn run_threads<R>(n: u32, mut body: impl FnMut(u32) -> R) -> Vec<R> {
    (0..n).map(&mut body).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_thread_order() {
        let out = run_threads(4, |t| t * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn zero_threads_runs_nothing() {
        let out: Vec<u32> = run_threads(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn body_can_capture_mutable_state() {
        let mut total = 0u32;
        run_threads(5, |t| total += t);
        assert_eq!(total, 10);
    }
}
