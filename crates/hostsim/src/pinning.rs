//! Thread-to-core pinning descriptions.

use kvcsd_sim::HardwareSpec;

/// A pinning plan: which host cores a phase's threads occupy.
///
/// "To control host resource usage, we assigned each test thread to a
/// specific CPU core for both KV-CSD and RocksDB runs. RocksDB creates
/// two worker threads per DB instance ... We allow these threads to
/// operate on any CPU core that had a test thread pinned on it."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pinning {
    cores: Vec<u32>,
}

impl Pinning {
    /// Pin `threads` threads to the first `threads` cores (clamped to the
    /// machine size).
    pub fn first_n(spec: &HardwareSpec, threads: u32) -> Self {
        let n = threads.clamp(1, spec.host_cores);
        Self {
            cores: (0..n).collect(),
        }
    }

    /// Number of distinct cores the phase may use — the parallelism the
    /// time model divides host work by.
    pub fn core_count(&self) -> u32 {
        self.cores.len() as u32
    }

    /// The pinned core ids.
    pub fn cores(&self) -> &[u32] {
        &self.cores
    }

    /// Core assigned to logical thread `t` (threads beyond the core count
    /// wrap around, as oversubscribed pinning does).
    pub fn core_of(&self, t: u32) -> u32 {
        self.cores[(t as usize) % self.cores.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_to_machine() {
        let spec = HardwareSpec::default();
        assert_eq!(Pinning::first_n(&spec, 0).core_count(), 1);
        assert_eq!(Pinning::first_n(&spec, 8).core_count(), 8);
        assert_eq!(Pinning::first_n(&spec, 1000).core_count(), 32);
    }

    #[test]
    fn wraps_oversubscribed_threads() {
        let spec = HardwareSpec::default();
        let p = Pinning::first_n(&spec, 4);
        assert_eq!(p.core_of(0), 0);
        assert_eq!(p.core_of(5), 1);
        assert_eq!(p.cores(), &[0, 1, 2, 3]);
    }
}
