//! Host-side execution model: pinned logical threads.
//!
//! The paper pins each test thread to a specific CPU core and lets
//! RocksDB's background workers share those cores. In this reproduction,
//! *logical* threads execute deterministically (serially) while every
//! operation they perform is charged to the shared ledger; the
//! [`kvcsd_sim::TimeModel`] then divides the phase's total host work by
//! the pinned core count. This yields the same steady-state arithmetic as
//! real pinned threads — total work over available cores — with exactly
//! reproducible results.

pub mod pinning;
pub mod threads;

pub use pinning::Pinning;
pub use threads::run_threads;
