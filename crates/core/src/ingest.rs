//! The device write path: key-value separation into KLOG and VLOG.
//!
//! "KV-CSD stores keys and values separately: values are written to VLOG
//! zone clusters while keys, along with pointers to the values, are
//! written to KLOG zone clusters. Storing keys and values separately
//! allows for sorting them in two separate steps, reducing overall
//! subsequent keyspace compaction overhead." (Section V)
//!
//! Both logs are byte streams over zone clusters. A [`BlockStreamWriter`]
//! buffers the partial tail block in SoC DRAM and emits full 4 KiB blocks;
//! a [`StreamReader`] walks a sealed stream back block by block. KLOG
//! records are framed as `klen:u16 | voff:u64 | vlen:u32 | key`.

use crate::soc::SocCharger;
use crate::zone_mgr::{ClusterId, ZoneManager};
use crate::Result;
use crate::BLOCK_BYTES;
use kvcsd_sim::bytes::{le_u16, le_u32, le_u64};

/// Append-only byte stream over a zone cluster, with a DRAM tail.
#[derive(Debug)]
pub struct BlockStreamWriter {
    cluster: ClusterId,
    tail: Vec<u8>,
    flushed_blocks: u64,
    sealed_len: Option<u64>,
}

impl BlockStreamWriter {
    pub fn new(cluster: ClusterId) -> Self {
        Self {
            cluster,
            tail: Vec::with_capacity(BLOCK_BYTES),
            flushed_blocks: 0,
            sealed_len: None,
        }
    }

    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// Current end-of-stream byte offset.
    pub fn position(&self) -> u64 {
        self.flushed_blocks * BLOCK_BYTES as u64 + self.tail.len() as u64
    }

    /// Append bytes; returns the byte offset where they begin.
    pub fn append(&mut self, mgr: &ZoneManager, data: &[u8]) -> Result<u64> {
        let at = self.position();
        let mut rest = data;
        while !rest.is_empty() {
            let room = BLOCK_BYTES - self.tail.len();
            let take = room.min(rest.len());
            self.tail.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.tail.len() == BLOCK_BYTES {
                mgr.append_block(self.cluster, &self.tail)?;
                self.flushed_blocks += 1;
                self.tail.clear();
            }
        }
        Ok(at)
    }

    /// Flush the DRAM tail and return the stream's logical length
    /// (excluding tail padding).
    ///
    /// Idempotent: a seal that fails mid-flush (e.g. a transient NAND
    /// error) leaves the tail buffered so the caller can retry, and a
    /// repeated seal after success returns the memoized length rather
    /// than re-counting the padded tail block.
    pub fn seal(&mut self, mgr: &ZoneManager) -> Result<u64> {
        if let Some(len) = self.sealed_len {
            return Ok(len);
        }
        let len = self.position();
        if !self.tail.is_empty() {
            // May dip into the zone manager's seal reserve: on an
            // exhausted device this flush is exactly what the reserve
            // exists for — without it the acked tail could never reach
            // flash and the keyspace could never freeze READ_ONLY.
            mgr.append_block_sealing(self.cluster, &self.tail)?;
            self.flushed_blocks += 1;
            self.tail.clear();
        }
        self.sealed_len = Some(len);
        Ok(len)
    }
}

/// Sequential reader over a sealed stream.
#[derive(Debug)]
pub struct StreamReader<'a> {
    mgr: &'a ZoneManager,
    cluster: ClusterId,
    len: u64,
    pos: u64,
    block: Vec<u8>,
    block_ix: u64,
}

impl<'a> StreamReader<'a> {
    pub fn new(mgr: &'a ZoneManager, cluster: ClusterId, len: u64) -> Self {
        Self {
            mgr,
            cluster,
            len,
            pos: 0,
            block: Vec::new(),
            block_ix: u64::MAX,
        }
    }

    pub fn position(&self) -> u64 {
        self.pos
    }

    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// Read exactly `n` bytes (across block boundaries).
    pub fn read(&mut self, n: usize) -> Result<Vec<u8>> {
        debug_assert!(self.pos + n as u64 <= self.len, "read past stream end");
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let bix = self.pos / BLOCK_BYTES as u64;
            if bix != self.block_ix {
                self.block = self.mgr.read_block(self.cluster, bix)?;
                self.block_ix = bix;
            }
            let in_block = (self.pos % BLOCK_BYTES as u64) as usize;
            let take = (n - out.len()).min(BLOCK_BYTES - in_block);
            out.extend_from_slice(&self.block[in_block..in_block + take]);
            self.pos += take as u64;
        }
        Ok(out)
    }
}

/// One KLOG record: a key plus the locator of its value in VLOG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KlogRecord {
    pub key: Vec<u8>,
    pub voff: u64,
    pub vlen: u32,
}

impl KlogRecord {
    pub const HEADER: usize = 2 + 8 + 4;

    pub fn encoded_len(&self) -> usize {
        Self::HEADER + self.key.len()
    }

    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.voff.to_le_bytes());
        out.extend_from_slice(&self.vlen.to_le_bytes());
        out.extend_from_slice(&self.key);
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut v);
        v
    }

    /// Decode one record from a stream reader.
    pub fn read_from(r: &mut StreamReader<'_>) -> Result<KlogRecord> {
        let hdr = r.read(Self::HEADER)?;
        let klen = le_u16(&hdr, 0) as usize;
        let voff = le_u64(&hdr, 2);
        let vlen = le_u32(&hdr, 10);
        let key = r.read(klen)?;
        Ok(KlogRecord { key, voff, vlen })
    }
}

/// The per-keyspace ingest state: KLOG + VLOG writers and counters.
///
/// A `WriteLog` holds [`crate::INGEST_BUFFER_BYTES`] of SoC DRAM (the
/// paper's 192 KiB ingest buffer) for its two stream tails and packing
/// space; the device reserves that from the DRAM budget when a keyspace
/// becomes WRITABLE and releases it at compaction time.
#[derive(Debug)]
pub struct WriteLog {
    pub klog: BlockStreamWriter,
    pub vlog: BlockStreamWriter,
    pub pairs: u64,
    pub data_bytes: u64,
    pub min_key: Option<Vec<u8>>,
    pub max_key: Option<Vec<u8>>,
}

impl WriteLog {
    pub fn new(klog_cluster: ClusterId, vlog_cluster: ClusterId) -> Self {
        Self {
            klog: BlockStreamWriter::new(klog_cluster),
            vlog: BlockStreamWriter::new(vlog_cluster),
            pairs: 0,
            data_bytes: 0,
            min_key: None,
            max_key: None,
        }
    }

    /// Append one key-value pair (key-value separated).
    pub fn put(
        &mut self,
        mgr: &ZoneManager,
        soc: &SocCharger,
        key: &[u8],
        value: &[u8],
    ) -> Result<()> {
        let voff = self.vlog.append(mgr, value)?;
        let rec = KlogRecord {
            key: key.to_vec(),
            voff,
            vlen: value.len() as u32,
        };
        let enc = rec.encode();
        self.klog.append(mgr, &enc)?;
        soc.memcpy(key.len() + value.len());
        soc.bytes(KlogRecord::HEADER);
        soc.kv_op();
        self.pairs += 1;
        self.data_bytes += (key.len() + value.len()) as u64;
        if self.min_key.as_deref().is_none_or(|m| key < m) {
            self.min_key = Some(key.to_vec());
        }
        if self.max_key.as_deref().is_none_or(|m| key > m) {
            self.max_key = Some(key.to_vec());
        }
        Ok(())
    }

    /// Seal both logs, returning `(klog_len, vlog_len)`.
    ///
    /// Idempotent (see [`BlockStreamWriter::seal`]): if the vlog flush
    /// fails after the klog flushed, a retry skips the klog and only
    /// redoes the vlog, so a transient flash error does not strand the
    /// log half-sealed.
    pub fn seal(&mut self, mgr: &ZoneManager) -> Result<(u64, u64)> {
        let k = self.klog.seal(mgr)?;
        let v = self.vlog.seal(mgr)?;
        Ok((k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
    use kvcsd_sim::{config::CostModel, HardwareSpec, IoLedger};
    use std::sync::Arc;

    fn setup() -> (ZoneManager, SocCharger) {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 64,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(
            geom,
            &HardwareSpec::default(),
            Arc::clone(&ledger),
        ));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        let mgr = ZoneManager::new(zns, 1, 7);
        let soc = SocCharger::new(ledger, CostModel::default());
        (mgr, soc)
    }

    #[test]
    fn stream_writer_reader_roundtrip() {
        let (mgr, _) = setup();
        let c = mgr.alloc_cluster(4).unwrap();
        let mut w = BlockStreamWriter::new(c);
        let mut expected = Vec::new();
        for i in 0..100u32 {
            let chunk = vec![(i % 251) as u8; 97];
            let at = w.append(&mgr, &chunk).unwrap();
            assert_eq!(at, expected.len() as u64);
            expected.extend_from_slice(&chunk);
        }
        let len = w.seal(&mgr).unwrap();
        assert_eq!(len, expected.len() as u64);

        let mut r = StreamReader::new(&mgr, c, len);
        let mut got = Vec::new();
        while r.remaining() > 0 {
            let n = r.remaining().min(333) as usize;
            got.extend_from_slice(&r.read(n).unwrap());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn klog_record_roundtrip_through_stream() {
        let (mgr, _) = setup();
        let c = mgr.alloc_cluster(2).unwrap();
        let mut w = BlockStreamWriter::new(c);
        let records: Vec<KlogRecord> = (0..500u32)
            .map(|i| KlogRecord {
                key: format!("key-{i:06}").into_bytes(),
                voff: i as u64 * 32,
                vlen: 32,
            })
            .collect();
        for r in &records {
            w.append(&mgr, &r.encode()).unwrap();
        }
        let len = w.seal(&mgr).unwrap();
        let mut reader = StreamReader::new(&mgr, c, len);
        for want in &records {
            let got = KlogRecord::read_from(&mut reader).unwrap();
            assert_eq!(&got, want);
        }
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn write_log_separates_keys_and_values() {
        let (mgr, soc) = setup();
        let kc = mgr.alloc_cluster(2).unwrap();
        let vc = mgr.alloc_cluster(2).unwrap();
        let mut log = WriteLog::new(kc, vc);
        for i in 0..300u32 {
            log.put(&mgr, &soc, format!("k{i:06}").as_bytes(), &[i as u8; 32])
                .unwrap();
        }
        assert_eq!(log.pairs, 300);
        assert_eq!(log.data_bytes, 300 * (7 + 32));
        assert_eq!(log.min_key.as_deref().unwrap(), b"k000000");
        assert_eq!(log.max_key.as_deref().unwrap(), b"k000299");
        let (klen, vlen) = log.seal(&mgr).unwrap();
        assert_eq!(vlen, 300 * 32);
        assert_eq!(klen, 300 * (KlogRecord::HEADER as u64 + 7));

        // Values are retrievable through the KLOG pointers.
        let mut r = StreamReader::new(&mgr, kc, klen);
        for i in 0..300u32 {
            let rec = KlogRecord::read_from(&mut r).unwrap();
            let v = mgr.read_bytes(vc, rec.voff, rec.vlen as usize).unwrap();
            assert_eq!(v, vec![i as u8; 32], "value {i}");
        }
    }

    #[test]
    fn put_charges_soc_not_host() {
        let (mgr, soc) = setup();
        let kc = mgr.alloc_cluster(1).unwrap();
        let vc = mgr.alloc_cluster(1).unwrap();
        let mut log = WriteLog::new(kc, vc);
        log.put(&mgr, &soc, b"key", b"value").unwrap();
        let s = soc.ledger().snapshot();
        assert!(s.soc_cpu_ns > 0);
        assert_eq!(s.host_cpu_ns, 0);
    }

    #[test]
    fn large_values_span_blocks() {
        let (mgr, soc) = setup();
        let kc = mgr.alloc_cluster(1).unwrap();
        let vc = mgr.alloc_cluster(1).unwrap();
        let mut log = WriteLog::new(kc, vc);
        let big: Vec<u8> = (0..10_000u32).map(|i| (i % 257) as u8).collect();
        log.put(&mgr, &soc, b"big", &big).unwrap();
        log.put(&mgr, &soc, b"after", b"x").unwrap();
        let (klen, _vlen) = log.seal(&mgr).unwrap();
        let mut r = StreamReader::new(&mgr, kc, klen);
        let rec = KlogRecord::read_from(&mut r).unwrap();
        assert_eq!(
            mgr.read_bytes(vc, rec.voff, rec.vlen as usize).unwrap(),
            big
        );
        let rec2 = KlogRecord::read_from(&mut r).unwrap();
        assert_eq!(rec2.key, b"after");
        assert_eq!(mgr.read_bytes(vc, rec2.voff, 1).unwrap(), b"x");
    }

    #[test]
    fn empty_stream_seal() {
        let (mgr, _) = setup();
        let c = mgr.alloc_cluster(1).unwrap();
        let mut w = BlockStreamWriter::new(c);
        assert_eq!(w.seal(&mgr).unwrap(), 0);
        assert_eq!(mgr.cluster_blocks(c).unwrap(), 0);
    }
}
