//! Offloaded secondary-index construction and the SIDX block format.
//!
//! "Building a secondary index is a two-step process. First, KV-CSD
//! performs a full scan of the keyspace data to extract all secondary
//! index keys from the values, along with their associated primary index
//! keys. ... Next, KV-CSD sorts these pairs in a manner similar to what
//! it does for sorting the primary index keys, producing the secondary
//! index stored in SIDX zone clusters." (Section V)
//!
//! Each SIDX entry also carries the value locator so that a secondary
//! query can stream matching records straight out of SORTED_VALUES
//! without a per-result primary-index lookup.

use kvcsd_sim::bytes::{le_u16, le_u32, le_u64, try_le_u16, try_le_u32, try_le_u64};
use std::cmp::Ordering;

use kvcsd_proto::SecondaryIndexSpec;

use crate::admission::Deadline;
use crate::compact::decode_pidx_block;
use crate::dram::DramBudget;
use crate::error::DeviceError;
use crate::extsort::{ExtSorter, SortRecord};
use crate::ingest::StreamReader;
use crate::keyspace::Sketch;
use crate::soc::SocCharger;
use crate::zone_mgr::{ClusterId, ZoneManager};
use crate::Result;
use crate::BLOCK_BYTES;

/// One SIDX entry: encoded secondary key, primary key, value locator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidxEntry {
    pub skey: Vec<u8>,
    pub pkey: Vec<u8>,
    pub voff: u64,
    pub vlen: u32,
}

const SIDX_ENTRY_HEADER: usize = 2 + 2 + 8 + 4;

impl SortRecord for SidxEntry {
    fn encoded_len(&self) -> usize {
        SIDX_ENTRY_HEADER + self.skey.len() + self.pkey.len()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.skey.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.pkey.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.voff.to_le_bytes());
        out.extend_from_slice(&self.vlen.to_le_bytes());
        out.extend_from_slice(&self.skey);
        out.extend_from_slice(&self.pkey);
    }
    fn read_from(r: &mut StreamReader<'_>) -> Result<Self> {
        let hdr = r.read(SIDX_ENTRY_HEADER)?;
        let sklen = le_u16(&hdr, 0) as usize;
        let pklen = le_u16(&hdr, 2) as usize;
        let voff = le_u64(&hdr, 4);
        let vlen = le_u32(&hdr, 12);
        let skey = r.read(sklen)?;
        let pkey = r.read(pklen)?;
        Ok(SidxEntry {
            skey,
            pkey,
            voff,
            vlen,
        })
    }
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.skey
            .cmp(&other.skey)
            .then_with(|| self.pkey.cmp(&other.pkey))
    }
}

/// Packs self-contained SIDX blocks, mirroring the PIDX builder.
#[derive(Debug, Default)]
pub struct SidxBlockBuilder {
    buf: Vec<u8>,
    count: u16,
    first_skey: Option<Vec<u8>>,
}

impl SidxBlockBuilder {
    pub fn new() -> Self {
        Self {
            buf: Vec::with_capacity(BLOCK_BYTES),
            count: 0,
            first_skey: None,
        }
    }

    pub fn fits(&self, e: &SidxEntry) -> bool {
        2 + self.buf.len() + e.encoded_len() <= BLOCK_BYTES
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn add(&mut self, e: &SidxEntry) {
        debug_assert!(self.fits(e));
        if self.first_skey.is_none() {
            self.first_skey = Some(e.skey.clone());
        }
        let mut tmp = Vec::with_capacity(e.encoded_len());
        e.encode_into(&mut tmp);
        self.buf.extend_from_slice(&tmp);
        self.count += 1;
    }

    pub fn finish(&mut self) -> (Vec<u8>, Vec<u8>) {
        let mut block = Vec::with_capacity(2 + self.buf.len());
        block.extend_from_slice(&self.count.to_le_bytes());
        block.extend_from_slice(&self.buf);
        let first = self.first_skey.take().unwrap_or_default();
        self.buf.clear();
        self.count = 0;
        (block, first)
    }
}

/// Decode one SIDX block.
pub fn decode_sidx_block(block: &[u8]) -> Result<Vec<SidxEntry>> {
    let bad = || DeviceError::Internal("malformed SIDX block".into());
    let count = try_le_u16(block, 0).ok_or_else(bad)?;
    let mut p = 2usize;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let sklen = try_le_u16(block, p).ok_or_else(bad)? as usize;
        let pklen = try_le_u16(block, p + 2).ok_or_else(bad)? as usize;
        let voff = try_le_u64(block, p + 4).ok_or_else(bad)?;
        let vlen = try_le_u32(block, p + 12).ok_or_else(bad)?;
        p += SIDX_ENTRY_HEADER;
        let skey = block.get(p..p + sklen).ok_or_else(bad)?.to_vec();
        p += sklen;
        let pkey = block.get(p..p + pklen).ok_or_else(bad)?.to_vec();
        p += pklen;
        out.push(SidxEntry {
            skey,
            pkey,
            voff,
            vlen,
        });
    }
    Ok(out)
}

/// Result of building one secondary index.
#[derive(Debug)]
pub struct SidxOutput {
    pub cluster: ClusterId,
    pub blocks: u32,
    pub sketch: Sketch,
    pub entries: u64,
}

/// Build a secondary index over a COMPACTED keyspace.
///
/// Scans PIDX + SORTED_VALUES sequentially (the "full scan of the
/// keyspace data"), extracts `(secondary key, primary key)` pairs per the
/// application-supplied `spec`, external-sorts them, and writes SIDX
/// blocks plus the sketch. Values whose bytes cannot satisfy the spec
/// (too short) are skipped, mirroring a forgiving scan. The deadline is
/// checked between the scan and the sort-and-write phase.
#[allow(clippy::too_many_arguments)]
pub fn build_secondary_index(
    mgr: &ZoneManager,
    soc: &SocCharger,
    dram: &DramBudget,
    pidx: (ClusterId, u32),
    svalues: (ClusterId, u64),
    spec: &SecondaryIndexSpec,
    cluster_width: u32,
    deadline: &Deadline<'_>,
) -> Result<SidxOutput> {
    let mut sorter: ExtSorter<'_, SidxEntry> = ExtSorter::new(mgr, soc, dram, cluster_width)?;

    // Full scan: PIDX gives (pkey, voff, vlen) in order; SORTED_VALUES is
    // read sequentially alongside.
    let mut vread = StreamReader::new(mgr, svalues.0, svalues.1);
    for b in 0..pidx.1 {
        let block = mgr.read_block(pidx.0, b as u64)?;
        soc.bytes(block.len());
        for e in decode_pidx_block(&block)? {
            debug_assert_eq!(vread.position(), e.voff);
            let value = vread.read(e.vlen as usize)?;
            soc.bytes(value.len());
            if let Some(skey) = spec.extract(&value) {
                sorter.push(SidxEntry {
                    skey,
                    pkey: e.key,
                    voff: e.voff,
                    vlen: e.vlen,
                })?;
            }
        }
    }

    deadline.check()?;
    write_sidx_blocks(mgr, sorter, cluster_width)
}

/// Drain a sorted [`SidxEntry`] sorter into SIDX blocks plus the sketch.
/// Shared by the separate build above and by single-pass compaction
/// ([`crate::compact::run_compaction_with_indexes`]).
pub fn write_sidx_blocks(
    mgr: &ZoneManager,
    sorter: ExtSorter<'_, SidxEntry>,
    cluster_width: u32,
) -> Result<SidxOutput> {
    let cluster = mgr.alloc_cluster(cluster_width)?;
    let mut builder = SidxBlockBuilder::new();
    let mut sketch = Sketch::new();
    let mut blocks = 0u32;
    let mut entries = 0u64;
    sorter.finish_into(|e| {
        if !builder.fits(&e) {
            let (block, first) = builder.finish();
            mgr.append_block(cluster, &block)?;
            sketch.push(first);
            blocks += 1;
        }
        builder.add(&e);
        entries += 1;
        Ok(())
    })?;
    if !builder.is_empty() {
        let (block, first) = builder.finish();
        mgr.append_block(cluster, &block)?;
        sketch.push(first);
        blocks += 1;
    }

    Ok(SidxOutput {
        cluster,
        blocks,
        sketch,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::run_compaction;
    use crate::ingest::WriteLog;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
    use kvcsd_proto::{SecondaryKeyType, SidxKey};
    use kvcsd_sim::{config::CostModel, HardwareSpec, IoLedger, XorShift64};
    use std::sync::Arc;

    fn setup() -> (ZoneManager, SocCharger, DramBudget) {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 256,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(
            geom,
            &HardwareSpec::default(),
            Arc::clone(&ledger),
        ));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        (
            ZoneManager::new(zns, 1, 321),
            SocCharger::new(ledger, CostModel::default()),
            DramBudget::new(4 << 20),
        )
    }

    /// Particle-style values: 28 bytes payload + 4-byte f32 energy tail.
    fn particle_value(energy: f32, filler: u8) -> Vec<u8> {
        let mut v = vec![filler; 32];
        v[28..].copy_from_slice(&energy.to_le_bytes());
        v
    }

    fn energy_spec() -> SecondaryIndexSpec {
        SecondaryIndexSpec {
            name: "energy".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::F32,
        }
    }

    fn compacted_keyspace(
        n: u64,
        mgr: &ZoneManager,
        soc: &SocCharger,
        dram: &DramBudget,
    ) -> (crate::compact::CompactionOutput, Vec<(Vec<u8>, f32)>) {
        let kc = mgr.alloc_cluster(4).unwrap();
        let vc = mgr.alloc_cluster(4).unwrap();
        let mut log = WriteLog::new(kc, vc);
        let mut rng = XorShift64::new(n ^ 777);
        let mut truth = Vec::new();
        for i in 0..n {
            let key = format!("particle-{:010}", rng.next_below(u32::MAX as u64)).into_bytes();
            let energy = (rng.next_f64() * 10.0) as f32;
            log.put(mgr, soc, &key, &particle_value(energy, i as u8))
                .unwrap();
            truth.push((key, energy));
        }
        let (klen, vlen) = log.seal(mgr).unwrap();
        let out = run_compaction(
            mgr,
            soc,
            dram,
            (kc, klen),
            (vc, vlen),
            n,
            4,
            &Deadline::none(),
        )
        .unwrap();
        (out, truth)
    }

    fn read_sidx(mgr: &ZoneManager, out: &SidxOutput) -> Vec<SidxEntry> {
        let mut got = Vec::new();
        for b in 0..out.blocks {
            got.extend(decode_sidx_block(&mgr.read_block(out.cluster, b as u64).unwrap()).unwrap());
        }
        got
    }

    #[test]
    fn sidx_block_roundtrip() {
        let mut b = SidxBlockBuilder::new();
        let entries: Vec<SidxEntry> = (0..40u32)
            .map(|i| SidxEntry {
                skey: SidxKey::F32(i as f32).encode(),
                pkey: format!("p{i:06}").into_bytes(),
                voff: i as u64 * 32,
                vlen: 32,
            })
            .collect();
        for e in &entries {
            assert!(b.fits(e));
            b.add(e);
        }
        let (block, first) = b.finish();
        assert_eq!(first, SidxKey::F32(0.0).encode());
        assert_eq!(decode_sidx_block(&block).unwrap(), entries);
    }

    #[test]
    fn build_produces_sorted_complete_index() {
        let (mgr, soc, dram) = setup();
        let (cout, truth) = compacted_keyspace(2_000, &mgr, &soc, &dram);
        let out = build_secondary_index(
            &mgr,
            &soc,
            &dram,
            cout.pidx,
            cout.svalues,
            &energy_spec(),
            4,
            &Deadline::none(),
        )
        .unwrap();
        assert_eq!(out.entries, 2_000);
        assert_eq!(out.sketch.blocks(), out.blocks);
        let got = read_sidx(&mgr, &out);
        assert_eq!(got.len(), 2_000);
        // Sorted by encoded secondary key (ties by pkey).
        assert!(got
            .windows(2)
            .all(|w| (w[0].skey.as_slice(), w[0].pkey.as_slice())
                <= (w[1].skey.as_slice(), w[1].pkey.as_slice())));
        // Every particle is present with the correct energy encoding.
        let mut want: Vec<(Vec<u8>, Vec<u8>)> = truth
            .iter()
            .map(|(k, e)| (SidxKey::F32(*e).encode(), k.clone()))
            .collect();
        want.sort();
        let have: Vec<(Vec<u8>, Vec<u8>)> = got
            .iter()
            .map(|e| (e.skey.clone(), e.pkey.clone()))
            .collect();
        assert_eq!(have, want);
    }

    #[test]
    fn value_locators_resolve_to_real_records() {
        let (mgr, soc, dram) = setup();
        let (cout, _) = compacted_keyspace(500, &mgr, &soc, &dram);
        let out = build_secondary_index(
            &mgr,
            &soc,
            &dram,
            cout.pidx,
            cout.svalues,
            &energy_spec(),
            4,
            &Deadline::none(),
        )
        .unwrap();
        for e in read_sidx(&mgr, &out).iter().step_by(37) {
            let value = mgr
                .read_bytes(cout.svalues.0, e.voff, e.vlen as usize)
                .unwrap();
            let energy = f32::from_le_bytes(value[28..32].try_into().unwrap());
            assert_eq!(SidxKey::F32(energy).encode(), e.skey);
        }
    }

    #[test]
    fn short_values_are_skipped_not_fatal() {
        let (mgr, soc, dram) = setup();
        let kc = mgr.alloc_cluster(2).unwrap();
        let vc = mgr.alloc_cluster(2).unwrap();
        let mut log = WriteLog::new(kc, vc);
        log.put(&mgr, &soc, b"good", &particle_value(5.0, 1))
            .unwrap();
        log.put(&mgr, &soc, b"tiny", b"xx").unwrap(); // too short for the spec
        let (klen, vlen) = log.seal(&mgr).unwrap();
        let cout = run_compaction(
            &mgr,
            &soc,
            &dram,
            (kc, klen),
            (vc, vlen),
            2,
            2,
            &Deadline::none(),
        )
        .unwrap();
        let out = build_secondary_index(
            &mgr,
            &soc,
            &dram,
            cout.pidx,
            cout.svalues,
            &energy_spec(),
            2,
            &Deadline::none(),
        )
        .unwrap();
        assert_eq!(out.entries, 1);
        assert_eq!(read_sidx(&mgr, &out)[0].pkey, b"good");
    }

    #[test]
    fn build_charges_device_only() {
        let (mgr, soc, dram) = setup();
        let (cout, _) = compacted_keyspace(1_000, &mgr, &soc, &dram);
        let before = soc.ledger().snapshot();
        build_secondary_index(
            &mgr,
            &soc,
            &dram,
            cout.pidx,
            cout.svalues,
            &energy_spec(),
            4,
            &Deadline::none(),
        )
        .unwrap();
        let d = soc.ledger().snapshot().since(&before);
        assert!(d.soc_cpu_ns > 0);
        assert_eq!(d.host_cpu_ns, 0);
        assert_eq!(d.pcie_bytes(), 0);
        assert!(d.nand_read_pages > 0, "full scan must read the keyspace");
    }

    #[test]
    fn empty_keyspace_builds_empty_index() {
        let (mgr, soc, dram) = setup();
        let (cout, _) = compacted_keyspace(0, &mgr, &soc, &dram);
        let out = build_secondary_index(
            &mgr,
            &soc,
            &dram,
            cout.pidx,
            cout.svalues,
            &energy_spec(),
            2,
            &Deadline::none(),
        )
        .unwrap();
        assert_eq!(out.entries, 0);
        assert_eq!(out.blocks, 0);
    }
}
