//! Device-side error type and its mapping onto protocol status codes.

use kvcsd_flash::FlashError;
use kvcsd_proto::KvStatus;
use std::fmt;

/// Errors raised inside the KV-CSD device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// No keyspace with that id/name.
    KeyspaceNotFound,
    /// Keyspace name collision at creation.
    KeyspaceExists,
    /// Operation not legal in the keyspace's current state.
    BadState {
        state: &'static str,
        op: &'static str,
    },
    /// Key missing on a point query.
    KeyNotFound,
    /// Secondary index name not found.
    IndexNotFound,
    /// Secondary index name collision.
    IndexExists,
    /// Index spec does not fit the stored values.
    BadIndexSpec,
    /// Malformed key or value in a request.
    BadPayload(String),
    /// Out of zones / DRAM.
    OutOfResources(String),
    /// Admission control rejected the command outright (overload).
    Busy(&'static str),
    /// Admission control write-stalled the command; the simulated stall
    /// was charged but the command did not execute.
    Stalled,
    /// The command's deadline expired before the work could complete.
    DeadlineExceeded,
    /// Underlying flash error.
    Flash(FlashError),
    /// Both metadata zones hold torn debris and neither holds a single
    /// CRC-valid snapshot generation. The device may have persisted
    /// state that is now unrecoverable, so reopen refuses to silently
    /// come up empty (serving "generation zero" would un-ack every
    /// write); an operator or the cluster failover path must decide.
    CorruptMetadata,
    /// A state change that is not an edge of the machine's lifecycle
    /// table (see `crate::lifecycle`).
    IllegalTransition {
        machine: &'static str,
        from: &'static str,
        to: &'static str,
    },
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::KeyspaceNotFound => write!(f, "keyspace not found"),
            DeviceError::KeyspaceExists => write!(f, "keyspace exists"),
            DeviceError::BadState { state, op } => {
                write!(f, "operation {op} not allowed in state {state}")
            }
            DeviceError::KeyNotFound => write!(f, "key not found"),
            DeviceError::IndexNotFound => write!(f, "secondary index not found"),
            DeviceError::IndexExists => write!(f, "secondary index exists"),
            DeviceError::BadIndexSpec => write!(f, "bad secondary index spec"),
            DeviceError::BadPayload(m) => write!(f, "bad payload: {m}"),
            DeviceError::OutOfResources(m) => write!(f, "out of resources: {m}"),
            DeviceError::Busy(why) => write!(f, "busy: {why}"),
            DeviceError::Stalled => write!(f, "write stalled (overload)"),
            DeviceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            DeviceError::Flash(e) => write!(f, "flash: {e}"),
            DeviceError::CorruptMetadata => {
                write!(f, "both metadata snapshot generations are corrupt")
            }
            DeviceError::IllegalTransition { machine, from, to } => {
                write!(f, "illegal {machine} transition: {from} -> {to}")
            }
            DeviceError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<FlashError> for DeviceError {
    fn from(e: FlashError) -> Self {
        DeviceError::Flash(e)
    }
}

impl From<DeviceError> for KvStatus {
    fn from(e: DeviceError) -> KvStatus {
        match e {
            DeviceError::KeyspaceNotFound => KvStatus::KeyspaceNotFound,
            DeviceError::KeyspaceExists => KvStatus::KeyspaceExists,
            DeviceError::BadState { state, op } => KvStatus::BadKeyspaceState { state, op },
            DeviceError::KeyNotFound => KvStatus::KeyNotFound,
            DeviceError::IndexNotFound => KvStatus::IndexNotFound,
            DeviceError::IndexExists => KvStatus::IndexExists,
            DeviceError::BadIndexSpec => KvStatus::BadIndexSpec,
            DeviceError::BadPayload(_) => KvStatus::BadValue,
            DeviceError::OutOfResources(m) => {
                if m.contains("zone") {
                    KvStatus::DeviceFull
                } else {
                    KvStatus::Internal(m)
                }
            }
            DeviceError::Busy(_) => KvStatus::Busy,
            DeviceError::Stalled => KvStatus::Stalled,
            DeviceError::DeadlineExceeded => KvStatus::DeadlineExceeded,
            DeviceError::Flash(FlashError::DeviceFull) => KvStatus::DeviceFull,
            DeviceError::Flash(e @ FlashError::InjectedTransient { .. }) => {
                KvStatus::TransientDeviceError(e.to_string())
            }
            DeviceError::Flash(e @ FlashError::InjectedPersistent { .. }) => {
                KvStatus::MediaError(e.to_string())
            }
            DeviceError::Flash(FlashError::PowerLoss) => KvStatus::PowerLoss,
            DeviceError::Flash(e) => KvStatus::Internal(e.to_string()),
            e @ DeviceError::CorruptMetadata => KvStatus::MediaError(e.to_string()),
            e @ DeviceError::IllegalTransition { .. } => KvStatus::Internal(e.to_string()),
            DeviceError::Internal(m) => KvStatus::Internal(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_to_protocol_statuses() {
        assert_eq!(
            KvStatus::from(DeviceError::KeyspaceNotFound),
            KvStatus::KeyspaceNotFound
        );
        assert_eq!(
            KvStatus::from(DeviceError::Flash(FlashError::DeviceFull)),
            KvStatus::DeviceFull
        );
        assert_eq!(
            KvStatus::from(DeviceError::OutOfResources("no free zones".into())),
            KvStatus::DeviceFull
        );
        assert!(matches!(
            KvStatus::from(DeviceError::Internal("x".into())),
            KvStatus::Internal(_)
        ));
        assert_eq!(
            KvStatus::from(DeviceError::Busy("job queue full")),
            KvStatus::Busy
        );
        assert_eq!(KvStatus::from(DeviceError::Stalled), KvStatus::Stalled);
        // Doubly-corrupt metadata is a media-grade failure: not retryable,
        // not degraded — the device cannot come up without intervention.
        assert!(matches!(
            KvStatus::from(DeviceError::CorruptMetadata),
            KvStatus::MediaError(_)
        ));
        assert_eq!(
            KvStatus::from(DeviceError::DeadlineExceeded),
            KvStatus::DeadlineExceeded
        );
    }

    #[test]
    fn display_is_informative() {
        let e = DeviceError::BadState {
            state: "COMPACTING",
            op: "put",
        };
        assert!(e.to_string().contains("COMPACTING"));
    }
}
