//! DRAM-bounded external merge sort.
//!
//! "Sorting is done by running multiple rounds of merge sorts, depending
//! on available SoC DRAM space. Intermediate sorting results are stored
//! in dynamically allocated zone clusters, which are released upon
//! completion of the sort." (Section V)
//!
//! The sorter reserves what it can from the [`DramBudget`], accumulates
//! records until the reservation is full, sorts and spills a run to a
//! temporary zone cluster, and finally k-way-merges the runs (in multiple
//! passes when the run count exceeds the DRAM-derived fan-in). Every
//! comparison and byte moved is charged to the SoC; every spill and merge
//! readback is real zone I/O.

use std::cmp::Ordering;

use crate::dram::{DramBudget, DramReservation};
use crate::error::DeviceError;
use crate::ingest::{BlockStreamWriter, KlogRecord, StreamReader};
use crate::soc::SocCharger;
use crate::zone_mgr::ZoneManager;
use crate::Result;
use crate::BLOCK_BYTES;

/// A record an [`ExtSorter`] can spill, read back and order.
pub trait SortRecord: Sized {
    /// Bytes this record occupies in a run.
    fn encoded_len(&self) -> usize;
    /// Serialize to the end of `out`.
    fn encode_into(&self, out: &mut Vec<u8>);
    /// Deserialize one record from a run stream.
    fn read_from(r: &mut StreamReader<'_>) -> Result<Self>;
    /// Total order of records.
    fn cmp_key(&self, other: &Self) -> Ordering;
}

impl SortRecord for KlogRecord {
    fn encoded_len(&self) -> usize {
        KlogRecord::encoded_len(self)
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        KlogRecord::encode_into(self, out)
    }
    fn read_from(r: &mut StreamReader<'_>) -> Result<Self> {
        KlogRecord::read_from(r)
    }
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

#[derive(Debug)]
struct Run {
    cluster: crate::zone_mgr::ClusterId,
    len: u64,
    count: u64,
}

/// External merge sorter over zone clusters.
pub struct ExtSorter<'a, R: SortRecord> {
    mgr: &'a ZoneManager,
    soc: &'a SocCharger,
    cluster_width: u32,
    reservation: DramReservation<'a>,
    buf: Vec<R>,
    buf_bytes: u64,
    runs: Vec<Run>,
    total: u64,
}

/// Smallest DRAM reservation the sorter accepts (one block in, one out,
/// per merge stream at minimum fan-in).
const MIN_RESERVATION: u64 = 16 * BLOCK_BYTES as u64;

impl<'a, R: SortRecord> ExtSorter<'a, R> {
    /// Create a sorter. It immediately reserves sort memory from `dram`
    /// (as much as available, at least [`MIN_RESERVATION`]).
    pub fn new(
        mgr: &'a ZoneManager,
        soc: &'a SocCharger,
        dram: &'a DramBudget,
        cluster_width: u32,
    ) -> Result<Self> {
        let want = dram.available() / 2;
        let reservation = dram
            .reserve_up_to_guarded(want, MIN_RESERVATION)
            .ok_or_else(|| DeviceError::OutOfResources("sort DRAM".into()))?;
        Ok(Self {
            mgr,
            soc,
            cluster_width,
            reservation,
            buf: Vec::new(),
            buf_bytes: 0,
            runs: Vec::new(),
            total: 0,
        })
    }

    /// Bytes of DRAM this sorter reserved.
    pub fn reservation(&self) -> u64 {
        self.reservation.bytes()
    }

    /// Runs spilled so far (diagnostic; grows once input exceeds DRAM).
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Feed one record.
    pub fn push(&mut self, rec: R) -> Result<()> {
        self.buf_bytes += rec.encoded_len() as u64;
        self.buf.push(rec);
        self.total += 1;
        if self.buf_bytes >= self.reservation.bytes() {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.soc.sort(self.buf.len());
        self.buf.sort_by(|a, b| a.cmp_key(b));
        let cluster = self.mgr.alloc_cluster(self.cluster_width)?;
        let mut w = BlockStreamWriter::new(cluster);
        let mut enc = Vec::with_capacity(BLOCK_BYTES);
        let count = self.buf.len() as u64;
        for rec in self.buf.drain(..) {
            enc.clear();
            rec.encode_into(&mut enc);
            self.soc.bytes(enc.len());
            w.append(self.mgr, &enc)?;
        }
        let len = w.seal(self.mgr)?;
        self.runs.push(Run {
            cluster,
            len,
            count,
        });
        self.buf_bytes = 0;
        Ok(())
    }

    /// DRAM-derived merge fan-in.
    fn fan_in(&self) -> usize {
        ((self.reservation.bytes() / (4 * BLOCK_BYTES as u64)) as usize).clamp(2, 64)
    }

    /// Merge a group of runs into one new run.
    fn merge_runs(&mut self, group: Vec<Run>) -> Result<Run> {
        let cluster = self.mgr.alloc_cluster(self.cluster_width)?;
        let mut w = BlockStreamWriter::new(cluster);
        let mut count = 0u64;
        let mut enc = Vec::with_capacity(BLOCK_BYTES);
        {
            let mut cursors: Vec<(StreamReader<'_>, u64, Option<R>)> = Vec::new();
            for run in &group {
                let mut r = StreamReader::new(self.mgr, run.cluster, run.len);
                let first = if run.count > 0 {
                    Some(R::read_from(&mut r)?)
                } else {
                    None
                };
                cursors.push((r, run.count.saturating_sub(1), first));
            }
            let k = cursors.len();
            loop {
                // Linear min selection: k is small (bounded by fan-in).
                let mut best: Option<usize> = None;
                let mut best_head: Option<&R> = None;
                for (i, (_, _, head)) in cursors.iter().enumerate() {
                    if let Some(h) = head {
                        if best_head.is_none_or(|bh| h.cmp_key(bh) == Ordering::Less) {
                            best = Some(i);
                            best_head = Some(h);
                        }
                    }
                }
                let Some(b) = best else { break };
                self.soc.merge_step(k);
                let (reader, remaining, head) = &mut cursors[b];
                let Some(rec) = head.take() else {
                    return Err(DeviceError::Internal("merge cursor lost its head".into()));
                };
                if *remaining > 0 {
                    *head = Some(R::read_from(reader)?);
                    *remaining -= 1;
                }
                enc.clear();
                rec.encode_into(&mut enc);
                self.soc.bytes(enc.len());
                w.append(self.mgr, &enc)?;
                count += 1;
            }
        }
        for run in group {
            self.mgr.release_cluster(run.cluster)?;
        }
        let len = w.seal(self.mgr)?;
        Ok(Run {
            cluster,
            len,
            count,
        })
    }

    /// Finish sorting, streaming every record in order into `consume`.
    /// Releases all temporary clusters and the DRAM reservation.
    pub fn finish_into(mut self, mut consume: impl FnMut(R) -> Result<()>) -> Result<u64> {
        self.spill()?;
        let fan_in = self.fan_in();

        // Reduce the run count with intermediate passes.
        while self.runs.len() > fan_in {
            let group: Vec<Run> = self.runs.drain(..fan_in).collect();
            let merged = self.merge_runs(group)?;
            self.runs.push(merged);
        }

        // Final pass: merge whatever remains straight into the consumer.
        let runs: Vec<Run> = std::mem::take(&mut self.runs);
        let mut emitted = 0u64;
        {
            let mut cursors: Vec<(StreamReader<'_>, u64, Option<R>)> = Vec::new();
            for run in &runs {
                let mut r = StreamReader::new(self.mgr, run.cluster, run.len);
                let first = if run.count > 0 {
                    Some(R::read_from(&mut r)?)
                } else {
                    None
                };
                cursors.push((r, run.count.saturating_sub(1), first));
            }
            let k = cursors.len().max(1);
            loop {
                let mut best: Option<usize> = None;
                let mut best_head: Option<&R> = None;
                for (i, (_, _, head)) in cursors.iter().enumerate() {
                    if let Some(h) = head {
                        if best_head.is_none_or(|bh| h.cmp_key(bh) == Ordering::Less) {
                            best = Some(i);
                            best_head = Some(h);
                        }
                    }
                }
                let Some(b) = best else { break };
                self.soc.merge_step(k);
                let (reader, remaining, head) = &mut cursors[b];
                let Some(rec) = head.take() else {
                    return Err(DeviceError::Internal("merge cursor lost its head".into()));
                };
                if *remaining > 0 {
                    *head = Some(R::read_from(reader)?);
                    *remaining -= 1;
                }
                consume(rec)?;
                emitted += 1;
            }
        }
        for run in runs {
            self.mgr.release_cluster(run.cluster)?;
        }
        // The DRAM reservation guard releases itself when `self` drops.
        Ok(emitted)
    }
}

impl<R: SortRecord> Drop for ExtSorter<'_, R> {
    fn drop(&mut self) {
        // Failure path: return the zones (the DRAM reservation guard
        // field releases itself right after this runs).
        for run in self.runs.drain(..) {
            let _ = self.mgr.release_cluster(run.cluster);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
    use kvcsd_sim::{config::CostModel, HardwareSpec, IoLedger, XorShift64};
    use std::sync::Arc;

    fn setup(blocks_per_channel: u32) -> (ZoneManager, SocCharger) {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(
            geom,
            &HardwareSpec::default(),
            Arc::clone(&ledger),
        ));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        (
            ZoneManager::new(zns, 1, 99),
            SocCharger::new(ledger, CostModel::default()),
        )
    }

    fn rec(i: u64) -> KlogRecord {
        KlogRecord {
            key: format!("{i:010}").into_bytes(),
            voff: i * 32,
            vlen: 32,
        }
    }

    #[test]
    fn sorts_in_memory_when_small() {
        let (mgr, soc) = setup(64);
        let dram = DramBudget::new(64 << 20);
        let mut s = ExtSorter::new(&mgr, &soc, &dram, 4).unwrap();
        let mut rng = XorShift64::new(5);
        let mut keys: Vec<u64> = (0..1000).map(|_| rng.next_below(1_000_000)).collect();
        for &k in &keys {
            s.push(rec(k)).unwrap();
        }
        assert_eq!(s.spilled_runs(), 0, "everything fits in DRAM");
        let mut out = Vec::new();
        let n = s
            .finish_into(|r| {
                out.push(r);
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 1000);
        keys.sort();
        let got: Vec<Vec<u8>> = out.iter().map(|r| r.key.clone()).collect();
        let want: Vec<Vec<u8>> = keys
            .iter()
            .map(|k| format!("{k:010}").into_bytes())
            .collect();
        assert_eq!(got, want);
        assert_eq!(dram.used(), 0, "reservation returned");
    }

    #[test]
    fn spills_and_merges_when_dram_is_tight() {
        let (mgr, soc) = setup(512);
        // Tiny budget: force many runs.
        let dram = DramBudget::new(MIN_RESERVATION * 2);
        let mut s = ExtSorter::new(&mgr, &soc, &dram, 4).unwrap();
        let mut rng = XorShift64::new(6);
        let n = 40_000u64;
        for _ in 0..n {
            s.push(rec(rng.next_below(10_000_000))).unwrap();
        }
        assert!(
            s.spilled_runs() > 1,
            "tight DRAM must spill: {}",
            s.spilled_runs()
        );
        let before_zones = mgr.cluster_count();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0u64;
        s.finish_into(|r| {
            if let Some(p) = &prev {
                assert!(r.key >= *p, "output must be sorted");
            }
            prev = Some(r.key);
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, n);
        assert_eq!(dram.used(), 0);
        assert!(
            mgr.cluster_count() <= before_zones,
            "temp clusters released"
        );
    }

    #[test]
    fn multi_pass_merge_when_runs_exceed_fan_in() {
        let (mgr, soc) = setup(1024);
        let dram = DramBudget::new(MIN_RESERVATION);
        let mut s = ExtSorter::new(&mgr, &soc, &dram, 2).unwrap();
        // fan_in at minimum reservation = 16*4096/(4*4096) = 4.
        assert_eq!(s.fan_in(), 4);
        let mut rng = XorShift64::new(7);
        // Push enough for > 4 runs (reservation 64 KiB, record ~24 B -> a
        // run every ~2700 records).
        for _ in 0..20_000u64 {
            s.push(rec(rng.next_below(1_000_000))).unwrap();
        }
        assert!(s.spilled_runs() > 4);
        let mut prev: Option<Vec<u8>> = None;
        let n = s
            .finish_into(|r| {
                if let Some(p) = &prev {
                    assert!(r.key >= *p);
                }
                prev = Some(r.key);
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 20_000);
    }

    #[test]
    fn duplicate_keys_are_all_retained() {
        let (mgr, soc) = setup(128);
        let dram = DramBudget::new(MIN_RESERVATION);
        let mut s = ExtSorter::new(&mgr, &soc, &dram, 2).unwrap();
        for i in 0..5000u64 {
            s.push(rec(i % 10)).unwrap(); // heavy duplication
        }
        let mut count = 0u64;
        s.finish_into(|_| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 5000);
    }

    #[test]
    fn sort_work_is_charged_to_soc() {
        let (mgr, soc) = setup(64);
        let dram = DramBudget::new(64 << 20);
        let mut s = ExtSorter::new(&mgr, &soc, &dram, 2).unwrap();
        for i in 0..1000u64 {
            s.push(rec(999 - i)).unwrap();
        }
        s.finish_into(|_| Ok(())).unwrap();
        let snap = soc.ledger().snapshot();
        assert!(snap.soc_cpu_ns > 0);
        assert_eq!(snap.host_cpu_ns, 0);
    }

    #[test]
    fn spill_io_is_real() {
        let (mgr, soc) = setup(512);
        let dram = DramBudget::new(MIN_RESERVATION);
        let mut s = ExtSorter::new(&mgr, &soc, &dram, 2).unwrap();
        let before = soc.ledger().snapshot();
        let mut rng = XorShift64::new(8);
        for _ in 0..20_000u64 {
            s.push(rec(rng.next_below(1_000_000))).unwrap();
        }
        s.finish_into(|_| Ok(())).unwrap();
        let d = soc.ledger().snapshot().since(&before);
        assert!(d.nand_program_pages > 0, "runs must hit flash");
        assert!(d.nand_read_pages > 0, "merge must read runs back");
    }

    #[test]
    fn empty_input_is_fine() {
        let (mgr, soc) = setup(64);
        let dram = DramBudget::new(1 << 20);
        let s: ExtSorter<'_, KlogRecord> = ExtSorter::new(&mgr, &soc, &dram, 2).unwrap();
        let n = s.finish_into(|_| Ok(())).unwrap();
        assert_eq!(n, 0);
        assert_eq!(dram.used(), 0);
    }

    #[test]
    fn fails_cleanly_without_dram() {
        let (mgr, soc) = setup(64);
        let dram = DramBudget::new(1024); // below MIN_RESERVATION
        assert!(matches!(
            ExtSorter::<KlogRecord>::new(&mgr, &soc, &dram, 2),
            Err(DeviceError::OutOfResources(_))
        ));
    }

    #[test]
    fn drop_without_finish_releases_resources() {
        let (mgr, soc) = setup(512);
        let dram = DramBudget::new(MIN_RESERVATION);
        {
            let mut s = ExtSorter::new(&mgr, &soc, &dram, 2).unwrap();
            let mut rng = XorShift64::new(9);
            for _ in 0..20_000u64 {
                s.push(rec(rng.next_below(1_000_000))).unwrap();
            }
            assert!(s.spilled_runs() > 0);
        } // dropped here
        assert_eq!(dram.used(), 0);
        assert_eq!(mgr.cluster_count(), 0);
    }
}
