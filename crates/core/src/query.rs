//! Device-side query processing.
//!
//! "To handle a query, KV-CSD first identifies the keyspace from the
//! keyspace manager's in-memory keyspace table. It then uses the
//! keyspace's metadata to locate all related primary or secondary index
//! data blocks on the SSD, and use them to process the incoming query.
//! Because query is entirely processed in a computational storage device,
//! only query results need to be transferred back to the application."
//!
//! All functions here read index blocks and values with real zone I/O and
//! charge SoC CPU for sketch searches and block decodes. KV-CSD does not
//! cache data (the paper is explicit about this), so every query pays its
//! full I/O cost — which is why its latency is "always linear to the
//! total number of particles returned".

use kvcsd_proto::Bound;

use crate::compact::decode_pidx_block;
use crate::error::DeviceError;
use crate::keyspace::{KsStorage, Sketch};
use crate::sidx::decode_sidx_block;
use crate::soc::SocCharger;
use crate::zone_mgr::{ClusterId, ZoneManager};
use crate::Result;

/// A COMPACTED keyspace that was compacted while empty has no PIDX or
/// SORTED_VALUES clusters at all; queries over it simply match nothing.
#[allow(clippy::type_complexity)]
fn pidx_of(storage: &KsStorage) -> Option<((ClusterId, u32), &Sketch, (ClusterId, u64))> {
    Some((storage.pidx?, &storage.pidx_sketch, storage.svalues?))
}

/// Fetch many values from SORTED_VALUES with one pass over the covering
/// blocks: locators are visited in ascending `voff` order and each 4 KiB
/// block is read exactly once into a single scan buffer (this is query
/// execution, not caching — the buffer dies with the query). Returns
/// values in the *original* locator order.
fn gather_values(
    mgr: &ZoneManager,
    soc: &SocCharger,
    svalues: ClusterId,
    locs: &[(u64, u32)],
) -> Result<Vec<Vec<u8>>> {
    let mut order: Vec<usize> = (0..locs.len()).collect();
    order.sort_by_key(|&i| locs[i].0);
    soc.cmp((locs.len().max(2) as f64) * (locs.len().max(2) as f64).log2() * 0.1);

    let bb = crate::BLOCK_BYTES as u64;
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); locs.len()];
    let mut cur_block: u64 = u64::MAX;
    let mut buf: Vec<u8> = Vec::new();
    for i in order {
        let (voff, vlen) = locs[i];
        let mut value = Vec::with_capacity(vlen as usize);
        let mut pos = voff;
        let end = voff + vlen as u64;
        while pos < end {
            let b = pos / bb;
            if b != cur_block {
                buf = mgr.read_block(svalues, b)?;
                cur_block = b;
            }
            let in_block = (pos % bb) as usize;
            let take = ((end - pos) as usize).min(crate::BLOCK_BYTES - in_block);
            value.extend_from_slice(&buf[in_block..in_block + take]);
            pos += take as u64;
        }
        soc.memcpy(value.len());
        // Each returned record is framed into the response capsule by the
        // SoC (the per-record data-path cost, same as on ingest).
        soc.kv_op();
        out[i] = value;
    }
    Ok(out)
}

/// Point query over the primary key.
pub fn point_get(
    mgr: &ZoneManager,
    soc: &SocCharger,
    storage: &KsStorage,
    key: &[u8],
) -> Result<Vec<u8>> {
    let Some((pidx, sketch, svalues)) = pidx_of(storage) else {
        return Err(DeviceError::KeyNotFound);
    };
    let Some(block_ix) = sketch.locate(key) else {
        return Err(DeviceError::KeyNotFound);
    };
    soc.cmp(sketch.search_cost());
    let block = mgr.read_block(pidx.0, block_ix as u64)?;
    soc.bytes(block.len());
    let entries = decode_pidx_block(&block)?;
    soc.cmp((entries.len().max(2) as f64).log2());
    match entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
        Ok(i) => {
            let e = &entries[i];
            let value = mgr.read_bytes(svalues.0, e.voff, e.vlen as usize)?;
            soc.memcpy(value.len());
            Ok(value)
        }
        Err(_) => Err(DeviceError::KeyNotFound),
    }
}

/// Range query over the primary key; returns `(key, value)` in key order.
pub fn range(
    mgr: &ZoneManager,
    soc: &SocCharger,
    storage: &KsStorage,
    lo: &Bound,
    hi: &Bound,
    limit: Option<u64>,
) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let Some((pidx, sketch, svalues)) = pidx_of(storage) else {
        return Ok(Vec::new());
    };
    if sketch.is_empty() {
        return Ok(Vec::new());
    }
    let start_block = match lo {
        Bound::Unbounded => 0,
        Bound::Included(k) | Bound::Excluded(k) => sketch.locate(k).unwrap_or(0),
    };
    soc.cmp(sketch.search_cost());

    let mut hits: Vec<(Vec<u8>, (u64, u32))> = Vec::new();
    'blocks: for b in start_block..pidx.1 {
        let block = mgr.read_block(pidx.0, b as u64)?;
        soc.bytes(block.len());
        for e in decode_pidx_block(&block)? {
            soc.cmp(1.0);
            if !lo.admits_from_below(&e.key) {
                continue;
            }
            if !hi.admits_from_above(&e.key) {
                break 'blocks;
            }
            hits.push((e.key, (e.voff, e.vlen)));
            if limit.is_some_and(|l| hits.len() as u64 >= l) {
                break 'blocks;
            }
        }
    }
    let locs: Vec<(u64, u32)> = hits.iter().map(|(_, l)| *l).collect();
    let values = gather_values(mgr, soc, svalues.0, &locs)?;
    Ok(hits.into_iter().map(|(k, _)| k).zip(values).collect())
}

/// Point query over a secondary index: all records whose secondary key
/// equals `skey` (encoded), as `(primary key, value)` pairs.
pub fn sidx_get(
    mgr: &ZoneManager,
    soc: &SocCharger,
    storage: &KsStorage,
    index: &str,
    skey: &[u8],
) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    sidx_range(
        mgr,
        soc,
        storage,
        index,
        &Bound::Included(skey.to_vec()),
        &Bound::Included(skey.to_vec()),
        None,
    )
}

/// Range query over a secondary index; returns full records ordered by
/// (secondary key, primary key).
pub fn sidx_range(
    mgr: &ZoneManager,
    soc: &SocCharger,
    storage: &KsStorage,
    index: &str,
    lo: &Bound,
    hi: &Bound,
    limit: Option<u64>,
) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let sidx = storage.sidx.get(index).ok_or(DeviceError::IndexNotFound)?;
    let svalues = storage
        .svalues
        .ok_or_else(|| DeviceError::Internal("no SORTED_VALUES".into()))?;
    if sidx.sketch.is_empty() {
        return Ok(Vec::new());
    }
    let start_block = match lo {
        Bound::Unbounded => 0,
        Bound::Included(k) | Bound::Excluded(k) => sidx.sketch.locate(k).unwrap_or(0),
    };
    soc.cmp(sidx.sketch.search_cost());

    let mut hits: Vec<(Vec<u8>, (u64, u32))> = Vec::new();
    'blocks: for b in start_block..sidx.blocks {
        let block = mgr.read_block(sidx.cluster, b as u64)?;
        soc.bytes(block.len());
        for e in decode_sidx_block(&block)? {
            soc.cmp(1.0);
            if !lo.admits_from_below(&e.skey) {
                continue;
            }
            if !hi.admits_from_above(&e.skey) {
                break 'blocks;
            }
            hits.push((e.pkey, (e.voff, e.vlen)));
            if limit.is_some_and(|l| hits.len() as u64 >= l) {
                break 'blocks;
            }
        }
    }
    // Matching records stream out of SORTED_VALUES in one gather pass.
    let locs: Vec<(u64, u32)> = hits.iter().map(|(_, l)| *l).collect();
    let values = gather_values(mgr, soc, svalues.0, &locs)?;
    Ok(hits.into_iter().map(|(p, _)| p).zip(values).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::run_compaction;
    use crate::dram::DramBudget;
    use crate::ingest::WriteLog;
    use crate::keyspace::SecondaryIndex;
    use crate::sidx::build_secondary_index;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
    use kvcsd_proto::{SecondaryIndexSpec, SecondaryKeyType, SidxKey};
    use kvcsd_sim::{config::CostModel, HardwareSpec, IoLedger};
    use std::sync::Arc;

    fn setup() -> (ZoneManager, SocCharger, DramBudget) {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 256,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(
            geom,
            &HardwareSpec::default(),
            Arc::clone(&ledger),
        ));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        (
            ZoneManager::new(zns, 1, 9),
            SocCharger::new(ledger, CostModel::default()),
            DramBudget::new(4 << 20),
        )
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    /// 32-byte value: filler + trailing u32 "score" = i * 3.
    fn value(i: u32) -> Vec<u8> {
        let mut v = vec![0xAB; 32];
        v[28..].copy_from_slice(&(i * 3).to_le_bytes());
        v
    }

    /// Build a fully compacted + indexed storage for `n` keys 0..n.
    fn build_storage(n: u32, mgr: &ZoneManager, soc: &SocCharger, dram: &DramBudget) -> KsStorage {
        let kc = mgr.alloc_cluster(4).unwrap();
        let vc = mgr.alloc_cluster(4).unwrap();
        let mut log = WriteLog::new(kc, vc);
        // Insert in reverse so compaction genuinely sorts.
        for i in (0..n).rev() {
            log.put(mgr, soc, &key(i), &value(i)).unwrap();
        }
        let (klen, vlen) = log.seal(mgr).unwrap();
        let cout = run_compaction(
            mgr,
            soc,
            dram,
            (kc, klen),
            (vc, vlen),
            n as u64,
            4,
            &crate::admission::Deadline::none(),
        )
        .unwrap();
        let spec = SecondaryIndexSpec {
            name: "score".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::U32,
        };
        let sout = build_secondary_index(
            mgr,
            soc,
            dram,
            cout.pidx,
            cout.svalues,
            &spec,
            4,
            &crate::admission::Deadline::none(),
        )
        .unwrap();
        let mut storage = KsStorage {
            pidx: Some(cout.pidx),
            pidx_sketch: cout.sketch,
            svalues: Some(cout.svalues),
            ..KsStorage::default()
        };
        storage.sidx.insert(
            "score".into(),
            SecondaryIndex {
                spec,
                cluster: sout.cluster,
                blocks: sout.blocks,
                sketch: sout.sketch,
                entries: sout.entries,
            },
        );
        storage
    }

    #[test]
    fn point_get_hits_and_misses() {
        let (mgr, soc, dram) = setup();
        let st = build_storage(3000, &mgr, &soc, &dram);
        for i in [0u32, 1, 1499, 2999] {
            assert_eq!(
                point_get(&mgr, &soc, &st, &key(i)).unwrap(),
                value(i),
                "key {i}"
            );
        }
        assert!(matches!(
            point_get(&mgr, &soc, &st, b"absent"),
            Err(DeviceError::KeyNotFound)
        ));
        assert!(matches!(
            point_get(&mgr, &soc, &st, &key(3001)),
            Err(DeviceError::KeyNotFound)
        ));
    }

    #[test]
    fn point_get_reads_few_blocks() {
        let (mgr, soc, dram) = setup();
        let st = build_storage(3000, &mgr, &soc, &dram);
        let before = soc.ledger().snapshot();
        point_get(&mgr, &soc, &st, &key(1234)).unwrap();
        let d = soc.ledger().snapshot().since(&before);
        // One PIDX block + the value's block(s): tiny, bounded I/O.
        assert!(
            d.nand_read_pages <= 3,
            "point query read {} pages",
            d.nand_read_pages
        );
    }

    #[test]
    fn primary_range_queries() {
        let (mgr, soc, dram) = setup();
        let st = build_storage(2000, &mgr, &soc, &dram);
        let got = range(
            &mgr,
            &soc,
            &st,
            &Bound::Included(key(100)),
            &Bound::Excluded(key(110)),
            None,
        )
        .unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, key(100));
        assert_eq!(got[9].0, key(109));
        assert_eq!(got[5].1, value(105));

        // Inclusive upper bound.
        let got = range(
            &mgr,
            &soc,
            &st,
            &Bound::Excluded(key(100)),
            &Bound::Included(key(103)),
            None,
        )
        .unwrap();
        assert_eq!(
            got.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![key(101), key(102), key(103)]
        );

        // Unbounded + limit.
        let got = range(
            &mgr,
            &soc,
            &st,
            &Bound::Unbounded,
            &Bound::Unbounded,
            Some(7),
        )
        .unwrap();
        assert_eq!(got.len(), 7);
        assert_eq!(got[0].0, key(0));

        // Empty range.
        let got = range(
            &mgr,
            &soc,
            &st,
            &Bound::Included(b"zzz".to_vec()),
            &Bound::Unbounded,
            None,
        )
        .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn full_scan_returns_everything_in_order() {
        let (mgr, soc, dram) = setup();
        let st = build_storage(1500, &mgr, &soc, &dram);
        let got = range(&mgr, &soc, &st, &Bound::Unbounded, &Bound::Unbounded, None).unwrap();
        assert_eq!(got.len(), 1500);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn sidx_point_query_finds_exact_scores() {
        let (mgr, soc, dram) = setup();
        let st = build_storage(1000, &mgr, &soc, &dram);
        let skey = SidxKey::U32(300).encode(); // score of key 100
        let got = sidx_get(&mgr, &soc, &st, "score", &skey).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, key(100));
        assert_eq!(got[0].1, value(100));
        // Missing score.
        let got = sidx_get(&mgr, &soc, &st, "score", &SidxKey::U32(301).encode()).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn sidx_range_selectivity() {
        let (mgr, soc, dram) = setup();
        let n = 2000u32;
        let st = build_storage(n, &mgr, &soc, &dram);
        // scores are 0,3,6,...; select score >= 3*(n-10) -> last 10 keys.
        let lo = SidxKey::U32(3 * (n - 10)).encode();
        let got = sidx_range(
            &mgr,
            &soc,
            &st,
            "score",
            &Bound::Included(lo),
            &Bound::Unbounded,
            None,
        )
        .unwrap();
        assert_eq!(got.len(), 10);
        let pkeys: Vec<Vec<u8>> = got.iter().map(|(p, _)| p.clone()).collect();
        let want: Vec<Vec<u8>> = (n - 10..n).map(key).collect();
        assert_eq!(pkeys, want);
    }

    #[test]
    fn sidx_io_scales_with_selectivity_not_dataset() {
        let (mgr, soc, dram) = setup();
        let st = build_storage(4000, &mgr, &soc, &dram);
        let measure = |lo: u32| {
            let before = soc.ledger().snapshot();
            let got = sidx_range(
                &mgr,
                &soc,
                &st,
                "score",
                &Bound::Included(SidxKey::U32(lo * 3).encode()),
                &Bound::Unbounded,
                None,
            )
            .unwrap();
            let d = soc.ledger().snapshot().since(&before);
            (got.len(), d.nand_read_pages)
        };
        let (n_sel, io_sel) = measure(3990); // 10 results
        let (n_broad, io_broad) = measure(2000); // 2000 results
        assert_eq!(n_sel, 10);
        assert_eq!(n_broad, 2000);
        // The gather pass reads each covering block once, so broad
        // queries cost proportionally more I/O than selective ones (but
        // no longer one block per hit).
        assert!(
            io_broad > 5 * io_sel,
            "broad query I/O ({io_broad}) must dwarf selective query I/O ({io_sel})"
        );
    }

    #[test]
    fn unknown_index_is_an_error() {
        let (mgr, soc, dram) = setup();
        let st = build_storage(10, &mgr, &soc, &dram);
        assert!(matches!(
            sidx_get(&mgr, &soc, &st, "nope", &[0]),
            Err(DeviceError::IndexNotFound)
        ));
    }

    #[test]
    fn queries_charge_soc_and_return_only_results() {
        let (mgr, soc, dram) = setup();
        let st = build_storage(1000, &mgr, &soc, &dram);
        let before = soc.ledger().snapshot();
        point_get(&mgr, &soc, &st, &key(500)).unwrap();
        let d = soc.ledger().snapshot().since(&before);
        assert!(d.soc_cpu_ns > 0);
        assert_eq!(d.host_cpu_ns, 0);
        assert_eq!(
            d.pcie_bytes(),
            0,
            "query processing itself moves no bus data"
        );
    }
}
