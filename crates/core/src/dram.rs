//! SoC DRAM budget accounting.
//!
//! The SoC has 8 GB of DRAM (scaled down together with the dataset in
//! laptop runs). Ingest buffers and external-sort runs allocate from this
//! budget; the sort degrades to more merge passes instead of failing when
//! memory is tight — exactly the trade-off the paper describes for
//! LSM-trees vs. memory-hungry bitmap indexes.

use kvcsd_sim::sync::Shared;

/// A shared DRAM budget with lock-free-style reserve/release.
///
/// The `used` gauge is a [`Shared`] cell: every reserve/release is a
/// single self-synchronized `update`, so reservations are race-free by
/// construction and the debug-build happens-before detector observes
/// every access (DESIGN.md §11).
#[derive(Debug)]
pub struct DramBudget {
    limit: u64,
    used: Shared<u64>,
}

impl DramBudget {
    pub fn new(limit_bytes: u64) -> Self {
        Self {
            limit: limit_bytes,
            used: Shared::new(0),
        }
    }

    pub fn limit(&self) -> u64 {
        self.limit
    }

    pub fn used(&self) -> u64 {
        self.used.get()
    }

    pub fn available(&self) -> u64 {
        self.limit.saturating_sub(self.used())
    }

    /// Try to reserve exactly `bytes`; false if it would exceed the limit.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        let limit = self.limit;
        self.used.update(|used| {
            if *used + bytes > limit {
                false
            } else {
                *used += bytes;
                true
            }
        })
    }

    /// Reserve as much as possible up to `want`, at least `min`.
    /// Returns the granted amount, or `None` if even `min` does not fit.
    pub fn reserve_up_to(&self, want: u64, min: u64) -> Option<u64> {
        let mut ask = want.max(min);
        loop {
            if self.try_reserve(ask) {
                return Some(ask);
            }
            if ask == min {
                return None;
            }
            ask = (ask / 2).max(min);
        }
    }

    /// Return `bytes` to the pool.
    pub fn release(&self, bytes: u64) {
        self.used.update(|used| {
            debug_assert!(*used >= bytes, "double release");
            *used = used.saturating_sub(bytes);
        });
    }

    /// Fraction of the budget currently in use (0.0 ..= 1.0). Admission
    /// control's DRAM pressure signal.
    pub fn usage_fraction(&self) -> f64 {
        if self.limit == 0 {
            return 1.0;
        }
        self.used() as f64 / self.limit as f64
    }

    /// Reserve exactly `bytes`, returning an RAII guard that releases on
    /// drop. `None` if the reservation would exceed the limit.
    pub fn reserve(&self, bytes: u64) -> Option<DramReservation<'_>> {
        if self.try_reserve(bytes) {
            Some(DramReservation {
                budget: self,
                bytes,
            })
        } else {
            None
        }
    }

    /// Guard-returning form of [`DramBudget::reserve_up_to`]: as much as
    /// possible up to `want`, at least `min`, released on drop.
    pub fn reserve_up_to_guarded(&self, want: u64, min: u64) -> Option<DramReservation<'_>> {
        self.reserve_up_to(want, min).map(|bytes| DramReservation {
            budget: self,
            bytes,
        })
    }
}

/// An RAII DRAM reservation: the bytes return to the budget when the
/// guard drops, so early-error returns can never leak the reservation.
#[derive(Debug)]
pub struct DramReservation<'a> {
    budget: &'a DramBudget,
    bytes: u64,
}

impl DramReservation<'_> {
    /// Bytes held by this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Transfer ownership of the bytes to the caller *without* releasing
    /// them — for reservations that legitimately outlive the reserving
    /// call (e.g. a keyspace's ingest buffer, released only at seal or
    /// delete). The caller becomes responsible for the matching
    /// [`DramBudget::release`].
    pub fn leak(mut self) -> u64 {
        std::mem::take(&mut self.bytes)
    }
}

impl Drop for DramReservation<'_> {
    fn drop(&mut self) {
        if self.bytes > 0 {
            self.budget.release(self.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let b = DramBudget::new(1000);
        assert!(b.try_reserve(600));
        assert_eq!(b.used(), 600);
        assert_eq!(b.available(), 400);
        assert!(!b.try_reserve(500));
        b.release(600);
        assert!(b.try_reserve(1000));
    }

    #[test]
    fn reserve_up_to_halves_until_fit() {
        let b = DramBudget::new(1000);
        b.try_reserve(800);
        let got = b.reserve_up_to(1000, 100).unwrap();
        assert!((100..=200).contains(&got), "got {got}");
    }

    #[test]
    fn reserve_up_to_fails_below_min() {
        let b = DramBudget::new(100);
        b.try_reserve(90);
        assert_eq!(b.reserve_up_to(50, 20), None);
        assert_eq!(b.used(), 90, "failed reservation must not leak");
    }

    #[test]
    fn guard_releases_on_drop_and_on_early_return() {
        let b = DramBudget::new(1000);
        fn failing_path(b: &DramBudget) -> Result<(), ()> {
            let _guard = b.reserve(400).ok_or(())?;
            Err(()) // early error: the guard must still release
        }
        assert!(failing_path(&b).is_err());
        assert_eq!(b.used(), 0, "early-error return leaked the reservation");
        let g = b.reserve(600).unwrap();
        assert_eq!(g.bytes(), 600);
        assert_eq!(b.used(), 600);
        drop(g);
        assert_eq!(b.used(), 0);
        assert!(b.reserve(1001).is_none());
    }

    #[test]
    fn guard_leak_transfers_ownership() {
        let b = DramBudget::new(1000);
        let g = b.reserve_up_to_guarded(800, 100).unwrap();
        let bytes = g.leak();
        assert_eq!(bytes, 800);
        assert_eq!(b.used(), 800, "leak must not release");
        b.release(bytes);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn usage_fraction_tracks_pressure() {
        let b = DramBudget::new(1000);
        assert_eq!(b.usage_fraction(), 0.0);
        b.try_reserve(850);
        assert!((b.usage_fraction() - 0.85).abs() < 1e-12);
        assert_eq!(DramBudget::new(0).usage_fraction(), 1.0);
    }

    #[test]
    fn concurrent_reservations_never_exceed_limit() {
        use std::sync::Arc;
        let b = Arc::new(DramBudget::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(kvcsd_sim::sync::spawn(move || {
                for _ in 0..1000 {
                    if b.try_reserve(7) {
                        assert!(b.used() <= 10_000);
                        b.release(7);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.used(), 0);
    }
}
