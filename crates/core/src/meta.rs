//! The metadata zone: a framed append log of device snapshots.
//!
//! The keyspace manager's "in-memory keyspace table [is] backed by a
//! metadata zone in the underlying ZNS SSD for data persistence". Each
//! snapshot is appended as `magic | len | crc | payload`; because zone
//! appends are page-granular, every frame starts on a 4 KiB block
//! boundary. When the zone fills, it is reset and the newest snapshot is
//! rewritten first, so the zone always contains at least one valid frame.

use std::sync::Arc;

use kvcsd_flash::ZonedNamespace;

use crate::error::DeviceError;
use crate::Result;

const FRAME_MAGIC: u32 = 0x4B56_4D45; // "KVME"

/// CRC-32 (IEEE) for snapshot integrity.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Writes and recovers snapshots in a reserved metadata zone.
#[derive(Debug)]
pub struct MetaStore {
    zns: Arc<ZonedNamespace>,
    zone: u32,
    snapshots: u64,
}

impl MetaStore {
    pub fn new(zns: Arc<ZonedNamespace>, zone: u32) -> Self {
        Self { zns, zone, snapshots: 0 }
    }

    /// Snapshots written since this handle was created.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Append a snapshot; resets and rewrites when the zone is full.
    pub fn write(&mut self, payload: &[u8]) -> Result<()> {
        let framed = Self::frame(payload);
        let page_bytes = self.zns.nand().geometry().page_bytes as u64;
        let need_pages = (framed.len() as u64).div_ceil(page_bytes);
        let info = self.zns.zone_info(self.zone)?;
        if info.write_pointer_pages as u64 + need_pages > info.capacity_pages as u64 {
            self.zns.reset(self.zone)?;
        }
        if framed.len() as u64 > self.zns.zone_capacity_bytes() {
            return Err(DeviceError::Internal(format!(
                "snapshot of {} bytes exceeds the metadata zone",
                framed.len()
            )));
        }
        self.zns.append(self.zone, &framed)?;
        self.snapshots += 1;
        Ok(())
    }

    /// Return the newest valid snapshot in the zone, if any.
    pub fn read_latest(&self) -> Result<Option<Vec<u8>>> {
        let info = self.zns.zone_info(self.zone)?;
        let page_bytes = self.zns.nand().geometry().page_bytes as u64;
        let mut latest = None;
        let mut page = 0u32;
        while (page as u64) < info.write_pointer_pages as u64 {
            let header = self.zns.read_pages(self.zone, page, 1)?;
            let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
            if magic != FRAME_MAGIC {
                break; // end of valid frames
            }
            let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as u64;
            let crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
            let total_pages = (12 + len).div_ceil(page_bytes) as u32;
            if page as u64 + total_pages as u64 > info.write_pointer_pages as u64 {
                break; // torn frame at the tail
            }
            let raw = self.zns.read_pages(self.zone, page, total_pages)?;
            let payload = &raw[12..12 + len as usize];
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            latest = Some(payload.to_vec());
            page += total_pages;
        }
        Ok(latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig};
    use kvcsd_sim::{HardwareSpec, IoLedger};

    fn store() -> MetaStore {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel: 16,
            pages_per_block: 4,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let zns = Arc::new(ZonedNamespace::new(
            nand,
            ZnsConfig { zone_blocks: 4, max_open_zones: 64 },
        ));
        MetaStore::new(zns, 0)
    }

    #[test]
    fn crc_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_zone_has_no_snapshot() {
        let s = store();
        assert_eq!(s.read_latest().unwrap(), None);
    }

    #[test]
    fn latest_snapshot_wins() {
        let mut s = store();
        s.write(b"first").unwrap();
        s.write(b"second").unwrap();
        s.write(b"third").unwrap();
        assert_eq!(s.read_latest().unwrap().unwrap(), b"third");
        assert_eq!(s.snapshots_written(), 3);
    }

    #[test]
    fn large_snapshots_span_pages() {
        let mut s = store();
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        s.write(&big).unwrap();
        assert_eq!(s.read_latest().unwrap().unwrap(), big);
    }

    #[test]
    fn zone_wraps_and_survives() {
        let mut s = store();
        // Zone = 16 pages of 4 KiB = 64 KiB; 100 x 5 KiB snapshots force
        // many resets.
        for i in 0..100u32 {
            let payload = vec![i as u8; 5000];
            s.write(&payload).unwrap();
        }
        assert_eq!(s.read_latest().unwrap().unwrap(), vec![99u8; 5000]);
    }

    #[test]
    fn oversized_snapshot_rejected() {
        let mut s = store();
        assert!(s.write(&vec![0u8; 100_000]).is_err());
    }
}
