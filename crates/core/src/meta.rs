//! The metadata zones: a framed append log of device snapshots.
//!
//! The keyspace manager's "in-memory keyspace table [is] backed by a
//! metadata zone in the underlying ZNS SSD for data persistence". Each
//! snapshot is appended as `magic | seq | len | crc | payload`; because
//! zone appends are page-granular, every frame starts on a 4 KiB block
//! boundary.
//!
//! Two reserved zones ping-pong so that a snapshot write is never
//! destructive: appends go to the *active* zone until it fills (or a
//! crash leaves torn debris past its valid frame chain), then the
//! *other* zone is reset and the next snapshot lands there. The zone
//! holding the newest durable generation is never reset before a newer
//! generation is durable elsewhere, so a power cut at any instant —
//! including between the reset and the rewrite — leaves at least one
//! valid generation recoverable. The per-frame sequence number orders
//! generations across the two zones.

use kvcsd_sim::bytes::{le_u32, le_u64};
use std::sync::Arc;

use kvcsd_flash::ZonedNamespace;

use crate::error::DeviceError;
use crate::Result;

const FRAME_MAGIC: u32 = 0x4B56_4D45; // "KVME"
/// `magic | seq:u64 | len:u32 | crc:u32`.
const FRAME_HEADER: usize = 20;

/// CRC-32 (IEEE) for snapshot integrity.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    crc32(&buf)
}

/// Where the next snapshot goes, recovered lazily from the zones.
#[derive(Debug, Clone, Copy)]
struct WriteState {
    active: u32,
    /// The active zone's write pointer sits past its valid frame chain
    /// (torn debris from a crashed append); appending there would create
    /// unreachable frames, so the next write must flip zones.
    active_dirty: bool,
    next_seq: u64,
}

/// One zone's scan result: valid frames in append order, plus whether
/// debris follows them.
struct ZoneScan {
    frames: Vec<(u64, Vec<u8>)>,
    dirty: bool,
}

/// Writes and recovers snapshots across two reserved metadata zones.
#[derive(Debug)]
pub struct MetaStore {
    zns: Arc<ZonedNamespace>,
    zone_a: u32,
    zone_b: u32,
    state: Option<WriteState>,
    snapshots: u64,
}

impl MetaStore {
    /// Use `base_zone` and `base_zone + 1` as the ping-pong pair.
    pub fn new(zns: Arc<ZonedNamespace>, base_zone: u32) -> Self {
        Self {
            zns,
            zone_a: base_zone,
            zone_b: base_zone + 1,
            state: None,
            snapshots: 0,
        }
    }

    /// Snapshots written since this handle was created.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots
    }

    fn frame(seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Walk one zone's frame chain; stop at the first torn or corrupt
    /// frame (a power cut mid-append can never surface a bad generation).
    fn scan_zone(&self, zone: u32) -> Result<ZoneScan> {
        let info = self.zns.zone_info(zone)?;
        let page_bytes = self.zns.nand().geometry().page_bytes as u64;
        let mut frames = Vec::new();
        let mut page = 0u32;
        while (page as u64) < info.write_pointer_pages as u64 {
            let header = self.zns.read_pages(zone, page, 1)?;
            let magic = le_u32(&header, 0);
            if magic != FRAME_MAGIC {
                break; // end of valid frames
            }
            let seq = le_u64(&header, 4);
            let len = le_u32(&header, 12) as u64;
            let crc = le_u32(&header, 16);
            let total_pages = (FRAME_HEADER as u64 + len).div_ceil(page_bytes) as u32;
            if page as u64 + total_pages as u64 > info.write_pointer_pages as u64 {
                break; // torn frame at the tail
            }
            let raw = self.zns.read_pages(zone, page, total_pages)?;
            let payload = &raw[FRAME_HEADER..FRAME_HEADER + len as usize];
            if frame_crc(seq, payload) != crc {
                break; // corrupt tail
            }
            frames.push((seq, payload.to_vec()));
            page += total_pages;
        }
        Ok(ZoneScan {
            frames,
            dirty: (page as u64) < info.write_pointer_pages as u64,
        })
    }

    /// Recover the write position from both zones: the active zone is the
    /// one holding the newest valid generation.
    fn recover_state(&self) -> Result<WriteState> {
        let a = self.scan_zone(self.zone_a)?;
        let b = self.scan_zone(self.zone_b)?;
        let max_a = a.frames.iter().map(|(s, _)| *s).max();
        let max_b = b.frames.iter().map(|(s, _)| *s).max();
        let (active, dirty) = if max_b > max_a {
            (self.zone_b, b.dirty)
        } else if max_a.is_some() {
            (self.zone_a, a.dirty)
        } else {
            // No valid generation anywhere (fresh device, or a first-ever
            // snapshot that tore): start in zone A, flipping past debris.
            (self.zone_a, a.dirty)
        };
        let next_seq = max_a.max(max_b).map_or(1, |s| s + 1);
        Ok(WriteState {
            active,
            active_dirty: dirty,
            next_seq,
        })
    }

    /// Append a snapshot, flipping to the other zone when the active one
    /// is full or dirty. Crash-safe: the previous generation's zone is
    /// only reset once it is the flip *target*, i.e. after a newer
    /// generation became durable in the other zone.
    pub fn write(&mut self, payload: &[u8]) -> Result<()> {
        let WriteState {
            active,
            active_dirty,
            next_seq,
        } = match self.state {
            Some(s) => s,
            None => {
                let s = self.recover_state()?;
                self.state = Some(s);
                s
            }
        };
        let framed = Self::frame(next_seq, payload);
        if framed.len() as u64 > self.zns.zone_capacity_bytes() {
            return Err(DeviceError::Internal(format!(
                "snapshot of {} bytes exceeds the metadata zone",
                framed.len()
            )));
        }
        let page_bytes = self.zns.nand().geometry().page_bytes as u64;
        let need_pages = (framed.len() as u64).div_ceil(page_bytes);
        let info = self.zns.zone_info(active)?;
        let target = if active_dirty
            || info.write_pointer_pages as u64 + need_pages > info.capacity_pages as u64
        {
            let other = if active == self.zone_a {
                self.zone_b
            } else {
                self.zone_a
            };
            self.zns.reset(other)?;
            other
        } else {
            active
        };
        self.zns.append(target, &framed)?;
        // Only a fully-durable append advances the state; a failed reset
        // or append leaves it unchanged so the next write retries cleanly.
        self.state = Some(WriteState {
            active: target,
            active_dirty: false,
            next_seq: next_seq + 1,
        });
        self.snapshots += 1;
        Ok(())
    }

    /// Return the newest valid snapshot, if any.
    pub fn read_latest(&self) -> Result<Option<Vec<u8>>> {
        Ok(self.read_generations()?.into_iter().next())
    }

    /// True when *both* zones hold debris past their valid frame chains
    /// yet neither holds a single CRC-valid generation. A fresh device
    /// has two clean zones, and a first-ever snapshot that tore dirties
    /// only one — so this state can only be reached by destroying (or
    /// never completing) two generations. Mounting such a store as empty
    /// would silently un-ack whatever those generations held; callers
    /// must fail loudly instead ([`DeviceError::CorruptMetadata`]).
    pub fn is_doubly_corrupt(&self) -> Result<bool> {
        let a = self.scan_zone(self.zone_a)?;
        let b = self.scan_zone(self.zone_b)?;
        Ok(a.frames.is_empty() && b.frames.is_empty() && a.dirty && b.dirty)
    }

    /// Every CRC-valid snapshot across both zones, newest first (by
    /// sequence number). Callers that fail to *decode* the newest
    /// generation (format damage beyond what the CRC covers) fall back to
    /// the next one.
    pub fn read_generations(&self) -> Result<Vec<Vec<u8>>> {
        let mut all = self.scan_zone(self.zone_a)?.frames;
        all.extend(self.scan_zone(self.zone_b)?.frames);
        all.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        Ok(all.into_iter().map(|(_, p)| p).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig};
    use kvcsd_sim::fault::{FaultInjector, FaultPlan};
    use kvcsd_sim::{HardwareSpec, IoLedger};

    fn store() -> (MetaStore, Arc<ZonedNamespace>) {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel: 16,
            pages_per_block: 4,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let zns = Arc::new(ZonedNamespace::new(
            nand,
            ZnsConfig {
                zone_blocks: 4,
                max_open_zones: 64,
            },
        ));
        (MetaStore::new(Arc::clone(&zns), 0), zns)
    }

    #[test]
    fn crc_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_zone_has_no_snapshot() {
        let (s, _) = store();
        assert_eq!(s.read_latest().unwrap(), None);
    }

    #[test]
    fn latest_snapshot_wins() {
        let (mut s, _) = store();
        s.write(b"first").unwrap();
        s.write(b"second").unwrap();
        s.write(b"third").unwrap();
        assert_eq!(s.read_latest().unwrap().unwrap(), b"third");
        assert_eq!(s.snapshots_written(), 3);
    }

    #[test]
    fn large_snapshots_span_pages() {
        let (mut s, _) = store();
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        s.write(&big).unwrap();
        assert_eq!(s.read_latest().unwrap().unwrap(), big);
    }

    #[test]
    fn zone_wraps_and_survives() {
        let (mut s, _) = store();
        // Zone = 16 pages of 4 KiB = 64 KiB; 100 x 5 KiB snapshots force
        // many zone flips.
        for i in 0..100u32 {
            let payload = vec![i as u8; 5000];
            s.write(&payload).unwrap();
        }
        assert_eq!(s.read_latest().unwrap().unwrap(), vec![99u8; 5000]);
    }

    #[test]
    fn generations_are_newest_first() {
        let (mut s, _) = store();
        s.write(b"first").unwrap();
        s.write(b"second").unwrap();
        s.write(b"third").unwrap();
        let gens = s.read_generations().unwrap();
        assert_eq!(
            gens,
            vec![b"third".to_vec(), b"second".to_vec(), b"first".to_vec()]
        );
    }

    #[test]
    fn generations_survive_a_zone_flip() {
        let (mut s, _) = store();
        // 3 pages per frame: 5 frames fill the 16-page zone past 15 pages,
        // so the 6th write flips to the other zone.
        for i in 0..6u32 {
            s.write(&vec![i as u8; 10_000]).unwrap();
        }
        let gens = s.read_generations().unwrap();
        assert_eq!(gens[0], vec![5u8; 10_000]);
        // The pre-flip zone still holds the older generations.
        assert!(
            gens.len() >= 2,
            "flip must not destroy the previous generation"
        );
        assert_eq!(gens[1], vec![4u8; 10_000]);
    }

    #[test]
    fn a_torn_snapshot_write_never_loses_the_previous_generation() {
        // The regression this guards: with a single metadata zone, the
        // full-zone reset-and-rewrite destroyed every generation, so a
        // power cut between the reset and the rewrite came back empty.
        let (mut s, zns) = store();
        for i in 0..5u32 {
            s.write(&vec![i as u8; 10_000]).unwrap();
        }
        // Tear the 6th write (which flips zones) at its first NAND program.
        let inj = Arc::new(FaultInjector::new(FaultPlan::power_cut_at(2, 7)));
        zns.nand().set_fault_injector(Some(Arc::clone(&inj)));
        assert!(
            s.write(&vec![5u8; 10_000]).is_err(),
            "cut must fail the write"
        );
        zns.nand().set_fault_injector(None);
        inj.power_restore();
        // A fresh mount still recovers the last durable generation.
        let remounted = MetaStore::new(Arc::clone(&zns), 0);
        assert_eq!(remounted.read_latest().unwrap().unwrap(), vec![4u8; 10_000]);
        // And writing resumes cleanly past the debris.
        let mut s2 = remounted;
        s2.write(b"recovered").unwrap();
        assert_eq!(s2.read_latest().unwrap().unwrap(), b"recovered");
    }

    #[test]
    fn oversized_snapshot_rejected() {
        let (mut s, _) = store();
        assert!(s.write(&vec![0u8; 100_000]).is_err());
    }

    #[test]
    fn both_zones_torn_is_detected_as_doubly_corrupt() {
        let (mut s, zns) = store();
        s.write(b"durable-generation").unwrap();
        // Destroy both generations: reset wipes the valid chains and the
        // garbage appends leave non-frame debris in each zone — the state
        // a doubly-failed ping-pong (or media scribble) leaves behind.
        zns.reset(0).unwrap();
        zns.reset(1).unwrap();
        zns.append(0, &[0xAA; 64]).unwrap();
        zns.append(1, &[0xBB; 64]).unwrap();
        let remounted = MetaStore::new(Arc::clone(&zns), 0);
        assert!(remounted.is_doubly_corrupt().unwrap());
        // No generation is served — the store does not invent an empty one.
        assert_eq!(remounted.read_latest().unwrap(), None);
        assert!(remounted.read_generations().unwrap().is_empty());
    }

    #[test]
    fn a_single_torn_zone_stays_a_legal_fresh_start() {
        // A first-ever snapshot that tore dirties exactly one zone; that
        // must keep mounting as an empty store (nothing was ever durable),
        // not trip the doubly-corrupt detector.
        let (s, zns) = store();
        zns.append(0, &[0xAA; 64]).unwrap();
        assert!(!s.is_doubly_corrupt().unwrap());
        assert_eq!(s.read_latest().unwrap(), None);
    }

    #[test]
    fn a_valid_generation_beside_debris_is_not_doubly_corrupt() {
        let (mut s, zns) = store();
        s.write(b"good").unwrap();
        // Debris in the *other* zone only: the good generation survives.
        zns.append(1, &[0xCC; 64]).unwrap();
        let remounted = MetaStore::new(Arc::clone(&zns), 0);
        assert!(!remounted.is_doubly_corrupt().unwrap());
        assert_eq!(remounted.read_latest().unwrap().unwrap(), b"good");
    }
}
