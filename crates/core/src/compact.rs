//! Offloaded, deferred compaction: unordered logs -> PIDX + SORTED_VALUES.
//!
//! "Sorting a keyspace is done in two steps. First, KV-CSD sorts the
//! keys. Then, KV-CSD uses the sorted keys to sort the values. ... Once a
//! keyspace is sorted, its original unsorted data, stored in VLOG and
//! KLOG zone clusters, is deleted and replaced with the newly formed
//! SORTED_VALUES and PIDX zone clusters. ... Both store data as a series
//! of 4 KB data blocks. A small sketch of the PIDX data, consisting of a
//! pivot primary index key and a block pointer for every constituent PIDX
//! data block, is additionally built and stored as keyspace metadata."
//!
//! The value step avoids random VLOG reads by the classic tag-and-resort
//! trick: while emitting sorted keys we learn each value's *rank* and its
//! final byte offset (a running sum of value lengths); we then sort
//! `(voff, rank)` tags back into VLOG order, stream VLOG *sequentially*
//! attaching ranks, and finally resort `(rank, value)` records to produce
//! SORTED_VALUES with nothing but sequential I/O and DRAM-bounded merge
//! passes — "multiple rounds of merge sorts" exactly as the paper says.

use kvcsd_sim::bytes::{le_u16, le_u32, le_u64, try_le_u16, try_le_u32, try_le_u64};
use std::cmp::Ordering;

use crate::admission::Deadline;
use crate::dram::DramBudget;
use crate::error::DeviceError;
use crate::extsort::{ExtSorter, SortRecord};
use crate::ingest::{KlogRecord, StreamReader};
use crate::keyspace::Sketch;
use crate::soc::SocCharger;
use crate::zone_mgr::{ClusterId, ZoneManager};
use crate::Result;
use crate::BLOCK_BYTES;

// ---------------------------------------------------------------------------
// PIDX block format
// ---------------------------------------------------------------------------

/// One primary-index entry: key -> value locator in SORTED_VALUES.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PidxEntry {
    pub key: Vec<u8>,
    pub voff: u64,
    pub vlen: u32,
}

const PIDX_ENTRY_HEADER: usize = 2 + 8 + 4;

/// Packs self-contained PIDX blocks (entries never span blocks, so the
/// sketch can address blocks independently).
#[derive(Debug, Default)]
pub struct PidxBlockBuilder {
    buf: Vec<u8>,
    count: u16,
    first_key: Option<Vec<u8>>,
}

impl PidxBlockBuilder {
    pub fn new() -> Self {
        Self {
            buf: Vec::with_capacity(BLOCK_BYTES),
            count: 0,
            first_key: None,
        }
    }

    /// True if an entry with `key_len`-byte key fits in the current block.
    pub fn fits(&self, key_len: usize) -> bool {
        2 + self.buf.len() + PIDX_ENTRY_HEADER + key_len <= BLOCK_BYTES
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Append an entry; caller checks [`PidxBlockBuilder::fits`] first.
    pub fn add(&mut self, e: &PidxEntry) {
        debug_assert!(self.fits(e.key.len()));
        if self.first_key.is_none() {
            self.first_key = Some(e.key.clone());
        }
        self.buf
            .extend_from_slice(&(e.key.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(&e.voff.to_le_bytes());
        self.buf.extend_from_slice(&e.vlen.to_le_bytes());
        self.buf.extend_from_slice(&e.key);
        self.count += 1;
    }

    /// Seal the block: returns `(block bytes, first key)` and resets.
    pub fn finish(&mut self) -> (Vec<u8>, Vec<u8>) {
        let mut block = Vec::with_capacity(2 + self.buf.len());
        block.extend_from_slice(&self.count.to_le_bytes());
        block.extend_from_slice(&self.buf);
        let first = self.first_key.take().unwrap_or_default();
        self.buf.clear();
        self.count = 0;
        (block, first)
    }
}

/// Decode a PIDX block produced by [`PidxBlockBuilder`].
pub fn decode_pidx_block(block: &[u8]) -> Result<Vec<PidxEntry>> {
    let bad = || DeviceError::Internal("malformed PIDX block".into());
    let count = try_le_u16(block, 0).ok_or_else(bad)?;
    let mut p = 2usize;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let klen = try_le_u16(block, p).ok_or_else(bad)? as usize;
        let voff = try_le_u64(block, p + 2).ok_or_else(bad)?;
        let vlen = try_le_u32(block, p + 10).ok_or_else(bad)?;
        p += PIDX_ENTRY_HEADER;
        let key = block.get(p..p + klen).ok_or_else(bad)?.to_vec();
        p += klen;
        out.push(PidxEntry { key, voff, vlen });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Auxiliary sort records for the value pass
// ---------------------------------------------------------------------------

/// Tag sorted back into VLOG order: where each value sits in VLOG and the
/// rank it must take in SORTED_VALUES.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GatherRec {
    voff: u64,
    vlen: u32,
    rank: u64,
}

impl SortRecord for GatherRec {
    fn encoded_len(&self) -> usize {
        20
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.voff.to_le_bytes());
        out.extend_from_slice(&self.vlen.to_le_bytes());
        out.extend_from_slice(&self.rank.to_le_bytes());
    }
    fn read_from(r: &mut StreamReader<'_>) -> Result<Self> {
        let b = r.read(20)?;
        Ok(GatherRec {
            voff: le_u64(&b, 0),
            vlen: le_u32(&b, 8),
            rank: le_u64(&b, 12),
        })
    }
    fn cmp_key(&self, other: &Self) -> Ordering {
        // Zero-length values share their starting offset with the next
        // real value; they must be consumed first to keep the VLOG read
        // strictly sequential. At most one record of nonzero length can
        // start at a given offset, so (voff, vlen) is a total enough order.
        self.voff.cmp(&other.voff).then(self.vlen.cmp(&other.vlen))
    }
}

/// A value tagged with its output rank.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ValueRec {
    rank: u64,
    value: Vec<u8>,
}

impl SortRecord for ValueRec {
    fn encoded_len(&self) -> usize {
        12 + self.value.len()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&(self.value.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.value);
    }
    fn read_from(r: &mut StreamReader<'_>) -> Result<Self> {
        let hdr = r.read(12)?;
        let rank = le_u64(&hdr, 0);
        let vlen = le_u32(&hdr, 8) as usize;
        Ok(ValueRec {
            rank,
            value: r.read(vlen)?,
        })
    }
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.rank.cmp(&other.rank)
    }
}

// ---------------------------------------------------------------------------
// The compaction job
// ---------------------------------------------------------------------------

/// Result of compacting one keyspace.
#[derive(Debug)]
pub struct CompactionOutput {
    pub pidx: (ClusterId, u32),
    pub sketch: Sketch,
    pub svalues: (ClusterId, u64),
    pub pairs: u64,
}

/// Sort a sealed keyspace: consume its KLOG/VLOG clusters (released on
/// success) and produce PIDX + SORTED_VALUES clusters plus the sketch.
///
/// The deadline is checked at each phase boundary; an expired compaction
/// aborts between passes and the caller's orphan sweep unwinds its
/// partial output (the sealed logs stay untouched until the final swap).
#[allow(clippy::too_many_arguments)]
pub fn run_compaction(
    mgr: &ZoneManager,
    soc: &SocCharger,
    dram: &DramBudget,
    klog: (ClusterId, u64),
    vlog: (ClusterId, u64),
    pairs: u64,
    cluster_width: u32,
    deadline: &Deadline<'_>,
) -> Result<CompactionOutput> {
    // ---- Step 1: sort the keys -------------------------------------------
    let mut key_sorter: ExtSorter<'_, KlogRecord> = ExtSorter::new(mgr, soc, dram, cluster_width)?;
    {
        let mut r = StreamReader::new(mgr, klog.0, klog.1);
        for _ in 0..pairs {
            let rec = KlogRecord::read_from(&mut r)?;
            soc.bytes(rec.encoded_len());
            key_sorter.push(rec)?;
        }
    }
    deadline.check()?;

    // Emit PIDX blocks + sketch; collect (voff, vlen, rank) gather tags.
    let pidx_cluster = mgr.alloc_cluster(cluster_width)?;
    let mut sketch = Sketch::new();
    let mut builder = PidxBlockBuilder::new();
    let mut pidx_blocks = 0u32;
    let mut gather_sorter: ExtSorter<'_, GatherRec> =
        ExtSorter::new(mgr, soc, dram, cluster_width)?;
    let mut rank = 0u64;
    let mut out_voff = 0u64;
    key_sorter.finish_into(|rec| {
        let e = PidxEntry {
            key: rec.key,
            voff: out_voff,
            vlen: rec.vlen,
        };
        if !builder.fits(e.key.len()) {
            let (block, first) = builder.finish();
            mgr.append_block(pidx_cluster, &block)?;
            sketch.push(first);
            pidx_blocks += 1;
        }
        builder.add(&e);
        gather_sorter.push(GatherRec {
            voff: rec.voff,
            vlen: rec.vlen,
            rank,
        })?;
        rank += 1;
        out_voff += rec.vlen as u64;
        Ok(())
    })?;
    if !builder.is_empty() {
        let (block, first) = builder.finish();
        mgr.append_block(pidx_cluster, &block)?;
        sketch.push(first);
        pidx_blocks += 1;
    }
    deadline.check()?;

    // ---- Step 2: sort the values -----------------------------------------
    // 2a: tags back into VLOG order (they are a permutation of the VLOG
    //     byte sequence, so this merge restores sequential read order).
    let mut value_sorter: ExtSorter<'_, ValueRec> = ExtSorter::new(mgr, soc, dram, cluster_width)?;
    {
        let mut vread = StreamReader::new(mgr, vlog.0, vlog.1);
        gather_sorter.finish_into(|tag| {
            debug_assert_eq!(vread.position(), tag.voff, "VLOG reads must be sequential");
            let value = vread.read(tag.vlen as usize)?;
            soc.memcpy(value.len());
            value_sorter.push(ValueRec {
                rank: tag.rank,
                value,
            })?;
            Ok(())
        })?;
    }
    deadline.check()?;

    // 2b: values into final order, streamed into SORTED_VALUES.
    let svalues_cluster = mgr.alloc_cluster(cluster_width)?;
    let mut writer = crate::ingest::BlockStreamWriter::new(svalues_cluster);
    let mut expected_rank = 0u64;
    value_sorter.finish_into(|vr| {
        debug_assert_eq!(vr.rank, expected_rank, "ranks must arrive in order");
        expected_rank += 1;
        soc.memcpy(vr.value.len());
        writer.append(mgr, &vr.value)?;
        Ok(())
    })?;
    let svalues_len = writer.seal(mgr)?;
    debug_assert_eq!(svalues_len, out_voff);

    // ---- Replace the logs ---------------------------------------------------
    mgr.release_cluster(klog.0)?;
    mgr.release_cluster(vlog.0)?;

    Ok(CompactionOutput {
        pidx: (pidx_cluster, pidx_blocks),
        sketch,
        svalues: (svalues_cluster, svalues_len),
        pairs,
    })
}

// ---------------------------------------------------------------------------
// Single-pass compaction + secondary-index construction (the paper's
// stated future work)
// ---------------------------------------------------------------------------

/// Gather tag that also carries the primary key, so secondary-index
/// entries can be produced while values stream through the final pass.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GatherRecK {
    voff: u64,
    vlen: u32,
    rank: u64,
    key: Vec<u8>,
}

impl SortRecord for GatherRecK {
    fn encoded_len(&self) -> usize {
        22 + self.key.len()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.voff.to_le_bytes());
        out.extend_from_slice(&self.vlen.to_le_bytes());
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.key);
    }
    fn read_from(r: &mut StreamReader<'_>) -> Result<Self> {
        let hdr = r.read(22)?;
        let voff = le_u64(&hdr, 0);
        let vlen = le_u32(&hdr, 8);
        let rank = le_u64(&hdr, 12);
        let klen = le_u16(&hdr, 20) as usize;
        Ok(GatherRecK {
            voff,
            vlen,
            rank,
            key: r.read(klen)?,
        })
    }
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.voff.cmp(&other.voff).then(self.vlen.cmp(&other.vlen))
    }
}

/// A value tagged with its output rank and its primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ValueRecK {
    rank: u64,
    key: Vec<u8>,
    value: Vec<u8>,
}

impl SortRecord for ValueRecK {
    fn encoded_len(&self) -> usize {
        14 + self.key.len() + self.value.len()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.value.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.key);
        out.extend_from_slice(&self.value);
    }
    fn read_from(r: &mut StreamReader<'_>) -> Result<Self> {
        let hdr = r.read(14)?;
        let rank = le_u64(&hdr, 0);
        let klen = le_u16(&hdr, 8) as usize;
        let vlen = le_u32(&hdr, 10) as usize;
        Ok(ValueRecK {
            rank,
            key: r.read(klen)?,
            value: r.read(vlen)?,
        })
    }
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.rank.cmp(&other.rank)
    }
}

/// Compact a keyspace *and* build its secondary indexes in the same data
/// pass, avoiding the later full keyspace re-scan.
///
/// "In future we expect to run these index construction operations in one
/// single step to prevent from having to repeatedly reading back keyspace
/// data into SoC DRAM ... One cost of consolidating all index
/// construction into a single step is the increased SoC DRAM usage. We
/// expect KV-CSD to resort back to separated index construction when DRAM
/// resources become a bottleneck." (Section V)
///
/// The increased DRAM usage is real here: one extra sorter per index runs
/// concurrently with the value sorter, and primary keys ride through the
/// value passes. When any sorter cannot reserve its minimum DRAM this
/// returns `OutOfResources`; the device falls back to the separated path.
#[allow(clippy::too_many_arguments)]
pub fn run_compaction_with_indexes(
    mgr: &ZoneManager,
    soc: &SocCharger,
    dram: &DramBudget,
    klog: (ClusterId, u64),
    vlog: (ClusterId, u64),
    pairs: u64,
    cluster_width: u32,
    specs: &[kvcsd_proto::SecondaryIndexSpec],
    deadline: &Deadline<'_>,
) -> Result<(CompactionOutput, Vec<crate::sidx::SidxOutput>)> {
    use crate::sidx::SidxEntry;

    // ---- Step 1: sort the keys (identical to the separated path) --------
    let mut key_sorter: ExtSorter<'_, KlogRecord> = ExtSorter::new(mgr, soc, dram, cluster_width)?;
    {
        let mut r = StreamReader::new(mgr, klog.0, klog.1);
        for _ in 0..pairs {
            let rec = KlogRecord::read_from(&mut r)?;
            soc.bytes(rec.encoded_len());
            key_sorter.push(rec)?;
        }
    }
    deadline.check()?;

    let pidx_cluster = mgr.alloc_cluster(cluster_width)?;
    let mut sketch = Sketch::new();
    let mut builder = PidxBlockBuilder::new();
    let mut pidx_blocks = 0u32;
    let mut gather_sorter: ExtSorter<'_, GatherRecK> =
        ExtSorter::new(mgr, soc, dram, cluster_width)?;
    let mut rank = 0u64;
    let mut out_voff = 0u64;
    key_sorter.finish_into(|rec| {
        let e = PidxEntry {
            key: rec.key.clone(),
            voff: out_voff,
            vlen: rec.vlen,
        };
        if !builder.fits(e.key.len()) {
            let (block, first) = builder.finish();
            mgr.append_block(pidx_cluster, &block)?;
            sketch.push(first);
            pidx_blocks += 1;
        }
        builder.add(&e);
        gather_sorter.push(GatherRecK {
            voff: rec.voff,
            vlen: rec.vlen,
            rank,
            key: rec.key,
        })?;
        rank += 1;
        out_voff += rec.vlen as u64;
        Ok(())
    })?;
    if !builder.is_empty() {
        let (block, first) = builder.finish();
        mgr.append_block(pidx_cluster, &block)?;
        sketch.push(first);
        pidx_blocks += 1;
    }
    deadline.check()?;

    // ---- Step 2: sort the values, extracting index keys in flight -------
    // The extra sorters are the "increased SoC DRAM usage".
    let mut sidx_sorters: Vec<ExtSorter<'_, SidxEntry>> = Vec::with_capacity(specs.len());
    for _ in specs {
        sidx_sorters.push(ExtSorter::new(mgr, soc, dram, cluster_width)?);
    }

    let mut value_sorter: ExtSorter<'_, ValueRecK> = ExtSorter::new(mgr, soc, dram, cluster_width)?;
    {
        let mut vread = StreamReader::new(mgr, vlog.0, vlog.1);
        gather_sorter.finish_into(|tag| {
            debug_assert_eq!(vread.position(), tag.voff);
            let value = vread.read(tag.vlen as usize)?;
            soc.memcpy(value.len());
            value_sorter.push(ValueRecK {
                rank: tag.rank,
                key: tag.key,
                value,
            })?;
            Ok(())
        })?;
    }
    deadline.check()?;

    let svalues_cluster = mgr.alloc_cluster(cluster_width)?;
    let mut writer = crate::ingest::BlockStreamWriter::new(svalues_cluster);
    let mut expected_rank = 0u64;
    value_sorter.finish_into(|vr| {
        debug_assert_eq!(vr.rank, expected_rank);
        let voff = writer.position();
        for (spec, sorter) in specs.iter().zip(sidx_sorters.iter_mut()) {
            if let Some(skey) = spec.extract(&vr.value) {
                soc.bytes(spec.value_len);
                sorter.push(SidxEntry {
                    skey,
                    pkey: vr.key.clone(),
                    voff,
                    vlen: vr.value.len() as u32,
                })?;
            }
        }
        expected_rank += 1;
        soc.memcpy(vr.value.len());
        writer.append(mgr, &vr.value)?;
        Ok(())
    })?;
    let svalues_len = writer.seal(mgr)?;
    debug_assert_eq!(svalues_len, out_voff);
    deadline.check()?;

    // ---- Finish the indexes -----------------------------------------------
    let mut sidx_outputs = Vec::with_capacity(specs.len());
    for sorter in sidx_sorters {
        sidx_outputs.push(crate::sidx::write_sidx_blocks(mgr, sorter, cluster_width)?);
    }

    mgr.release_cluster(klog.0)?;
    mgr.release_cluster(vlog.0)?;

    Ok((
        CompactionOutput {
            pidx: (pidx_cluster, pidx_blocks),
            sketch,
            svalues: (svalues_cluster, svalues_len),
            pairs,
        },
        sidx_outputs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::WriteLog;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
    use kvcsd_sim::{config::CostModel, HardwareSpec, IoLedger, XorShift64};
    use std::sync::Arc;

    fn setup(blocks_per_channel: u32) -> (ZoneManager, SocCharger, DramBudget) {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(
            geom,
            &HardwareSpec::default(),
            Arc::clone(&ledger),
        ));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        (
            ZoneManager::new(zns, 1, 123),
            SocCharger::new(ledger, CostModel::default()),
            DramBudget::new(4 << 20),
        )
    }

    /// Load `n` pairs with shuffled keys, compact, and return everything
    /// needed to verify the output.
    #[allow(clippy::type_complexity)]
    fn load_and_compact(
        n: u64,
        mgr: &ZoneManager,
        soc: &SocCharger,
        dram: &DramBudget,
    ) -> (CompactionOutput, Vec<(Vec<u8>, Vec<u8>)>) {
        let kc = mgr.alloc_cluster(4).unwrap();
        let vc = mgr.alloc_cluster(4).unwrap();
        let mut log = WriteLog::new(kc, vc);
        let mut rng = XorShift64::new(n ^ 0xABCD);
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..n {
            let key = format!("k{:012}", rng.next_below(u32::MAX as u64)).into_bytes();
            let value = format!("value-{i:08}-{}", rng.next_u64()).into_bytes();
            log.put(mgr, soc, &key, &value).unwrap();
            pairs.push((key, value));
        }
        let (klen, vlen) = log.seal(mgr).unwrap();
        let out = run_compaction(
            mgr,
            soc,
            dram,
            (kc, klen),
            (vc, vlen),
            n,
            4,
            &Deadline::none(),
        )
        .unwrap();
        pairs.sort();
        (out, pairs)
    }

    fn read_all_entries(mgr: &ZoneManager, out: &CompactionOutput) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut got = Vec::new();
        for b in 0..out.pidx.1 {
            let block = mgr.read_block(out.pidx.0, b as u64).unwrap();
            for e in decode_pidx_block(&block).unwrap() {
                let v = mgr
                    .read_bytes(out.svalues.0, e.voff, e.vlen as usize)
                    .unwrap();
                got.push((e.key, v));
            }
        }
        got
    }

    #[test]
    fn pidx_block_roundtrip() {
        let mut b = PidxBlockBuilder::new();
        let entries: Vec<PidxEntry> = (0..50)
            .map(|i| PidxEntry {
                key: format!("key{i:04}").into_bytes(),
                voff: i * 100,
                vlen: 100,
            })
            .collect();
        for e in &entries {
            assert!(b.fits(e.key.len()));
            b.add(e);
        }
        let (block, first) = b.finish();
        assert!(block.len() <= BLOCK_BYTES);
        assert_eq!(first, b"key0000");
        assert_eq!(decode_pidx_block(&block).unwrap(), entries);
    }

    #[test]
    fn pidx_block_capacity_bounded() {
        let mut b = PidxBlockBuilder::new();
        let mut added = 0;
        loop {
            let e = PidxEntry {
                key: vec![b'k'; 16],
                voff: 0,
                vlen: 1,
            };
            if !b.fits(e.key.len()) {
                break;
            }
            b.add(&e);
            added += 1;
        }
        // 4096/30 ~ 136 entries.
        assert!(added > 100 && added < 200, "{added}");
        let (block, _) = b.finish();
        assert!(block.len() <= BLOCK_BYTES);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_pidx_block(&[]).is_err());
        assert!(decode_pidx_block(&[200, 0, 1]).is_err());
    }

    #[test]
    fn compaction_sorts_small_keyspace() {
        let (mgr, soc, dram) = setup(64);
        let (out, want) = load_and_compact(500, &mgr, &soc, &dram);
        assert_eq!(out.pairs, 500);
        assert_eq!(out.sketch.blocks(), out.pidx.1);
        let got = read_all_entries(&mgr, &out);
        assert_eq!(got, want);
    }

    #[test]
    fn compaction_handles_multi_run_sorts() {
        let (mgr, soc, _dram) = setup(512);
        // Use a tight budget so the sort genuinely spills and merges.
        let tight = DramBudget::new(256 << 10);
        let (out, want) = load_and_compact(20_000, &mgr, &soc, &tight);
        let got = read_all_entries(&mgr, &out);
        assert_eq!(got.len(), want.len());
        assert_eq!(got, want);
    }

    #[test]
    fn logs_are_released_after_compaction() {
        let (mgr, soc, dram) = setup(64);
        let before = mgr.cluster_count();
        let (out, _) = load_and_compact(200, &mgr, &soc, &dram);
        // Only the two output clusters remain beyond the baseline.
        assert_eq!(mgr.cluster_count(), before + 2);
        assert_eq!(dram.used(), 0);
        let _ = out;
    }

    #[test]
    fn compaction_io_and_cpu_are_charged_to_device() {
        let (mgr, soc, dram) = setup(128);
        let before = soc.ledger().snapshot();
        load_and_compact(5_000, &mgr, &soc, &dram);
        let d = soc.ledger().snapshot().since(&before);
        assert!(d.soc_cpu_ns > 0);
        assert_eq!(
            d.host_cpu_ns, 0,
            "offloaded compaction must not use host CPU"
        );
        assert_eq!(
            d.pcie_bytes(),
            0,
            "compaction must not move data over the bus"
        );
        assert!(d.nand_read_pages > 0 && d.nand_program_pages > 0);
    }

    #[test]
    fn empty_keyspace_compacts_to_empty_output() {
        let (mgr, soc, dram) = setup(64);
        let kc = mgr.alloc_cluster(2).unwrap();
        let vc = mgr.alloc_cluster(2).unwrap();
        let mut log = WriteLog::new(kc, vc);
        let (klen, vlen) = log.seal(&mgr).unwrap();
        let out = run_compaction(
            &mgr,
            &soc,
            &dram,
            (kc, klen),
            (vc, vlen),
            0,
            2,
            &Deadline::none(),
        )
        .unwrap();
        assert_eq!(out.pairs, 0);
        assert_eq!(out.pidx.1, 0);
        assert!(out.sketch.is_empty());
        assert_eq!(out.svalues.1, 0);
    }

    #[test]
    fn duplicate_keys_survive_side_by_side() {
        // KV-CSD's minimal LSM has no overwrite semantics before
        // compaction (keys within a keyspace are expected unique); if an
        // application inserts duplicates they are all retained, sorted.
        let (mgr, soc, dram) = setup(64);
        let kc = mgr.alloc_cluster(2).unwrap();
        let vc = mgr.alloc_cluster(2).unwrap();
        let mut log = WriteLog::new(kc, vc);
        for i in 0..10u32 {
            log.put(&mgr, &soc, b"same-key", format!("v{i}").as_bytes())
                .unwrap();
        }
        let (klen, vlen) = log.seal(&mgr).unwrap();
        let out = run_compaction(
            &mgr,
            &soc,
            &dram,
            (kc, klen),
            (vc, vlen),
            10,
            2,
            &Deadline::none(),
        )
        .unwrap();
        let got = read_all_entries(&mgr, &out);
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|(k, _)| k == b"same-key"));
    }

    #[test]
    fn single_pass_matches_separated_path() {
        use crate::sidx::{build_secondary_index, decode_sidx_block};
        use kvcsd_proto::{SecondaryIndexSpec, SecondaryKeyType};

        let spec = SecondaryIndexSpec {
            name: "tail".into(),
            value_offset: 8,
            value_len: 4,
            key_type: SecondaryKeyType::U32,
        };
        let load = |mgr: &ZoneManager, soc: &SocCharger| {
            let kc = mgr.alloc_cluster(4).unwrap();
            let vc = mgr.alloc_cluster(4).unwrap();
            let mut log = WriteLog::new(kc, vc);
            let mut rng = XorShift64::new(0xFACE);
            for _ in 0..2_000u32 {
                let key = format!("k{:010}", rng.next_below(u32::MAX as u64)).into_bytes();
                let mut value = vec![0u8; 16];
                value[8..12].copy_from_slice(&(rng.next_below(500) as u32).to_le_bytes());
                log.put(mgr, soc, &key, &value).unwrap();
            }
            let (klen, vlen) = log.seal(mgr).unwrap();
            ((kc, klen), (vc, vlen))
        };

        // Separated path.
        let (mgr_a, soc_a, dram_a) = setup(512);
        let (klog, vlog) = load(&mgr_a, &soc_a);
        let cout_a = run_compaction(
            &mgr_a,
            &soc_a,
            &dram_a,
            klog,
            vlog,
            2_000,
            4,
            &Deadline::none(),
        )
        .unwrap();
        let sout_a = build_secondary_index(
            &mgr_a,
            &soc_a,
            &dram_a,
            cout_a.pidx,
            cout_a.svalues,
            &spec,
            4,
            &Deadline::none(),
        )
        .unwrap();

        // Single pass.
        let (mgr_b, soc_b, dram_b) = setup(512);
        let (klog, vlog) = load(&mgr_b, &soc_b);
        let (cout_b, souts_b) = run_compaction_with_indexes(
            &mgr_b,
            &soc_b,
            &dram_b,
            klog,
            vlog,
            2_000,
            4,
            std::slice::from_ref(&spec),
            &Deadline::none(),
        )
        .unwrap();
        let sout_b = &souts_b[0];

        // Identical primary data.
        assert_eq!(
            read_all_entries(&mgr_a, &cout_a),
            read_all_entries(&mgr_b, &cout_b)
        );
        // Identical secondary indexes.
        assert_eq!(sout_a.entries, sout_b.entries);
        let read_sidx = |mgr: &ZoneManager, out: &crate::sidx::SidxOutput| {
            let mut v = Vec::new();
            for b in 0..out.blocks {
                v.extend(
                    decode_sidx_block(&mgr.read_block(out.cluster, b as u64).unwrap()).unwrap(),
                );
            }
            v
        };
        assert_eq!(read_sidx(&mgr_a, &sout_a), read_sidx(&mgr_b, sout_b));

        // And the single pass reads the keyspace data fewer times: the
        // separated path's index build re-reads PIDX + SORTED_VALUES.
        let reads_a = soc_a.ledger().snapshot().nand_read_pages;
        let reads_b = soc_b.ledger().snapshot().nand_read_pages;
        assert!(
            reads_b < reads_a,
            "single pass must read less: {reads_b} vs {reads_a}"
        );
    }

    #[test]
    fn single_pass_fails_cleanly_without_dram() {
        use kvcsd_proto::{SecondaryIndexSpec, SecondaryKeyType};
        let (mgr, soc, _big) = setup(256);
        let kc = mgr.alloc_cluster(2).unwrap();
        let vc = mgr.alloc_cluster(2).unwrap();
        let mut log = WriteLog::new(kc, vc);
        for i in 0..100u32 {
            log.put(&mgr, &soc, format!("k{i:05}").as_bytes(), &[0u8; 16])
                .unwrap();
        }
        let (klen, vlen) = log.seal(&mgr).unwrap();
        // Barely enough DRAM for two sorters, not four.
        let tight = DramBudget::new(150 << 10);
        let specs = vec![SecondaryIndexSpec {
            name: "a".into(),
            value_offset: 0,
            value_len: 4,
            key_type: SecondaryKeyType::U32,
        }];
        let err = run_compaction_with_indexes(
            &mgr,
            &soc,
            &tight,
            (kc, klen),
            (vc, vlen),
            100,
            2,
            &specs,
            &Deadline::none(),
        )
        .unwrap_err();
        assert!(matches!(err, DeviceError::OutOfResources(_)));
    }

    #[test]
    fn expired_deadline_aborts_between_phases() {
        use kvcsd_sim::VirtualClock;
        let (mgr, soc, dram) = setup(64);
        let kc = mgr.alloc_cluster(2).unwrap();
        let vc = mgr.alloc_cluster(2).unwrap();
        let mut log = WriteLog::new(kc, vc);
        for i in 0..200u32 {
            log.put(&mgr, &soc, format!("k{i:06}").as_bytes(), &[7u8; 32])
                .unwrap();
        }
        let (klen, vlen) = log.seal(&mgr).unwrap();
        let clock = VirtualClock::new();
        clock.advance(1000);
        let expired = Deadline::new(&clock, Some(500));
        let err = run_compaction(&mgr, &soc, &dram, (kc, klen), (vc, vlen), 200, 2, &expired)
            .unwrap_err();
        assert_eq!(err, DeviceError::DeadlineExceeded);
        assert_eq!(dram.used(), 0, "aborted compaction must release DRAM");
    }

    #[test]
    fn variable_value_sizes_roundtrip() {
        let (mgr, soc, dram) = setup(256);
        let kc = mgr.alloc_cluster(4).unwrap();
        let vc = mgr.alloc_cluster(4).unwrap();
        let mut log = WriteLog::new(kc, vc);
        let mut rng = XorShift64::new(55);
        let mut pairs = Vec::new();
        for i in 0..300u32 {
            let key = format!("k{:08}", rng.next_below(1_000_000)).into_bytes();
            let vlen = 1 + rng.next_below(6000) as usize; // spans blocks sometimes
            let value = vec![(i % 251) as u8; vlen];
            log.put(&mgr, &soc, &key, &value).unwrap();
            pairs.push((key, value));
        }
        let (klen, vlen) = log.seal(&mgr).unwrap();
        let out = run_compaction(
            &mgr,
            &soc,
            &dram,
            (kc, klen),
            (vc, vlen),
            300,
            4,
            &Deadline::none(),
        )
        .unwrap();
        pairs.sort();
        assert_eq!(read_all_entries(&mgr, &out), pairs);
    }
}
