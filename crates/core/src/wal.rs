//! The device write-ahead log.
//!
//! "Like RocksDB and others, KV-CSD uses write-ahead-logging to back
//! in-memory data and supports explicit 'fsync'. We expect production
//! applications to frequently disable write-ahead-logging though because
//! many use checkpointing-restart for failure recovery." (Section VI)
//!
//! When enabled ([`crate::DeviceConfig::wal`]), every PUT appends a
//! framed record to a per-keyspace WAL zone cluster before entering the
//! DRAM ingest buffer. An explicit fsync pads the partial tail block out
//! to flash (zones cannot be rewritten, so each sync starts a fresh
//! block — the classic ZNS log trade-off). Replay scans the flushed
//! blocks, skipping sync padding and stopping at the first torn frame:
//! everything up to the last fsync is guaranteed back.
//!
//! Frame: `0xA5 | klen:u16 | vlen:u32 | crc32(key|value) | key | value`.

use crate::error::DeviceError;
use crate::meta::crc32;
use crate::soc::SocCharger;
use crate::zone_mgr::{ClusterId, ZoneManager};
use crate::Result;
use crate::BLOCK_BYTES;
use kvcsd_sim::bytes::{le_u16, le_u32};

const FRAME_TAG: u8 = 0xA5;
const FRAME_HEADER: usize = 1 + 2 + 4 + 4;

/// A per-keyspace device WAL.
#[derive(Debug)]
pub struct DeviceWal {
    cluster: ClusterId,
    tail: Vec<u8>,
    blocks_flushed: u64,
    /// Records appended since the last sync (diagnostics).
    unsynced: u64,
}

impl DeviceWal {
    /// Start a fresh WAL on `cluster`.
    pub fn new(cluster: ClusterId) -> Self {
        Self {
            cluster,
            tail: Vec::with_capacity(BLOCK_BYTES),
            blocks_flushed: 0,
            unsynced: 0,
        }
    }

    /// Resume a WAL after restart: `blocks` full blocks already on flash
    /// (the tail was volatile and is gone).
    pub fn resume(cluster: ClusterId, blocks: u64) -> Self {
        Self {
            cluster,
            tail: Vec::with_capacity(BLOCK_BYTES),
            blocks_flushed: blocks,
            unsynced: 0,
        }
    }

    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// Records appended since the last [`DeviceWal::sync`].
    pub fn unsynced_records(&self) -> u64 {
        self.unsynced
    }

    fn flush_full_blocks(&mut self, mgr: &ZoneManager) -> Result<()> {
        while self.tail.len() >= BLOCK_BYTES {
            let rest = self.tail.split_off(BLOCK_BYTES);
            mgr.append_block(self.cluster, &self.tail)?;
            self.blocks_flushed += 1;
            self.tail = rest;
        }
        Ok(())
    }

    /// Append one record (durable once a block fills or sync is called).
    pub fn append(
        &mut self,
        mgr: &ZoneManager,
        soc: &SocCharger,
        key: &[u8],
        value: &[u8],
    ) -> Result<()> {
        if key.len() > u16::MAX as usize {
            return Err(DeviceError::BadPayload("wal key too long".into()));
        }
        let mut crc_input = Vec::with_capacity(key.len() + value.len());
        crc_input.extend_from_slice(key);
        crc_input.extend_from_slice(value);
        self.tail.push(FRAME_TAG);
        self.tail
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.tail
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.tail
            .extend_from_slice(&crc32(&crc_input).to_le_bytes());
        self.tail.extend_from_slice(key);
        self.tail.extend_from_slice(value);
        soc.bytes(FRAME_HEADER + key.len() + value.len());
        self.unsynced += 1;
        self.flush_full_blocks(mgr)
    }

    /// Explicit fsync: pad the tail to a block boundary and flush it.
    pub fn sync(&mut self, mgr: &ZoneManager) -> Result<()> {
        if !self.tail.is_empty() {
            self.tail.resize(
                BLOCK_BYTES.min(self.tail.len().next_multiple_of(BLOCK_BYTES)),
                0,
            );
            // tail is < BLOCK_BYTES after flush_full_blocks, so one block.
            mgr.append_block(self.cluster, &self.tail)?;
            self.blocks_flushed += 1;
            self.tail.clear();
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Replay every intact record from a WAL cluster with `blocks` full
    /// blocks on flash. Stops cleanly at sync padding gaps and at the
    /// first torn or corrupt frame.
    pub fn replay(
        mgr: &ZoneManager,
        cluster: ClusterId,
        blocks: u64,
        mut emit: impl FnMut(Vec<u8>, Vec<u8>) -> Result<()>,
    ) -> Result<u64> {
        let total = blocks as usize * BLOCK_BYTES;
        let mut count = 0u64;
        let mut block_cache: Option<(u64, Vec<u8>)> = None;
        let mut read = |mgr: &ZoneManager, pos: usize, len: usize| -> Result<Vec<u8>> {
            // Byte reads across the block stream with a one-block cursor.
            let mut out = Vec::with_capacity(len);
            let mut p = pos;
            while out.len() < len {
                let b = (p / BLOCK_BYTES) as u64;
                if block_cache.as_ref().map(|(ix, _)| *ix) != Some(b) {
                    block_cache = Some((b, mgr.read_block(cluster, b)?));
                }
                let Some((_, data)) = block_cache.as_ref() else {
                    return Err(DeviceError::Internal("wal block cursor missing".into()));
                };
                let in_block = p % BLOCK_BYTES;
                let take = (len - out.len()).min(BLOCK_BYTES - in_block);
                out.extend_from_slice(&data[in_block..in_block + take]);
                p += take;
            }
            Ok(out)
        };

        let mut pos = 0usize;
        while pos < total {
            let tag = read(mgr, pos, 1)?[0];
            if tag == 0 {
                // Sync padding: skip to the next block boundary.
                pos = (pos / BLOCK_BYTES + 1) * BLOCK_BYTES;
                continue;
            }
            if tag != FRAME_TAG || pos + FRAME_HEADER > total {
                break; // torn tail or foreign bytes: stop replay
            }
            let hdr = read(mgr, pos, FRAME_HEADER)?;
            let klen = le_u16(&hdr, 1) as usize;
            let vlen = le_u32(&hdr, 3) as usize;
            let crc = le_u32(&hdr, 7);
            if pos + FRAME_HEADER + klen + vlen > total {
                break; // record was mid-write at crash time
            }
            let body = read(mgr, pos + FRAME_HEADER, klen + vlen)?;
            if crc32(&body) != crc {
                break;
            }
            let (key, value) = body.split_at(klen);
            emit(key.to_vec(), value.to_vec())?;
            count += 1;
            pos += FRAME_HEADER + klen + vlen;
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
    use kvcsd_sim::{config::CostModel, HardwareSpec, IoLedger};
    use std::sync::Arc;

    fn setup() -> (ZoneManager, SocCharger) {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 64,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(
            geom,
            &HardwareSpec::default(),
            Arc::clone(&ledger),
        ));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        (
            ZoneManager::new(zns, 1, 3),
            SocCharger::new(ledger, CostModel::default()),
        )
    }

    fn replay_all(mgr: &ZoneManager, wal: &DeviceWal) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        DeviceWal::replay(mgr, wal.cluster(), wal.blocks_flushed, |k, v| {
            out.push((k, v));
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn synced_records_replay_exactly() {
        let (mgr, soc) = setup();
        let c = mgr.alloc_cluster(4).unwrap();
        let mut wal = DeviceWal::new(c);
        let records: Vec<(Vec<u8>, Vec<u8>)> = (0..100u32)
            .map(|i| {
                (
                    format!("k{i:04}").into_bytes(),
                    vec![i as u8; (i % 50) as usize],
                )
            })
            .collect();
        for (k, v) in &records {
            wal.append(&mgr, &soc, k, v).unwrap();
        }
        assert_eq!(wal.unsynced_records(), 100);
        wal.sync(&mgr).unwrap();
        assert_eq!(wal.unsynced_records(), 0);
        assert_eq!(replay_all(&mgr, &wal), records);
    }

    #[test]
    fn unsynced_tail_is_lost_but_synced_prefix_survives() {
        let (mgr, soc) = setup();
        let c = mgr.alloc_cluster(2).unwrap();
        let mut wal = DeviceWal::new(c);
        for i in 0..10u32 {
            wal.append(&mgr, &soc, format!("synced-{i}").as_bytes(), b"v")
                .unwrap();
        }
        wal.sync(&mgr).unwrap();
        // Small unsynced records: still in the volatile tail.
        for i in 0..3u32 {
            wal.append(&mgr, &soc, format!("lost-{i}").as_bytes(), b"v")
                .unwrap();
        }
        let got = replay_all(&mgr, &wal);
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|(k, _)| k.starts_with(b"synced-")));
    }

    #[test]
    fn large_unsynced_batch_keeps_full_blocks() {
        let (mgr, soc) = setup();
        let c = mgr.alloc_cluster(4).unwrap();
        let mut wal = DeviceWal::new(c);
        // ~50 B/record: hundreds per block; write enough to flush blocks
        // without ever syncing.
        for i in 0..1000u32 {
            wal.append(&mgr, &soc, format!("k{i:06}").as_bytes(), &[1u8; 32])
                .unwrap();
        }
        let got = replay_all(&mgr, &wal);
        // Everything in full flushed blocks replays; the partial tail is
        // lost; the record straddling the last block boundary is torn.
        assert!(got.len() > 800 && got.len() < 1000, "{}", got.len());
        for (i, (k, _)) in got.iter().enumerate() {
            assert_eq!(k, format!("k{i:06}").as_bytes());
        }
    }

    #[test]
    fn multiple_syncs_and_batches() {
        let (mgr, soc) = setup();
        let c = mgr.alloc_cluster(2).unwrap();
        let mut wal = DeviceWal::new(c);
        let mut expect = Vec::new();
        for batch in 0..5u32 {
            for i in 0..7u32 {
                let k = format!("b{batch}-r{i}").into_bytes();
                wal.append(&mgr, &soc, &k, &[batch as u8]).unwrap();
                expect.push((k, vec![batch as u8]));
            }
            wal.sync(&mgr).unwrap();
        }
        assert_eq!(replay_all(&mgr, &wal), expect);
    }

    #[test]
    fn resume_appends_after_replayed_blocks() {
        let (mgr, soc) = setup();
        let c = mgr.alloc_cluster(2).unwrap();
        let mut wal = DeviceWal::new(c);
        wal.append(&mgr, &soc, b"first", b"1").unwrap();
        wal.sync(&mgr).unwrap();
        let blocks = wal.blocks_flushed;
        drop(wal);

        let mut wal2 = DeviceWal::resume(c, blocks);
        wal2.append(&mgr, &soc, b"second", b"2").unwrap();
        wal2.sync(&mgr).unwrap();
        let got = replay_all(&mgr, &wal2);
        assert_eq!(
            got,
            vec![
                (b"first".to_vec(), b"1".to_vec()),
                (b"second".to_vec(), b"2".to_vec())
            ]
        );
    }

    #[test]
    fn empty_wal_replays_nothing() {
        let (mgr, _soc) = setup();
        let c = mgr.alloc_cluster(1).unwrap();
        let wal = DeviceWal::new(c);
        assert!(replay_all(&mgr, &wal).is_empty());
    }

    #[test]
    fn sync_with_empty_tail_is_noop() {
        let (mgr, soc) = setup();
        let c = mgr.alloc_cluster(1).unwrap();
        let mut wal = DeviceWal::new(c);
        wal.sync(&mgr).unwrap();
        assert_eq!(wal.blocks_flushed, 0);
        wal.append(&mgr, &soc, b"k", b"v").unwrap();
        wal.sync(&mgr).unwrap();
        wal.sync(&mgr).unwrap(); // idempotent
        assert_eq!(wal.blocks_flushed, 1);
    }
}
