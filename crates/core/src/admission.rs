//! Overload control: admission gating, write stalls and deadlines.
//!
//! The paper's headline win — compaction and index builds deferred and
//! offloaded to the device — means ingest can outrun background work. On
//! the real hardware (4× A53, 8 GB DRAM) the device must shed or stall
//! load rather than fall over. This module is the single pressure model
//! every command path consults:
//!
//! * Three pressure signals — SoC DRAM usage ([`crate::DramBudget`]),
//!   pending-background-job count (the job queue is bounded), and
//!   per-keyspace *compaction debt* (bytes ingested since the last
//!   COMPACT) — feed an [`AdmissionGate`] with high/low watermarks.
//! * Writes pass through RocksDB-style bands: **slowdown** (a simulated
//!   delay charged to the clock and ledger, then admit), **stall** (a
//!   larger charged delay, command *not* executed, `Stalled` returned)
//!   and **reject** (`Busy`, fail fast). The stall band is hysteretic:
//!   it engages at the high watermark and releases only once pressure
//!   falls below the low watermark, so bursts see a clean
//!   engage → drain → release cycle instead of flapping.
//! * Queries are never stalled or rejected — reads keep serving under
//!   overload — but they do absorb the slowdown charge.
//! * Background-job submission only checks the queue bound.
//!
//! Every decision is a pure function of the sampled pressure and the
//! hysteresis flag, so a seeded workload replays to identical admission
//! decisions. Stalls charge the [`VirtualClock`] — never a wall-clock
//! sleep (`kvcsd-check` rule `sleep` enforces this workspace-wide).

use kvcsd_sim::sync::Shared;
use kvcsd_sim::VirtualClock;

use crate::error::DeviceError;
use crate::Result;

/// Watermarks and charges for the admission gate. Lives in
/// `DeviceConfig` so harnesses can shrink the thresholds to provoke
/// overload with small workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// DRAM usage fraction at which the stall band engages.
    pub dram_high: f64,
    /// DRAM usage fraction below which the stall band releases.
    pub dram_low: f64,
    /// DRAM usage fraction at which writes are rejected outright.
    pub dram_reject: f64,
    /// Background-job queue bound; submissions beyond it are `Busy`.
    pub max_pending_jobs: usize,
    /// Compaction debt (bytes since last COMPACT) that triggers slowdown.
    pub debt_slowdown_bytes: u64,
    /// Compaction debt at which the stall band engages.
    pub debt_stall_bytes: u64,
    /// Compaction debt at which writes are rejected outright.
    pub debt_reject_bytes: u64,
    /// Simulated delay charged per slowed-down command.
    pub slowdown_ns: u64,
    /// Simulated delay charged per stalled command.
    pub stall_ns: u64,
}

impl AdmissionConfig {
    /// Gating effectively disabled: watermarks above 1.0 and unreachable
    /// debt/queue bounds. For harnesses that drive the device into states
    /// (e.g. deliberately exhausted DRAM) where gating would get in the
    /// way of what they test.
    pub fn permissive() -> Self {
        Self {
            dram_high: 2.0,
            dram_low: 2.0,
            dram_reject: 2.0,
            max_pending_jobs: usize::MAX,
            debt_slowdown_bytes: u64::MAX,
            debt_stall_bytes: u64::MAX,
            debt_reject_bytes: u64::MAX,
            slowdown_ns: 0,
            stall_ns: 0,
        }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            dram_high: 0.85,
            dram_low: 0.60,
            dram_reject: 0.97,
            max_pending_jobs: 64,
            debt_slowdown_bytes: 64 << 20,
            debt_stall_bytes: 256 << 20,
            debt_reject_bytes: 1 << 30,
            slowdown_ns: 100_000, // 0.1 ms per slowed write
            stall_ns: 1_000_000,  // 1 ms per stalled write
        }
    }
}

/// One sample of the three pressure signals, taken at admission time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureSample {
    /// [`crate::DramBudget::usage_fraction`] at sampling time.
    pub dram_usage: f64,
    /// Jobs sitting in the background queue (not yet run).
    pub pending_jobs: usize,
    /// Bytes ingested into the target keyspace since its last COMPACT.
    pub compaction_debt: u64,
}

/// What the gate tells a command path to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No pressure: execute immediately.
    Admit,
    /// Charge `charge_ns` of simulated delay, then execute.
    Slowdown { charge_ns: u64 },
    /// Charge `charge_ns`, do NOT execute, return `KvStatus::Stalled`.
    Stall { charge_ns: u64 },
    /// Do not execute, return `KvStatus::Busy` naming the exhausted
    /// resource.
    Reject { reason: &'static str },
}

/// The device-wide admission gate. One instance per device; every
/// ingest/query/job-submission entry point consults it.
#[derive(Debug)]
pub struct AdmissionGate {
    cfg: AdmissionConfig,
    /// Hysteresis flag for the stall band: set at the high watermark,
    /// cleared below the low watermark. A self-synchronized [`Shared`]
    /// flag, so the race detector observes every access (DESIGN.md §11).
    engaged: Shared<bool>,
}

impl AdmissionGate {
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            engaged: Shared::new(false),
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// True while the stall band is engaged (between the high-watermark
    /// crossing and the drop below the low watermark).
    pub fn is_engaged(&self) -> bool {
        self.engaged.get()
    }

    /// Admission decision for a write-path command (PUT, BulkPut).
    ///
    /// Deterministic: the outcome depends only on `s` and the hysteresis
    /// flag, which is itself a pure function of the sample history.
    pub fn admit_write(&self, s: &PressureSample) -> Decision {
        // Reject band: fail fast, naming the exhausted resource.
        if s.pending_jobs >= self.cfg.max_pending_jobs {
            return Decision::Reject {
                reason: "background job queue full",
            };
        }
        if s.dram_usage >= self.cfg.dram_reject {
            return Decision::Reject {
                reason: "SoC DRAM exhausted",
            };
        }
        if s.compaction_debt >= self.cfg.debt_reject_bytes {
            return Decision::Reject {
                reason: "compaction debt limit",
            };
        }

        // Stall band with hysteresis.
        let above_high =
            s.dram_usage >= self.cfg.dram_high || s.compaction_debt >= self.cfg.debt_stall_bytes;
        let below_low =
            s.dram_usage < self.cfg.dram_low && s.compaction_debt < self.cfg.debt_slowdown_bytes;
        if above_high {
            self.engaged.set(true);
            return Decision::Stall {
                charge_ns: self.cfg.stall_ns,
            };
        }
        if self.is_engaged() {
            if below_low {
                self.engaged.set(false);
            } else {
                return Decision::Stall {
                    charge_ns: self.cfg.stall_ns,
                };
            }
        }

        // Slowdown band.
        if s.compaction_debt >= self.cfg.debt_slowdown_bytes || s.dram_usage >= self.cfg.dram_low {
            return Decision::Slowdown {
                charge_ns: self.cfg.slowdown_ns,
            };
        }
        Decision::Admit
    }

    /// Admission decision for a query. Reads keep serving under overload:
    /// never stalled or rejected, at most slowed down while the stall
    /// band is engaged.
    pub fn admit_query(&self, s: &PressureSample) -> Decision {
        if self.is_engaged() || s.dram_usage >= self.cfg.dram_high {
            Decision::Slowdown {
                charge_ns: self.cfg.slowdown_ns,
            }
        } else {
            Decision::Admit
        }
    }

    /// Bounded-queue check for submitting a background job.
    pub fn admit_job(&self, pending_jobs: usize) -> Result<()> {
        if pending_jobs >= self.cfg.max_pending_jobs {
            return Err(DeviceError::Busy("background job queue full"));
        }
        Ok(())
    }
}

/// A command deadline bound to the device's virtual clock.
///
/// Copyable and cheap: threaded through compaction and index-build phase
/// boundaries so half-done background work can stop (and unwind via the
/// idempotent seal path) as soon as its budget expires.
#[derive(Debug, Clone, Copy)]
pub struct Deadline<'a> {
    clock: Option<&'a VirtualClock>,
    deadline_ns: Option<u64>,
}

impl<'a> Deadline<'a> {
    /// No deadline: `check` always passes.
    pub fn none() -> Deadline<'static> {
        Deadline {
            clock: None,
            deadline_ns: None,
        }
    }

    /// A deadline at absolute sim time `deadline_ns` (None = unbounded).
    pub fn new(clock: &'a VirtualClock, deadline_ns: Option<u64>) -> Deadline<'a> {
        Deadline {
            clock: Some(clock),
            deadline_ns,
        }
    }

    /// The absolute expiry, if any.
    pub fn deadline_ns(&self) -> Option<u64> {
        self.deadline_ns
    }

    /// Fail with [`DeviceError::DeadlineExceeded`] once the clock has
    /// reached the deadline. Called at admission and at job-step
    /// boundaries.
    pub fn check(&self) -> Result<()> {
        if let (Some(clock), Some(d)) = (self.clock, self.deadline_ns) {
            if clock.now_ns() >= d {
                return Err(DeviceError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> AdmissionConfig {
        AdmissionConfig {
            dram_high: 0.8,
            dram_low: 0.5,
            dram_reject: 0.95,
            max_pending_jobs: 4,
            debt_slowdown_bytes: 1000,
            debt_stall_bytes: 4000,
            debt_reject_bytes: 16_000,
            slowdown_ns: 10,
            stall_ns: 100,
        }
    }

    fn sample(dram: f64, jobs: usize, debt: u64) -> PressureSample {
        PressureSample {
            dram_usage: dram,
            pending_jobs: jobs,
            compaction_debt: debt,
        }
    }

    #[test]
    fn clear_pressure_admits() {
        let g = AdmissionGate::new(tight());
        assert_eq!(g.admit_write(&sample(0.1, 0, 0)), Decision::Admit);
        assert!(!g.is_engaged());
    }

    #[test]
    fn bands_escalate_with_debt() {
        let g = AdmissionGate::new(tight());
        assert_eq!(
            g.admit_write(&sample(0.1, 0, 2000)),
            Decision::Slowdown { charge_ns: 10 }
        );
        assert_eq!(
            g.admit_write(&sample(0.1, 0, 5000)),
            Decision::Stall { charge_ns: 100 }
        );
        assert!(matches!(
            g.admit_write(&sample(0.1, 0, 20_000)),
            Decision::Reject { .. }
        ));
    }

    #[test]
    fn stall_band_is_hysteretic() {
        let g = AdmissionGate::new(tight());
        // Cross the high watermark: engage.
        assert!(matches!(
            g.admit_write(&sample(0.85, 0, 0)),
            Decision::Stall { .. }
        ));
        assert!(g.is_engaged());
        // Pressure eases but stays above the low watermark: still stalled.
        assert!(matches!(
            g.admit_write(&sample(0.7, 0, 0)),
            Decision::Stall { .. }
        ));
        assert!(g.is_engaged());
        // Below the low watermark: release, and this write proceeds.
        assert_eq!(g.admit_write(&sample(0.3, 0, 0)), Decision::Admit);
        assert!(!g.is_engaged());
    }

    #[test]
    fn full_job_queue_rejects_writes_and_jobs() {
        let g = AdmissionGate::new(tight());
        assert!(matches!(
            g.admit_write(&sample(0.1, 4, 0)),
            Decision::Reject {
                reason: "background job queue full"
            }
        ));
        assert!(g.admit_job(3).is_ok());
        assert!(matches!(g.admit_job(4), Err(DeviceError::Busy(_))));
    }

    #[test]
    fn queries_are_never_stalled_or_rejected() {
        let g = AdmissionGate::new(tight());
        // Engage the stall band (a rejecting sample would short-circuit
        // before the hysteresis flag), then pile on reject-level pressure.
        g.admit_write(&sample(0.85, 0, 0));
        assert!(g.is_engaged());
        match g.admit_query(&sample(0.99, 10, 100_000)) {
            Decision::Slowdown { .. } => {}
            other => panic!("queries must only slow down, got {other:?}"),
        }
        let calm = AdmissionGate::new(tight());
        assert_eq!(calm.admit_query(&sample(0.1, 0, 0)), Decision::Admit);
    }

    #[test]
    fn decisions_are_deterministic() {
        let samples = [
            sample(0.1, 0, 0),
            sample(0.9, 0, 0),
            sample(0.7, 0, 0),
            sample(0.3, 0, 0),
            sample(0.1, 0, 5000),
            sample(0.1, 9, 0),
        ];
        let run = || {
            let g = AdmissionGate::new(tight());
            samples.iter().map(|s| g.admit_write(s)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same samples must replay identically");
    }

    #[test]
    fn deadline_checks_against_the_clock() {
        let clock = VirtualClock::new();
        assert!(Deadline::none().check().is_ok());
        assert!(Deadline::new(&clock, None).check().is_ok());
        let d = Deadline::new(&clock, Some(100));
        assert!(d.check().is_ok());
        clock.advance(99);
        assert!(d.check().is_ok());
        clock.advance(1);
        assert!(matches!(d.check(), Err(DeviceError::DeadlineExceeded)));
    }
}
