//! The keyspace lifecycle transition table.
//!
//! "Each keyspace in KV-CSD can exist in one of the following four
//! states: EMPTY, WRITABLE, COMPACTING, and COMPACTED" (Section IV) —
//! plus the DEGRADED state PR 1 added for persistent media failures
//! during background jobs. This module is the single declarative source
//! of truth for which state changes are legal; every mutation of
//! `Keyspace::state` outside snapshot decoding flows through
//! [`crate::keyspace::Keyspace::transition_to`], which checks the table
//! and rejects illegal edges with [`DeviceError::IllegalTransition`].
//!
//! Invariants the table encodes:
//! * COMPACTED never becomes writable again; re-ingest requires delete +
//!   recreate (paper's model: one absorb/compact cycle per keyspace). Its
//!   only exit is READ_ONLY on space exhaustion.
//! * EMPTY never goes straight to COMPACTING — compacting an empty
//!   keyspace short-circuits to COMPACTED without a compaction job.
//! * DEGRADED is only entered from COMPACTING (a failed background job)
//!   and only left by retrying compaction.
//! * READ_ONLY is the graceful-degradation state for zone/space
//!   exhaustion: entered from WRITABLE (ingest hit DeviceFull; the write
//!   log is sealed in place), COMPACTING (the job died on
//!   OutOfResources) or COMPACTED (space exhaustion during an index
//!   build). It is left by a successful re-compaction (-> COMPACTING,
//!   from the intact sealed logs) or by space reclaim when a primary
//!   index already exists (-> COMPACTED). Writes fail fast in READ_ONLY;
//!   reads keep serving wherever an index exists.

use kvcsd_proto::KeyspaceState;
use kvcsd_sim::TransitionTable;

/// Every legal keyspace state change (self-edges implicitly legal).
pub static KEYSPACE_TRANSITIONS: TransitionTable<KeyspaceState> = TransitionTable {
    machine: "keyspace",
    edges: &[
        // First PUT opens the write log.
        (KeyspaceState::Empty, KeyspaceState::Writable),
        // Compacting an empty keyspace yields an (empty) compacted one
        // without running a job.
        (KeyspaceState::Empty, KeyspaceState::Compacted),
        // Reopen after power loss without a WAL: absorbed-but-unsealed
        // data is gone, the keyspace rewinds to EMPTY.
        (KeyspaceState::Writable, KeyspaceState::Empty),
        // Compaction seals the logs.
        (KeyspaceState::Writable, KeyspaceState::Compacting),
        // Background sort/index job finishes...
        (KeyspaceState::Compacting, KeyspaceState::Compacted),
        // ...or dies on a persistent media error.
        (KeyspaceState::Compacting, KeyspaceState::Degraded),
        // Retrying compaction from the intact sealed logs.
        (KeyspaceState::Degraded, KeyspaceState::Compacting),
        // Zone exhaustion during ingest: the write log is sealed in place
        // and the keyspace freezes rather than failing outright.
        (KeyspaceState::Writable, KeyspaceState::ReadOnly),
        // A background job died on zone/space exhaustion (OutOfResources).
        (KeyspaceState::Compacting, KeyspaceState::ReadOnly),
        // Space exhaustion during a secondary-index build on an already
        // compacted keyspace.
        (KeyspaceState::Compacted, KeyspaceState::ReadOnly),
        // Recovery: re-compaction from the sealed logs once space frees up.
        (KeyspaceState::ReadOnly, KeyspaceState::Compacting),
        // Recovery: space reclaim with a primary index already in place.
        (KeyspaceState::ReadOnly, KeyspaceState::Compacted),
    ],
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DeviceError;
    use crate::keyspace::Keyspace;

    #[test]
    fn happy_path_is_legal() {
        use KeyspaceState::*;
        for (from, to) in [
            (Empty, Writable),
            (Writable, Compacting),
            (Compacting, Compacted),
        ] {
            assert!(KEYSPACE_TRANSITIONS.is_legal(from, to), "{from:?}->{to:?}");
        }
    }

    #[test]
    fn degraded_cycle_is_legal() {
        use KeyspaceState::*;
        assert!(KEYSPACE_TRANSITIONS.is_legal(Compacting, Degraded));
        assert!(KEYSPACE_TRANSITIONS.is_legal(Degraded, Compacting));
    }

    #[test]
    fn compacted_never_becomes_writable() {
        use KeyspaceState::*;
        // The only way out of COMPACTED is freezing on space exhaustion.
        assert_eq!(KEYSPACE_TRANSITIONS.successors(Compacted), vec![ReadOnly]);
        assert!(!KEYSPACE_TRANSITIONS.is_legal(Compacted, Writable));
        assert!(!KEYSPACE_TRANSITIONS.is_legal(Compacted, Empty));
    }

    #[test]
    fn read_only_cycle_is_legal() {
        use KeyspaceState::*;
        for (from, to) in [
            (Writable, ReadOnly),
            (Compacting, ReadOnly),
            (Compacted, ReadOnly),
            (ReadOnly, Compacting),
            (ReadOnly, Compacted),
        ] {
            assert!(KEYSPACE_TRANSITIONS.is_legal(from, to), "{from:?}->{to:?}");
        }
        // A frozen keyspace never reopens for writes directly.
        assert!(!KEYSPACE_TRANSITIONS.is_legal(ReadOnly, Writable));
        assert!(!KEYSPACE_TRANSITIONS.is_legal(ReadOnly, Empty));
        assert!(!KEYSPACE_TRANSITIONS.is_legal(Empty, ReadOnly));
    }

    #[test]
    fn read_only_illegal_edges_carry_context() {
        let err = KEYSPACE_TRANSITIONS
            .check(KeyspaceState::ReadOnly, KeyspaceState::Writable)
            .unwrap_err();
        assert_eq!(err.machine, "keyspace");
        assert_eq!(err.from, "ReadOnly");
        assert_eq!(err.to, "Writable");
        assert!(err.to_string().contains("illegal keyspace transition"));
    }

    #[test]
    fn empty_cannot_enter_compacting() {
        assert!(!KEYSPACE_TRANSITIONS.is_legal(KeyspaceState::Empty, KeyspaceState::Compacting));
    }

    #[test]
    fn transition_to_rejects_illegal_edges_with_context() {
        let mut ks = Keyspace::new(1, "x".into());
        ks.transition_to(KeyspaceState::Writable).unwrap();
        ks.transition_to(KeyspaceState::Compacting).unwrap();
        ks.transition_to(KeyspaceState::Compacted).unwrap();
        let err = ks.transition_to(KeyspaceState::Writable).unwrap_err();
        match err {
            DeviceError::IllegalTransition { machine, from, to } => {
                assert_eq!(machine, "keyspace");
                assert_eq!(from, "COMPACTED");
                assert_eq!(to, "WRITABLE");
            }
            other => panic!("expected IllegalTransition, got {other:?}"),
        }
        // The failed transition must not have moved the state.
        assert_eq!(ks.state, KeyspaceState::Compacted);
    }

    #[test]
    fn self_transitions_are_noops() {
        let mut ks = Keyspace::new(1, "x".into());
        ks.transition_to(KeyspaceState::Empty).unwrap();
        assert_eq!(ks.state, KeyspaceState::Empty);
    }
}
