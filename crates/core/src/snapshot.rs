//! Device snapshot serialization: everything the device must remember
//! across a restart — the zone manager's cluster map and the full
//! keyspace table, including index sketches.
//!
//! What is deliberately *not* persisted: WRITABLE keyspaces' in-flight
//! write logs (their DRAM tails are volatile; without the device WAL the
//! unsynced data is lost, exactly as an fsync-less store loses buffered
//! writes) and the background job queue (COMPACTING keyspaces are
//! re-enqueued on restore from their sealed logs).

use kvcsd_proto::{KeyspaceState, SecondaryIndexSpec, SecondaryKeyType};
use kvcsd_sim::bytes::{try_le_u32, try_le_u64};

use crate::error::DeviceError;
use crate::keyspace::{Keyspace, KsStorage, SecondaryIndex, Sketch};
use crate::zone_mgr::{ClusterId, ClusterState, ZoneManagerState};
use crate::Result;

const VERSION: u8 = 1;

/// The complete persisted state of a device.
#[derive(Debug, Default)]
pub struct DeviceSnapshot {
    pub zones: ZoneManagerState,
    pub keyspaces: Vec<Keyspace>,
}

// ---------------------------------------------------------------------------
// little codec helpers
// ---------------------------------------------------------------------------

#[derive(Default)]
struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
    }
    fn opt_bytes(&mut self, b: &Option<Vec<u8>>) {
        match b {
            Some(b) => {
                self.u8(1);
                self.bytes(b);
            }
            None => self.u8(0),
        }
    }
    fn sketch(&mut self, s: &Sketch) {
        self.u32(s.pivots().len() as u32);
        for p in s.pivots() {
            self.bytes(p);
        }
    }
}

struct R<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> R<'a> {
    fn bad() -> DeviceError {
        DeviceError::Internal("malformed device snapshot".into())
    }
    fn u8(&mut self) -> Result<u8> {
        let v = *self.b.get(self.p).ok_or_else(R::bad)?;
        self.p += 1;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32> {
        let v = try_le_u32(self.b, self.p).ok_or_else(R::bad)?;
        self.p += 4;
        Ok(v)
    }
    fn u64(&mut self) -> Result<u64> {
        let v = try_le_u64(self.b, self.p).ok_or_else(R::bad)?;
        self.p += 8;
        Ok(v)
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        let v = self.b.get(self.p..self.p + n).ok_or_else(R::bad)?.to_vec();
        self.p += n;
        Ok(v)
    }
    fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>> {
        Ok(if self.u8()? == 1 {
            Some(self.bytes()?)
        } else {
            None
        })
    }
    fn sketch(&mut self) -> Result<Sketch> {
        let n = self.u32()? as usize;
        let mut pivots = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            pivots.push(self.bytes()?);
        }
        Ok(Sketch::from_pivots(pivots))
    }
}

fn state_byte(s: KeyspaceState) -> u8 {
    match s {
        KeyspaceState::Empty => 0,
        KeyspaceState::Writable => 1,
        KeyspaceState::Compacting => 2,
        KeyspaceState::Compacted => 3,
        KeyspaceState::Degraded => 4,
        KeyspaceState::ReadOnly => 5,
    }
}

fn byte_state(b: u8) -> Result<KeyspaceState> {
    Ok(match b {
        0 => KeyspaceState::Empty,
        1 => KeyspaceState::Writable,
        2 => KeyspaceState::Compacting,
        3 => KeyspaceState::Compacted,
        4 => KeyspaceState::Degraded,
        5 => KeyspaceState::ReadOnly,
        _ => return Err(R::bad()),
    })
}

fn type_byte(t: SecondaryKeyType) -> u8 {
    match t {
        SecondaryKeyType::U32 => 0,
        SecondaryKeyType::I32 => 1,
        SecondaryKeyType::U64 => 2,
        SecondaryKeyType::I64 => 3,
        SecondaryKeyType::F32 => 4,
        SecondaryKeyType::F64 => 5,
        SecondaryKeyType::Bytes => 6,
    }
}

fn byte_type(b: u8) -> Result<SecondaryKeyType> {
    Ok(match b {
        0 => SecondaryKeyType::U32,
        1 => SecondaryKeyType::I32,
        2 => SecondaryKeyType::U64,
        3 => SecondaryKeyType::I64,
        4 => SecondaryKeyType::F32,
        5 => SecondaryKeyType::F64,
        6 => SecondaryKeyType::Bytes,
        _ => return Err(R::bad()),
    })
}

// ---------------------------------------------------------------------------
// encode / decode
// ---------------------------------------------------------------------------

/// Serialize a snapshot.
pub fn encode(snap: &DeviceSnapshot) -> Vec<u8> {
    let refs: Vec<&Keyspace> = snap.keyspaces.iter().collect();
    encode_parts(&snap.zones, &refs)
}

/// Serialize from borrowed parts (what the device does under its locks).
pub fn encode_parts(zones: &ZoneManagerState, keyspaces: &[&Keyspace]) -> Vec<u8> {
    let mut w = W::default();
    w.u8(VERSION);

    // Zone manager.
    w.u32(zones.next_id);
    w.u32(zones.clusters.len() as u32);
    for c in &zones.clusters {
        w.u32(c.id);
        w.u32(c.width);
        w.u32(c.offset);
        w.u64(c.blocks);
        w.u32(c.groups.len() as u32);
        for g in &c.groups {
            w.u32(g.len() as u32);
            for &z in g {
                w.u32(z);
            }
        }
    }

    // Keyspace table.
    w.u32(keyspaces.len() as u32);
    for ks in keyspaces {
        w.u32(ks.id);
        w.u8(state_byte(ks.state));
        w.bytes(ks.name.as_bytes());
        w.u64(ks.pairs);
        w.u64(ks.data_bytes);
        w.opt_bytes(&ks.min_key);
        w.opt_bytes(&ks.max_key);

        let s = &ks.storage;
        // WRITABLE write logs are volatile; record only the durable refs.
        let mut flags = 0u8;
        if s.klog.is_some() {
            flags |= 1;
        }
        if s.vlog.is_some() {
            flags |= 2;
        }
        if s.pidx.is_some() {
            flags |= 4;
        }
        if s.svalues.is_some() {
            flags |= 8;
        }
        if s.wlog.is_some() {
            flags |= 16;
        }
        if s.dwal.is_some() {
            flags |= 32;
        }
        w.u8(flags);
        if let Some(dwal) = &s.dwal {
            w.u32(dwal.cluster().0);
        }
        if let Some((c, len)) = s.klog {
            w.u32(c.0);
            w.u64(len);
        }
        if let Some((c, len)) = s.vlog {
            w.u32(c.0);
            w.u64(len);
        }
        if let Some((c, blocks)) = s.pidx {
            w.u32(c.0);
            w.u32(blocks);
            w.sketch(&s.pidx_sketch);
        }
        if let Some((c, len)) = s.svalues {
            w.u32(c.0);
            w.u64(len);
        }
        w.u32(s.sidx.len() as u32);
        for (name, idx) in &s.sidx {
            w.bytes(name.as_bytes());
            w.u32(idx.spec.value_offset as u32);
            w.u32(idx.spec.value_len as u32);
            w.u8(type_byte(idx.spec.key_type));
            w.u32(idx.cluster.0);
            w.u32(idx.blocks);
            w.u64(idx.entries);
            w.sketch(&idx.sketch);
        }
    }
    w.0
}

/// Deserialize a snapshot.
pub fn decode(payload: &[u8]) -> Result<DeviceSnapshot> {
    let mut r = R { b: payload, p: 0 };
    if r.u8()? != VERSION {
        return Err(DeviceError::Internal("unsupported snapshot version".into()));
    }

    let next_id = r.u32()?;
    let n_clusters = r.u32()? as usize;
    let mut clusters = Vec::with_capacity(n_clusters.min(1 << 16));
    for _ in 0..n_clusters {
        let id = r.u32()?;
        let width = r.u32()?;
        let offset = r.u32()?;
        let blocks = r.u64()?;
        let n_groups = r.u32()? as usize;
        let mut groups = Vec::with_capacity(n_groups.min(1 << 16));
        for _ in 0..n_groups {
            let n = r.u32()? as usize;
            let mut g = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                g.push(r.u32()?);
            }
            groups.push(g);
        }
        clusters.push(ClusterState {
            id,
            width,
            offset,
            blocks,
            groups,
        });
    }

    let n_ks = r.u32()? as usize;
    let mut keyspaces = Vec::with_capacity(n_ks.min(1 << 16));
    for _ in 0..n_ks {
        let id = r.u32()?;
        let state = byte_state(r.u8()?)?;
        let name = String::from_utf8(r.bytes()?).map_err(|_| R::bad())?;
        let mut ks = Keyspace::new(id, name);
        // Record construction, not a lifecycle transition: the persisted
        // state is reinstalled verbatim (reopen() afterwards walks any
        // interrupted keyspaces through the checked transition path).
        // kvcsd-check: allow(fsm-bypass) -- snapshot decode reinstalls the persisted state verbatim; reopen() re-enters via checked transitions
        ks.state = state;
        ks.pairs = r.u64()?;
        ks.data_bytes = r.u64()?;
        ks.min_key = r.opt_bytes()?;
        ks.max_key = r.opt_bytes()?;

        let flags = r.u8()?;
        let mut storage = KsStorage::default();
        if flags & 32 != 0 {
            // WAL cluster: block count is recomputed from zone write
            // pointers by the device's reopen path.
            storage.dwal = Some(crate::wal::DeviceWal::resume(ClusterId(r.u32()?), 0));
        }
        if flags & 1 != 0 {
            storage.klog = Some((ClusterId(r.u32()?), r.u64()?));
        }
        if flags & 2 != 0 {
            storage.vlog = Some((ClusterId(r.u32()?), r.u64()?));
        }
        if flags & 4 != 0 {
            storage.pidx = Some((ClusterId(r.u32()?), r.u32()?));
            storage.pidx_sketch = r.sketch()?;
        }
        if flags & 8 != 0 {
            storage.svalues = Some((ClusterId(r.u32()?), r.u64()?));
        }
        // flags & 16 (live write log) intentionally dropped: volatile.
        let n_sidx = r.u32()? as usize;
        for _ in 0..n_sidx {
            let name = String::from_utf8(r.bytes()?).map_err(|_| R::bad())?;
            let value_offset = r.u32()? as usize;
            let value_len = r.u32()? as usize;
            let key_type = byte_type(r.u8()?)?;
            let cluster = ClusterId(r.u32()?);
            let blocks = r.u32()?;
            let entries = r.u64()?;
            let sketch = r.sketch()?;
            storage.sidx.insert(
                name.clone(),
                SecondaryIndex {
                    spec: SecondaryIndexSpec {
                        name,
                        value_offset,
                        value_len,
                        key_type,
                    },
                    cluster,
                    blocks,
                    sketch,
                    entries,
                },
            );
        }
        ks.storage = storage;
        keyspaces.push(ks);
    }

    Ok(DeviceSnapshot {
        zones: ZoneManagerState { next_id, clusters },
        keyspaces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeviceSnapshot {
        let mut ks = Keyspace::new(3, "dump".into());
        ks.state = KeyspaceState::Compacted;
        ks.pairs = 1000;
        ks.data_bytes = 48_000;
        ks.min_key = Some(b"aaa".to_vec());
        ks.max_key = Some(b"zzz".to_vec());
        ks.storage.pidx = Some((ClusterId(9), 12));
        ks.storage.pidx_sketch =
            Sketch::from_pivots(vec![b"aaa".to_vec(), b"mmm".to_vec(), b"ttt".to_vec()]);
        ks.storage.svalues = Some((ClusterId(10), 32_000));
        ks.storage.sidx.insert(
            "energy".into(),
            SecondaryIndex {
                spec: SecondaryIndexSpec {
                    name: "energy".into(),
                    value_offset: 28,
                    value_len: 4,
                    key_type: SecondaryKeyType::F32,
                },
                cluster: ClusterId(11),
                blocks: 7,
                sketch: Sketch::from_pivots(vec![vec![0, 1], vec![9, 9]]),
                entries: 1000,
            },
        );

        let mut compacting = Keyspace::new(4, "inflight".into());
        compacting.state = KeyspaceState::Compacting;
        compacting.pairs = 50;
        compacting.storage.klog = Some((ClusterId(20), 1234));
        compacting.storage.vlog = Some((ClusterId(21), 5678));

        DeviceSnapshot {
            zones: ZoneManagerState {
                next_id: 30,
                clusters: vec![ClusterState {
                    id: 9,
                    width: 4,
                    offset: 2,
                    blocks: 12,
                    groups: vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]],
                }],
            },
            keyspaces: vec![ks, compacting],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample();
        let decoded = decode(&encode(&snap)).unwrap();
        assert_eq!(decoded.zones, snap.zones);
        assert_eq!(decoded.keyspaces.len(), 2);
        let ks = &decoded.keyspaces[0];
        assert_eq!(ks.id, 3);
        assert_eq!(ks.name, "dump");
        assert_eq!(ks.state, KeyspaceState::Compacted);
        assert_eq!(ks.pairs, 1000);
        assert_eq!(ks.min_key.as_deref(), Some(b"aaa".as_slice()));
        assert_eq!(ks.storage.pidx, Some((ClusterId(9), 12)));
        assert_eq!(ks.storage.pidx_sketch.blocks(), 3);
        assert_eq!(ks.storage.svalues, Some((ClusterId(10), 32_000)));
        let idx = &ks.storage.sidx["energy"];
        assert_eq!(idx.spec.value_offset, 28);
        assert_eq!(idx.spec.key_type, SecondaryKeyType::F32);
        assert_eq!(idx.blocks, 7);
        assert_eq!(idx.entries, 1000);
        assert_eq!(idx.sketch.blocks(), 2);
        let c = &decoded.keyspaces[1];
        assert_eq!(c.state, KeyspaceState::Compacting);
        assert_eq!(c.storage.klog, Some((ClusterId(20), 1234)));
        assert_eq!(c.storage.vlog, Some((ClusterId(21), 5678)));
    }

    #[test]
    fn live_write_log_is_not_persisted() {
        // A WRITABLE keyspace with a live wlog round-trips without it
        // (only the flag is encoded and then dropped).
        let mut ks = Keyspace::new(1, "w".into());
        ks.state = KeyspaceState::Writable;
        // No wlog attached in this test (WriteLog is not constructible
        // without a zone manager), but flags=16 would simply be ignored.
        let snap = DeviceSnapshot {
            zones: ZoneManagerState::default(),
            keyspaces: vec![ks],
        };
        let decoded = decode(&encode(&snap)).unwrap();
        assert!(decoded.keyspaces[0].storage.wlog.is_none());
    }

    #[test]
    fn degraded_state_roundtrips() {
        let mut ks = Keyspace::new(7, "hurt".into());
        ks.state = KeyspaceState::Degraded;
        ks.storage.klog = Some((ClusterId(30), 111));
        ks.storage.vlog = Some((ClusterId(31), 222));
        let snap = DeviceSnapshot {
            zones: ZoneManagerState::default(),
            keyspaces: vec![ks],
        };
        let decoded = decode(&encode(&snap)).unwrap();
        assert_eq!(decoded.keyspaces[0].state, KeyspaceState::Degraded);
        assert_eq!(
            decoded.keyspaces[0].storage.klog,
            Some((ClusterId(30), 111))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[99]).is_err(), "unknown version");
        let mut good = encode(&sample());
        good.truncate(good.len() / 2);
        assert!(decode(&good).is_err(), "truncated snapshot");
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = DeviceSnapshot::default();
        let decoded = decode(&encode(&snap)).unwrap();
        assert!(decoded.keyspaces.is_empty());
        assert!(decoded.zones.clusters.is_empty());
    }
}
