//! The keyspace manager: named key-value containers and their lifecycle.
//!
//! "Each keyspace in KV-CSD can exist in one of the following four
//! states: EMPTY, WRITABLE, COMPACTING, and COMPACTED. ... The keyspace
//! manager keeps track of the state and other metadata information (such
//! as the number of key-value pairs, the minimum and the maximum keys,
//! and the zone mapping information) of all live keyspaces. It does so by
//! maintaining an in-memory keyspace table backed by a metadata zone in
//! the underlying ZNS SSD for data persistence." (Section IV)
//!
//! Sketches — "a pivot primary index key and a block pointer for every
//! constituent PIDX data block" — live here too, as keyspace metadata.

use std::collections::{BTreeMap, HashMap};

use kvcsd_proto::{KeyspaceState, SecondaryIndexSpec};
use kvcsd_sim::sync::Mutex;

use crate::error::DeviceError;
use crate::ingest::WriteLog;
use crate::zone_mgr::ClusterId;
use crate::Result;

/// Block-level index sketch: the first (pivot) key of every 4 KiB block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sketch {
    pivots: Vec<Vec<u8>>,
}

impl Sketch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record block `i`'s pivot; blocks must be pushed in order.
    pub fn push(&mut self, pivot: Vec<u8>) {
        debug_assert!(self.pivots.last().is_none_or(|p| p <= &pivot));
        self.pivots.push(pivot);
    }

    /// Rebuild a sketch from persisted pivots (snapshot restore).
    pub fn from_pivots(pivots: Vec<Vec<u8>>) -> Self {
        debug_assert!(pivots.windows(2).all(|w| w[0] <= w[1]));
        Self { pivots }
    }

    /// The pivot keys, one per block (snapshot serialization).
    pub fn pivots(&self) -> &[Vec<u8>] {
        &self.pivots
    }

    /// Number of blocks covered.
    pub fn blocks(&self) -> u32 {
        self.pivots.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.pivots.is_empty()
    }

    /// Approximate in-memory footprint (for DRAM accounting).
    pub fn approx_bytes(&self) -> u64 {
        self.pivots.iter().map(|p| p.len() as u64 + 24).sum()
    }

    /// Block where a search for `key` must start: the last block whose
    /// pivot is <= `key` (or block 0 when `key` precedes every pivot —
    /// the caller's scan will simply start at the beginning).
    pub fn locate(&self, key: &[u8]) -> Option<u32> {
        if self.pivots.is_empty() {
            return None;
        }
        let ix = self.pivots.partition_point(|p| p.as_slice() <= key);
        Some(ix.saturating_sub(1) as u32)
    }

    /// Number of pivot comparisons a binary search performs (for cost
    /// charging).
    pub fn search_cost(&self) -> f64 {
        (self.pivots.len().max(2) as f64).log2()
    }
}

/// A built secondary index attached to a COMPACTED keyspace.
#[derive(Debug)]
pub struct SecondaryIndex {
    pub spec: SecondaryIndexSpec,
    pub cluster: ClusterId,
    pub blocks: u32,
    pub sketch: Sketch,
    pub entries: u64,
}

/// Per-keyspace storage attachments, by lifecycle phase.
#[derive(Debug, Default)]
pub struct KsStorage {
    /// WRITABLE phase: live write log (owns KLOG/VLOG writers).
    pub wlog: Option<WriteLog>,
    /// WRITABLE phase with WAL enabled: the device write-ahead log.
    pub dwal: Option<crate::wal::DeviceWal>,
    /// COMPACTING/COMPACTED: sealed log clusters and their byte lengths.
    pub klog: Option<(ClusterId, u64)>,
    pub vlog: Option<(ClusterId, u64)>,
    /// COMPACTED: primary index and sorted values.
    pub pidx: Option<(ClusterId, u32)>,
    pub pidx_sketch: Sketch,
    pub svalues: Option<(ClusterId, u64)>,
    /// COMPACTED: secondary indexes by name.
    pub sidx: BTreeMap<String, SecondaryIndex>,
}

/// One keyspace's full record in the keyspace table.
#[derive(Debug)]
pub struct Keyspace {
    pub id: u32,
    pub name: String,
    pub state: KeyspaceState,
    pub pairs: u64,
    pub data_bytes: u64,
    pub min_key: Option<Vec<u8>>,
    pub max_key: Option<Vec<u8>>,
    pub storage: KsStorage,
}

impl Keyspace {
    /// A fresh EMPTY keyspace record (public for snapshot restore).
    pub fn new(id: u32, name: String) -> Self {
        Self {
            id,
            name,
            state: KeyspaceState::Empty,
            pairs: 0,
            data_bytes: 0,
            min_key: None,
            max_key: None,
            storage: KsStorage::default(),
        }
    }

    /// The single checkpoint through which every keyspace state change
    /// flows: checks the edge against
    /// [`crate::lifecycle::KEYSPACE_TRANSITIONS`] and rejects illegal
    /// ones without moving the state.
    pub fn transition_to(&mut self, to: KeyspaceState) -> Result<()> {
        match crate::lifecycle::KEYSPACE_TRANSITIONS.check(self.state, to) {
            Ok(()) => {
                self.state = to;
                Ok(())
            }
            Err(_) => Err(DeviceError::IllegalTransition {
                machine: "keyspace",
                from: self.state.name(),
                to: to.name(),
            }),
        }
    }

    /// Guard: error unless the keyspace is in `expect`.
    pub fn require_state(&self, expect: KeyspaceState, op: &'static str) -> Result<()> {
        if self.state != expect {
            return Err(DeviceError::BadState {
                state: self.state.name(),
                op,
            });
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct KmInner {
    by_id: HashMap<u32, Keyspace>,
    by_name: HashMap<String, u32>,
    next_id: u32,
}

/// The in-memory keyspace table. Persistence lives one level up: the
/// device serializes the whole table (plus zone-manager state) into the
/// metadata zone after every table mutation — see `crate::snapshot`.
#[derive(Debug, Default)]
pub struct KeyspaceManager {
    inner: Mutex<KmInner>,
}

impl KeyspaceManager {
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(KmInner {
                by_id: HashMap::new(),
                by_name: HashMap::new(),
                next_id: 1,
            }),
        }
    }

    /// Create a keyspace; name must be unique.
    pub fn create(&self, name: &str) -> Result<u32> {
        let mut inner = self.inner.lock();
        if inner.by_name.contains_key(name) {
            return Err(DeviceError::KeyspaceExists);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.by_name.insert(name.to_string(), id);
        inner.by_id.insert(id, Keyspace::new(id, name.to_string()));
        Ok(id)
    }

    /// Reinstall a keyspace record during snapshot restore.
    pub fn insert_restored(&self, ks: Keyspace) {
        let mut inner = self.inner.lock();
        inner.next_id = inner.next_id.max(ks.id + 1);
        inner.by_name.insert(ks.name.clone(), ks.id);
        inner.by_id.insert(ks.id, ks);
    }

    /// Look up a keyspace id by name.
    pub fn lookup(&self, name: &str) -> Result<u32> {
        self.inner
            .lock()
            .by_name
            .get(name)
            .copied()
            .ok_or(DeviceError::KeyspaceNotFound)
    }

    /// Remove a keyspace from the table, returning its record (the caller
    /// releases its clusters).
    pub fn remove(&self, id: u32) -> Result<Keyspace> {
        let ks = {
            let mut inner = self.inner.lock();
            let ks = inner
                .by_id
                .remove(&id)
                .ok_or(DeviceError::KeyspaceNotFound)?;
            inner.by_name.remove(&ks.name);
            ks
        };
        Ok(ks)
    }

    /// Run `f` with mutable access to a keyspace record.
    pub fn with_mut<T>(&self, id: u32, f: impl FnOnce(&mut Keyspace) -> Result<T>) -> Result<T> {
        let mut inner = self.inner.lock();
        let ks = inner
            .by_id
            .get_mut(&id)
            .ok_or(DeviceError::KeyspaceNotFound)?;
        f(ks)
    }

    /// Run `f` with shared access to a keyspace record.
    pub fn with<T>(&self, id: u32, f: impl FnOnce(&Keyspace) -> Result<T>) -> Result<T> {
        let inner = self.inner.lock();
        let ks = inner.by_id.get(&id).ok_or(DeviceError::KeyspaceNotFound)?;
        f(ks)
    }

    /// Enumerate `(id, name, state)` of all live keyspaces, by id.
    pub fn list(&self) -> Vec<(u32, String, KeyspaceState)> {
        let inner = self.inner.lock();
        let mut v: Vec<_> = inner
            .by_id
            .values()
            .map(|k| (k.id, k.name.clone(), k.state))
            .collect();
        v.sort_by_key(|e| e.0);
        v
    }

    /// Number of live keyspaces.
    pub fn len(&self) -> usize {
        self.inner.lock().by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of all live keyspaces (used when building snapshots).
    pub fn ids(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.inner.lock().by_id.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Run `f` over all keyspace records (sorted by id) under the table
    /// lock — the snapshot-serialization entry point.
    pub fn with_all<T>(&self, f: impl FnOnce(&[&Keyspace]) -> T) -> T {
        let inner = self.inner.lock();
        let mut refs: Vec<&Keyspace> = inner.by_id.values().collect();
        refs.sort_by_key(|k| k.id);
        f(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn km() -> KeyspaceManager {
        KeyspaceManager::new()
    }

    #[test]
    fn create_lookup_remove() {
        let km = km();
        let id = km.create("particles").unwrap();
        assert_eq!(km.lookup("particles").unwrap(), id);
        assert_eq!(km.len(), 1);
        assert!(matches!(
            km.create("particles"),
            Err(DeviceError::KeyspaceExists)
        ));
        let ks = km.remove(id).unwrap();
        assert_eq!(ks.name, "particles");
        assert!(matches!(
            km.lookup("particles"),
            Err(DeviceError::KeyspaceNotFound)
        ));
        // Names are reusable after deletion.
        km.create("particles").unwrap();
    }

    #[test]
    fn new_keyspace_starts_empty() {
        let km = km();
        let id = km.create("x").unwrap();
        km.with(id, |ks| {
            assert_eq!(ks.state, KeyspaceState::Empty);
            assert_eq!(ks.pairs, 0);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn state_guard_errors_carry_context() {
        let km = km();
        let id = km.create("x").unwrap();
        let err = km
            .with(id, |ks| ks.require_state(KeyspaceState::Compacted, "query"))
            .unwrap_err();
        assert!(matches!(
            err,
            DeviceError::BadState {
                state: "EMPTY",
                op: "query"
            }
        ));
    }

    #[test]
    fn list_is_sorted_by_id() {
        let km = km();
        km.create("b").unwrap();
        km.create("a").unwrap();
        let list = km.list();
        assert_eq!(list.len(), 2);
        assert!(list[0].0 < list[1].0);
        assert_eq!(list[0].1, "b");
    }

    #[test]
    fn insert_restored_bumps_next_id() {
        let km = km();
        km.insert_restored(Keyspace::new(7, "restored".into()));
        assert_eq!(km.lookup("restored").unwrap(), 7);
        // Fresh creations never collide with restored ids.
        let id = km.create("new").unwrap();
        assert!(id > 7);
        assert_eq!(km.ids(), vec![7, id]);
    }

    #[test]
    fn many_keyspaces_supported() {
        let km = km();
        for i in 0..300 {
            km.create(&format!("ks{i}")).unwrap();
        }
        assert_eq!(km.len(), 300);
        assert_eq!(km.ids().len(), 300);
    }

    #[test]
    fn sketch_locate() {
        let mut s = Sketch::new();
        assert!(s.locate(b"anything").is_none());
        s.push(b"b".to_vec());
        s.push(b"f".to_vec());
        s.push(b"m".to_vec());
        assert_eq!(s.blocks(), 3);
        assert_eq!(s.locate(b"a"), Some(0), "before first pivot clamps to 0");
        assert_eq!(s.locate(b"b"), Some(0));
        assert_eq!(s.locate(b"e"), Some(0));
        assert_eq!(s.locate(b"f"), Some(1));
        assert_eq!(s.locate(b"g"), Some(1));
        assert_eq!(s.locate(b"z"), Some(2));
        assert!(s.search_cost() > 1.0);
        assert!(s.approx_bytes() > 0);
    }
}
