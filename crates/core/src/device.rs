//! [`KvCsdDevice`]: the on-SoC command processor.
//!
//! Implements [`DeviceHandler`], turning protocol commands into keyspace,
//! zone and index operations. Compaction and secondary-index construction
//! are *deferred*: the command enqueues a job and completes immediately;
//! [`KvCsdDevice::run_pending_jobs`] executes the queue. Benchmark
//! harnesses call that inside a *background* phase — the virtual clock the
//! host application sees does not advance, which is precisely the
//! latency-hiding the paper claims. A host that chooses to block (e.g.
//! [`kvcsd_client`]'s `wait_for`) polls the job and triggers execution,
//! paying the time in its own foreground phase instead.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use kvcsd_flash::ZonedNamespace;
use kvcsd_proto::{
    DeviceHandler, JobId, JobState, KeyspaceDesc, KeyspaceStat, KeyspaceState, KvCommand,
    KvResponse, KvStatus, SecondaryIndexSpec,
};
use kvcsd_sim::config::CostModel;
use kvcsd_sim::sync::{Mutex, Shared};
use kvcsd_sim::VirtualClock;

use crate::admission::{AdmissionConfig, AdmissionGate, Deadline, Decision, PressureSample};
use crate::artifact::{ArtifactPayload, KeyspaceArtifacts, SidxArtifact};
use crate::compact::run_compaction;
use crate::dram::DramBudget;
use crate::error::DeviceError;
use crate::ingest::WriteLog;
use crate::keyspace::{KeyspaceManager, SecondaryIndex, Sketch};
use crate::meta::MetaStore;
use crate::query;
use crate::sidx::build_secondary_index;
use crate::snapshot;
use crate::soc::SocCharger;
use crate::zone_mgr::{ClusterId, ZoneManager};
use crate::Result;
use crate::{BLOCK_BYTES, INGEST_BUFFER_BYTES};

/// Device construction parameters.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Zones per cluster (stripe width). Defaults to the channel count so
    /// a single keyspace already uses the SSD's full parallelism.
    pub cluster_width: u32,
    /// SoC DRAM budget in bytes.
    pub soc_dram_bytes: u64,
    /// Seed for the zone manager's randomized stripe offsets.
    pub seed: u64,
    /// Write-ahead-log buffered writes for crash durability. Off by
    /// default: "we expect production applications to frequently disable
    /// write-ahead-logging ... because many use checkpointing-restart".
    pub wal: bool,
    /// Overload-control watermarks and charges (see [`crate::admission`]).
    pub admission: AdmissionConfig,
    /// Virtual clock deadlines are checked against, shared with the
    /// harness so it can advance simulated time. A fresh clock is created
    /// when absent (deadline-free workloads never read it).
    pub clock: Option<Arc<VirtualClock>>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            cluster_width: 16,
            soc_dram_bytes: 8 << 30,
            seed: 0x5EED,
            wal: false,
            admission: AdmissionConfig::default(),
            clock: None,
        }
    }
}

#[derive(Debug)]
enum Job {
    Compact {
        ks: u32,
    },
    CompactAndIndex {
        ks: u32,
        specs: Vec<SecondaryIndexSpec>,
    },
    BuildSidx {
        ks: u32,
        spec: SecondaryIndexSpec,
    },
}

#[derive(Debug, Default)]
struct JobTable {
    next: u64,
    states: HashMap<u64, JobState>,
    /// `(id, job, deadline_ns)`: the deadline of the command that
    /// enqueued the job rides along so expired work is dropped instead
    /// of run.
    queue: VecDeque<(u64, Job, Option<u64>)>,
}

/// Zones 0..META_ZONES are reserved for the [`MetaStore`]'s ping-pong
/// snapshot pair and never enter the data zone pool.
const META_ZONES: u32 = 2;

/// The KV-CSD device: SoC + ZNS SSD behind an NVMe-KV interface.
pub struct KvCsdDevice {
    mgr: ZoneManager,
    km: KeyspaceManager,
    meta: Mutex<MetaStore>,
    soc: SocCharger,
    dram: DramBudget,
    cfg: DeviceConfig,
    jobs: Mutex<JobTable>,
    /// Queue-depth gauge mirroring `jobs.queue.len()`, maintained inside
    /// the `jobs` critical sections. Admission pressure probes read this
    /// [`Shared`] cell instead of taking the job lock (DESIGN.md §11).
    job_depth: Shared<usize>,
    gate: AdmissionGate,
    clock: Arc<VirtualClock>,
}

impl std::fmt::Debug for KvCsdDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvCsdDevice")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl KvCsdDevice {
    /// Assemble a fresh device over a zoned namespace. Zones 0 and 1 are
    /// reserved as the metadata ping-pong pair backing the keyspace table.
    pub fn new(zns: Arc<ZonedNamespace>, cost: CostModel, cfg: DeviceConfig) -> Self {
        let ledger = Arc::clone(zns.nand().ledger());
        let cluster_width = cfg.cluster_width.min(zns.nand().geometry().channels);
        let cfg = DeviceConfig {
            cluster_width,
            ..cfg
        };
        Self {
            mgr: ZoneManager::new(Arc::clone(&zns), META_ZONES, cfg.seed)
                .with_seal_reserve(2 * cluster_width),
            km: KeyspaceManager::new(),
            meta: Mutex::new(MetaStore::new(zns, 0)),
            soc: SocCharger::new(ledger, cost),
            dram: DramBudget::new(cfg.soc_dram_bytes),
            gate: AdmissionGate::new(cfg.admission),
            clock: cfg
                .clock
                .clone()
                .unwrap_or_else(|| Arc::new(VirtualClock::new())),
            cfg,
            jobs: Mutex::new(JobTable::default()),
            job_depth: Shared::new(0),
        }
    }

    /// Reopen a device after a restart: recover the keyspace table and
    /// zone map from the newest snapshot in the metadata zone.
    ///
    /// Recovery policy (Section IV semantics):
    /// * COMPACTED keyspaces come back fully queryable (indexes and
    ///   sketches restored);
    /// * COMPACTING keyspaces re-enqueue their compaction job from the
    ///   sealed logs;
    /// * WRITABLE keyspaces lose their buffered (never-synced) data and
    ///   reopen EMPTY — the same contract as any store whose WAL is
    ///   disabled, which the paper notes is the common production mode;
    /// * clusters referenced by no keyspace (in-flight sort temporaries,
    ///   dropped write logs) are reset and returned to the zone pool.
    pub fn reopen(zns: Arc<ZonedNamespace>, cost: CostModel, cfg: DeviceConfig) -> Result<Self> {
        let meta = MetaStore::new(Arc::clone(&zns), 0);
        let generations = meta.read_generations()?;
        if generations.is_empty() {
            // No valid generation can mean "fresh device" or "first-ever
            // snapshot tore" — but if *both* zones hold debris, durable
            // generations existed and were destroyed. Coming up empty
            // would silently un-ack them; refuse instead.
            if meta.is_doubly_corrupt()? {
                return Err(DeviceError::CorruptMetadata);
            }
            return Ok(Self::new(zns, cost, cfg));
        }

        let ledger = Arc::clone(zns.nand().ledger());
        let cluster_width = cfg.cluster_width.min(zns.nand().geometry().channels);
        let cfg = DeviceConfig {
            cluster_width,
            ..cfg
        };

        // Snapshots are tried newest first. A generation that passes its
        // CRC but fails to decode or restore (format damage the CRC does
        // not cover) is skipped in favour of the previous one rather than
        // bricking the device.
        let mut recovered = None;
        let mut last_err = None;
        let mut skipped = 0u64;
        for payload in &generations {
            let attempt = snapshot::decode(payload).and_then(|snap| {
                let mgr =
                    ZoneManager::restore(Arc::clone(&zns), META_ZONES, cfg.seed, &snap.zones)?
                        .with_seal_reserve(2 * cfg.cluster_width);
                Ok((snap, mgr))
            });
            match attempt {
                Ok(pair) => {
                    recovered = Some(pair);
                    break;
                }
                Err(e) => {
                    skipped += 1;
                    last_err = Some(e);
                }
            }
        }
        let Some((snap, mgr)) = recovered else {
            return Err(
                last_err.unwrap_or_else(|| DeviceError::Internal("no recoverable snapshot".into()))
            );
        };
        if skipped > 0 {
            ledger.bump("dev_snapshot_generations_skipped", skipped);
        }
        let km = KeyspaceManager::new();

        let mut referenced: Vec<ClusterId> = Vec::new();
        let mut recompact: Vec<u32> = Vec::new();
        let mut rewal: Vec<u32> = Vec::new();
        for mut ks in snap.keyspaces {
            match ks.state {
                KeyspaceState::Writable => {
                    let wal = ks.storage.dwal.take();
                    // The DRAM ingest buffer is gone either way; without a
                    // WAL the keyspace restarts EMPTY, with one its synced
                    // records are replayed below.
                    ks.transition_to(KeyspaceState::Empty)?;
                    ks.pairs = 0;
                    ks.data_bytes = 0;
                    ks.min_key = None;
                    ks.max_key = None;
                    ks.storage = Default::default();
                    if let Some(w) = wal {
                        referenced.push(w.cluster());
                        ks.storage.dwal = Some(w);
                        rewal.push(ks.id);
                    }
                }
                KeyspaceState::Compacting => recompact.push(ks.id),
                _ => {}
            }
            let s = &ks.storage;
            referenced.extend(s.klog.map(|c| c.0));
            referenced.extend(s.vlog.map(|c| c.0));
            referenced.extend(s.pidx.map(|c| c.0));
            referenced.extend(s.svalues.map(|c| c.0));
            referenced.extend(s.sidx.values().map(|i| i.cluster));
            km.insert_restored(ks);
        }
        // Orphan cleanup: anything the snapshot's cluster map holds that
        // no keyspace references was in-flight at crash time.
        for cs in &snap.zones.clusters {
            let id = ClusterId(cs.id);
            if !referenced.contains(&id) {
                mgr.release_cluster(id)?;
            }
        }

        let dev = Self {
            mgr,
            km,
            meta: Mutex::new(meta),
            soc: SocCharger::new(ledger, cost),
            dram: DramBudget::new(cfg.soc_dram_bytes),
            gate: AdmissionGate::new(cfg.admission),
            clock: cfg
                .clock
                .clone()
                .unwrap_or_else(|| Arc::new(VirtualClock::new())),
            cfg,
            jobs: Mutex::new(JobTable::default()),
            job_depth: Shared::new(0),
        };
        for ks in recompact {
            dev.enqueue(Job::Compact { ks }, None);
        }
        for ks in rewal {
            dev.replay_wal(ks)?;
        }
        dev.persist()?;
        Ok(dev)
    }

    /// Rebuild a WRITABLE keyspace's ingest state by replaying its WAL.
    fn replay_wal(&self, ks: u32) -> Result<()> {
        let wal_cluster = self.km.with(ks, |k| {
            k.storage
                .dwal
                .as_ref()
                .map(|w| w.cluster())
                .ok_or_else(|| DeviceError::Internal("replay without wal".into()))
        })?;
        // Block count comes from the zones' write pointers (ground truth).
        let wal_blocks = self.mgr.cluster_blocks(wal_cluster)?;
        // The guard releases the ingest buffer if any allocation or the
        // replay below fails; on success it is leaked into the keyspace,
        // which releases at seal or delete.
        let ingest = self
            .dram
            .reserve(INGEST_BUFFER_BYTES as u64)
            .ok_or_else(|| DeviceError::OutOfResources("ingest DRAM".into()))?;
        let kc = self.mgr.alloc_cluster(self.cfg.cluster_width)?;
        let vc = self.mgr.alloc_cluster(self.cfg.cluster_width)?;
        let mut wlog = WriteLog::new(kc, vc);
        let replayed =
            crate::wal::DeviceWal::replay(&self.mgr, wal_cluster, wal_blocks, |k, v| {
                wlog.put(&self.mgr, &self.soc, &k, &v)
            })?;
        self.soc.ledger().bump("dev_wal_replayed_records", replayed);
        self.km.with_mut(ks, |k| {
            k.transition_to(KeyspaceState::Writable)?;
            k.pairs = wlog.pairs;
            k.data_bytes = wlog.data_bytes;
            k.min_key = wlog.min_key.clone();
            k.max_key = wlog.max_key.clone();
            k.storage.wlog = Some(wlog);
            k.storage.dwal = Some(crate::wal::DeviceWal::resume(wal_cluster, wal_blocks));
            Ok(())
        })?;
        ingest.leak();
        Ok(())
    }

    /// Serialize the device state into the metadata zone. Called after
    /// every keyspace-table mutation.
    pub fn persist(&self) -> Result<()> {
        let zones = self.mgr.export_state();
        let payload = self
            .km
            .with_all(|list| snapshot::encode_parts(&zones, list));
        self.meta.lock().write(&payload)
    }

    /// Snapshots written to the metadata zone so far.
    pub fn persisted_snapshots(&self) -> u64 {
        self.meta.lock().snapshots_written()
    }

    // ---- replication artifact hooks ----------------------------------------

    /// Export a keyspace's durable artifacts for replication.
    ///
    /// What is exported depends on the compaction phase:
    /// * COMPACTING / DEGRADED (and READ_ONLY holding raw logs): the
    ///   sealed KLOG/VLOG pair — every sealed pair is in the payload, so
    ///   a replica installing it loses nothing acked-and-sealed even if
    ///   this primary dies mid-compaction;
    /// * COMPACTED (and READ_ONLY with its index intact): the built
    ///   primary/secondary indexes and sorted values, installed verbatim
    ///   by the importer — no re-compaction on the replica.
    ///
    /// WRITABLE and EMPTY keyspaces have nothing cluster-durable to ship
    /// (the ingest buffer is volatile by contract) and return a typed
    /// state error. All NAND reads are charged to the ledger as usual —
    /// replication export is honestly costed.
    pub fn export_keyspace_artifacts(&self, ks: u32) -> Result<KeyspaceArtifacts> {
        let art = self.km.with(ks, |k| {
            let s = &k.storage;
            let payload = if let (Some((pc, pblocks)), Some((vc, vlen))) = (s.pidx, s.svalues) {
                let sidx = s
                    .sidx
                    .values()
                    .map(|i| {
                        Ok(SidxArtifact {
                            spec: i.spec.clone(),
                            entries: i.entries,
                            pivots: i.sketch.pivots().to_vec(),
                            data: self.mgr.read_bytes(
                                i.cluster,
                                0,
                                i.blocks as usize * BLOCK_BYTES,
                            )?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                ArtifactPayload::Compacted {
                    pidx: self.mgr.read_bytes(pc, 0, pblocks as usize * BLOCK_BYTES)?,
                    pidx_pivots: s.pidx_sketch.pivots().to_vec(),
                    svalues: self.mgr.read_bytes(vc, 0, vlen as usize)?,
                    sidx,
                }
            } else if let (Some((kc, klen)), Some((vc, vlen))) = (s.klog, s.vlog) {
                ArtifactPayload::SealedLogs {
                    klog: self.mgr.read_bytes(kc, 0, klen as usize)?,
                    vlog: self.mgr.read_bytes(vc, 0, vlen as usize)?,
                }
            } else {
                return Err(DeviceError::BadState {
                    state: k.state.name(),
                    op: "export_artifacts",
                });
            };
            Ok(KeyspaceArtifacts {
                name: k.name.clone(),
                pairs: k.pairs,
                data_bytes: k.data_bytes,
                min_key: k.min_key.clone(),
                max_key: k.max_key.clone(),
                payload,
            })
        })?;
        self.soc.ledger().bump("dev_artifacts_exported", 1);
        Ok(art)
    }

    /// Install a shipped artifact, superseding any same-name keyspace.
    ///
    /// `SealedLogs` payloads install DEGRADED — exactly the state a
    /// crashed-mid-compaction keyspace reopens in — so a subsequent
    /// COMPACT command walks the ordinary DEGRADED → COMPACTING recovery
    /// edge. `Compacted` payloads install fully queryable, verbatim.
    /// Returns the new keyspace id. On error mid-install the keyspace is
    /// absent from the table; any clusters already written are reclaimed
    /// as orphans by the next reopen.
    pub fn import_keyspace_artifacts(&self, art: &KeyspaceArtifacts) -> Result<u32> {
        if let Ok(existing) = self.km.lookup(&art.name) {
            self.do_delete(existing)?;
        }
        let id = self.km.create(&art.name)?;
        match &art.payload {
            ArtifactPayload::SealedLogs { klog, vlog } => {
                let kc = self.write_artifact_cluster(klog)?;
                let vc = self.write_artifact_cluster(vlog)?;
                self.km.with_mut(id, |k| {
                    k.pairs = art.pairs;
                    k.data_bytes = art.data_bytes;
                    k.min_key = art.min_key.clone();
                    k.max_key = art.max_key.clone();
                    k.storage.klog = Some((kc, klog.len() as u64));
                    k.storage.vlog = Some((vc, vlog.len() as u64));
                    // kvcsd-check: allow(fsm-bypass) -- artifact import reinstalls the primary's sealed-log phase verbatim (EMPTY has no edge to DEGRADED); promotion re-enters via the checked DEGRADED -> COMPACTING transition
                    k.state = KeyspaceState::Degraded;
                    Ok(())
                })?;
            }
            ArtifactPayload::Compacted {
                pidx,
                pidx_pivots,
                svalues,
                sidx,
            } => {
                let pc = self.write_artifact_cluster(pidx)?;
                let vc = self.write_artifact_cluster(svalues)?;
                let mut indexes = Vec::with_capacity(sidx.len());
                for s in sidx {
                    let c = self.write_artifact_cluster(&s.data)?;
                    indexes.push(SecondaryIndex {
                        spec: s.spec.clone(),
                        cluster: c,
                        blocks: (s.data.len() / BLOCK_BYTES) as u32,
                        sketch: Sketch::from_pivots(s.pivots.clone()),
                        entries: s.entries,
                    });
                }
                self.km.with_mut(id, |k| {
                    k.pairs = art.pairs;
                    k.data_bytes = art.data_bytes;
                    k.min_key = art.min_key.clone();
                    k.max_key = art.max_key.clone();
                    k.storage.pidx = Some((pc, (pidx.len() / BLOCK_BYTES) as u32));
                    k.storage.pidx_sketch = Sketch::from_pivots(pidx_pivots.clone());
                    k.storage.svalues = Some((vc, svalues.len() as u64));
                    for i in indexes {
                        k.storage.sidx.insert(i.spec.name.clone(), i);
                    }
                    k.transition_to(KeyspaceState::Compacted)?;
                    Ok(())
                })?;
            }
        }
        self.persist()?;
        self.soc.ledger().bump("dev_artifacts_imported", 1);
        Ok(id)
    }

    /// Append `data` into a fresh cluster in 4 KiB blocks.
    fn write_artifact_cluster(&self, data: &[u8]) -> Result<ClusterId> {
        let c = self.mgr.alloc_cluster(self.cfg.cluster_width)?;
        for chunk in data.chunks(BLOCK_BYTES) {
            self.mgr.append_block(c, chunk)?;
        }
        Ok(c)
    }

    /// The zone manager (diagnostics).
    pub fn zone_manager(&self) -> &ZoneManager {
        &self.mgr
    }

    /// The keyspace manager (diagnostics).
    pub fn keyspaces(&self) -> &KeyspaceManager {
        &self.km
    }

    /// SoC DRAM budget (diagnostics).
    pub fn dram(&self) -> &DramBudget {
        &self.dram
    }

    /// The SoC cost charger (diagnostics / ledger access).
    pub fn soc(&self) -> &SocCharger {
        &self.soc
    }

    /// Jobs waiting to run. Reads the cached depth gauge — pressure
    /// probes don't contend on the job lock.
    pub fn pending_jobs(&self) -> usize {
        self.job_depth.get()
    }

    /// The admission gate (diagnostics: `is_engaged`, watermarks).
    pub fn admission_gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// The virtual clock deadlines are checked against.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Pressure sample for the three admission signals, targeting `ks`.
    fn pressure_for(&self, ks: u32) -> PressureSample {
        PressureSample {
            dram_usage: self.dram.usage_fraction(),
            pending_jobs: self.pending_jobs(),
            compaction_debt: self.km.with(ks, |k| Ok(k.data_bytes)).unwrap_or(0),
        }
    }

    /// Charge a simulated admission delay to the clock and the ledger.
    fn charge_wait(&self, ns: u64, counter: &'static str) {
        self.clock.advance(ns);
        self.soc.ledger().bump(counter, 1);
        self.soc.ledger().bump("dev_admission_wait_ns", ns);
    }

    /// Gate a write-path command: slowdowns are charged and admitted,
    /// stalls are charged and bounced (`Stalled`), rejects fail fast
    /// (`Busy`). The deadline is re-checked after any charged wait.
    fn admit_write(&self, ks: u32, deadline: &Deadline<'_>) -> Result<()> {
        match self.gate.admit_write(&self.pressure_for(ks)) {
            Decision::Admit => Ok(()),
            Decision::Slowdown { charge_ns } => {
                self.charge_wait(charge_ns, "dev_admission_slowdowns");
                deadline.check()
            }
            Decision::Stall { charge_ns } => {
                self.charge_wait(charge_ns, "dev_admission_stalls");
                deadline.check()?;
                Err(DeviceError::Stalled)
            }
            Decision::Reject { reason } => {
                self.soc.ledger().bump("dev_admission_rejects", 1);
                Err(DeviceError::Busy(reason))
            }
        }
    }

    /// Gate a query: at most a charged slowdown, never a stall or reject.
    fn admit_query(&self, ks: u32, deadline: &Deadline<'_>) -> Result<()> {
        if let Decision::Slowdown { charge_ns } = self.gate.admit_query(&self.pressure_for(ks)) {
            self.charge_wait(charge_ns, "dev_admission_slowdowns");
            deadline.check()?;
        }
        Ok(())
    }

    /// Gate a job submission: a full queue is an admission rejection and
    /// counts as one, exactly like a rejected write.
    fn admit_job(&self) -> Result<()> {
        self.gate.admit_job(self.pending_jobs()).inspect_err(|_| {
            self.soc.ledger().bump("dev_admission_rejects", 1);
        })
    }

    // ---- job machinery -----------------------------------------------------

    fn enqueue(&self, job: Job, deadline_ns: Option<u64>) -> JobId {
        let mut jobs = self.jobs.lock();
        jobs.next += 1;
        let id = jobs.next;
        jobs.states.insert(id, JobState::Pending);
        jobs.queue.push_back((id, job, deadline_ns));
        self.job_depth.set(jobs.queue.len());
        JobId(id)
    }

    /// Execute all queued background jobs. Call inside a *background*
    /// phase to model the device's asynchronous processing; call inline to
    /// model a host that blocks on completion.
    ///
    /// Transient flash errors are retried with bounded exponential
    /// backoff; a compaction that still fails leaves its keyspace
    /// DEGRADED (sealed logs intact, deletable, re-compactable) rather
    /// than poisoned.
    pub fn run_pending_jobs(&self) -> usize {
        let mut ran = 0;
        loop {
            let next = {
                let mut jobs = self.jobs.lock();
                let Some((id, job, deadline_ns)) = jobs.queue.pop_front() else {
                    break;
                };
                self.job_depth.set(jobs.queue.len());
                jobs.states.insert(id, JobState::Running);
                (id, job, deadline_ns)
            };
            let (id, job, deadline_ns) = next;
            let deadline = Deadline::new(&self.clock, deadline_ns);
            // An expired job is dropped, not run: its keyspace unwinds
            // below exactly as if the job had failed mid-flight.
            let outcome = deadline
                .check()
                .and_then(|()| self.exec_job_with_retry(&job, &deadline));
            match outcome {
                Ok(()) => {
                    self.jobs.lock().states.insert(id, JobState::Done);
                }
                Err(e) => {
                    let is_compaction =
                        matches!(job, Job::Compact { .. } | Job::CompactAndIndex { .. });
                    // A compaction that died on the media or ran out of
                    // time leaves the keyspace DEGRADED: its sealed logs
                    // are intact, it can be deleted or re-compacted, and
                    // no other keyspace is affected. One that ran out of
                    // *space* leaves it READ_ONLY: same sealed logs, but
                    // the typed state tells clients writes will not help
                    // until space is reclaimed.
                    let to = match &e {
                        DeviceError::Flash(_) | DeviceError::DeadlineExceeded if is_compaction => {
                            Some(KeyspaceState::Degraded)
                        }
                        DeviceError::OutOfResources(_) if is_compaction => {
                            Some(KeyspaceState::ReadOnly)
                        }
                        // An index build that ran out of zones freezes its
                        // (already compacted, still queryable) keyspace so
                        // clients stop submitting work the device cannot
                        // finish until space is reclaimed.
                        DeviceError::OutOfResources(m) if m.contains("zone") => {
                            Some(KeyspaceState::ReadOnly)
                        }
                        _ => None,
                    };
                    let ks = match &job {
                        Job::Compact { ks }
                        | Job::CompactAndIndex { ks, .. }
                        | Job::BuildSidx { ks, .. } => *ks,
                    };
                    self.jobs
                        .lock()
                        .states
                        .insert(id, JobState::Failed(KvStatus::from(e)));
                    if let Some(to) = to {
                        let _ = self.km.with_mut(ks, |k| {
                            let from_ok = match to {
                                KeyspaceState::ReadOnly => matches!(
                                    k.state,
                                    KeyspaceState::Compacting | KeyspaceState::Compacted
                                ),
                                _ => k.state == KeyspaceState::Compacting,
                            };
                            if from_ok {
                                k.transition_to(to)?;
                            }
                            Ok(())
                        });
                        let counter = match to {
                            KeyspaceState::ReadOnly => "dev_keyspaces_readonly",
                            _ => "dev_keyspaces_degraded",
                        };
                        self.soc.ledger().bump(counter, 1);
                        // Persisting may itself fail under power loss;
                        // reopen re-derives the state from the sealed logs.
                        let _ = self.persist();
                    }
                }
            }
            ran += 1;
        }
        ran
    }

    /// Retry budget for transient flash errors inside background jobs.
    const JOB_MAX_RETRIES: u32 = 4;
    /// First backoff step; doubles per retry (simulated time, ledger only).
    const JOB_BACKOFF_BASE_NS: u64 = 50_000;

    fn exec_job(&self, job: &Job, deadline: &Deadline<'_>) -> Result<()> {
        match job {
            Job::Compact { ks } => self.exec_compact(*ks, deadline),
            Job::CompactAndIndex { ks, specs } => self.exec_compact_and_index(*ks, specs, deadline),
            Job::BuildSidx { ks, spec } => self.exec_build_sidx(*ks, spec, deadline),
        }
    }

    /// Run one job, retrying transient flash errors with bounded
    /// exponential backoff. Clusters allocated by a failed attempt are
    /// swept immediately so retries do not leak zones. The deadline is
    /// re-checked before every retry so an expired job stops burning
    /// backoff budget.
    fn exec_job_with_retry(&self, job: &Job, deadline: &Deadline<'_>) -> Result<()> {
        let mut attempt = 0u32;
        loop {
            let before: HashSet<u32> = self
                .mgr
                .export_state()
                .clusters
                .iter()
                .map(|c| c.id)
                .collect();
            let r = self.exec_job(job, deadline);
            if r.is_err() {
                self.sweep_job_orphans(&before);
            }
            match r {
                Err(DeviceError::Flash(ref f))
                    if f.is_transient() && attempt < Self::JOB_MAX_RETRIES =>
                {
                    deadline.check()?;
                    attempt += 1;
                    self.soc.ledger().bump("dev_job_retries", 1);
                    self.soc.ledger().bump(
                        "dev_job_backoff_ns",
                        Self::JOB_BACKOFF_BASE_NS << (attempt - 1),
                    );
                }
                other => return other,
            }
        }
    }

    /// Release clusters a failed job allocated that no keyspace ended up
    /// referencing — the in-session analogue of reopen's orphan cleanup.
    fn sweep_job_orphans(&self, before: &HashSet<u32>) {
        let after = self.mgr.export_state();
        let referenced = self.referenced_clusters();
        for cs in &after.clusters {
            if !before.contains(&cs.id) && !referenced.contains(&cs.id) {
                // Zone resets can fail too under power loss; reopen's
                // orphan sweep is the backstop.
                if self.mgr.release_cluster(ClusterId(cs.id)).is_ok() {
                    self.soc.ledger().bump("dev_job_orphans_released", 1);
                }
            }
        }
    }

    /// Every cluster currently referenced by some keyspace's storage.
    fn referenced_clusters(&self) -> HashSet<u32> {
        self.km.with_all(|list| {
            let mut set = HashSet::new();
            for ks in list {
                let s = &ks.storage;
                if let Some(w) = &s.wlog {
                    set.insert(w.klog.cluster().0);
                    set.insert(w.vlog.cluster().0);
                }
                if let Some(w) = &s.dwal {
                    set.insert(w.cluster().0);
                }
                for c in [
                    s.klog.map(|c| c.0),
                    s.vlog.map(|c| c.0),
                    s.pidx.map(|c| c.0),
                    s.svalues.map(|c| c.0),
                ]
                .into_iter()
                .flatten()
                {
                    set.insert(c.0);
                }
                for i in s.sidx.values() {
                    set.insert(i.cluster.0);
                }
            }
            set
        })
    }

    /// Run queued jobs that belong to keyspace `ks` (used before delete).
    fn run_jobs_for(&self, ks: u32) {
        let has_any = {
            let jobs = self.jobs.lock();
            jobs.queue.iter().any(|(_, j, _)| match j {
                Job::Compact { ks: k }
                | Job::CompactAndIndex { ks: k, .. }
                | Job::BuildSidx { ks: k, .. } => *k == ks,
            })
        };
        if has_any {
            // Deletion "may be deferred due to on-going compaction or
            // index operations": simplest faithful behaviour is to finish
            // them first.
            self.run_pending_jobs();
        }
    }

    fn exec_compact(&self, ks: u32, deadline: &Deadline<'_>) -> Result<()> {
        let (klog, vlog, pairs) = self.km.with(ks, |k| {
            let klog = k
                .storage
                .klog
                .ok_or_else(|| DeviceError::Internal("no klog".into()))?;
            let vlog = k
                .storage
                .vlog
                .ok_or_else(|| DeviceError::Internal("no vlog".into()))?;
            Ok((klog, vlog, k.pairs))
        })?;
        let out = run_compaction(
            &self.mgr,
            &self.soc,
            &self.dram,
            klog,
            vlog,
            pairs,
            self.cfg.cluster_width,
            deadline,
        )?;
        self.km.with_mut(ks, |k| {
            k.storage.klog = None;
            k.storage.vlog = None;
            k.storage.pidx = Some(out.pidx);
            k.storage.pidx_sketch = out.sketch.clone();
            k.storage.svalues = Some(out.svalues);
            k.transition_to(KeyspaceState::Compacted)?;
            Ok(())
        })?;
        self.persist()?;
        self.soc.ledger().bump("dev_compactions", 1);
        Ok(())
    }

    /// Single-pass compaction + index construction, with the paper's
    /// fallback: "resort back to separated index construction when DRAM
    /// resources become a bottleneck".
    fn exec_compact_and_index(
        &self,
        ks: u32,
        specs: &[SecondaryIndexSpec],
        deadline: &Deadline<'_>,
    ) -> Result<()> {
        let (klog, vlog, pairs) = self.km.with(ks, |k| {
            let klog = k
                .storage
                .klog
                .ok_or_else(|| DeviceError::Internal("no klog".into()))?;
            let vlog = k
                .storage
                .vlog
                .ok_or_else(|| DeviceError::Internal("no vlog".into()))?;
            Ok((klog, vlog, k.pairs))
        })?;
        match crate::compact::run_compaction_with_indexes(
            &self.mgr,
            &self.soc,
            &self.dram,
            klog,
            vlog,
            pairs,
            self.cfg.cluster_width,
            specs,
            deadline,
        ) {
            Ok((out, souts)) => {
                self.km.with_mut(ks, |k| {
                    k.storage.klog = None;
                    k.storage.vlog = None;
                    k.storage.pidx = Some(out.pidx);
                    k.storage.pidx_sketch = out.sketch.clone();
                    k.storage.svalues = Some(out.svalues);
                    for (spec, sout) in specs.iter().zip(souts) {
                        k.storage.sidx.insert(
                            spec.name.clone(),
                            SecondaryIndex {
                                spec: spec.clone(),
                                cluster: sout.cluster,
                                blocks: sout.blocks,
                                sketch: sout.sketch,
                                entries: sout.entries,
                            },
                        );
                    }
                    k.transition_to(KeyspaceState::Compacted)?;
                    Ok(())
                })?;
                self.persist()?;
                self.soc.ledger().bump("dev_single_pass_compactions", 1);
                Ok(())
            }
            // Zone exhaustion is not a DRAM bottleneck; the separated
            // path would only fail the same way. Let it surface so the
            // keyspace degrades to READ_ONLY.
            Err(DeviceError::OutOfResources(m)) if !m.contains("zone") => {
                // DRAM bottleneck: separated construction.
                self.soc.ledger().bump("dev_single_pass_fallbacks", 1);
                self.exec_compact(ks, deadline)?;
                for spec in specs {
                    deadline.check()?;
                    self.exec_build_sidx(ks, spec, deadline)?;
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn exec_build_sidx(
        &self,
        ks: u32,
        spec: &SecondaryIndexSpec,
        deadline: &Deadline<'_>,
    ) -> Result<()> {
        let (pidx, svalues) = self.km.with(ks, |k| {
            k.require_state(KeyspaceState::Compacted, "build_sidx")?;
            Ok((
                k.storage
                    .pidx
                    .ok_or_else(|| DeviceError::Internal("no pidx".into()))?,
                k.storage
                    .svalues
                    .ok_or_else(|| DeviceError::Internal("no svalues".into()))?,
            ))
        })?;
        let out = build_secondary_index(
            &self.mgr,
            &self.soc,
            &self.dram,
            pidx,
            svalues,
            spec,
            self.cfg.cluster_width,
            deadline,
        )?;
        self.km.with_mut(ks, |k| {
            k.storage.sidx.insert(
                spec.name.clone(),
                SecondaryIndex {
                    spec: spec.clone(),
                    cluster: out.cluster,
                    blocks: out.blocks,
                    sketch: out.sketch.clone(),
                    entries: out.entries,
                },
            );
            Ok(())
        })?;
        self.persist()?;
        self.soc.ledger().bump("dev_sidx_builds", 1);
        Ok(())
    }

    // ---- command implementations --------------------------------------------

    fn ensure_writable(&self, ks: u32) -> Result<()> {
        // EMPTY -> WRITABLE on first write: allocate the log clusters and
        // the 192 KiB ingest buffer.
        let needs_open = self.km.with(ks, |k| match k.state {
            KeyspaceState::Writable => Ok(false),
            KeyspaceState::Empty => Ok(true),
            _ => Err(DeviceError::BadState {
                state: k.state.name(),
                op: "put",
            }),
        })?;
        if !needs_open {
            return Ok(());
        }
        // The guard releases the ingest buffer if any cluster allocation
        // fails (previously this leaked); on success it is leaked into the
        // keyspace, which releases at seal or delete.
        let ingest = self
            .dram
            .reserve(INGEST_BUFFER_BYTES as u64)
            .ok_or_else(|| DeviceError::OutOfResources("ingest DRAM".into()))?;
        let kc = self.mgr.alloc_cluster(self.cfg.cluster_width)?;
        let vc = self.mgr.alloc_cluster(self.cfg.cluster_width)?;
        let wal = if self.cfg.wal {
            Some(crate::wal::DeviceWal::new(
                self.mgr.alloc_cluster(self.cfg.cluster_width)?,
            ))
        } else {
            None
        };
        let opened = self.km.with_mut(ks, |k| {
            // Double-check under the lock (another thread may have opened).
            if k.state == KeyspaceState::Writable {
                return Ok(false);
            }
            k.storage.wlog = Some(WriteLog::new(kc, vc));
            k.storage.dwal = wal;
            k.transition_to(KeyspaceState::Writable)?;
            Ok(true)
        })?;
        if opened {
            ingest.leak();
        }
        self.persist()?;
        Ok(())
    }

    fn do_put(&self, ks: u32, key: &[u8], value: &[u8]) -> Result<()> {
        if key.is_empty() || key.len() > u16::MAX as usize {
            return Err(DeviceError::BadPayload("key length".into()));
        }
        self.ensure_writable(ks)?;
        self.km.with_mut(ks, |k| {
            // Write-ahead: the WAL record lands before the ingest buffer.
            if let Some(dwal) = k.storage.dwal.as_mut() {
                dwal.append(&self.mgr, &self.soc, key, value)?;
            }
            let wlog = k
                .storage
                .wlog
                .as_mut()
                .ok_or_else(|| DeviceError::Internal("writable without wlog".into()))?;
            wlog.put(&self.mgr, &self.soc, key, value)?;
            k.pairs = wlog.pairs;
            k.data_bytes = wlog.data_bytes;
            k.min_key = wlog.min_key.clone();
            k.max_key = wlog.max_key.clone();
            Ok(())
        })
    }

    /// True for errors that mean the *device* is out of space (zones),
    /// as opposed to a transient fault or a caller mistake.
    fn is_space_exhaustion(e: &DeviceError) -> bool {
        match e {
            DeviceError::OutOfResources(m) => m.contains("zone"),
            DeviceError::Flash(f) => matches!(f, kvcsd_flash::FlashError::DeviceFull),
            _ => false,
        }
    }

    /// Graceful degradation on space exhaustion: seal the write log in
    /// place (idempotent — every synced pair becomes durable in KLOG/VLOG)
    /// and freeze the keyspace READ_ONLY. Writes now fail fast with a
    /// typed state error instead of re-discovering the exhaustion; a later
    /// re-compaction or space reclaim transitions back.
    fn freeze_writable_read_only(&self, ks: u32) {
        let sealed = self.km.with_mut(ks, |k| {
            if k.state != KeyspaceState::Writable {
                return Ok(None);
            }
            let (kc, vc, klen, vlen) = {
                let wlog = k
                    .storage
                    .wlog
                    .as_mut()
                    .ok_or_else(|| DeviceError::Internal("writable without wlog".into()))?;
                let (klen, vlen) = wlog.seal(&self.mgr)?;
                (wlog.klog.cluster(), wlog.vlog.cluster(), klen, vlen)
            };
            k.storage.wlog = None;
            k.storage.klog = Some((kc, klen));
            k.storage.vlog = Some((vc, vlen));
            k.transition_to(KeyspaceState::ReadOnly)?;
            Ok(Some(k.storage.dwal.take().map(|w| w.cluster())))
        });
        // On Err the seal failed (keyspace stays WRITABLE, client may
        // retry the put); on Ok(None) the keyspace was not WRITABLE:
        // nothing to freeze either way.
        if let Ok(Some(wal_cluster)) = sealed {
            self.dram.release(INGEST_BUFFER_BYTES as u64);
            if let Some(c) = wal_cluster {
                let _ = self.mgr.release_cluster(c);
            }
            self.soc.ledger().bump("dev_keyspaces_readonly", 1);
            // Persist may fail on an exhausted device; reopen's
            // recovery path re-derives state from the sealed logs.
            let _ = self.persist();
        }
    }

    fn do_compact(&self, ks: u32, deadline_ns: Option<u64>) -> Result<JobId> {
        self.do_compact_inner(ks, None, deadline_ns)
    }

    fn do_compact_inner(
        &self,
        ks: u32,
        specs: Option<Vec<SecondaryIndexSpec>>,
        deadline_ns: Option<u64>,
    ) -> Result<JobId> {
        enum Seal {
            /// Logs sealed now; the WAL cluster (if any) can be released.
            Sealed(Option<ClusterId>),
            /// DEGRADED keyspace: logs were already sealed, just re-run.
            Resealed,
            /// Empty keyspace: trivially compacted, no job to run.
            Empty,
        }
        // Seal the logs and flip to COMPACTING synchronously (cheap); the
        // sort itself is the deferred job.
        let sealed = self.km.with_mut(ks, |k| {
            match k.state {
                KeyspaceState::Writable => {}
                KeyspaceState::Empty => {
                    // Compacting an empty keyspace: trivially queryable.
                    k.transition_to(KeyspaceState::Compacted)?;
                    return Ok(Seal::Empty);
                }
                // A DEGRADED or READ_ONLY keyspace keeps its sealed logs;
                // re-compaction is just re-entering COMPACTING and
                // re-running the job (for READ_ONLY this is the recovery
                // path once space has been reclaimed).
                KeyspaceState::Degraded | KeyspaceState::ReadOnly
                    if k.storage.klog.is_some() && k.storage.vlog.is_some() =>
                {
                    k.transition_to(KeyspaceState::Compacting)?;
                    return Ok(Seal::Resealed);
                }
                _ => {
                    return Err(DeviceError::BadState {
                        state: k.state.name(),
                        op: "compact",
                    })
                }
            }
            // Seal in place: if the flush hits a transient flash error the
            // wlog stays in `storage` (still WRITABLE) and the client can
            // retry the whole COMPACT command; only a successful seal takes
            // the log out.
            let (kc, vc, klen, vlen) = {
                let wlog = k
                    .storage
                    .wlog
                    .as_mut()
                    .ok_or_else(|| DeviceError::Internal("writable without wlog".into()))?;
                let (klen, vlen) = wlog.seal(&self.mgr)?;
                (wlog.klog.cluster(), wlog.vlog.cluster(), klen, vlen)
            };
            k.storage.wlog = None;
            k.storage.klog = Some((kc, klen));
            k.storage.vlog = Some((vc, vlen));
            k.transition_to(KeyspaceState::Compacting)?;
            // Once the logs are sealed every pair is durable on flash;
            // the WAL has served its purpose.
            Ok(Seal::Sealed(k.storage.dwal.take().map(|w| w.cluster())))
        })?;
        if let Seal::Sealed(wal_cluster) = &sealed {
            self.dram.release(INGEST_BUFFER_BYTES as u64);
            if let Some(c) = wal_cluster {
                self.mgr.release_cluster(*c)?;
            }
        }
        self.persist()?;
        let runnable = !matches!(sealed, Seal::Empty);
        let job = match specs {
            Some(specs) if runnable => {
                self.enqueue(Job::CompactAndIndex { ks, specs }, deadline_ns)
            }
            _ => self.enqueue(Job::Compact { ks }, deadline_ns),
        };
        if !runnable {
            // Empty keyspace: nothing to do; complete immediately.
            let mut jobs = self.jobs.lock();
            jobs.queue.retain(|(id, _, _)| *id != job.0);
            self.job_depth.set(jobs.queue.len());
            jobs.states.insert(job.0, JobState::Done);
        }
        Ok(job)
    }

    fn do_delete(&self, ks: u32) -> Result<()> {
        self.run_jobs_for(ks);
        let record = self.km.remove(ks)?;
        // Free every cluster the keyspace owns; zone resets reclaim space
        // without any device-side GC (the ZNS advantage).
        let s = record.storage;
        if let Some(w) = s.wlog {
            let kc = w.klog.cluster();
            let vc = w.vlog.cluster();
            self.mgr.release_cluster(kc)?;
            self.mgr.release_cluster(vc)?;
            self.dram.release(INGEST_BUFFER_BYTES as u64);
        }
        if let Some(dwal) = s.dwal {
            self.mgr.release_cluster(dwal.cluster())?;
        }
        for c in [
            s.klog.map(|c| c.0),
            s.vlog.map(|c| c.0),
            s.pidx.map(|c| c.0),
            s.svalues.map(|c| c.0),
        ]
        .into_iter()
        .flatten()
        {
            self.mgr.release_cluster(c)?;
        }
        for (_, idx) in s.sidx {
            self.mgr.release_cluster(idx.cluster)?;
        }
        // Space reclaimed: keyspaces that froze READ_ONLY *after* their
        // compaction finished (index intact) are fully queryable again and
        // transition back to COMPACTED. Ones still holding raw logs need a
        // client-driven re-compaction instead.
        self.thaw_read_only_keyspaces();
        self.persist()?;
        Ok(())
    }

    /// READ_ONLY -> COMPACTED for every frozen keyspace whose primary
    /// index survived; called whenever zones are returned to the pool.
    fn thaw_read_only_keyspaces(&self) {
        let ids: Vec<u32> = self.km.with_all(|list| {
            list.iter()
                .filter(|k| k.state == KeyspaceState::ReadOnly && k.storage.pidx.is_some())
                .map(|k| k.id)
                .collect()
        });
        for id in ids {
            let thawed = self.km.with_mut(id, |k| {
                if k.state == KeyspaceState::ReadOnly && k.storage.pidx.is_some() {
                    k.transition_to(KeyspaceState::Compacted)?;
                    return Ok(true);
                }
                Ok(false)
            });
            if matches!(thawed, Ok(true)) {
                self.soc.ledger().bump("dev_keyspaces_thawed", 1);
            }
        }
    }

    fn stat(&self, ks: u32) -> Result<KeyspaceStat> {
        self.km.with(ks, |k| {
            Ok(KeyspaceStat {
                id: k.id,
                name: k.name.clone(),
                state: k.state,
                num_pairs: k.pairs,
                min_key: k.min_key.clone(),
                max_key: k.max_key.clone(),
                secondary_indexes: k.storage.sidx.keys().cloned().collect(),
                data_bytes: k.data_bytes,
            })
        })
    }
}

/// Query-path state check: COMPACTED serves everything; READ_ONLY keeps
/// serving from its primary index when the freeze happened *after*
/// compaction (graceful degradation — reads outlive writes).
fn require_queryable(k: &crate::keyspace::Keyspace, op: &'static str) -> Result<()> {
    match k.state {
        KeyspaceState::Compacted => Ok(()),
        KeyspaceState::ReadOnly if k.storage.pidx.is_some() => Ok(()),
        _ => Err(DeviceError::BadState {
            state: k.state.name(),
            op,
        }),
    }
}

impl DeviceHandler for KvCsdDevice {
    fn handle(&self, cmd: KvCommand) -> KvResponse {
        let (deadline_ns, cmd) = cmd.unwrap_deadline();
        let deadline = Deadline::new(&self.clock, deadline_ns);
        let result: Result<KvResponse> = (|| {
            deadline.check()?;
            match cmd {
                KvCommand::CreateKeyspace { name } => {
                    let id = self.km.create(&name)?;
                    self.persist()?;
                    Ok(KvResponse::Created { ks: id })
                }
                KvCommand::OpenKeyspace { name } => {
                    let id = self.km.lookup(&name)?;
                    let state = self.km.with(id, |k| Ok(k.state))?;
                    Ok(KvResponse::Opened { ks: id, state })
                }
                KvCommand::ListKeyspaces => {
                    let list = self
                        .km
                        .list()
                        .into_iter()
                        .map(|(id, name, state)| KeyspaceDesc { id, name, state })
                        .collect();
                    Ok(KvResponse::Keyspaces(list))
                }
                KvCommand::DeleteKeyspace { ks } => {
                    self.do_delete(ks)?;
                    Ok(KvResponse::Deleted)
                }
                KvCommand::Put { ks, key, value } => {
                    self.admit_write(ks, &deadline)?;
                    if let Err(e) = self.do_put(ks, &key, &value) {
                        if Self::is_space_exhaustion(&e) {
                            self.freeze_writable_read_only(ks);
                        }
                        return Err(e);
                    }
                    self.soc.ledger().bump("dev_puts", 1);
                    Ok(KvResponse::PutOk)
                }
                KvCommand::BulkPut { ks, payload } => {
                    self.admit_write(ks, &deadline)?;
                    let mut inserted = 0u64;
                    for (key, value) in payload.iter() {
                        if let Err(e) = self.do_put(ks, key, value) {
                            if Self::is_space_exhaustion(&e) {
                                self.freeze_writable_read_only(ks);
                            }
                            return Err(e);
                        }
                        inserted += 1;
                    }
                    self.soc.ledger().bump("dev_bulk_puts", 1);
                    self.soc.ledger().bump("dev_puts", inserted);
                    Ok(KvResponse::BulkPutOk { inserted })
                }
                KvCommand::Flush { ks } => {
                    self.km.with_mut(ks, |k| {
                        if let Some(dwal) = k.storage.dwal.as_mut() {
                            dwal.sync(&self.mgr)?;
                        }
                        Ok(())
                    })?;
                    Ok(KvResponse::Flushed)
                }
                KvCommand::Compact { ks } => {
                    self.admit_job()?;
                    let job = self.do_compact(ks, deadline.deadline_ns())?;
                    Ok(KvResponse::JobStarted { job })
                }
                KvCommand::CompactAndIndex { ks, specs } => {
                    self.admit_job()?;
                    for spec in &specs {
                        if let Some(w) = spec.key_type.width() {
                            if w != spec.value_len {
                                return Err(DeviceError::BadIndexSpec);
                            }
                        }
                    }
                    let job = self.do_compact_inner(ks, Some(specs), deadline.deadline_ns())?;
                    Ok(KvResponse::JobStarted { job })
                }
                KvCommand::BuildSecondaryIndex { ks, spec } => {
                    self.admit_job()?;
                    // Validate state and name collision up front so the
                    // host hears about mistakes synchronously.
                    self.km.with(ks, |k| {
                        k.require_state(KeyspaceState::Compacted, "build_sidx")?;
                        if k.storage.sidx.contains_key(&spec.name) {
                            return Err(DeviceError::IndexExists);
                        }
                        Ok(())
                    })?;
                    if let Some(w) = spec.key_type.width() {
                        if w != spec.value_len {
                            return Err(DeviceError::BadIndexSpec);
                        }
                    }
                    let job = self.enqueue(Job::BuildSidx { ks, spec }, deadline.deadline_ns());
                    Ok(KvResponse::JobStarted { job })
                }
                KvCommand::PollJob { job } => {
                    let jobs = self.jobs.lock();
                    let state = jobs
                        .states
                        .get(&job.0)
                        .cloned()
                        .ok_or(DeviceError::Internal("job not found".into()))
                        .map_err(|_| DeviceError::Internal("job not found".into()))?;
                    Ok(KvResponse::Job { state })
                }
                KvCommand::Get { ks, key } => {
                    self.admit_query(ks, &deadline)?;
                    self.soc.ledger().bump("dev_gets", 1);
                    self.km.with(ks, |k| {
                        require_queryable(k, "get")?;
                        let v = query::point_get(&self.mgr, &self.soc, &k.storage, &key)?;
                        Ok(KvResponse::Value(v))
                    })
                }
                KvCommand::Range { ks, lo, hi, limit } => {
                    self.admit_query(ks, &deadline)?;
                    self.soc.ledger().bump("dev_ranges", 1);
                    self.km.with(ks, |k| {
                        require_queryable(k, "range")?;
                        let es = query::range(&self.mgr, &self.soc, &k.storage, &lo, &hi, limit)?;
                        Ok(KvResponse::Entries(es))
                    })
                }
                KvCommand::SidxGet { ks, index, key } => {
                    self.admit_query(ks, &deadline)?;
                    self.soc.ledger().bump("dev_sidx_gets", 1);
                    self.km.with(ks, |k| {
                        require_queryable(k, "sidx_get")?;
                        let es = query::sidx_get(
                            &self.mgr,
                            &self.soc,
                            &k.storage,
                            &index,
                            &key.encode(),
                        )?;
                        Ok(KvResponse::Entries(es))
                    })
                }
                KvCommand::SidxRange {
                    ks,
                    index,
                    lo,
                    hi,
                    limit,
                } => {
                    self.admit_query(ks, &deadline)?;
                    self.soc.ledger().bump("dev_sidx_ranges", 1);
                    self.km.with(ks, |k| {
                        require_queryable(k, "sidx_range")?;
                        let es = query::sidx_range(
                            &self.mgr, &self.soc, &k.storage, &index, &lo, &hi, limit,
                        )?;
                        Ok(KvResponse::Entries(es))
                    })
                }
                KvCommand::Stat { ks } => Ok(KvResponse::Stat(self.stat(ks)?)),
                // unwrap_deadline strips every wrapper before this match.
                KvCommand::WithDeadline { .. } => Err(DeviceError::Internal(
                    "deadline wrapper not stripped".into(),
                )),
            }
        })();
        match result {
            Ok(resp) => resp,
            Err(e) => KvResponse::Err(KvStatus::from(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig};
    use kvcsd_proto::{Bound, BulkBuilder, SecondaryKeyType, SidxKey};
    use kvcsd_sim::{HardwareSpec, IoLedger};

    fn device() -> KvCsdDevice {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 256,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        KvCsdDevice::new(
            zns,
            CostModel::default(),
            DeviceConfig {
                cluster_width: 8,
                soc_dram_bytes: 8 << 20,
                seed: 1,
                ..DeviceConfig::default()
            },
        )
    }

    fn ok(resp: KvResponse) -> KvResponse {
        match resp {
            KvResponse::Err(e) => panic!("unexpected error: {e}"),
            other => other,
        }
    }

    fn create(dev: &KvCsdDevice, name: &str) -> u32 {
        match ok(dev.handle(KvCommand::CreateKeyspace { name: name.into() })) {
            KvResponse::Created { ks } => ks,
            other => panic!("{other:?}"),
        }
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }
    fn value(i: u32) -> Vec<u8> {
        let mut v = vec![0x5A; 32];
        v[28..].copy_from_slice(&(i as f32).to_le_bytes());
        v
    }

    fn load_and_compact(dev: &KvCsdDevice, ks: u32, n: u32) {
        for i in (0..n).rev() {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Compact { ks }));
        dev.run_pending_jobs();
    }

    #[test]
    fn reopen_fails_loudly_when_both_meta_generations_are_destroyed() {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 256,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        let cfg = DeviceConfig {
            cluster_width: 8,
            soc_dram_bytes: 8 << 20,
            seed: 1,
            ..DeviceConfig::default()
        };
        let dev = KvCsdDevice::new(Arc::clone(&zns), CostModel::default(), cfg.clone());
        let ks = create(&dev, "a");
        load_and_compact(&dev, ks, 100);
        drop(dev);
        // Scribble over both ping-pong zones: every durable generation is
        // gone but debris proves generations existed.
        zns.reset(0).unwrap();
        zns.reset(1).unwrap();
        zns.append(0, &[0xAA; 64]).unwrap();
        zns.append(1, &[0xBB; 64]).unwrap();
        let err = KvCsdDevice::reopen(Arc::clone(&zns), CostModel::default(), cfg).unwrap_err();
        assert_eq!(err, DeviceError::CorruptMetadata);
        // And the protocol surface is a persistent media error, never a
        // silently-empty device.
        assert!(matches!(KvStatus::from(err), KvStatus::MediaError(_)));
    }

    #[test]
    fn compacted_artifacts_install_verbatim_on_a_peer_device() {
        let dev = device();
        let ks = create(&dev, "a");
        load_and_compact(&dev, ks, 500);
        ok(dev.handle(KvCommand::BuildSecondaryIndex {
            ks,
            spec: SecondaryIndexSpec {
                name: "energy".into(),
                value_offset: 28,
                value_len: 4,
                key_type: SecondaryKeyType::F32,
            },
        }));
        dev.run_pending_jobs();
        let art = dev.export_keyspace_artifacts(ks).unwrap();
        assert_eq!(art.ship_kind(), kvcsd_proto::ShipKind::Compacted);
        assert_eq!(art.pairs, 500);

        let peer = device();
        let pid = peer.import_keyspace_artifacts(&art).unwrap();
        for i in [0u32, 123, 499] {
            match ok(peer.handle(KvCommand::Get {
                ks: pid,
                key: key(i),
            })) {
                KvResponse::Value(v) => assert_eq!(v, value(i)),
                other => panic!("{other:?}"),
            }
        }
        // The shipped secondary index serves queries without a rebuild.
        match ok(peer.handle(KvCommand::SidxGet {
            ks: pid,
            index: "energy".into(),
            key: SidxKey::F32(42.0),
        })) {
            KvResponse::Entries(es) => assert_eq!(es.len(), 1),
            other => panic!("{other:?}"),
        }
        // The point of index replication: the peer never re-compacted.
        assert_eq!(peer.soc().ledger().custom("dev_compactions"), 0);
        assert_eq!(peer.soc().ledger().custom("dev_sidx_builds"), 0);
        assert_eq!(peer.soc().ledger().custom("dev_artifacts_imported"), 1);
    }

    #[test]
    fn sealed_log_artifacts_recover_through_degraded_compaction() {
        let dev = device();
        let ks = create(&dev, "a");
        for i in 0..200u32 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        // Seal synchronously; the sort job stays queued — this is the
        // mid-compaction window a primary can die in.
        ok(dev.handle(KvCommand::Compact { ks }));
        let art = dev.export_keyspace_artifacts(ks).unwrap();
        assert_eq!(art.ship_kind(), kvcsd_proto::ShipKind::SealedLogs);

        let peer = device();
        let pid = peer.import_keyspace_artifacts(&art).unwrap();
        peer.keyspaces()
            .with(pid, |k| {
                assert_eq!(k.state, KeyspaceState::Degraded);
                Ok(())
            })
            .unwrap();
        // Promotion re-enters compaction via the checked DEGRADED edge.
        ok(peer.handle(KvCommand::Compact { ks: pid }));
        peer.run_pending_jobs();
        for i in [0u32, 57, 199] {
            match ok(peer.handle(KvCommand::Get {
                ks: pid,
                key: key(i),
            })) {
                KvResponse::Value(v) => assert_eq!(v, value(i)),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn importing_an_artifact_supersedes_the_same_name_keyspace() {
        let dev = device();
        let ks = create(&dev, "a");
        load_and_compact(&dev, ks, 50);
        let art = dev.export_keyspace_artifacts(ks).unwrap();
        let peer = device();
        let first = peer.import_keyspace_artifacts(&art).unwrap();
        let second = peer.import_keyspace_artifacts(&art).unwrap();
        assert_ne!(first, second);
        assert_eq!(peer.keyspaces().len(), 1);
        assert_eq!(peer.keyspaces().lookup("a").unwrap(), second);
    }

    #[test]
    fn writable_keyspaces_have_nothing_durable_to_export() {
        let dev = device();
        let ks = create(&dev, "a");
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        }));
        assert!(matches!(
            dev.export_keyspace_artifacts(ks),
            Err(DeviceError::BadState {
                op: "export_artifacts",
                ..
            })
        ));
    }

    #[test]
    fn keyspace_lifecycle_states() {
        let dev = device();
        let ks = create(&dev, "a");
        let state = |dev: &KvCsdDevice| match ok(
            dev.handle(KvCommand::OpenKeyspace { name: "a".into() })
        ) {
            KvResponse::Opened { state, .. } => state,
            other => panic!("{other:?}"),
        };
        assert_eq!(state(&dev), KeyspaceState::Empty);
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        }));
        assert_eq!(state(&dev), KeyspaceState::Writable);
        ok(dev.handle(KvCommand::Compact { ks }));
        assert_eq!(state(&dev), KeyspaceState::Compacting);
        dev.run_pending_jobs();
        assert_eq!(state(&dev), KeyspaceState::Compacted);
    }

    #[test]
    fn put_rejected_while_compacting_and_after() {
        let dev = device();
        let ks = create(&dev, "a");
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        }));
        ok(dev.handle(KvCommand::Compact { ks }));
        let r = dev.handle(KvCommand::Put {
            ks,
            key: key(2),
            value: value(2),
        });
        assert!(matches!(
            r,
            KvResponse::Err(KvStatus::BadKeyspaceState { .. })
        ));
        dev.run_pending_jobs();
        let r = dev.handle(KvCommand::Put {
            ks,
            key: key(2),
            value: value(2),
        });
        assert!(matches!(
            r,
            KvResponse::Err(KvStatus::BadKeyspaceState { .. })
        ));
    }

    #[test]
    fn queries_rejected_before_compaction() {
        let dev = device();
        let ks = create(&dev, "a");
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        }));
        let r = dev.handle(KvCommand::Get { ks, key: key(1) });
        assert!(matches!(
            r,
            KvResponse::Err(KvStatus::BadKeyspaceState { .. })
        ));
    }

    #[test]
    fn end_to_end_put_compact_get() {
        let dev = device();
        let ks = create(&dev, "data");
        load_and_compact(&dev, ks, 2000);
        for i in [0u32, 7, 999, 1999] {
            match ok(dev.handle(KvCommand::Get { ks, key: key(i) })) {
                KvResponse::Value(v) => assert_eq!(v, value(i), "key {i}"),
                other => panic!("{other:?}"),
            }
        }
        let r = dev.handle(KvCommand::Get {
            ks,
            key: b"missing".to_vec(),
        });
        assert!(matches!(r, KvResponse::Err(KvStatus::KeyNotFound)));
    }

    #[test]
    fn bulk_put_inserts_batches() {
        let dev = device();
        let ks = create(&dev, "bulk");
        let mut b = BulkBuilder::default_size();
        let mut n = 0u32;
        while b.push(&key(n), &value(n)) {
            n += 1;
        }
        match ok(dev.handle(KvCommand::BulkPut {
            ks,
            payload: b.finish(),
        })) {
            KvResponse::BulkPutOk { inserted } => assert_eq!(inserted, n as u64),
            other => panic!("{other:?}"),
        }
        ok(dev.handle(KvCommand::Compact { ks }));
        dev.run_pending_jobs();
        match ok(dev.handle(KvCommand::Stat { ks })) {
            KvResponse::Stat(s) => {
                assert_eq!(s.num_pairs, n as u64);
                assert_eq!(s.state, KeyspaceState::Compacted);
                assert_eq!(s.min_key.unwrap(), key(0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_query_over_primary() {
        let dev = device();
        let ks = create(&dev, "r");
        load_and_compact(&dev, ks, 500);
        match ok(dev.handle(KvCommand::Range {
            ks,
            lo: Bound::Included(key(100)),
            hi: Bound::Excluded(key(105)),
            limit: None,
        })) {
            KvResponse::Entries(es) => {
                assert_eq!(es.len(), 5);
                assert_eq!(es[0].0, key(100));
                assert_eq!(es[4].1, value(104));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn secondary_index_build_and_query() {
        let dev = device();
        let ks = create(&dev, "particles");
        load_and_compact(&dev, ks, 1000);
        let spec = SecondaryIndexSpec {
            name: "energy".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::F32,
        };
        ok(dev.handle(KvCommand::BuildSecondaryIndex { ks, spec }));
        dev.run_pending_jobs();
        // energy == i as f32; select energy >= 995.0 -> 5 records.
        match ok(dev.handle(KvCommand::SidxRange {
            ks,
            index: "energy".into(),
            lo: Bound::Included(SidxKey::F32(995.0).encode()),
            hi: Bound::Unbounded,
            limit: None,
        })) {
            KvResponse::Entries(es) => {
                assert_eq!(es.len(), 5);
                assert_eq!(es[0].0, key(995));
            }
            other => panic!("{other:?}"),
        }
        // Point query on one energy.
        match ok(dev.handle(KvCommand::SidxGet {
            ks,
            index: "energy".into(),
            key: SidxKey::F32(123.0),
        })) {
            KvResponse::Entries(es) => {
                assert_eq!(es.len(), 1);
                assert_eq!(es[0].0, key(123));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compact_and_index_single_pass_end_to_end() {
        let dev = device();
        let ks = create(&dev, "onepass");
        for i in (0..800).rev() {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        let specs = vec![SecondaryIndexSpec {
            name: "energy".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::F32,
        }];
        ok(dev.handle(KvCommand::CompactAndIndex { ks, specs }));
        dev.run_pending_jobs();
        // Queryable on both indexes straight away.
        match ok(dev.handle(KvCommand::Get { ks, key: key(123) })) {
            KvResponse::Value(v) => assert_eq!(v, value(123)),
            other => panic!("{other:?}"),
        }
        match ok(dev.handle(KvCommand::SidxGet {
            ks,
            index: "energy".into(),
            key: SidxKey::F32(321.0),
        })) {
            KvResponse::Entries(es) => {
                assert_eq!(es.len(), 1);
                assert_eq!(es[0].0, key(321));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(dev.soc().ledger().custom("dev_single_pass_compactions"), 1);
        assert_eq!(dev.soc().ledger().custom("dev_single_pass_fallbacks"), 0);
    }

    #[test]
    fn compact_and_index_falls_back_on_tight_dram() {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 512,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        // DRAM: the 192 KiB ingest buffer plus a sliver. The single-pass
        // job needs gather + two index sorters + value sorter concurrently
        // (4 x 64 KiB minimum reservations) and cannot fit; the separated
        // path never holds more than three.
        let dev = KvCsdDevice::new(
            zns,
            CostModel::default(),
            DeviceConfig {
                cluster_width: 8,
                soc_dram_bytes: (192 << 10) + (20 << 10),
                seed: 1,
                // This test runs at ~90% DRAM by construction; the stall
                // band would otherwise bounce every put.
                admission: AdmissionConfig::permissive(),
                ..DeviceConfig::default()
            },
        );
        let ks = create(&dev, "tight");
        for i in 0..500 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        let specs = vec![
            SecondaryIndexSpec {
                name: "energy".into(),
                value_offset: 28,
                value_len: 4,
                key_type: SecondaryKeyType::F32,
            },
            SecondaryIndexSpec {
                name: "head".into(),
                value_offset: 0,
                value_len: 4,
                key_type: SecondaryKeyType::U32,
            },
        ];
        ok(dev.handle(KvCommand::CompactAndIndex { ks, specs }));
        dev.run_pending_jobs();
        assert_eq!(
            dev.soc().ledger().custom("dev_single_pass_fallbacks"),
            1,
            "tight DRAM must trigger the separated fallback"
        );
        // The fallback still delivers a fully indexed keyspace.
        match ok(dev.handle(KvCommand::SidxGet {
            ks,
            index: "energy".into(),
            key: SidxKey::F32(99.0),
        })) {
            KvResponse::Entries(es) => assert_eq!(es.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sidx_on_uncompacted_keyspace_fails_sync() {
        let dev = device();
        let ks = create(&dev, "x");
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        }));
        let spec = SecondaryIndexSpec {
            name: "energy".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::F32,
        };
        let r = dev.handle(KvCommand::BuildSecondaryIndex { ks, spec });
        assert!(matches!(
            r,
            KvResponse::Err(KvStatus::BadKeyspaceState { .. })
        ));
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let dev = device();
        let ks = create(&dev, "x");
        load_and_compact(&dev, ks, 50);
        let spec = SecondaryIndexSpec {
            name: "e".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::F32,
        };
        ok(dev.handle(KvCommand::BuildSecondaryIndex {
            ks,
            spec: spec.clone(),
        }));
        dev.run_pending_jobs();
        let r = dev.handle(KvCommand::BuildSecondaryIndex { ks, spec });
        assert!(matches!(r, KvResponse::Err(KvStatus::IndexExists)));
    }

    #[test]
    fn bad_index_spec_rejected() {
        let dev = device();
        let ks = create(&dev, "x");
        load_and_compact(&dev, ks, 10);
        let spec = SecondaryIndexSpec {
            name: "bad".into(),
            value_offset: 0,
            value_len: 3, // F32 must be 4 bytes
            key_type: SecondaryKeyType::F32,
        };
        let r = dev.handle(KvCommand::BuildSecondaryIndex { ks, spec });
        assert!(matches!(r, KvResponse::Err(KvStatus::BadIndexSpec)));
    }

    #[test]
    fn delete_releases_all_zones_and_dram() {
        let dev = device();
        let free0 = dev.zone_manager().free_zones();
        let ks = create(&dev, "temp");
        load_and_compact(&dev, ks, 2000);
        let spec = SecondaryIndexSpec {
            name: "energy".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::F32,
        };
        ok(dev.handle(KvCommand::BuildSecondaryIndex { ks, spec }));
        dev.run_pending_jobs();
        assert!(dev.zone_manager().free_zones() < free0);
        ok(dev.handle(KvCommand::DeleteKeyspace { ks }));
        assert_eq!(
            dev.zone_manager().free_zones(),
            free0,
            "all zones reclaimed"
        );
        assert_eq!(dev.dram().used(), 0);
        let r = dev.handle(KvCommand::Get { ks, key: key(1) });
        assert!(matches!(r, KvResponse::Err(KvStatus::KeyspaceNotFound)));
    }

    #[test]
    fn delete_writable_keyspace_releases_ingest_buffer() {
        let dev = device();
        let ks = create(&dev, "w");
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        }));
        assert!(dev.dram().used() >= INGEST_BUFFER_BYTES as u64);
        ok(dev.handle(KvCommand::DeleteKeyspace { ks }));
        assert_eq!(dev.dram().used(), 0);
    }

    #[test]
    fn delete_with_pending_jobs_finishes_them_first() {
        let dev = device();
        let ks = create(&dev, "pending");
        for i in 0..100 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Compact { ks }));
        assert_eq!(dev.pending_jobs(), 1);
        let free_before = dev.zone_manager().free_zones();
        ok(dev.handle(KvCommand::DeleteKeyspace { ks }));
        assert_eq!(dev.pending_jobs(), 0);
        assert!(dev.zone_manager().free_zones() > free_before);
    }

    #[test]
    fn job_states_progress() {
        let dev = device();
        let ks = create(&dev, "j");
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        }));
        let job = match ok(dev.handle(KvCommand::Compact { ks })) {
            KvResponse::JobStarted { job } => job,
            other => panic!("{other:?}"),
        };
        match ok(dev.handle(KvCommand::PollJob { job })) {
            KvResponse::Job { state } => assert_eq!(state, JobState::Pending),
            other => panic!("{other:?}"),
        }
        dev.run_pending_jobs();
        match ok(dev.handle(KvCommand::PollJob { job })) {
            KvResponse::Job { state } => assert_eq!(state, JobState::Done),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compact_empty_keyspace_is_immediately_done() {
        let dev = device();
        let ks = create(&dev, "empty");
        let job = match ok(dev.handle(KvCommand::Compact { ks })) {
            KvResponse::JobStarted { job } => job,
            other => panic!("{other:?}"),
        };
        match ok(dev.handle(KvCommand::PollJob { job })) {
            KvResponse::Job { state } => assert_eq!(state, JobState::Done),
            other => panic!("{other:?}"),
        }
        // Queryable (and empty).
        match ok(dev.handle(KvCommand::Range {
            ks,
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
            limit: None,
        })) {
            KvResponse::Entries(es) => assert!(es.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keyspaces_are_isolated() {
        let dev = device();
        let a = create(&dev, "a");
        let b = create(&dev, "b");
        // Same keys, different values, per the paper keys may be reused
        // across keyspaces without conflict.
        for i in 0..50 {
            ok(dev.handle(KvCommand::Put {
                ks: a,
                key: key(i),
                value: vec![1; 8],
            }));
            ok(dev.handle(KvCommand::Put {
                ks: b,
                key: key(i),
                value: vec![2; 8],
            }));
        }
        ok(dev.handle(KvCommand::Compact { ks: a }));
        ok(dev.handle(KvCommand::Compact { ks: b }));
        dev.run_pending_jobs();
        match ok(dev.handle(KvCommand::Get { ks: a, key: key(5) })) {
            KvResponse::Value(v) => assert_eq!(v, vec![1; 8]),
            other => panic!("{other:?}"),
        }
        match ok(dev.handle(KvCommand::Get { ks: b, key: key(5) })) {
            KvResponse::Value(v) => assert_eq!(v, vec![2; 8]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn list_keyspaces() {
        let dev = device();
        create(&dev, "one");
        create(&dev, "two");
        match ok(dev.handle(KvCommand::ListKeyspaces)) {
            KvResponse::Keyspaces(l) => {
                assert_eq!(l.len(), 2);
                assert_eq!(l[0].name, "one");
                assert_eq!(l[1].name, "two");
            }
            other => panic!("{other:?}"),
        }
    }

    /// Build a device whose ZNS handle we keep, so we can "crash" (drop
    /// the device struct) and reopen from flash.
    fn device_with_zns() -> (KvCsdDevice, Arc<ZonedNamespace>) {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 256,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        let dev = KvCsdDevice::new(
            Arc::clone(&zns),
            CostModel::default(),
            DeviceConfig {
                cluster_width: 8,
                soc_dram_bytes: 8 << 20,
                seed: 1,
                ..DeviceConfig::default()
            },
        );
        (dev, zns)
    }

    fn reopen(zns: Arc<ZonedNamespace>) -> KvCsdDevice {
        KvCsdDevice::reopen(
            zns,
            CostModel::default(),
            DeviceConfig {
                cluster_width: 8,
                soc_dram_bytes: 8 << 20,
                seed: 1,
                ..DeviceConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn restart_recovers_compacted_keyspaces() {
        let (dev, zns) = device_with_zns();
        let ks = create(&dev, "persist-me");
        load_and_compact(&dev, ks, 1500);
        let spec = SecondaryIndexSpec {
            name: "energy".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::F32,
        };
        ok(dev.handle(KvCommand::BuildSecondaryIndex { ks, spec }));
        dev.run_pending_jobs();
        drop(dev); // crash

        let dev2 = reopen(zns);
        let ks2 = match ok(dev2.handle(KvCommand::OpenKeyspace {
            name: "persist-me".into(),
        })) {
            KvResponse::Opened { ks, state } => {
                assert_eq!(state, KeyspaceState::Compacted);
                ks
            }
            other => panic!("{other:?}"),
        };
        // Point, range and secondary queries all work after restart.
        for i in [0u32, 700, 1499] {
            match ok(dev2.handle(KvCommand::Get {
                ks: ks2,
                key: key(i),
            })) {
                KvResponse::Value(v) => assert_eq!(v, value(i), "key {i}"),
                other => panic!("{other:?}"),
            }
        }
        match ok(dev2.handle(KvCommand::SidxGet {
            ks: ks2,
            index: "energy".into(),
            key: SidxKey::F32(123.0),
        })) {
            KvResponse::Entries(es) => {
                assert_eq!(es.len(), 1);
                assert_eq!(es[0].0, key(123));
            }
            other => panic!("{other:?}"),
        }
        match ok(dev2.handle(KvCommand::Stat { ks: ks2 })) {
            KvResponse::Stat(s) => {
                assert_eq!(s.num_pairs, 1500);
                assert_eq!(s.secondary_indexes, vec!["energy".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn restart_reenqueues_compacting_keyspaces() {
        let (dev, zns) = device_with_zns();
        let ks = create(&dev, "inflight");
        for i in 0..300 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Compact { ks }));
        // Crash before the background job runs.
        assert_eq!(dev.pending_jobs(), 1);
        drop(dev);

        let dev2 = reopen(zns);
        assert_eq!(
            dev2.pending_jobs(),
            1,
            "compaction re-enqueued from sealed logs"
        );
        dev2.run_pending_jobs();
        let ks2 = match ok(dev2.handle(KvCommand::OpenKeyspace {
            name: "inflight".into(),
        })) {
            KvResponse::Opened { ks, state } => {
                assert_eq!(state, KeyspaceState::Compacted);
                ks
            }
            other => panic!("{other:?}"),
        };
        for i in (0..300).step_by(37) {
            match ok(dev2.handle(KvCommand::Get {
                ks: ks2,
                key: key(i),
            })) {
                KvResponse::Value(v) => assert_eq!(v, value(i)),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn restart_resets_writable_keyspaces_and_reclaims_their_zones() {
        let (dev, zns) = device_with_zns();
        let baseline_free = dev.zone_manager().free_zones();
        let ks = create(&dev, "volatile");
        for i in 0..200 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        drop(dev); // crash with unsynced buffered data

        let dev2 = reopen(zns);
        match ok(dev2.handle(KvCommand::OpenKeyspace {
            name: "volatile".into(),
        })) {
            KvResponse::Opened { state, .. } => assert_eq!(state, KeyspaceState::Empty),
            other => panic!("{other:?}"),
        }
        // The crashed write log's clusters were reclaimed as orphans.
        assert_eq!(dev2.zone_manager().free_zones(), baseline_free);
        // The keyspace is writable again from scratch.
        let ks2 = match ok(dev2.handle(KvCommand::OpenKeyspace {
            name: "volatile".into(),
        })) {
            KvResponse::Opened { ks, .. } => ks,
            other => panic!("{other:?}"),
        };
        ok(dev2.handle(KvCommand::Put {
            ks: ks2,
            key: key(1),
            value: value(1),
        }));
        ok(dev2.handle(KvCommand::Compact { ks: ks2 }));
        dev2.run_pending_jobs();
        match ok(dev2.handle(KvCommand::Get {
            ks: ks2,
            key: key(1),
        })) {
            KvResponse::Value(v) => assert_eq!(v, value(1)),
            other => panic!("{other:?}"),
        }
    }

    fn device_with_wal(zns: &Arc<ZonedNamespace>) -> KvCsdDevice {
        KvCsdDevice::new(
            Arc::clone(zns),
            CostModel::default(),
            DeviceConfig {
                cluster_width: 8,
                soc_dram_bytes: 8 << 20,
                seed: 1,
                wal: true,
                ..DeviceConfig::default()
            },
        )
    }

    fn reopen_with_wal(zns: Arc<ZonedNamespace>) -> KvCsdDevice {
        KvCsdDevice::reopen(
            zns,
            CostModel::default(),
            DeviceConfig {
                cluster_width: 8,
                soc_dram_bytes: 8 << 20,
                seed: 1,
                wal: true,
                ..DeviceConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn wal_recovers_synced_writes_across_restart() {
        let (dev0, zns) = device_with_zns();
        drop(dev0);
        let dev = device_with_wal(&zns);
        let ks = create(&dev, "durable");
        for i in 0..200 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Flush { ks })); // explicit fsync
        for i in 200..230 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        drop(dev); // crash: 200 synced + 30 unsynced (some may sit in full blocks)

        let dev2 = reopen_with_wal(zns);
        let ks2 = match ok(dev2.handle(KvCommand::OpenKeyspace {
            name: "durable".into(),
        })) {
            KvResponse::Opened { ks, state } => {
                assert_eq!(
                    state,
                    KeyspaceState::Writable,
                    "WAL keeps the keyspace writable"
                );
                ks
            }
            other => panic!("{other:?}"),
        };
        // The keyspace can keep taking writes, then compact and query.
        ok(dev2.handle(KvCommand::Put {
            ks: ks2,
            key: key(900),
            value: value(900),
        }));
        ok(dev2.handle(KvCommand::Compact { ks: ks2 }));
        dev2.run_pending_jobs();
        for i in (0..200).step_by(23) {
            match ok(dev2.handle(KvCommand::Get {
                ks: ks2,
                key: key(i),
            })) {
                KvResponse::Value(v) => assert_eq!(v, value(i), "synced key {i} must survive"),
                other => panic!("{other:?}"),
            }
        }
        match ok(dev2.handle(KvCommand::Get {
            ks: ks2,
            key: key(900),
        })) {
            KvResponse::Value(v) => assert_eq!(v, value(900)),
            other => panic!("{other:?}"),
        }
        assert!(dev2.soc().ledger().custom("dev_wal_replayed_records") >= 200);
    }

    #[test]
    fn unsynced_writes_may_be_lost_but_device_is_consistent() {
        let (dev0, zns) = device_with_zns();
        drop(dev0);
        let dev = device_with_wal(&zns);
        let ks = create(&dev, "torn");
        // A couple of tiny writes, never synced: they fit in the WAL's
        // volatile tail and vanish.
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        }));
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(2),
            value: value(2),
        }));
        drop(dev);

        let dev2 = reopen_with_wal(zns);
        let ks2 = match ok(dev2.handle(KvCommand::OpenKeyspace {
            name: "torn".into(),
        })) {
            KvResponse::Opened { ks, .. } => ks,
            other => panic!("{other:?}"),
        };
        match ok(dev2.handle(KvCommand::Stat { ks: ks2 })) {
            KvResponse::Stat(s) => assert_eq!(s.num_pairs, 0, "unsynced writes lost"),
            other => panic!("{other:?}"),
        }
        // Still fully usable.
        ok(dev2.handle(KvCommand::Put {
            ks: ks2,
            key: key(3),
            value: value(3),
        }));
        ok(dev2.handle(KvCommand::Compact { ks: ks2 }));
        dev2.run_pending_jobs();
        match ok(dev2.handle(KvCommand::Get {
            ks: ks2,
            key: key(3),
        })) {
            KvResponse::Value(v) => assert_eq!(v, value(3)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compaction_releases_the_wal_cluster() {
        let (dev0, zns) = device_with_zns();
        drop(dev0);
        let dev = device_with_wal(&zns);
        let free0 = dev.zone_manager().free_zones();
        let ks = create(&dev, "w");
        for i in 0..100 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Flush { ks }));
        ok(dev.handle(KvCommand::Compact { ks }));
        dev.run_pending_jobs();
        ok(dev.handle(KvCommand::DeleteKeyspace { ks }));
        assert_eq!(
            dev.zone_manager().free_zones(),
            free0,
            "wal zones reclaimed"
        );
    }

    #[test]
    fn flush_without_wal_is_a_cheap_noop() {
        let dev = device();
        let ks = create(&dev, "nowal");
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        }));
        match ok(dev.handle(KvCommand::Flush { ks })) {
            KvResponse::Flushed => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn restart_on_fresh_device_is_fresh() {
        let (dev, zns) = device_with_zns();
        drop(dev); // never persisted anything
        let dev2 = reopen(zns);
        match ok(dev2.handle(KvCommand::ListKeyspaces)) {
            KvResponse::Keyspaces(l) => assert!(l.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn every_table_mutation_persists() {
        let (dev, _zns) = device_with_zns();
        let n0 = dev.persisted_snapshots();
        let ks = create(&dev, "snap");
        assert!(dev.persisted_snapshots() > n0);
        let n1 = dev.persisted_snapshots();
        ok(dev.handle(KvCommand::Put {
            ks,
            key: key(1),
            value: value(1),
        })); // EMPTY->WRITABLE
        assert!(dev.persisted_snapshots() > n1);
        let n2 = dev.persisted_snapshots();
        ok(dev.handle(KvCommand::Compact { ks }));
        assert!(dev.persisted_snapshots() > n2);
        let n3 = dev.persisted_snapshots();
        dev.run_pending_jobs(); // COMPACTING -> COMPACTED
        assert!(dev.persisted_snapshots() > n3);
    }

    /// Install a fault injector on a live device's NAND array.
    fn arm_faults(dev: &KvCsdDevice, plan: kvcsd_sim::FaultPlan) -> Arc<kvcsd_sim::FaultInjector> {
        let inj = Arc::new(kvcsd_sim::FaultInjector::new(plan));
        dev.zone_manager()
            .zns()
            .nand()
            .set_fault_injector(Some(Arc::clone(&inj)));
        inj
    }

    fn disarm_faults(dev: &KvCsdDevice) {
        dev.zone_manager().zns().nand().set_fault_injector(None);
    }

    #[test]
    fn persistent_media_failure_degrades_keyspace_not_device() {
        let dev = device();
        let healthy = create(&dev, "healthy");
        load_and_compact(&dev, healthy, 100);
        let ks = create(&dev, "victim");
        for i in 0..200 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Compact { ks }));
        // Arm a hard media failure only for the background job.
        arm_faults(
            &dev,
            kvcsd_sim::FaultPlan {
                seed: 9,
                ..kvcsd_sim::FaultPlan::none()
            }
            .with_error_prob(1.0)
            .with_persistent_fraction(1.0),
        );
        dev.run_pending_jobs();
        disarm_faults(&dev);
        match ok(dev.handle(KvCommand::OpenKeyspace {
            name: "victim".into(),
        })) {
            KvResponse::Opened { state, .. } => assert_eq!(state, KeyspaceState::Degraded),
            other => panic!("{other:?}"),
        }
        // Queries on the degraded keyspace fail with a state error...
        let r = dev.handle(KvCommand::Get { ks, key: key(1) });
        assert!(matches!(
            r,
            KvResponse::Err(KvStatus::BadKeyspaceState { .. })
        ));
        // ...but the healthy keyspace is untouched.
        match ok(dev.handle(KvCommand::Get {
            ks: healthy,
            key: key(7),
        })) {
            KvResponse::Value(v) => assert_eq!(v, value(7)),
            other => panic!("{other:?}"),
        }
        assert_eq!(dev.soc().ledger().custom("dev_keyspaces_degraded"), 1);
    }

    #[test]
    fn degraded_keyspace_is_recompactable_once_media_recovers() {
        let dev = device();
        let ks = create(&dev, "heal");
        for i in 0..150 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Compact { ks }));
        arm_faults(
            &dev,
            kvcsd_sim::FaultPlan {
                seed: 5,
                ..kvcsd_sim::FaultPlan::none()
            }
            .with_error_prob(1.0)
            .with_persistent_fraction(1.0),
        );
        dev.run_pending_jobs();
        disarm_faults(&dev);
        // The sealed logs survived the failed job: re-compact and query.
        ok(dev.handle(KvCommand::Compact { ks }));
        dev.run_pending_jobs();
        for i in [0u32, 75, 149] {
            match ok(dev.handle(KvCommand::Get { ks, key: key(i) })) {
                KvResponse::Value(v) => assert_eq!(v, value(i), "key {i}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn degraded_keyspace_is_deletable_and_releases_zones() {
        let dev = device();
        let free0 = dev.zone_manager().free_zones();
        let ks = create(&dev, "doomed");
        for i in 0..100 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Compact { ks }));
        arm_faults(
            &dev,
            kvcsd_sim::FaultPlan {
                seed: 11,
                ..kvcsd_sim::FaultPlan::none()
            }
            .with_error_prob(1.0)
            .with_persistent_fraction(1.0),
        );
        dev.run_pending_jobs();
        disarm_faults(&dev);
        ok(dev.handle(KvCommand::DeleteKeyspace { ks }));
        assert_eq!(
            dev.zone_manager().free_zones(),
            free0,
            "all zones reclaimed"
        );
    }

    #[test]
    fn transient_job_failures_are_retried_with_backoff() {
        let dev = device();
        let ks = create(&dev, "flaky");
        for i in 0..100 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        let job = match ok(dev.handle(KvCommand::Compact { ks })) {
            KvResponse::JobStarted { job } => job,
            other => panic!("{other:?}"),
        };
        // Every op fails transiently: the job retries its full budget,
        // charges backoff to the ledger, then degrades the keyspace.
        arm_faults(
            &dev,
            kvcsd_sim::FaultPlan {
                seed: 2,
                ..kvcsd_sim::FaultPlan::none()
            }
            .with_error_prob(1.0),
        );
        dev.run_pending_jobs();
        disarm_faults(&dev);
        assert_eq!(dev.soc().ledger().custom("dev_job_retries"), 4);
        assert!(dev.soc().ledger().custom("dev_job_backoff_ns") >= 50_000 * 15);
        match ok(dev.handle(KvCommand::PollJob { job })) {
            KvResponse::Job { state } => {
                assert!(matches!(
                    state,
                    JobState::Failed(KvStatus::TransientDeviceError(_))
                ))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failed_compaction_does_not_leak_clusters() {
        let dev = device();
        let ks = create(&dev, "leaky");
        for i in 0..300 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Compact { ks }));
        let free_sealed = dev.zone_manager().free_zones();
        // Fail reads with ~15% probability: compaction gets partway
        // through (allocating output clusters) before dying.
        arm_faults(
            &dev,
            kvcsd_sim::FaultPlan {
                seed: 21,
                read_error_prob: 0.15,
                ..kvcsd_sim::FaultPlan::none()
            }
            .with_persistent_fraction(1.0),
        );
        dev.run_pending_jobs();
        disarm_faults(&dev);
        assert_eq!(
            dev.zone_manager().free_zones(),
            free_sealed,
            "failed job must release every cluster it allocated"
        );
        // And the keyspace still recovers.
        ok(dev.handle(KvCommand::Compact { ks }));
        dev.run_pending_jobs();
        match ok(dev.handle(KvCommand::Get { ks, key: key(42) })) {
            KvResponse::Value(v) => assert_eq!(v, value(42)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reopen_falls_back_to_previous_snapshot_generation() {
        let (dev, zns) = device_with_zns();
        let ks = create(&dev, "fallback");
        load_and_compact(&dev, ks, 400);
        drop(dev);
        // Append a CRC-valid but undecodable frame as the newest
        // generation (version byte 99): reopen must skip it.
        let mut meta = MetaStore::new(Arc::clone(&zns), 0);
        meta.write(&[99u8, 1, 2, 3]).unwrap();

        let dev2 = reopen(zns);
        assert_eq!(
            dev2.soc()
                .ledger()
                .custom("dev_snapshot_generations_skipped"),
            1,
            "the bad generation must be counted"
        );
        let ks2 = match ok(dev2.handle(KvCommand::OpenKeyspace {
            name: "fallback".into(),
        })) {
            KvResponse::Opened { ks, state } => {
                assert_eq!(state, KeyspaceState::Compacted);
                ks
            }
            other => panic!("{other:?}"),
        };
        match ok(dev2.handle(KvCommand::Get {
            ks: ks2,
            key: key(123),
        })) {
            KvResponse::Value(v) => assert_eq!(v, value(123)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degraded_state_survives_restart() {
        let (dev, zns) = device_with_zns();
        let ks = create(&dev, "scar");
        for i in 0..120 {
            ok(dev.handle(KvCommand::Put {
                ks,
                key: key(i),
                value: value(i),
            }));
        }
        ok(dev.handle(KvCommand::Compact { ks }));
        // Fail only reads: the compaction dies on its first klog read but
        // the device can still persist the DEGRADED state to the
        // metadata zone (appends are unaffected).
        arm_faults(
            &dev,
            kvcsd_sim::FaultPlan {
                seed: 31,
                read_error_prob: 1.0,
                ..kvcsd_sim::FaultPlan::none()
            }
            .with_persistent_fraction(1.0),
        );
        dev.run_pending_jobs();
        disarm_faults(&dev);
        drop(dev);

        let dev2 = reopen(zns);
        let ks2 = match ok(dev2.handle(KvCommand::OpenKeyspace {
            name: "scar".into(),
        })) {
            KvResponse::Opened { ks, state } => {
                assert_eq!(state, KeyspaceState::Degraded, "degraded state persisted");
                ks
            }
            other => panic!("{other:?}"),
        };
        // Still re-compactable after the restart.
        ok(dev2.handle(KvCommand::Compact { ks: ks2 }));
        dev2.run_pending_jobs();
        match ok(dev2.handle(KvCommand::Get {
            ks: ks2,
            key: key(60),
        })) {
            KvResponse::Value(v) => assert_eq!(v, value(60)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_key_rejected() {
        let dev = device();
        let ks = create(&dev, "k");
        let r = dev.handle(KvCommand::Put {
            ks,
            key: vec![],
            value: vec![1],
        });
        assert!(matches!(r, KvResponse::Err(KvStatus::BadValue)));
    }
}
