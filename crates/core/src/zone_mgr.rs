//! The zone manager: zone clusters and striped block streams.
//!
//! From the paper (Section IV): "Rather than allocating zones on a
//! per-zone basis, KV-CSD allocates zones in groups that we call *zone
//! clusters*. This enables striping I/O across multiple zones to better
//! leverage available SSD bandwidth. ... KV-CSD associates a random
//! number with each zone cluster to determine which zone to perform the
//! next write within a zone cluster. This allows zone writes to be
//! randomly distributed across all available I/O channels."
//!
//! A cluster is an append-only stream of 4 KiB blocks. Block `i` of a
//! cluster lands on zone slot `(i + offset) % width` of its current
//! stripe group, where `offset` is the cluster's random number — so
//! concurrent clusters start on different channels and conflicts average
//! out. When a stripe group fills, the cluster transparently grows by
//! another `width` zones. Released clusters reset their zones (the cheap,
//! GC-free reclamation ZNS gives the design).

use std::collections::HashMap;
use std::sync::Arc;

use kvcsd_flash::{ZoneState, ZonedNamespace};
use kvcsd_sim::sync::{Mutex, Shared};
use kvcsd_sim::XorShift64;

use crate::error::DeviceError;
use crate::Result;
use crate::BLOCK_BYTES;

/// Identifies a zone cluster within one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

/// Address of one 4 KiB block within a cluster's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockAddr {
    pub cluster: ClusterId,
    pub block: u64,
}

#[derive(Debug)]
struct Cluster {
    /// Stripe groups of `width` zones each, in allocation order.
    groups: Vec<Vec<u32>>,
    width: u32,
    /// The paper's per-cluster random number.
    offset: u32,
    /// Blocks appended so far.
    blocks: u64,
}

/// Serializable state of one cluster (device snapshots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterState {
    pub id: u32,
    pub width: u32,
    pub offset: u32,
    pub blocks: u64,
    pub groups: Vec<Vec<u32>>,
}

/// Serializable state of the zone manager (device snapshots).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ZoneManagerState {
    pub next_id: u32,
    pub clusters: Vec<ClusterState>,
}

#[derive(Debug)]
struct Inner {
    /// Free zones grouped by channel for spread-aware allocation.
    free_by_channel: Vec<Vec<u32>>,
    clusters: HashMap<u32, Cluster>,
    next_id: u32,
    rng: XorShift64,
}

/// Allocates zone clusters and serves striped block I/O.
#[derive(Debug)]
pub struct ZoneManager {
    zns: Arc<ZonedNamespace>,
    inner: Mutex<Inner>,
    /// Free-zone gauge mirroring `inner.free_by_channel` so pressure
    /// probes ([`free_zones`](Self::free_zones)) never contend on the
    /// allocation lock. Self-synchronized [`Shared`] cell, refreshed
    /// under the `inner` lock at every allocation-state mutation, and
    /// visible to the debug-build race detector (DESIGN.md §11).
    free_count: Shared<u32>,
    zone_blocks: u64,
    /// Zones held back from ordinary allocation so that sealing a write
    /// log always has room for its final tail blocks. Without this, a
    /// device that hits exhaustion mid-append can never seal — the full
    /// tail block retries the exact allocation that just failed — and the
    /// keyspace can't be frozen READ_ONLY gracefully.
    seal_reserve: u32,
}

impl ZoneManager {
    /// Wrap a zoned namespace. `reserved_zones` zones at the front are
    /// excluded from allocation (the keyspace manager's metadata zone(s)).
    pub fn new(zns: Arc<ZonedNamespace>, reserved_zones: u32, seed: u64) -> Self {
        let channels = zns.nand().geometry().channels;
        let mut free_by_channel: Vec<Vec<u32>> = (0..channels).map(|_| Vec::new()).collect();
        for z in (reserved_zones..zns.zone_count()).rev() {
            free_by_channel[zns.channel_of_zone(z) as usize].push(z);
        }
        let zone_blocks = zns.zone_capacity_pages() as u64;
        debug_assert_eq!(
            zns.nand().geometry().page_bytes as usize,
            BLOCK_BYTES,
            "device blocks are NAND pages"
        );
        let free_total: u32 = free_by_channel.iter().map(|v| v.len() as u32).sum();
        Self {
            zns,
            inner: Mutex::new(Inner {
                free_by_channel,
                clusters: HashMap::new(),
                next_id: 1,
                rng: XorShift64::new(seed),
            }),
            free_count: Shared::new(free_total),
            zone_blocks,
            seal_reserve: 0,
        }
    }

    /// Re-derive the free-zone gauge from the free lists. Callers must
    /// hold the `inner` lock, so the recount is consistent with the
    /// mutation it follows.
    fn refresh_free_count(&self, inner: &Inner) {
        let total: u32 = inner.free_by_channel.iter().map(|v| v.len() as u32).sum();
        self.free_count.set(total);
    }

    /// Hold `zones` zones back from ordinary growth as the seal reserve
    /// (see the field doc). Sized by the device to cover one emergency
    /// stripe group for each of KLOG and VLOG.
    pub fn with_seal_reserve(mut self, zones: u32) -> Self {
        self.seal_reserve = zones;
        self
    }

    pub fn zns(&self) -> &Arc<ZonedNamespace> {
        &self.zns
    }

    /// Total free zones. Reads the cached gauge — pressure probes don't
    /// contend on the allocation lock.
    pub fn free_zones(&self) -> u32 {
        self.free_count.get()
    }

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.inner.lock().clusters.len()
    }

    fn take_zone_group(inner: &mut Inner, width: u32, reserve: u32) -> Result<Vec<u32>> {
        let channels = inner.free_by_channel.len();
        let total_free: usize = inner.free_by_channel.iter().map(Vec::len).sum();
        if total_free < width as usize + reserve as usize {
            return Err(DeviceError::OutOfResources(format!(
                "need {width} zones, {total_free} free ({reserve} held in seal reserve)"
            )));
        }
        // One zone per channel where possible, starting at a random
        // channel so clusters spread load.
        let start = inner.rng.next_below(channels as u64) as usize;
        let mut zones = Vec::with_capacity(width as usize);
        let mut probe = 0;
        while zones.len() < width as usize {
            let c = (start + probe) % channels;
            probe += 1;
            if let Some(z) = inner.free_by_channel[c].pop() {
                zones.push(z);
            }
            if probe > channels * (width as usize + 1) {
                // All remaining free zones are on few channels; drain them.
                for ch in 0..channels {
                    while zones.len() < width as usize {
                        match inner.free_by_channel[ch].pop() {
                            Some(z) => zones.push(z),
                            None => break,
                        }
                    }
                }
                break;
            }
        }
        debug_assert_eq!(zones.len(), width as usize);
        Ok(zones)
    }

    /// Allocate a cluster striping over `width` zones.
    pub fn alloc_cluster(&self, width: u32) -> Result<ClusterId> {
        let width = width.max(1);
        let mut inner = self.inner.lock();
        let zones = Self::take_zone_group(&mut inner, width, self.seal_reserve)?;
        self.refresh_free_count(&inner);
        let id = inner.next_id;
        inner.next_id += 1;
        let offset = inner.rng.next_below(width as u64) as u32;
        inner.clusters.insert(
            id,
            Cluster {
                groups: vec![zones],
                width,
                offset,
                blocks: 0,
            },
        );
        Ok(ClusterId(id))
    }

    /// Blocks appended to `cluster` so far.
    pub fn cluster_blocks(&self, cluster: ClusterId) -> Result<u64> {
        let inner = self.inner.lock();
        let c = inner
            .clusters
            .get(&cluster.0)
            .ok_or(DeviceError::Internal(format!(
                "cluster {} not found",
                cluster.0
            )))?;
        Ok(c.blocks)
    }

    /// Bytes appended to `cluster` so far (always block-aligned).
    pub fn cluster_bytes(&self, cluster: ClusterId) -> Result<u64> {
        Ok(self.cluster_blocks(cluster)? * BLOCK_BYTES as u64)
    }

    /// Zones currently owned by `cluster`.
    pub fn cluster_zone_count(&self, cluster: ClusterId) -> Result<u32> {
        let inner = self.inner.lock();
        let c = inner
            .clusters
            .get(&cluster.0)
            .ok_or_else(|| DeviceError::Internal(format!("cluster {} not found", cluster.0)))?;
        Ok(c.groups.iter().map(|g| g.len() as u32).sum())
    }

    fn locate(&self, c: &Cluster, block: u64) -> (u32, u32) {
        let group_blocks = c.width as u64 * self.zone_blocks;
        let group = (block / group_blocks) as usize;
        let in_group = block % group_blocks;
        let slot = ((in_group + c.offset as u64) % c.width as u64) as usize;
        let page = (in_group / c.width as u64) as u32;
        (c.groups[group][slot], page)
    }

    /// Append one block (at most [`BLOCK_BYTES`]) to the cluster stream,
    /// returning its block index.
    pub fn append_block(&self, cluster: ClusterId, data: &[u8]) -> Result<u64> {
        self.append_block_inner(cluster, data, self.seal_reserve)
    }

    /// Like [`append_block`](Self::append_block) but allowed to dip into
    /// the seal reserve. Only the log-seal path may use this: it appends
    /// at most one padded tail block per log, so the reserve bounds it.
    pub fn append_block_sealing(&self, cluster: ClusterId, data: &[u8]) -> Result<u64> {
        self.append_block_inner(cluster, data, 0)
    }

    fn append_block_inner(&self, cluster: ClusterId, data: &[u8], reserve: u32) -> Result<u64> {
        if data.len() > BLOCK_BYTES {
            return Err(DeviceError::BadPayload(format!(
                "block of {} bytes",
                data.len()
            )));
        }
        let mut inner = self.inner.lock();
        // Grow by a stripe group if the current groups are full.
        let (zone, page, block_ix) = {
            let need_group = {
                let c = inner
                    .clusters
                    .get(&cluster.0)
                    .ok_or_else(|| DeviceError::Internal("cluster gone".into()))?;
                let capacity = c.groups.len() as u64 * c.width as u64 * self.zone_blocks;
                c.blocks >= capacity
            };
            if need_group {
                let width = inner.clusters[&cluster.0].width;
                let zones = Self::take_zone_group(&mut inner, width, reserve)?;
                self.refresh_free_count(&inner);
                inner
                    .clusters
                    .get_mut(&cluster.0)
                    .ok_or_else(|| DeviceError::Internal("cluster gone".into()))?
                    .groups
                    .push(zones);
            }
            let c = inner
                .clusters
                .get_mut(&cluster.0)
                .ok_or_else(|| DeviceError::Internal("cluster gone".into()))?;
            let block_ix = c.blocks;
            c.blocks += 1;
            let (zone, page) = {
                let group_blocks = c.width as u64 * self.zone_blocks;
                let group = (block_ix / group_blocks) as usize;
                let in_group = block_ix % group_blocks;
                let slot = ((in_group + c.offset as u64) % c.width as u64) as usize;
                let page = (in_group / c.width as u64) as u32;
                (c.groups[group][slot], page)
            };
            (zone, page, block_ix)
        };
        drop(inner);
        let start = self.zns.append(zone, data)?;
        debug_assert_eq!(start, page, "round-robin striping must fill zones in order");
        Ok(block_ix)
    }

    /// Read one whole block back.
    pub fn read_block(&self, cluster: ClusterId, block: u64) -> Result<Vec<u8>> {
        let (zone, page) = {
            let inner = self.inner.lock();
            let c = inner
                .clusters
                .get(&cluster.0)
                .ok_or_else(|| DeviceError::Internal("cluster gone".into()))?;
            if block >= c.blocks {
                return Err(DeviceError::Internal(format!(
                    "block {block} past end of cluster ({})",
                    c.blocks
                )));
            }
            self.locate(c, block)
        };
        Ok(self.zns.read_pages(zone, page, 1)?)
    }

    /// Read `len` bytes at stream byte `offset`, touching only the
    /// covering blocks (whole-block I/O — the read-amplification
    /// granularity of the device).
    pub fn read_bytes(&self, cluster: ClusterId, offset: u64, len: usize) -> Result<Vec<u8>> {
        let bb = BLOCK_BYTES as u64;
        let first = offset / bb;
        let last = (offset + len as u64).div_ceil(bb);
        let mut buf = Vec::with_capacity(((last - first) * bb) as usize);
        for b in first..last {
            buf.extend_from_slice(&self.read_block(cluster, b)?);
        }
        let skip = (offset - first * bb) as usize;
        buf.drain(..skip);
        buf.truncate(len);
        Ok(buf)
    }

    /// Export the manager's allocation state for a device snapshot.
    pub fn export_state(&self) -> ZoneManagerState {
        let inner = self.inner.lock();
        let mut clusters: Vec<ClusterState> = inner
            .clusters
            .iter()
            .map(|(&id, c)| ClusterState {
                id,
                width: c.width,
                offset: c.offset,
                blocks: c.blocks,
                groups: c.groups.clone(),
            })
            .collect();
        clusters.sort_by_key(|c| c.id);
        ZoneManagerState {
            next_id: inner.next_id,
            clusters,
        }
    }

    /// Rebuild a manager from a snapshot after a device restart.
    ///
    /// Cluster block counts are recomputed from the zones' *write
    /// pointers* (the ground truth that survives a crash), because data
    /// may have been appended after the snapshot was taken.
    pub fn restore(
        zns: Arc<ZonedNamespace>,
        reserved_zones: u32,
        seed: u64,
        state: &ZoneManagerState,
    ) -> Result<Self> {
        let mgr = Self::new(Arc::clone(&zns), reserved_zones, seed);
        {
            let mut inner = mgr.inner.lock();
            inner.next_id = state.next_id;
            let mut used: std::collections::HashSet<u32> = std::collections::HashSet::new();
            for cs in &state.clusters {
                let mut blocks = 0u64;
                for group in &cs.groups {
                    for &z in group {
                        if z >= zns.zone_count() {
                            return Err(DeviceError::Internal(format!(
                                "snapshot references zone {z} outside the device"
                            )));
                        }
                        used.insert(z);
                        blocks += zns.zone_info(z)?.write_pointer_pages as u64;
                    }
                }
                inner.clusters.insert(
                    cs.id,
                    Cluster {
                        groups: cs.groups.clone(),
                        width: cs.width,
                        offset: cs.offset,
                        blocks,
                    },
                );
            }
            for free in &mut inner.free_by_channel {
                free.retain(|z| !used.contains(z));
            }
            mgr.refresh_free_count(&inner);
            // Crash debris: zones written after the snapshot was taken
            // (in-flight allocations the crash lost) are referenced by no
            // restored cluster but still carry data. Reset them now so a
            // later alloc hands out zones whose write pointer is 0.
            for ch in 0..inner.free_by_channel.len() {
                for i in 0..inner.free_by_channel[ch].len() {
                    let z = inner.free_by_channel[ch][i];
                    if zns.zone_info(z)?.state != ZoneState::Empty {
                        zns.reset(z)?;
                    }
                }
            }
        }
        Ok(mgr)
    }

    /// Release a cluster: reset all its zones and return them to the pool.
    pub fn release_cluster(&self, cluster: ClusterId) -> Result<()> {
        let mut inner = self.inner.lock();
        let c = inner
            .clusters
            .remove(&cluster.0)
            .ok_or_else(|| DeviceError::Internal("cluster gone".into()))?;
        // Reset outside the free-list mutation but inside the lock is fine:
        // zns has its own synchronization.
        for zone in c.groups.iter().flatten() {
            if self.zns.zone_info(*zone)?.state != ZoneState::Empty {
                self.zns.reset(*zone)?;
            }
            let ch = self.zns.channel_of_zone(*zone) as usize;
            inner.free_by_channel[ch].push(*zone);
        }
        self.refresh_free_count(&inner);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig};
    use kvcsd_sim::{HardwareSpec, IoLedger};

    fn mgr(channels: u32, blocks_per_channel: u32) -> ZoneManager {
        let geom = FlashGeometry {
            channels,
            blocks_per_channel,
            pages_per_block: 4,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let zns = Arc::new(ZonedNamespace::new(
            nand,
            ZnsConfig {
                zone_blocks: 2,
                max_open_zones: 4096,
            },
        ));
        ZoneManager::new(zns, 1, 42)
    }

    #[test]
    fn alloc_spreads_channels() {
        let m = mgr(8, 8);
        let c = m.alloc_cluster(8).unwrap();
        assert_eq!(m.cluster_zone_count(c).unwrap(), 8);
        // Write 8 blocks: all 8 channels must see traffic.
        for i in 0..8u8 {
            m.append_block(c, &[i; 64]).unwrap();
        }
        let s = m.zns().nand().ledger().snapshot();
        let busy = s.channel_busy_ns.iter().filter(|&&b| b > 0).count();
        assert_eq!(busy, 8, "cluster of width 8 must hit all 8 channels");
    }

    #[test]
    fn stream_roundtrip_block_level() {
        let m = mgr(4, 16);
        let c = m.alloc_cluster(4).unwrap();
        for i in 0..20u64 {
            let ix = m.append_block(c, &[i as u8; 4096]).unwrap();
            assert_eq!(ix, i);
        }
        assert_eq!(m.cluster_blocks(c).unwrap(), 20);
        for i in 0..20u64 {
            assert_eq!(
                m.read_block(c, i).unwrap(),
                vec![i as u8; 4096],
                "block {i}"
            );
        }
    }

    #[test]
    fn short_final_block_zero_padded() {
        let m = mgr(4, 16);
        let c = m.alloc_cluster(2).unwrap();
        m.append_block(c, &[9u8; 100]).unwrap();
        let b = m.read_block(c, 0).unwrap();
        assert_eq!(&b[..100], &[9u8; 100]);
        assert!(b[100..].iter().all(|&x| x == 0));
    }

    #[test]
    fn byte_stream_reads_span_blocks() {
        let m = mgr(4, 16);
        let c = m.alloc_cluster(3).unwrap();
        let mut all = Vec::new();
        for i in 0..6u64 {
            let block: Vec<u8> = (0..4096u32)
                .map(|j| ((i * 31 + j as u64) % 251) as u8)
                .collect();
            m.append_block(c, &block).unwrap();
            all.extend_from_slice(&block);
        }
        assert_eq!(m.read_bytes(c, 4000, 200).unwrap(), &all[4000..4200]);
        assert_eq!(m.read_bytes(c, 0, 1).unwrap(), &all[0..1]);
        assert_eq!(m.read_bytes(c, 8192, 4096).unwrap(), &all[8192..12288]);
    }

    #[test]
    fn clusters_grow_beyond_initial_group() {
        let m = mgr(4, 16); // zone = 2 blocks * 4 pages = 8 blocks of 4 KiB
        let c = m.alloc_cluster(2).unwrap();
        // Initial group: 2 zones * 8 blocks = 16 blocks. Write 40.
        for i in 0..40u64 {
            m.append_block(c, &[i as u8; 8]).unwrap();
        }
        assert!(m.cluster_zone_count(c).unwrap() >= 6);
        for i in (0..40u64).step_by(7) {
            assert_eq!(m.read_block(c, i).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn release_returns_zones_for_reuse() {
        let m = mgr(4, 4); // small: 4 ch * 4 blocks / 2-block zones = 8 zones, 1 reserved
        let free0 = m.free_zones();
        let c = m.alloc_cluster(4).unwrap();
        for i in 0..8u64 {
            m.append_block(c, &[i as u8; 16]).unwrap();
        }
        assert!(m.free_zones() < free0);
        m.release_cluster(c).unwrap();
        assert_eq!(m.free_zones(), free0);
        // Reading a released cluster is an error.
        assert!(m.read_block(c, 0).is_err());
        // And the zones are reusable.
        let c2 = m.alloc_cluster(4).unwrap();
        m.append_block(c2, &[1u8; 16]).unwrap();
    }

    #[test]
    fn alloc_fails_when_zones_exhausted() {
        let m = mgr(2, 4); // 2*4/2 = 4 zones, 1 reserved -> 3 usable
        let _c1 = m.alloc_cluster(3).unwrap();
        assert!(matches!(
            m.alloc_cluster(1),
            Err(DeviceError::OutOfResources(_))
        ));
    }

    #[test]
    fn append_overflow_grows_or_errors_cleanly() {
        let m = mgr(2, 4); // 3 usable zones of 8 blocks
        let c = m.alloc_cluster(2).unwrap();
        let mut wrote = 0u64;
        loop {
            match m.append_block(c, &[0u8; 8]) {
                Ok(_) => wrote += 1,
                Err(DeviceError::OutOfResources(_)) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
            assert!(wrote < 100, "must run out eventually");
        }
        // 2 initial zones (16 blocks) fit; the third group alloc of width
        // 2 fails with 1 zone left.
        assert_eq!(wrote, 16);
    }

    #[test]
    fn seal_reserve_is_kept_back_for_sealing_appends() {
        // 4*4/2 = 8 zones, 1 reserved for metadata -> 7 usable, of which
        // 2 are held back as the seal reserve.
        let m = mgr(4, 4).with_seal_reserve(2);
        let c = m.alloc_cluster(1).unwrap();
        // Ordinary appends stop while 2 zones are still free...
        let mut wrote = 0u64;
        loop {
            match m.append_block(c, &[7u8; 8]) {
                Ok(_) => wrote += 1,
                Err(DeviceError::OutOfResources(msg)) => {
                    assert!(msg.contains("seal reserve"), "{msg}");
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
            assert!(wrote < 100, "must hit the reserve floor eventually");
        }
        assert_eq!(m.free_zones(), 2, "reserve must survive ordinary growth");
        // ...but the sealing variant may consume them.
        m.append_block_sealing(c, &[8u8; 8]).unwrap();
        assert!(m.free_zones() < 2);
        // And ordinary allocation is also refused inside the reserve.
        assert!(matches!(
            m.alloc_cluster(1),
            Err(DeviceError::OutOfResources(_))
        ));
    }

    #[test]
    fn distinct_clusters_have_distinct_streams() {
        let m = mgr(4, 16);
        let a = m.alloc_cluster(2).unwrap();
        let b = m.alloc_cluster(2).unwrap();
        m.append_block(a, &[1u8; 32]).unwrap();
        m.append_block(b, &[2u8; 32]).unwrap();
        assert_eq!(m.read_block(a, 0).unwrap()[0], 1);
        assert_eq!(m.read_block(b, 0).unwrap()[0], 2);
    }

    #[test]
    fn oversized_block_rejected() {
        let m = mgr(4, 16);
        let c = m.alloc_cluster(1).unwrap();
        assert!(matches!(
            m.append_block(c, &vec![0u8; BLOCK_BYTES + 1]),
            Err(DeviceError::BadPayload(_))
        ));
    }

    #[test]
    fn export_restore_roundtrip_preserves_data() {
        let m = mgr(4, 16);
        let a = m.alloc_cluster(3).unwrap();
        let b = m.alloc_cluster(2).unwrap();
        for i in 0..10u64 {
            m.append_block(a, &[i as u8; 64]).unwrap();
        }
        m.append_block(b, &[0xBB; 64]).unwrap();
        let state = m.export_state();
        let zns = Arc::clone(m.zns());
        let free_before = m.free_zones();
        drop(m);

        let m2 = ZoneManager::restore(zns, 1, 42, &state).unwrap();
        assert_eq!(m2.free_zones(), free_before, "free pool reconstructed");
        assert_eq!(m2.cluster_blocks(a).unwrap(), 10);
        assert_eq!(m2.cluster_blocks(b).unwrap(), 1);
        for i in 0..10u64 {
            assert_eq!(m2.read_block(a, i).unwrap()[0], i as u8);
        }
        assert_eq!(m2.read_block(b, 0).unwrap()[0], 0xBB);
        // New allocations do not collide with restored clusters.
        let c = m2.alloc_cluster(2).unwrap();
        assert!(c.0 > b.0);
        m2.append_block(c, &[1; 8]).unwrap();
        // Appends to restored clusters continue at the right position.
        let ix = m2.append_block(a, &[99; 8]).unwrap();
        assert_eq!(ix, 10);
        assert_eq!(m2.read_block(a, 10).unwrap()[0], 99);
    }

    #[test]
    fn restore_rejects_bogus_zone_refs() {
        let m = mgr(4, 16);
        let state = ZoneManagerState {
            next_id: 5,
            clusters: vec![ClusterState {
                id: 1,
                width: 1,
                offset: 0,
                blocks: 0,
                groups: vec![vec![9999]],
            }],
        };
        assert!(ZoneManager::restore(Arc::clone(m.zns()), 1, 1, &state).is_err());
    }

    #[test]
    fn width_one_cluster_works() {
        let m = mgr(4, 16);
        let c = m.alloc_cluster(1).unwrap();
        for i in 0..10u64 {
            m.append_block(c, &[i as u8; 4]).unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(m.read_block(c, i).unwrap()[0], i as u8);
        }
    }
}
