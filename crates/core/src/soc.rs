//! SoC CPU cost charging.
//!
//! All device-side computation runs on the 4 ARM Cortex-A53 cores, which
//! the cost model rates `soc_slowdown` times slower than a host core.
//! This helper wraps the ledger so call sites stay terse and every charge
//! lands on the *SoC* counter — the whole point of the paper is that this
//! work does not consume host CPU.

use std::sync::Arc;

use kvcsd_sim::config::CostModel;
use kvcsd_sim::IoLedger;

/// Charges SoC CPU time for device-side work.
#[derive(Debug, Clone)]
pub struct SocCharger {
    ledger: Arc<IoLedger>,
    cost: CostModel,
}

impl SocCharger {
    pub fn new(ledger: Arc<IoLedger>, cost: CostModel) -> Self {
        Self { ledger, cost }
    }

    pub fn ledger(&self) -> &Arc<IoLedger> {
        &self.ledger
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn charge(&self, host_equiv_ns: f64) {
        self.ledger
            .charge_soc_cpu(host_equiv_ns * self.cost.soc_slowdown);
    }

    /// `n` key comparisons.
    pub fn cmp(&self, n: f64) {
        self.charge(n * self.cost.key_cmp_ns);
    }

    /// Sorting `n` records: n log2 n comparisons plus per-record swaps.
    pub fn sort(&self, n: usize) {
        let n = n.max(2) as f64;
        self.charge(n * n.log2() * self.cost.key_cmp_ns);
    }

    /// A k-way merge step over `k` streams.
    pub fn merge_step(&self, k: usize) {
        self.charge((k.max(2) as f64).log2() * self.cost.key_cmp_ns);
    }

    /// Moving / encoding / decoding `bytes` of data.
    pub fn bytes(&self, bytes: usize) {
        self.charge(bytes as f64 * self.cost.codec_ns_per_byte);
    }

    /// Bulk memory movement of `bytes` (cheaper than codec work).
    pub fn memcpy(&self, bytes: usize) {
        self.charge(bytes as f64 * self.cost.memcpy_ns_per_byte);
    }

    /// Fixed per-key-value-pair data-path cost (parsing, framing,
    /// buffer management) on the device.
    pub fn kv_op(&self) {
        self.charge(self.cost.kv_op_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc() -> SocCharger {
        SocCharger::new(Arc::new(IoLedger::new(4, 4096)), CostModel::default())
    }

    #[test]
    fn charges_land_on_soc_counter() {
        let s = soc();
        s.cmp(100.0);
        s.bytes(1000);
        let snap = s.ledger().snapshot();
        assert!(snap.soc_cpu_ns > 0);
        assert_eq!(
            snap.host_cpu_ns, 0,
            "device work must never hit the host CPU"
        );
    }

    #[test]
    fn slowdown_factor_applies() {
        let s = soc();
        s.cmp(1.0);
        let expect = CostModel::default().key_cmp_ns * CostModel::default().soc_slowdown;
        assert_eq!(s.ledger().snapshot().soc_cpu_ns, expect as u64);
    }

    #[test]
    fn sort_cost_is_superlinear() {
        let a = soc();
        a.sort(1000);
        let b = soc();
        b.sort(2000);
        let ca = a.ledger().snapshot().soc_cpu_ns;
        let cb = b.ledger().snapshot().soc_cpu_ns;
        assert!(
            cb as f64 > 2.0 * ca as f64,
            "2x records must cost more than 2x"
        );
    }
}
