//! The KV-CSD on-SoC key-value store — the paper's primary contribution.
//!
//! This crate implements the device side of KV-CSD: an ordered key-value
//! store running *inside* a computational storage device, directly on a
//! zoned-namespace SSD, with all performance-critical work offloaded from
//! the host:
//!
//! * [`zone_mgr`] — the zone manager: allocates zones in **zone clusters**
//!   and stripes 4 KiB blocks across them with a per-cluster randomized
//!   offset, spreading writes over all NAND channels (Section IV);
//! * [`keyspace`] — the keyspace manager: named containers of key-value
//!   pairs with the EMPTY / WRITABLE / COMPACTING / COMPACTED lifecycle,
//!   persisted to a metadata zone;
//! * [`ingest`] — the write path: a 192 KiB SoC DRAM buffer packing
//!   key-value pairs with **key-value separation** into KLOG (keys +
//!   value pointers) and VLOG (raw values) zone clusters;
//! * [`extsort`] — DRAM-bounded external merge sort, the engine behind
//!   deferred compaction (multiple rounds of merge sorts, Section V);
//! * [`compact`] — offloaded compaction: sort the keys, then reorder the
//!   values, producing PIDX + SORTED_VALUES clusters and an in-memory
//!   block **sketch** (one pivot key per 4 KiB index block);
//! * [`sidx`] — offloaded secondary-index construction and the SIDX
//!   cluster format;
//! * [`query`] — point and range query processing over both indexes,
//!   entirely device-side: only results cross the bus;
//! * [`admission`] — overload control: the admission gate every command
//!   path consults (slowdown / stall / reject bands over DRAM usage, job
//!   queue depth and compaction debt) plus sim-clock deadlines;
//! * [`device`] — [`KvCsdDevice`], the command processor implementing
//!   [`kvcsd_proto::DeviceHandler`], with the deferred background-job
//!   queue (compaction and index builds run asynchronously from the
//!   host's perspective).
//!
//! All SoC CPU work is charged at `soc_slowdown` times host cost; all
//! storage I/O goes through the real ZNS rules in `kvcsd-flash`.

pub mod admission;
pub mod artifact;
pub mod compact;
pub mod device;
pub mod dram;
pub mod error;
pub mod extsort;
pub mod ingest;
pub mod keyspace;
pub mod lifecycle;
pub mod meta;
pub mod query;
pub mod sidx;
pub mod snapshot;
pub mod soc;
pub mod wal;
pub mod zone_mgr;

pub use admission::{AdmissionConfig, AdmissionGate, Deadline, Decision, PressureSample};
pub use artifact::{ArtifactPayload, KeyspaceArtifacts, SidxArtifact};
pub use device::{DeviceConfig, KvCsdDevice};
pub use dram::{DramBudget, DramReservation};
pub use error::DeviceError;
pub use zone_mgr::{BlockAddr, ClusterId, ZoneManager};

/// Result alias for device-side operations.
pub type Result<T> = std::result::Result<T, DeviceError>;

/// The device's fixed data block size: one NAND page, as in the paper
/// ("both store data as a series of 4 KB data blocks").
pub const BLOCK_BYTES: usize = 4096;

/// Default SoC DRAM ingest buffer per keyspace ("192 KB for the current
/// prototype").
pub const INGEST_BUFFER_BYTES: usize = 192 * 1024;
