//! Replication artifacts: sealed index/block state exported for shipping.
//!
//! The cluster layer replicates *artifacts*, not writes. A shard's
//! primary exports the durable by-products of its own work — sealed
//! KLOG/VLOG pairs the moment a compaction starts, and the built
//! primary/secondary indexes once it finishes — and ships them to a
//! replica device, which installs them verbatim. The replica never
//! re-sorts and never re-extracts secondary keys; this is the
//! index-replication argument of Vardoulakis et al. applied to KV-CSD's
//! in-storage builds, and it is what makes failover cheap: promotion is
//! "install the latest artifact per keyspace, re-run at most one
//! compaction", not "replay a write stream".
//!
//! The types here are the in-memory form. The wire envelope
//! ([`kvcsd_proto::ReplicaShip`]) frames [`KeyspaceArtifacts::wire_bytes`]
//! on the replication bus; export/import live on
//! [`crate::device::KvCsdDevice`] because they touch keyspace-table and
//! zone-manager internals.

use kvcsd_proto::{SecondaryIndexSpec, ShipKind};

/// One secondary index, fully built: spec, sketch pivots and raw blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidxArtifact {
    pub spec: SecondaryIndexSpec,
    pub entries: u64,
    /// Sketch pivots (first secondary key of each index block).
    pub pivots: Vec<Vec<u8>>,
    /// The index blocks, concatenated (length = blocks × 4 KiB).
    pub data: Vec<u8>,
}

/// What was exported, by compaction phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactPayload {
    /// The sealed write logs of a keyspace whose compaction has not
    /// finished. Every acked-and-sealed pair is in here; the importer
    /// installs them DEGRADED and re-runs compaction locally.
    SealedLogs { klog: Vec<u8>, vlog: Vec<u8> },
    /// The finished product: primary index blocks + sketch pivots, sorted
    /// values, and every built secondary index. Installed verbatim as
    /// COMPACTED — the importer does no sorting at all.
    Compacted {
        /// Primary index blocks, concatenated (length = blocks × 4 KiB).
        pidx: Vec<u8>,
        /// Primary sketch pivots (first key of each PIDX block).
        pidx_pivots: Vec<Vec<u8>>,
        /// Sorted value log (exact byte length).
        svalues: Vec<u8>,
        sidx: Vec<SidxArtifact>,
    },
}

/// Everything a replica needs to serve one keyspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyspaceArtifacts {
    pub name: String,
    pub pairs: u64,
    pub data_bytes: u64,
    pub min_key: Option<Vec<u8>>,
    pub max_key: Option<Vec<u8>>,
    pub payload: ArtifactPayload,
}

impl KeyspaceArtifacts {
    /// The [`kvcsd_proto::ShipKind`] this payload frames as on the bus.
    pub fn ship_kind(&self) -> ShipKind {
        match self.payload {
            ArtifactPayload::SealedLogs { .. } => ShipKind::SealedLogs,
            ArtifactPayload::Compacted { .. } => ShipKind::Compacted,
        }
    }

    /// Payload bytes that cross the replication bus (data blocks plus
    /// pivot/spec metadata; the envelope header is counted by
    /// [`kvcsd_proto::ReplicaShip::wire_size`]).
    pub fn wire_bytes(&self) -> u64 {
        let keys = self.min_key.as_ref().map_or(0, |k| k.len())
            + self.max_key.as_ref().map_or(0, |k| k.len());
        let payload = match &self.payload {
            ArtifactPayload::SealedLogs { klog, vlog } => klog.len() + vlog.len(),
            ArtifactPayload::Compacted {
                pidx,
                pidx_pivots,
                svalues,
                sidx,
            } => {
                pidx.len()
                    + svalues.len()
                    + pidx_pivots.iter().map(|p| p.len() + 4).sum::<usize>()
                    + sidx
                        .iter()
                        .map(|s| {
                            s.data.len()
                                + s.spec.name.len()
                                + 16
                                + s.pivots.iter().map(|p| p.len() + 4).sum::<usize>()
                        })
                        .sum::<usize>()
            }
        };
        (keys + payload) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(name: &str, klog: usize, vlog: usize) -> KeyspaceArtifacts {
        KeyspaceArtifacts {
            name: name.into(),
            pairs: 10,
            data_bytes: (klog + vlog) as u64,
            min_key: Some(b"a".to_vec()),
            max_key: Some(b"z".to_vec()),
            payload: ArtifactPayload::SealedLogs {
                klog: vec![0; klog],
                vlog: vec![0; vlog],
            },
        }
    }

    #[test]
    fn ship_kind_matches_payload() {
        assert_eq!(sealed("a", 1, 1).ship_kind(), ShipKind::SealedLogs);
        let built = KeyspaceArtifacts {
            payload: ArtifactPayload::Compacted {
                pidx: vec![0; 4096],
                pidx_pivots: vec![b"a".to_vec()],
                svalues: vec![0; 100],
                sidx: vec![],
            },
            ..sealed("a", 0, 0)
        };
        assert_eq!(built.ship_kind(), ShipKind::Compacted);
    }

    #[test]
    fn wire_bytes_counts_every_data_byte() {
        let a = sealed("events", 4096, 8192);
        // min/max keys (2) + klog + vlog.
        assert_eq!(a.wire_bytes(), 2 + 4096 + 8192);
    }
}
