//! The public client API: device handle, keyspace sessions, bulk writer,
//! background jobs.

use std::sync::Arc;

use kvcsd_proto::{
    Bound, BulkBuilder, DeviceHandler, JobId, JobState, KeyspaceDesc, KeyspaceStat, KeyspaceState,
    KvCommand, KvResponse, QueuePair, SecondaryIndexSpec, SidxKey, DEFAULT_BULK_BYTES,
};
use kvcsd_sim::{IoLedger, VirtualClock};

use crate::accel::WriteAccelerator;
use crate::error::ClientError;
use crate::window::InflightWindow;
use crate::Result;

/// Bounded retry with exponential backoff for retryable device errors.
///
/// Only statuses where [`kvcsd_proto::KvStatus::is_retryable`] is true
/// (transient device errors) are resent; media errors, power loss, and
/// logical errors surface immediately. Backoff doubles per attempt from
/// `base_backoff_ns`, capped at `max_backoff_ns`; in simulation the wait
/// is charged to the ledger (`client_retry_backoff_ns`) rather than slept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Resends after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff_ns: u64,
    /// Ceiling on the per-retry backoff.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_backoff_ns: 100_000,
            max_backoff_ns: 10_000_000,
        }
    }
}

impl RetryPolicy {
    /// Fail fast: surface the first error, retryable or not.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Backoff before retry number `attempt` (1-based), doubling and capped.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1);
        if shift >= self.base_backoff_ns.leading_zeros() {
            return self.max_backoff_ns; // doubling further would drop bits
        }
        (self.base_backoff_ns << shift).min(self.max_backoff_ns)
    }
}

/// Send `cmd`, resending on retryable statuses within the policy budget.
///
/// This is a thin wrapper over an ephemeral single-op
/// [`InflightWindow`]: the window owns the retry state machine (backoff
/// doubling charged to the ledger and the attached clock, failover/fence
/// redirect fast paths, deadline-aware fail-fast with
/// [`KvStatus::DeadlineExceeded`]), so the lock-step call paths and the
/// pipelined ingest paths share one implementation. The fresh
/// [`QueuePair`] clone gives the window a private completion queue, so
/// concurrent sessions never see each other's completions.
fn exec_with_retry(
    qp: &QueuePair,
    policy: &RetryPolicy,
    clock: Option<&Arc<VirtualClock>>,
    deadline_ns: Option<u64>,
    cmd: KvCommand,
) -> Result<KvResponse> {
    InflightWindow::new(qp.clone(), *policy, clock.cloned()).call(deadline_ns, cmd)
}

/// Handle to one KV-CSD device.
#[derive(Debug, Clone)]
pub struct KvCsd {
    qp: QueuePair,
    policy: RetryPolicy,
    clock: Option<Arc<VirtualClock>>,
    deadline_ns: Option<u64>,
}

impl KvCsd {
    /// Connect to a device through a new queue pair.
    pub fn connect(device: Arc<dyn DeviceHandler>, ledger: Arc<IoLedger>) -> Self {
        Self {
            qp: QueuePair::new(device, ledger),
            policy: RetryPolicy::default(),
            clock: None,
            deadline_ns: None,
        }
    }

    /// Replace the retry policy; sessions and jobs opened afterwards
    /// inherit it.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach the simulation clock shared with the device. Retry backoff
    /// then advances this clock, and deadline-aware retries can tell when
    /// the budget is spent. Sessions and jobs opened afterwards inherit it.
    pub fn with_clock(mut self, clock: Arc<VirtualClock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Set an absolute deadline (sim-clock ns) stamped on every command
    /// issued through this handle and sessions opened from it. The device
    /// rejects expired work with `DeadlineExceeded`; the client retry loop
    /// never schedules a retry past the budget.
    pub fn with_deadline(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    fn exec(&self, cmd: KvCommand) -> Result<KvResponse> {
        exec_with_retry(
            &self.qp,
            &self.policy,
            self.clock.as_ref(),
            self.deadline_ns,
            cmd,
        )
    }

    fn session(&self, ks: u32) -> Keyspace {
        Keyspace {
            qp: self.qp.clone(),
            id: ks,
            policy: self.policy,
            clock: self.clock.clone(),
            deadline_ns: self.deadline_ns,
        }
    }

    /// Create a keyspace and open a session on it.
    pub fn create_keyspace(&self, name: &str) -> Result<Keyspace> {
        match self.exec(KvCommand::CreateKeyspace {
            name: name.to_string(),
        })? {
            KvResponse::Created { ks } => Ok(self.session(ks)),
            other => Err(unexpected("Created", &other)),
        }
    }

    /// Open an existing keyspace by name.
    pub fn open_keyspace(&self, name: &str) -> Result<(Keyspace, KeyspaceState)> {
        match self.exec(KvCommand::OpenKeyspace {
            name: name.to_string(),
        })? {
            KvResponse::Opened { ks, state } => Ok((self.session(ks), state)),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Enumerate keyspaces on the device.
    pub fn list_keyspaces(&self) -> Result<Vec<KeyspaceDesc>> {
        match self.exec(KvCommand::ListKeyspaces)? {
            KvResponse::Keyspaces(l) => Ok(l),
            other => Err(unexpected("Keyspaces", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &KvResponse) -> ClientError {
    ClientError::UnexpectedResponse(format!("wanted {wanted}, got {got:?}"))
}

/// A session on one keyspace.
#[derive(Debug, Clone)]
pub struct Keyspace {
    qp: QueuePair,
    id: u32,
    policy: RetryPolicy,
    clock: Option<Arc<VirtualClock>>,
    deadline_ns: Option<u64>,
}

impl Keyspace {
    /// The device-assigned keyspace id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// A session clone whose commands carry an absolute deadline
    /// (sim-clock ns). Expired work fails with `DeadlineExceeded` at the
    /// device; the retry loop never backs off past the budget.
    pub fn with_deadline(&self, deadline_ns: u64) -> Keyspace {
        Keyspace {
            deadline_ns: Some(deadline_ns),
            ..self.clone()
        }
    }

    fn exec(&self, cmd: KvCommand) -> Result<KvResponse> {
        exec_with_retry(
            &self.qp,
            &self.policy,
            self.clock.as_ref(),
            self.deadline_ns,
            cmd,
        )
    }

    /// Insert a single key-value pair (one command round trip; prefer
    /// [`Keyspace::bulk_writer`] for load phases — the paper measures
    /// bulk PUT as 7x faster).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        match self.exec(KvCommand::Put {
            ks: self.id,
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            KvResponse::PutOk => Ok(()),
            other => Err(unexpected("PutOk", &other)),
        }
    }

    /// Start a bulk-PUT stream with the default 128 KiB message size.
    pub fn bulk_writer(&self) -> BulkWriter {
        BulkWriter {
            ks: self.clone(),
            builder: BulkBuilder::default_size(),
            message_bytes: DEFAULT_BULK_BYTES,
            inserted: 0,
        }
    }

    /// Open a pipelined [`WriteAccelerator`] on this keyspace: staged,
    /// key-sorted ~128 KB bulk PUTs kept in flight at depth instead of
    /// lock-step round trips. See `accel` module docs for the
    /// `flush()`/drop and acked-only durability contract.
    pub fn write_accelerator(&self) -> WriteAccelerator {
        WriteAccelerator::new(
            self.qp.clone(),
            self.id,
            self.policy,
            self.clock.clone(),
            self.deadline_ns,
        )
    }

    /// Explicit fsync: make buffered writes durable through the device
    /// WAL (a no-op when the device runs with the WAL disabled, the mode
    /// the paper expects of checkpoint-restart production applications).
    pub fn fsync(&self) -> Result<()> {
        match self.exec(KvCommand::Flush { ks: self.id })? {
            KvResponse::Flushed => Ok(()),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// Invoke offloaded compaction; returns the background job handle.
    pub fn compact(&self) -> Result<Job> {
        match self.exec(KvCommand::Compact { ks: self.id })? {
            KvResponse::JobStarted { job } => Ok(Job {
                qp: self.qp.clone(),
                id: job,
                policy: self.policy,
                clock: self.clock.clone(),
                poll_streak: Arc::new(kvcsd_sim::sync::Shared::new(0)),
            }),
            other => Err(unexpected("JobStarted", &other)),
        }
    }

    /// Invoke offloaded compaction that also builds the given secondary
    /// indexes in the same device-side pass (single-step construction;
    /// the device falls back to separated passes when its DRAM is tight).
    pub fn compact_with_indexes(&self, specs: Vec<SecondaryIndexSpec>) -> Result<Job> {
        match self.exec(KvCommand::CompactAndIndex { ks: self.id, specs })? {
            KvResponse::JobStarted { job } => Ok(Job {
                qp: self.qp.clone(),
                id: job,
                policy: self.policy,
                clock: self.clock.clone(),
                poll_streak: Arc::new(kvcsd_sim::sync::Shared::new(0)),
            }),
            other => Err(unexpected("JobStarted", &other)),
        }
    }

    /// Request construction of a secondary index; returns the job handle.
    pub fn build_secondary_index(&self, spec: SecondaryIndexSpec) -> Result<Job> {
        match self.exec(KvCommand::BuildSecondaryIndex { ks: self.id, spec })? {
            KvResponse::JobStarted { job } => Ok(Job {
                qp: self.qp.clone(),
                id: job,
                policy: self.policy,
                clock: self.clock.clone(),
                poll_streak: Arc::new(kvcsd_sim::sync::Shared::new(0)),
            }),
            other => Err(unexpected("JobStarted", &other)),
        }
    }

    /// Point query over the primary key.
    pub fn get(&self, key: &[u8]) -> Result<Vec<u8>> {
        match self.exec(KvCommand::Get {
            ks: self.id,
            key: key.to_vec(),
        })? {
            KvResponse::Value(v) => Ok(v),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Range query over the primary key.
    pub fn range(
        &self,
        lo: Bound,
        hi: Bound,
        limit: Option<u64>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match self.exec(KvCommand::Range {
            ks: self.id,
            lo,
            hi,
            limit,
        })? {
            KvResponse::Entries(es) => Ok(es),
            other => Err(unexpected("Entries", &other)),
        }
    }

    /// Point query over a secondary index; returns full matching records.
    pub fn sidx_get(&self, index: &str, key: SidxKey) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match self.exec(KvCommand::SidxGet {
            ks: self.id,
            index: index.to_string(),
            key,
        })? {
            KvResponse::Entries(es) => Ok(es),
            other => Err(unexpected("Entries", &other)),
        }
    }

    /// Range query over a secondary index; returns full matching records.
    pub fn sidx_range(
        &self,
        index: &str,
        lo: Bound,
        hi: Bound,
        limit: Option<u64>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match self.exec(KvCommand::SidxRange {
            ks: self.id,
            index: index.to_string(),
            lo,
            hi,
            limit,
        })? {
            KvResponse::Entries(es) => Ok(es),
            other => Err(unexpected("Entries", &other)),
        }
    }

    /// Keyspace metadata.
    pub fn stat(&self) -> Result<KeyspaceStat> {
        match self.exec(KvCommand::Stat { ks: self.id })? {
            KvResponse::Stat(s) => Ok(s),
            other => Err(unexpected("Stat", &other)),
        }
    }

    /// Delete the keyspace (consumes the session).
    pub fn delete(self) -> Result<()> {
        match self.exec(KvCommand::DeleteKeyspace { ks: self.id })? {
            KvResponse::Deleted => Ok(()),
            other => Err(unexpected("Deleted", &other)),
        }
    }
}

/// Streams key-value pairs to the device in packed bulk messages.
///
/// "Each bulk put message is 128 KB. This 128 KB space contains keys,
/// values, and their respective sizes." Pairs are packed host-side (host
/// CPU charged), and one command flies per full message.
#[derive(Debug)]
pub struct BulkWriter {
    ks: Keyspace,
    builder: BulkBuilder,
    message_bytes: usize,
    inserted: u64,
}

impl BulkWriter {
    /// Queue one pair, shipping a message when full.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        // Host-side packing cost (memcpy into the message buffer).
        let memcpy_ns = kvcsd_sim::config::CostModel::default().memcpy_ns_per_byte;
        self.ks
            .qp
            .ledger()
            .charge_host_cpu((key.len() + value.len()) as f64 * memcpy_ns);
        if !self.builder.push(key, value) {
            self.flush()?;
            if !self.builder.push(key, value) {
                // Single pair larger than a message: send it alone.
                return self.ks.put(key, value);
            }
        }
        Ok(())
    }

    /// Ship the current partial message.
    pub fn flush(&mut self) -> Result<()> {
        if self.builder.is_empty() {
            return Ok(());
        }
        let full = std::mem::replace(&mut self.builder, BulkBuilder::new(self.message_bytes));
        let payload = full.finish();
        let n = payload.len() as u64;
        match self.ks.exec(KvCommand::BulkPut {
            ks: self.ks.id,
            payload,
        })? {
            KvResponse::BulkPutOk { inserted } => {
                debug_assert_eq!(inserted, n);
                self.inserted += inserted;
                Ok(())
            }
            other => Err(unexpected("BulkPutOk", &other)),
        }
    }

    /// Flush and return the total number of pairs inserted.
    pub fn finish(mut self) -> Result<u64> {
        self.flush()?;
        Ok(self.inserted)
    }
}

/// First repeat-poll backoff; doubles per consecutive non-terminal poll.
const POLL_BACKOFF_BASE_NS: u64 = 10_000;
/// Ceiling on the per-poll backoff charge.
const POLL_BACKOFF_CAP_NS: u64 = 1_000_000;

/// Handle to a device-side background job.
#[derive(Debug, Clone)]
pub struct Job {
    qp: QueuePair,
    id: JobId,
    policy: RetryPolicy,
    clock: Option<Arc<VirtualClock>>,
    /// Consecutive non-terminal polls; shared across clones so a spin
    /// loop cannot dodge the backoff by cloning the handle.
    poll_streak: Arc<kvcsd_sim::sync::Shared<u32>>,
}

impl Job {
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Ask the device for the job's state (one command round trip).
    ///
    /// Hot polling is charged: after the first non-terminal answer, each
    /// repeat poll pays a capped, doubling virtual-time backoff
    /// (`client_poll_backoff_ns` on the ledger, advanced on the attached
    /// clock) so a spin loop yields background-job time instead of
    /// starving it. A terminal answer resets the streak.
    pub fn poll(&self) -> Result<JobState> {
        let streak = self.poll_streak.get();
        if streak > 0 {
            let backoff = (POLL_BACKOFF_BASE_NS << (streak - 1).min(20)).min(POLL_BACKOFF_CAP_NS);
            self.qp.ledger().bump("client_poll_backoff_ns", backoff);
            if let Some(clock) = self.clock.as_deref() {
                clock.advance(backoff);
            }
        }
        let polled = exec_with_retry(
            &self.qp,
            &self.policy,
            self.clock.as_ref(),
            None,
            KvCommand::PollJob { job: self.id },
        );
        match polled {
            Ok(KvResponse::Job { state }) => {
                if state.is_terminal() {
                    self.poll_streak.set(0);
                } else {
                    self.poll_streak.update(|s| *s = s.saturating_add(1));
                }
                Ok(state)
            }
            Ok(other) => Err(unexpected("Job", &other)),
            Err(e) => {
                self.poll_streak.set(0);
                Err(e)
            }
        }
    }

    /// True once the device reports the job finished (successfully or not).
    pub fn is_terminal(&self) -> Result<bool> {
        Ok(self.poll()?.is_terminal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_core::{DeviceConfig, KvCsdDevice};
    use kvcsd_flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
    use kvcsd_proto::{KvStatus, SecondaryKeyType};
    use kvcsd_sim::{config::CostModel, HardwareSpec, IoLedger};

    fn testbed() -> (KvCsd, Arc<KvCsdDevice>, Arc<IoLedger>) {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 256,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(
            geom,
            &HardwareSpec::default(),
            Arc::clone(&ledger),
        ));
        let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
        let dev = Arc::new(KvCsdDevice::new(
            zns,
            CostModel::default(),
            DeviceConfig {
                cluster_width: 8,
                soc_dram_bytes: 8 << 20,
                seed: 3,
                ..DeviceConfig::default()
            },
        ));
        let client = KvCsd::connect(
            Arc::<KvCsdDevice>::clone(&dev) as Arc<dyn DeviceHandler>,
            Arc::clone(&ledger),
        );
        (client, dev, ledger)
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }
    fn value(i: u32) -> Vec<u8> {
        let mut v = vec![1u8; 32];
        v[28..].copy_from_slice(&(i as f32).to_le_bytes());
        v
    }

    #[test]
    fn full_application_flow() {
        let (client, dev, _) = testbed();
        let ks = client.create_keyspace("sim001").unwrap();

        let mut bulk = ks.bulk_writer();
        for i in 0..3000u32 {
            bulk.put(&key(i), &value(i)).unwrap();
        }
        assert_eq!(bulk.finish().unwrap(), 3000);

        let job = ks.compact().unwrap();
        assert_eq!(job.poll().unwrap(), JobState::Pending);
        dev.run_pending_jobs();
        assert_eq!(job.poll().unwrap(), JobState::Done);

        assert_eq!(ks.get(&key(1234)).unwrap(), value(1234));
        assert!(ks.get(b"missing").unwrap_err().is_not_found());

        let es = ks
            .range(Bound::Included(key(10)), Bound::Excluded(key(13)), None)
            .unwrap();
        assert_eq!(es.len(), 3);

        let sidx = ks
            .build_secondary_index(SecondaryIndexSpec {
                name: "energy".into(),
                value_offset: 28,
                value_len: 4,
                key_type: SecondaryKeyType::F32,
            })
            .unwrap();
        dev.run_pending_jobs();
        assert!(sidx.is_terminal().unwrap());

        let hits = ks
            .sidx_range(
                "energy",
                Bound::Included(SidxKey::F32(2995.0).encode()),
                Bound::Unbounded,
                None,
            )
            .unwrap();
        assert_eq!(hits.len(), 5);

        let stat = ks.stat().unwrap();
        assert_eq!(stat.num_pairs, 3000);
        assert_eq!(stat.secondary_indexes, vec!["energy".to_string()]);

        ks.delete().unwrap();
        assert!(client.list_keyspaces().unwrap().is_empty());
    }

    #[test]
    fn bulk_writer_packs_many_pairs_per_message() {
        let (client, _dev, ledger) = testbed();
        let ks = client.create_keyspace("bulk").unwrap();
        let before = ledger.snapshot();
        let mut bulk = ks.bulk_writer();
        for i in 0..5000u32 {
            bulk.put(&[&[0u8][..], &key(i)[..]].concat(), &value(i))
                .unwrap();
        }
        bulk.finish().unwrap();
        let d = ledger.snapshot().since(&before);
        // 5000 pairs * ~47B entries ~ 235 KB: a handful of messages, not
        // 5000.
        assert!(
            d.pcie_msgs < 20,
            "bulk writer sent {} messages",
            d.pcie_msgs
        );
    }

    #[test]
    fn single_puts_send_one_message_each() {
        let (client, _dev, ledger) = testbed();
        let ks = client.create_keyspace("single").unwrap();
        let before = ledger.snapshot();
        for i in 0..100u32 {
            ks.put(&key(i), &value(i)).unwrap();
        }
        let d = ledger.snapshot().since(&before);
        assert_eq!(d.pcie_msgs, 100);
    }

    #[test]
    fn oversized_pair_falls_back_to_single_put() {
        let (client, dev, _) = testbed();
        let ks = client.create_keyspace("big").unwrap();
        let mut bulk = ks.bulk_writer();
        let huge = vec![7u8; 200 * 1024]; // bigger than one 128 KiB message
        bulk.put(b"big-one", &huge).unwrap();
        bulk.put(b"small", b"v").unwrap();
        bulk.finish().unwrap();
        ks.compact().unwrap();
        dev.run_pending_jobs();
        assert_eq!(ks.get(b"big-one").unwrap(), huge);
        assert_eq!(ks.get(b"small").unwrap(), b"v");
    }

    #[test]
    fn device_errors_surface_as_client_errors() {
        let (client, _dev, _) = testbed();
        let ks = client.create_keyspace("dup").unwrap();
        assert!(matches!(
            client.create_keyspace("dup"),
            Err(ClientError::Device(KvStatus::KeyspaceExists))
        ));
        // Query before compaction.
        ks.put(b"k", b"v").unwrap();
        assert!(matches!(
            ks.get(b"k"),
            Err(ClientError::Device(KvStatus::BadKeyspaceState { .. }))
        ));
    }

    #[test]
    fn open_keyspace_reports_state() {
        let (client, dev, _) = testbed();
        let ks = client.create_keyspace("s").unwrap();
        ks.put(b"a", b"1").unwrap();
        let (_, state) = client.open_keyspace("s").unwrap();
        assert_eq!(state, KeyspaceState::Writable);
        ks.compact().unwrap();
        dev.run_pending_jobs();
        let (ks2, state) = client.open_keyspace("s").unwrap();
        assert_eq!(state, KeyspaceState::Compacted);
        assert_eq!(ks2.get(b"a").unwrap(), b"1");
    }

    /// Wraps a real device but fails the first `failures` commands with a
    /// transient error (deterministic flaky transport).
    struct Flaky {
        inner: Arc<KvCsdDevice>,
        remaining: kvcsd_sim::sync::Shared<u32>,
        status: KvStatus,
    }

    impl DeviceHandler for Flaky {
        fn handle(&self, cmd: KvCommand) -> KvResponse {
            let failing = self.remaining.update(|left| {
                let failing = *left > 0;
                *left = left.saturating_sub(1);
                failing
            });
            if failing {
                return KvResponse::Err(self.status.clone());
            }
            self.inner.handle(cmd)
        }
    }

    fn flaky_testbed(failures: u32, status: KvStatus) -> (KvCsd, Arc<IoLedger>) {
        let (_, dev, ledger) = testbed();
        let flaky = Arc::new(Flaky {
            inner: dev,
            remaining: kvcsd_sim::sync::Shared::new(failures),
            status,
        });
        let client = KvCsd::connect(flaky as Arc<dyn DeviceHandler>, Arc::clone(&ledger));
        (client, ledger)
    }

    fn transient() -> KvStatus {
        KvStatus::TransientDeviceError("injected".into())
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let (client, ledger) = flaky_testbed(3, transient());
        let ks = client.create_keyspace("flaky").unwrap();
        assert_eq!(ledger.custom("client_retries"), 3);
        // Backoff doubles from 100us: 100k + 200k + 400k.
        assert_eq!(ledger.custom("client_retry_backoff_ns"), 700_000);
        // Subsequent healthy traffic spends no more retries.
        ks.put(b"k", b"v").unwrap();
        assert_eq!(ledger.custom("client_retries"), 3);
    }

    #[test]
    fn retries_exhausted_is_typed_and_fatal() {
        let (client, ledger) = flaky_testbed(100, transient());
        let err = client.create_keyspace("never").unwrap_err();
        assert_eq!(
            err,
            ClientError::RetriesExhausted {
                attempts: 5,
                last: transient()
            }
        );
        assert!(err.is_fatal());
        // Default budget: 4 retries after the initial attempt.
        assert_eq!(ledger.custom("client_retries"), 4);
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let (client, ledger) = flaky_testbed(100, KvStatus::MediaError("die 3".into()));
        let err = client.create_keyspace("dead").unwrap_err();
        assert_eq!(
            err,
            ClientError::Device(KvStatus::MediaError("die 3".into()))
        );
        assert_eq!(ledger.custom("client_retries"), 0);
    }

    #[test]
    fn retry_policy_none_fails_fast_with_device_error() {
        let (client, ledger) = flaky_testbed(1, transient());
        let client = client.with_retry_policy(RetryPolicy::none());
        let err = client.create_keyspace("fast").unwrap_err();
        assert_eq!(err, ClientError::Device(transient()));
        assert!(err.is_retryable()); // caller may resend by hand
        assert_eq!(ledger.custom("client_retries"), 0);
        // The device is healthy now; a plain resend works.
        client.create_keyspace("fast").unwrap();
    }

    #[test]
    fn device_full_fails_fast_without_burning_backoff() {
        // DeviceFull is degraded mode, not a transient error: the retry
        // loop must surface it immediately instead of spending its whole
        // backoff budget on a condition that cannot clear by resending.
        let (client, ledger) = flaky_testbed(100, KvStatus::DeviceFull);
        let err = client.create_keyspace("full").unwrap_err();
        assert_eq!(err, ClientError::Device(KvStatus::DeviceFull));
        assert!(err.is_degraded());
        assert!(!err.is_fatal());
        assert_eq!(ledger.custom("client_retries"), 0);
        assert_eq!(ledger.custom("client_retry_backoff_ns"), 0);
    }

    #[test]
    fn failover_redirect_resends_immediately_without_backoff() {
        // A dead primary is not an overload signal: the resend goes to the
        // promoted replica, so the loop must not back off against it.
        let (client, ledger) = flaky_testbed(2, KvStatus::FailoverInProgress { shard: 1 });
        client.create_keyspace("fo").unwrap();
        assert_eq!(ledger.custom("client_failover_redirects"), 2);
        assert_eq!(ledger.custom("client_retries"), 0);
        assert_eq!(ledger.custom("client_retry_backoff_ns"), 0);
    }

    #[test]
    fn endless_failover_still_exhausts_the_retry_budget() {
        let (client, ledger) = flaky_testbed(100, KvStatus::FailoverInProgress { shard: 1 });
        let err = client.create_keyspace("fo").unwrap_err();
        assert_eq!(
            err,
            ClientError::RetriesExhausted {
                attempts: 5,
                last: KvStatus::FailoverInProgress { shard: 1 }
            }
        );
        assert_eq!(ledger.custom("client_failover_redirects"), 4);
        assert_eq!(ledger.custom("client_retry_backoff_ns"), 0);
    }

    #[test]
    fn epoch_fence_resends_immediately_without_backoff() {
        // A fenced ack means the command hit a deposed primary; the
        // resend goes to the current-epoch primary, so the loop must not
        // back off against it (same shape as a failover redirect, its own
        // counter so fence storms are visible).
        let (client, ledger) = flaky_testbed(2, KvStatus::EpochFenced { shard: 1 });
        client.create_keyspace("fence").unwrap();
        assert_eq!(ledger.custom("client_fence_redirects"), 2);
        assert_eq!(ledger.custom("client_retries"), 0);
        assert_eq!(ledger.custom("client_retry_backoff_ns"), 0);
    }

    #[test]
    fn endless_fencing_still_exhausts_the_retry_budget() {
        let (client, ledger) = flaky_testbed(100, KvStatus::EpochFenced { shard: 1 });
        let err = client.create_keyspace("fence").unwrap_err();
        assert_eq!(
            err,
            ClientError::RetriesExhausted {
                attempts: 5,
                last: KvStatus::EpochFenced { shard: 1 }
            }
        );
        assert_eq!(ledger.custom("client_fence_redirects"), 4);
        assert_eq!(ledger.custom("client_retry_backoff_ns"), 0);
    }

    #[test]
    fn shard_unavailable_is_degraded_and_fails_fast() {
        let (client, ledger) = flaky_testbed(100, KvStatus::ShardUnavailable { shard: 2 });
        let err = client.create_keyspace("down").unwrap_err();
        assert_eq!(
            err,
            ClientError::Device(KvStatus::ShardUnavailable { shard: 2 })
        );
        assert!(err.is_degraded());
        assert!(!err.is_fatal());
        assert_eq!(ledger.custom("client_retries"), 0);
    }

    #[test]
    fn deadline_aware_retry_never_backs_off_past_the_budget() {
        let (_, dev, ledger) = testbed();
        let flaky = Arc::new(Flaky {
            inner: dev,
            remaining: kvcsd_sim::sync::Shared::new(100),
            status: transient(),
        });
        let clock = Arc::new(kvcsd_sim::VirtualClock::new());
        let client = KvCsd::connect(flaky as Arc<dyn DeviceHandler>, Arc::clone(&ledger))
            .with_clock(Arc::clone(&clock))
            .with_retry_policy(RetryPolicy {
                max_retries: 10,
                base_backoff_ns: 100_000,
                max_backoff_ns: 10_000_000,
            })
            .with_deadline(350_000);
        let err = client.create_keyspace("never").unwrap_err();
        // Backoffs 100k and 200k fit the 350k budget; the third (400k)
        // would land past it, so the loop fails fast instead of waiting.
        assert_eq!(err, ClientError::Device(KvStatus::DeadlineExceeded));
        assert_eq!(ledger.custom("client_retries"), 2);
        assert_eq!(clock.now_ns(), 300_000);
    }

    #[test]
    fn deadline_sessions_are_enforced_by_the_device() {
        let (_, dev, ledger) = testbed();
        let clock = Arc::clone(dev.clock());
        let client = KvCsd::connect(
            Arc::<KvCsdDevice>::clone(&dev) as Arc<dyn DeviceHandler>,
            Arc::clone(&ledger),
        )
        .with_clock(Arc::clone(&clock));
        let ks = client.create_keyspace("dl").unwrap();
        clock.advance(2_000);
        // Expired deadline: the device rejects before doing any work.
        let late = ks.with_deadline(1_000);
        assert_eq!(
            late.put(b"k", b"v").unwrap_err(),
            ClientError::Device(KvStatus::DeadlineExceeded)
        );
        // A live deadline passes through.
        let live = ks.with_deadline(clock.now_ns() + 1_000_000_000);
        live.put(b"k", b"v").unwrap();
    }

    #[test]
    fn keyspace_sessions_inherit_the_retry_policy() {
        let (client, ledger) = flaky_testbed(0, transient());
        let client = client.with_retry_policy(RetryPolicy {
            max_retries: 2,
            base_backoff_ns: 1_000,
            max_backoff_ns: 1_500,
        });
        let ks = client.create_keyspace("inherit").unwrap();
        // Replace the queue pair's device? Not possible; instead verify the
        // policy arithmetic surface: backoff caps at max_backoff_ns.
        assert_eq!(client.policy.backoff_ns(1), 1_000);
        assert_eq!(client.policy.backoff_ns(2), 1_500);
        assert_eq!(ks.policy, client.policy);
        assert_eq!(ledger.custom("client_retries"), 0);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(1), 100_000);
        assert_eq!(p.backoff_ns(2), 200_000);
        assert_eq!(p.backoff_ns(1_000), p.max_backoff_ns);
    }

    #[test]
    fn query_moves_only_results_over_the_bus() {
        let (client, dev, ledger) = testbed();
        let ks = client.create_keyspace("io").unwrap();
        let mut bulk = ks.bulk_writer();
        for i in 0..2000u32 {
            bulk.put(&key(i), &value(i)).unwrap();
        }
        bulk.finish().unwrap();
        ks.compact().unwrap();
        dev.run_pending_jobs();

        let before = ledger.snapshot();
        let es = ks
            .range(Bound::Included(key(500)), Bound::Excluded(key(510)), None)
            .unwrap();
        assert_eq!(es.len(), 10);
        let d = ledger.snapshot().since(&before);
        let result_bytes: u64 = es.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum();
        // d2h bytes = results + per-entry framing + completion header.
        assert!(d.pcie_d2h_bytes < result_bytes + 10 * 8 + 64);
        // The device read far more from flash than it shipped to the host.
        assert!(d.storage_read_bytes() > d.pcie_d2h_bytes);
    }

    #[test]
    fn hot_job_polling_is_charged_a_capped_backoff() {
        let (_, dev, ledger) = testbed();
        let clock = Arc::clone(dev.clock());
        let client = KvCsd::connect(
            Arc::<KvCsdDevice>::clone(&dev) as Arc<dyn DeviceHandler>,
            Arc::clone(&ledger),
        )
        .with_clock(Arc::clone(&clock));
        let ks = client.create_keyspace("spin").unwrap();
        let mut bulk = ks.bulk_writer();
        for i in 0..100u32 {
            bulk.put(&key(i), &value(i)).unwrap();
        }
        bulk.finish().unwrap();
        let job = ks.compact().unwrap();

        let t0 = clock.now_ns();
        assert_eq!(job.poll().unwrap(), JobState::Pending);
        assert_eq!(clock.now_ns(), t0, "the first poll is free");
        // A spin loop now yields virtual time: 10us doubling to the 1ms
        // cap (10k + 20k + 40k + ... + 640k + 1M + 1M + ...).
        for _ in 0..10 {
            assert_eq!(job.poll().unwrap(), JobState::Pending);
        }
        let spun = clock.now_ns() - t0;
        assert!(spun > 0, "repeat polls must charge the clock");
        let before = clock.now_ns();
        job.poll().unwrap();
        assert_eq!(
            clock.now_ns() - before,
            1_000_000,
            "the per-poll charge is capped at 1ms"
        );
        assert_eq!(ledger.custom("client_poll_backoff_ns"), clock.now_ns() - t0);

        dev.run_pending_jobs();
        assert_eq!(job.poll().unwrap(), JobState::Done);
        // Terminal answers reset the streak: the next poll is free.
        let before = clock.now_ns();
        assert_eq!(job.poll().unwrap(), JobState::Done);
        assert_eq!(clock.now_ns(), before);
    }
}
