//! The host-side write accelerator: staging, key-sorting and pipelined
//! ~128 KB bulk PUTs over an [`InflightWindow`].
//!
//! The paper's client ships one command per round trip; "A Host-SSD
//! Collaborative Write Accelerator" shows ingest throughput comes from
//! staging entries host-side, packing them key-sorted into large BULK_PUT
//! messages, and keeping the submission queue full. This module is that
//! accelerator: [`WriteAccelerator::put`] stages pairs into a per-session
//! buffer; a full buffer is sorted (host CPU charged), packed, and
//! submitted through the window without waiting for earlier bulks to
//! complete, up to a bounded number of outstanding bulk commands.
//!
//! ## Durability contract
//!
//! Acked-only: a pair counts as durable exactly when the device's
//! `BulkPutOk`/`PutOk` completion for its batch has been claimed.
//! [`WriteAccelerator::flush`] ships the partial buffer, claims every
//! outstanding ack, and returns the cumulative acked-pair count — the
//! only durability statement the accelerator ever makes. Dropping the
//! accelerator without `flush()` *discards* staged entries and abandons
//! unclaimed acks; nothing un-flushed is ever reported durable, so a
//! power cut mid-batch loses only writes the caller was never told were
//! safe (`tests/pipeline.rs` sweeps exactly this).

use std::sync::Arc;

use kvcsd_proto::{BulkBuilder, KvCommand, KvResponse, QueuePair, DEFAULT_BULK_BYTES};
use kvcsd_sim::sync::Mutex;
use kvcsd_sim::VirtualClock;

use crate::api::RetryPolicy;
use crate::window::{InflightWindow, OpId};
use crate::Result;

/// Outstanding bulk commands before `put` claims the oldest ack.
const DEFAULT_DEPTH: usize = 8;

struct AccelState {
    staged: Vec<(Vec<u8>, Vec<u8>)>,
    staged_bytes: usize,
    /// Shipped batches not yet acked, oldest first, with expected pairs.
    pending: Vec<(OpId, u64)>,
    acked: u64,
}

/// Stages writes for one keyspace and streams them as pipelined,
/// key-sorted bulk PUTs. See the module docs for the durability
/// contract.
pub struct WriteAccelerator {
    window: InflightWindow,
    ks: u32,
    deadline_ns: Option<u64>,
    target_bytes: usize,
    depth: usize,
    state: Mutex<AccelState>,
}

impl std::fmt::Debug for WriteAccelerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteAccelerator")
            .field("ks", &self.ks)
            .finish_non_exhaustive()
    }
}

impl WriteAccelerator {
    /// Open an accelerator for keyspace `ks` over `qp` (the clone's
    /// completion queue becomes private to this accelerator's window).
    pub fn new(
        qp: QueuePair,
        ks: u32,
        policy: RetryPolicy,
        clock: Option<Arc<VirtualClock>>,
        deadline_ns: Option<u64>,
    ) -> Self {
        Self {
            window: InflightWindow::new(qp, policy, clock),
            ks,
            deadline_ns,
            target_bytes: DEFAULT_BULK_BYTES,
            depth: DEFAULT_DEPTH,
            state: Mutex::new(AccelState {
                staged: Vec::new(),
                staged_bytes: 0,
                pending: Vec::new(),
                acked: 0,
            }),
        }
    }

    /// Override the staging-buffer / bulk-message target size.
    pub fn with_target_bytes(mut self, bytes: usize) -> Self {
        self.target_bytes = bytes.max(64);
        self
    }

    /// Override the outstanding-bulk-command bound.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// Stage one pair; ships a sorted bulk message when the staging
    /// buffer reaches the target size. An error reported here means a
    /// *previously shipped* batch failed — none of its pairs are
    /// durable, and the current pair stays staged.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        // Host-side staging cost (memcpy into the staging buffer).
        let memcpy_ns = kvcsd_sim::config::CostModel::default().memcpy_ns_per_byte;
        self.window
            .ledger()
            .charge_host_cpu((key.len() + value.len()) as f64 * memcpy_ns);
        let ship = {
            let mut st = self.state.lock();
            st.staged_bytes += BulkBuilder::entry_bytes(key, value);
            st.staged.push((key.to_vec(), value.to_vec()));
            st.staged_bytes >= self.target_bytes
        };
        if ship {
            self.ship_staged()?;
        }
        Ok(())
    }

    /// Ship the partial staging buffer, claim every outstanding ack, and
    /// return the cumulative count of durably acked pairs.
    pub fn flush(&self) -> Result<u64> {
        self.ship_staged()?;
        loop {
            let oldest = {
                let mut st = self.state.lock();
                if st.pending.is_empty() {
                    return Ok(st.acked);
                }
                st.pending.remove(0)
            };
            self.claim(oldest)?;
        }
    }

    /// Pairs acked by the device so far (durable under the contract).
    pub fn acked_pairs(&self) -> u64 {
        self.state.lock().acked
    }

    /// Drain the per-completion latencies of the accelerator's window
    /// (one sample per bulk command, virtual ns).
    pub fn completion_latencies(&self) -> Vec<u64> {
        self.window.completion_latencies()
    }

    /// Take the staging buffer, key-sort it (host CPU charged: n·log₂n
    /// comparisons), pack it into bulk messages and submit them all;
    /// then claim oldest acks until at most `depth` remain outstanding.
    fn ship_staged(&self) -> Result<()> {
        let staged = {
            let mut st = self.state.lock();
            st.staged_bytes = 0;
            std::mem::take(&mut st.staged)
        };
        if !staged.is_empty() {
            let mut staged = staged;
            let n = staged.len() as f64;
            let key_cmp_ns = kvcsd_sim::config::CostModel::default().key_cmp_ns;
            if staged.len() > 1 {
                self.window
                    .ledger()
                    .charge_host_cpu(n * n.log2() * key_cmp_ns);
            }
            // Stable sort: duplicate keys keep insertion order, so the
            // device applies overwrites in the order they were staged.
            staged.sort_by(|a, b| a.0.cmp(&b.0));

            let mut builder = BulkBuilder::new(self.target_bytes);
            for (key, value) in staged {
                if builder.push(&key, &value) {
                    continue;
                }
                if !builder.is_empty() {
                    let full = std::mem::replace(&mut builder, BulkBuilder::new(self.target_bytes));
                    self.submit_bulk(full);
                }
                if !builder.push(&key, &value) {
                    // Single pair larger than a message: send it alone.
                    let op = self.window.submit(
                        self.deadline_ns,
                        KvCommand::Put {
                            ks: self.ks,
                            key,
                            value,
                        },
                    );
                    self.state.lock().pending.push((op, 1));
                }
            }
            if !builder.is_empty() {
                self.submit_bulk(builder);
            }
        }
        loop {
            let oldest = {
                let mut st = self.state.lock();
                if st.pending.len() <= self.depth {
                    return Ok(());
                }
                st.pending.remove(0)
            };
            self.claim(oldest)?;
        }
    }

    fn submit_bulk(&self, builder: BulkBuilder) {
        let payload = builder.finish();
        let pairs = payload.len() as u64;
        let op = self.window.submit(
            self.deadline_ns,
            KvCommand::BulkPut {
                ks: self.ks,
                payload,
            },
        );
        self.state.lock().pending.push((op, pairs));
    }

    /// Claim one batch's ack and credit its pairs as durable.
    fn claim(&self, (op, pairs): (OpId, u64)) -> Result<()> {
        match self.window.wait(op)? {
            KvResponse::BulkPutOk { inserted } => {
                debug_assert_eq!(inserted, pairs);
                self.state.lock().acked += inserted;
                Ok(())
            }
            KvResponse::PutOk => {
                self.state.lock().acked += pairs;
                Ok(())
            }
            other => Err(crate::error::ClientError::UnexpectedResponse(format!(
                "wanted BulkPutOk, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_proto::{DeviceHandler, KvStatus};
    use kvcsd_sim::sync::Shared;
    use kvcsd_sim::IoLedger;

    /// Counts pairs and asserts bulk payloads arrive key-sorted.
    struct SortSpy {
        pairs: Arc<Shared<u64>>,
        bulks: Arc<Shared<u64>>,
    }

    impl DeviceHandler for SortSpy {
        fn handle(&self, cmd: KvCommand) -> KvResponse {
            match cmd {
                KvCommand::BulkPut { payload, .. } => {
                    let entries: Vec<(Vec<u8>, Vec<u8>)> = payload
                        .iter()
                        .map(|(k, v)| (k.to_vec(), v.to_vec()))
                        .collect();
                    assert!(
                        entries.windows(2).all(|w| w[0].0 <= w[1].0),
                        "bulk payload must arrive key-sorted"
                    );
                    let n = entries.len() as u64;
                    self.pairs.update(|p| *p += n);
                    self.bulks.update(|b| *b += 1);
                    KvResponse::BulkPutOk { inserted: n }
                }
                KvCommand::Put { .. } => {
                    self.pairs.update(|p| *p += 1);
                    KvResponse::PutOk
                }
                _ => KvResponse::Err(KvStatus::Internal("unsupported".into())),
            }
        }
    }

    fn accel(target: usize) -> (WriteAccelerator, Arc<Shared<u64>>, Arc<Shared<u64>>) {
        let pairs = Arc::new(Shared::new(0));
        let bulks = Arc::new(Shared::new(0));
        let dev = Arc::new(SortSpy {
            pairs: Arc::clone(&pairs),
            bulks: Arc::clone(&bulks),
        });
        let qp = QueuePair::new(dev, Arc::new(IoLedger::new(16, 4096)));
        (
            WriteAccelerator::new(qp, 0, RetryPolicy::default(), None, None)
                .with_target_bytes(target),
            pairs,
            bulks,
        )
    }

    #[test]
    fn stages_sorts_and_packs_into_bulk_messages() {
        let (a, pairs, bulks) = accel(1024);
        // Reverse-ordered keys force the sort to do something.
        for i in (0..500u32).rev() {
            a.put(format!("k{i:06}").as_bytes(), &[7u8; 16]).unwrap();
        }
        assert_eq!(a.flush().unwrap(), 500);
        assert_eq!(pairs.get(), 500);
        let b = bulks.get();
        assert!(b > 1 && b < 500, "packed into a few bulks, got {b}");
    }

    #[test]
    fn unflushed_writes_are_never_reported_durable() {
        let (a, pairs, _) = accel(64 * 1024);
        for i in 0..10u32 {
            a.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        // Nothing shipped, nothing acked: the 10 pairs are staged only.
        assert_eq!(a.acked_pairs(), 0);
        assert_eq!(pairs.get(), 0);
        drop(a); // drop-flush contract: staged entries are discarded
        assert_eq!(pairs.get(), 0);
    }

    #[test]
    fn oversized_pair_ships_alone() {
        let (a, pairs, bulks) = accel(1024);
        a.put(b"huge", &vec![1u8; 4096]).unwrap();
        a.put(b"tiny", b"v").unwrap();
        assert_eq!(a.flush().unwrap(), 2);
        assert_eq!(pairs.get(), 2);
        assert_eq!(bulks.get(), 1, "the tiny pair still rides a bulk");
    }
}
