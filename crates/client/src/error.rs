//! Client-side error type.

use kvcsd_proto::KvStatus;
use std::fmt;

/// Errors surfaced by the client library.
///
/// Errors split into *retryable* (the device said an identical resend may
/// succeed; the built-in [`crate::RetryPolicy`] already spent its budget
/// before surfacing one) and *fatal* (resending cannot help).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The device reported a status error.
    Device(KvStatus),
    /// A retryable device error kept failing past the retry budget.
    RetriesExhausted { attempts: u32, last: KvStatus },
    /// The device answered with a response of an unexpected shape
    /// (protocol bug; should never happen).
    UnexpectedResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Device(s) => write!(f, "device error: {s}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "device error after {attempts} attempts: {last}")
            }
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<KvStatus> for ClientError {
    fn from(s: KvStatus) -> Self {
        ClientError::Device(s)
    }
}

impl ClientError {
    /// True if this is a "key not found" miss (a common, non-fatal case).
    pub fn is_not_found(&self) -> bool {
        matches!(self, ClientError::Device(KvStatus::KeyNotFound))
    }

    /// True when resending the same command may succeed. Note that
    /// [`ClientError::RetriesExhausted`] is *not* retryable: the policy
    /// already spent its budget on a transient error that never cleared.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Device(s) if s.is_retryable())
    }

    /// True when the device (or one keyspace) has gracefully degraded to
    /// a read-only mode: storage space is exhausted, writes fail fast,
    /// but reads keep serving. Retrying the same write is pointless until
    /// space is reclaimed or the keyspace is re-compacted — but the
    /// device is *not* dead, so callers should shed write load or switch
    /// to read paths rather than tearing the connection down.
    ///
    /// A dead shard with no promotable replica
    /// ([`KvStatus::ShardUnavailable`]) is the cluster-level analogue: the
    /// rest of the fleet keeps serving, only that keyspace range is down
    /// until out-of-band repair, so it is degraded rather than fatal.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            ClientError::Device(KvStatus::DeviceFull)
                | ClientError::Device(KvStatus::ShardUnavailable { .. })
                | ClientError::Device(KvStatus::BadKeyspaceState {
                    state: "READ_ONLY",
                    ..
                })
                | ClientError::RetriesExhausted {
                    last: KvStatus::DeviceFull,
                    ..
                }
                | ClientError::RetriesExhausted {
                    last: KvStatus::ShardUnavailable { .. },
                    ..
                }
        )
    }

    /// True when resending the same command cannot help *and* the device
    /// is not merely degraded. Degraded errors are recoverable through
    /// out-of-band action (delete data, re-compact), so they are neither
    /// retryable nor fatal.
    pub fn is_fatal(&self) -> bool {
        !self.is_retryable() && !self.is_degraded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_found_detection() {
        assert!(ClientError::from(KvStatus::KeyNotFound).is_not_found());
        assert!(!ClientError::from(KvStatus::DeviceFull).is_not_found());
        assert!(!ClientError::UnexpectedResponse("x".into()).is_not_found());
    }

    #[test]
    fn display() {
        let e = ClientError::Device(KvStatus::KeyspaceNotFound);
        assert!(e.to_string().contains("keyspace not found"));
        let e = ClientError::RetriesExhausted {
            attempts: 5,
            last: KvStatus::TransientDeviceError("busy".into()),
        };
        assert!(e.to_string().contains("5 attempts"));
    }

    #[test]
    fn retryable_fatal_split() {
        assert!(ClientError::Device(KvStatus::TransientDeviceError("soft".into())).is_retryable());
        assert!(ClientError::Device(KvStatus::FailoverInProgress { shard: 0 }).is_retryable());
        for fatal in [
            ClientError::Device(KvStatus::MediaError("die".into())),
            ClientError::Device(KvStatus::PowerLoss),
            ClientError::Device(KvStatus::KeyNotFound),
            ClientError::Device(KvStatus::DeadlineExceeded),
            ClientError::RetriesExhausted {
                attempts: 3,
                last: KvStatus::TransientDeviceError("soft".into()),
            },
            ClientError::UnexpectedResponse("x".into()),
        ] {
            assert!(fatal.is_fatal(), "{fatal:?}");
            assert!(!fatal.is_retryable(), "{fatal:?}");
            assert!(!fatal.is_degraded(), "{fatal:?}");
        }
    }

    #[test]
    fn degraded_is_neither_retryable_nor_fatal() {
        for degraded in [
            ClientError::Device(KvStatus::DeviceFull),
            ClientError::Device(KvStatus::BadKeyspaceState {
                state: "READ_ONLY",
                op: "put",
            }),
            ClientError::RetriesExhausted {
                attempts: 5,
                last: KvStatus::DeviceFull,
            },
            ClientError::Device(KvStatus::ShardUnavailable { shard: 2 }),
            ClientError::RetriesExhausted {
                attempts: 5,
                last: KvStatus::ShardUnavailable { shard: 2 },
            },
        ] {
            assert!(degraded.is_degraded(), "{degraded:?}");
            assert!(!degraded.is_retryable(), "{degraded:?}");
            assert!(!degraded.is_fatal(), "{degraded:?}");
        }
        // Other bad-state errors are not degraded mode.
        let busy_state = ClientError::Device(KvStatus::BadKeyspaceState {
            state: "COMPACTING",
            op: "put",
        });
        assert!(!busy_state.is_degraded());
        // Overload signals are retryable, not degraded.
        assert!(!ClientError::Device(KvStatus::Busy).is_degraded());
        assert!(ClientError::Device(KvStatus::Busy).is_retryable());
    }
}
