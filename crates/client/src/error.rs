//! Client-side error type.

use kvcsd_proto::KvStatus;
use std::fmt;

/// Errors surfaced by the client library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The device reported a status error.
    Device(KvStatus),
    /// The device answered with a response of an unexpected shape
    /// (protocol bug; should never happen).
    UnexpectedResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Device(s) => write!(f, "device error: {s}"),
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<KvStatus> for ClientError {
    fn from(s: KvStatus) -> Self {
        ClientError::Device(s)
    }
}

impl ClientError {
    /// True if this is a "key not found" miss (a common, non-fatal case).
    pub fn is_not_found(&self) -> bool {
        matches!(self, ClientError::Device(KvStatus::KeyNotFound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_found_detection() {
        assert!(ClientError::from(KvStatus::KeyNotFound).is_not_found());
        assert!(!ClientError::from(KvStatus::DeviceFull).is_not_found());
        assert!(!ClientError::UnexpectedResponse("x".into()).is_not_found());
    }

    #[test]
    fn display() {
        let e = ClientError::Device(KvStatus::KeyspaceNotFound);
        assert!(e.to_string().contains("keyspace not found"));
    }
}
