//! Client-side error type.

use kvcsd_proto::KvStatus;
use std::fmt;

/// Errors surfaced by the client library.
///
/// Errors split into *retryable* (the device said an identical resend may
/// succeed; the built-in [`crate::RetryPolicy`] already spent its budget
/// before surfacing one) and *fatal* (resending cannot help).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The device reported a status error.
    Device(KvStatus),
    /// A retryable device error kept failing past the retry budget.
    RetriesExhausted { attempts: u32, last: KvStatus },
    /// The device answered with a response of an unexpected shape
    /// (protocol bug; should never happen).
    UnexpectedResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Device(s) => write!(f, "device error: {s}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "device error after {attempts} attempts: {last}")
            }
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<KvStatus> for ClientError {
    fn from(s: KvStatus) -> Self {
        ClientError::Device(s)
    }
}

/// Coarse disposition of one device status, the ground truth behind
/// [`ClientError::is_retryable`] / [`is_degraded`](ClientError::is_degraded) /
/// [`is_fatal`](ClientError::is_fatal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusClass {
    /// An identical resend may succeed.
    Retryable,
    /// The device (or one keyspace/shard) gracefully degraded: reads keep
    /// serving, resends are pointless until out-of-band recovery, but the
    /// stack is not dead.
    Degraded,
    /// Resending cannot help and the device is not merely degraded.
    Fatal,
}

/// Classify one wire status. The match is deliberately exhaustive *by
/// name* over every [`KvStatus`] variant (the `status-map` lint enforces
/// it): adding a wire status forces a conscious decision here instead of
/// a catch-all arm silently treating it as fatal.
pub fn status_class(s: &KvStatus) -> StatusClass {
    match s {
        // The device said an identical resend may succeed; agrees with
        // `KvStatus::is_retryable` (asserted in tests).
        KvStatus::Busy
        | KvStatus::Stalled
        | KvStatus::TransientDeviceError(_)
        | KvStatus::FailoverInProgress { .. }
        | KvStatus::EpochFenced { .. } => StatusClass::Retryable,
        // Space exhausted on a keyspace or device: writes fail fast,
        // reads keep serving. A dead shard with no promotable replica is
        // the cluster-level analogue — the rest of the fleet keeps
        // serving, only that key range is down until out-of-band repair.
        KvStatus::DeviceFull | KvStatus::ShardUnavailable { .. } => StatusClass::Degraded,
        KvStatus::BadKeyspaceState {
            state: "READ_ONLY", ..
        } => StatusClass::Degraded,
        KvStatus::BadKeyspaceState { .. }
        | KvStatus::KeyspaceNotFound
        | KvStatus::KeyspaceExists
        | KvStatus::KeyNotFound
        | KvStatus::BadKey
        | KvStatus::BadValue
        | KvStatus::IndexNotFound
        | KvStatus::IndexExists
        | KvStatus::BadIndexSpec
        | KvStatus::JobNotFound
        | KvStatus::DeadlineExceeded
        | KvStatus::MediaError(_)
        | KvStatus::PowerLoss
        | KvStatus::Internal(_) => StatusClass::Fatal,
    }
}

impl ClientError {
    /// True if this is a "key not found" miss (a common, non-fatal case).
    pub fn is_not_found(&self) -> bool {
        matches!(self, ClientError::Device(KvStatus::KeyNotFound))
    }

    /// True when resending the same command may succeed. Note that
    /// [`ClientError::RetriesExhausted`] is *not* retryable: the policy
    /// already spent its budget on a transient error that never cleared.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Device(s) if status_class(s) == StatusClass::Retryable)
    }

    /// True when the device (or one keyspace) has gracefully degraded
    /// (see [`StatusClass::Degraded`]): callers should shed write load or
    /// switch to read paths rather than tearing the connection down. A
    /// retry budget spent against a degraded status reports degraded too.
    pub fn is_degraded(&self) -> bool {
        match self {
            ClientError::Device(s) | ClientError::RetriesExhausted { last: s, .. } => {
                status_class(s) == StatusClass::Degraded
            }
            ClientError::UnexpectedResponse(_) => false,
        }
    }

    /// True when resending the same command cannot help *and* the device
    /// is not merely degraded. Degraded errors are recoverable through
    /// out-of-band action (delete data, re-compact), so they are neither
    /// retryable nor fatal.
    pub fn is_fatal(&self) -> bool {
        !self.is_retryable() && !self.is_degraded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_found_detection() {
        assert!(ClientError::from(KvStatus::KeyNotFound).is_not_found());
        assert!(!ClientError::from(KvStatus::DeviceFull).is_not_found());
        assert!(!ClientError::UnexpectedResponse("x".into()).is_not_found());
    }

    #[test]
    fn display() {
        let e = ClientError::Device(KvStatus::KeyspaceNotFound);
        assert!(e.to_string().contains("keyspace not found"));
        let e = ClientError::RetriesExhausted {
            attempts: 5,
            last: KvStatus::TransientDeviceError("busy".into()),
        };
        assert!(e.to_string().contains("5 attempts"));
    }

    #[test]
    fn retryable_fatal_split() {
        assert!(ClientError::Device(KvStatus::TransientDeviceError("soft".into())).is_retryable());
        assert!(ClientError::Device(KvStatus::FailoverInProgress { shard: 0 }).is_retryable());
        assert!(ClientError::Device(KvStatus::EpochFenced { shard: 0 }).is_retryable());
        for fatal in [
            ClientError::Device(KvStatus::MediaError("die".into())),
            ClientError::Device(KvStatus::PowerLoss),
            ClientError::Device(KvStatus::KeyNotFound),
            ClientError::Device(KvStatus::DeadlineExceeded),
            ClientError::RetriesExhausted {
                attempts: 3,
                last: KvStatus::TransientDeviceError("soft".into()),
            },
            ClientError::UnexpectedResponse("x".into()),
        ] {
            assert!(fatal.is_fatal(), "{fatal:?}");
            assert!(!fatal.is_retryable(), "{fatal:?}");
            assert!(!fatal.is_degraded(), "{fatal:?}");
        }
    }

    #[test]
    fn status_class_agrees_with_wire_retryability() {
        // One representative per variant: `Retryable` here must mean
        // exactly what the wire protocol promises in
        // `KvStatus::is_retryable`.
        let all = [
            KvStatus::KeyspaceNotFound,
            KvStatus::KeyspaceExists,
            KvStatus::BadKeyspaceState {
                state: "READ_ONLY",
                op: "put",
            },
            KvStatus::BadKeyspaceState {
                state: "COMPACTING",
                op: "put",
            },
            KvStatus::KeyNotFound,
            KvStatus::BadKey,
            KvStatus::BadValue,
            KvStatus::IndexNotFound,
            KvStatus::IndexExists,
            KvStatus::BadIndexSpec,
            KvStatus::JobNotFound,
            KvStatus::DeviceFull,
            KvStatus::Busy,
            KvStatus::Stalled,
            KvStatus::DeadlineExceeded,
            KvStatus::TransientDeviceError("soft".into()),
            KvStatus::MediaError("die".into()),
            KvStatus::PowerLoss,
            KvStatus::ShardUnavailable { shard: 1 },
            KvStatus::FailoverInProgress { shard: 1 },
            KvStatus::EpochFenced { shard: 1 },
            KvStatus::Internal("bug".into()),
        ];
        for s in all {
            assert_eq!(
                status_class(&s) == StatusClass::Retryable,
                s.is_retryable(),
                "{s:?}"
            );
        }
    }

    #[test]
    fn degraded_is_neither_retryable_nor_fatal() {
        for degraded in [
            ClientError::Device(KvStatus::DeviceFull),
            ClientError::Device(KvStatus::BadKeyspaceState {
                state: "READ_ONLY",
                op: "put",
            }),
            ClientError::RetriesExhausted {
                attempts: 5,
                last: KvStatus::DeviceFull,
            },
            ClientError::Device(KvStatus::ShardUnavailable { shard: 2 }),
            ClientError::RetriesExhausted {
                attempts: 5,
                last: KvStatus::ShardUnavailable { shard: 2 },
            },
        ] {
            assert!(degraded.is_degraded(), "{degraded:?}");
            assert!(!degraded.is_retryable(), "{degraded:?}");
            assert!(!degraded.is_fatal(), "{degraded:?}");
        }
        // Other bad-state errors are not degraded mode.
        let busy_state = ClientError::Device(KvStatus::BadKeyspaceState {
            state: "COMPACTING",
            op: "put",
        });
        assert!(!busy_state.is_degraded());
        // Overload signals are retryable, not degraded.
        assert!(!ClientError::Device(KvStatus::Busy).is_degraded());
        assert!(ClientError::Device(KvStatus::Busy).is_retryable());
    }
}
