//! The in-flight window: per-op deadline and retry tracking over the
//! pipelined `submit`/`poll_completions` transport path.
//!
//! [`InflightWindow`] is the one place in the client allowed to drive a
//! [`QueuePair`] directly (the `window-bypass` checker rule enforces
//! this). Every other client path — single-op calls, the bulk writer,
//! the write accelerator — goes through it, so deadline propagation,
//! retry accounting and completion matching have exactly one
//! implementation.
//!
//! An operation keeps its [`OpId`] across retries while each resend gets
//! a fresh transport [`CmdId`]; completions are matched out of order by
//! id and either finish the op or feed the retry state machine, whose
//! semantics (backoff doubling, redirect fast paths, deadline fail-fast)
//! are identical to the historical lock-step loop — the same ledger
//! counters and clock charges, just decoupled from submission order.
//!
//! Internally a pump lock serializes transport access: the submit→track
//! and poll→record steps must be atomic with respect to each other, or a
//! concurrent waiter could observe an empty completion queue after its
//! completion was drained but before it was recorded, and spin. All
//! window state lives behind `kvcsd_sim::sync` shims, so lockdep, the
//! race detector and kvcsd-mc see every acquisition (the
//! `window-matching` mc harness sweeps this file's interleavings
//! bounded-exhaustively).

use std::collections::BTreeMap;
use std::sync::Arc;

use kvcsd_proto::{CmdId, KvCommand, KvResponse, KvStatus, QueuePair};
use kvcsd_sim::sync::Mutex;
use kvcsd_sim::VirtualClock;

use crate::api::RetryPolicy;
use crate::error::ClientError;
use crate::Result;

/// Identifier for an operation tracked by an [`InflightWindow`] — stable
/// across retries, unlike the per-submission transport [`CmdId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(u64);

/// Everything the retry state machine needs to re-drive one op.
struct OpCtx {
    op: OpId,
    /// The wire command, already deadline-wrapped; resends clone it.
    cmd: KvCommand,
    deadline_ns: Option<u64>,
    /// Commands sent so far (first send included), mirroring the
    /// lock-step loop's `attempts` counter.
    attempts: u32,
}

#[derive(Default)]
struct WindowState {
    next_op: u64,
    /// Live submissions, keyed by the transport id of the *latest* send.
    inflight: BTreeMap<CmdId, OpCtx>,
    /// Finished ops waiting for their `wait()` call.
    done: BTreeMap<u64, Result<KvResponse>>,
}

/// Tracks a set of in-flight operations over one queue pair, matching
/// out-of-order completions and applying per-op deadlines and retries.
pub struct InflightWindow {
    qp: QueuePair,
    policy: RetryPolicy,
    clock: Option<Arc<VirtualClock>>,
    /// Serializes transport access (see module docs).
    pump_lock: Mutex<()>,
    state: Mutex<WindowState>,
}

impl std::fmt::Debug for InflightWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InflightWindow").finish_non_exhaustive()
    }
}

impl InflightWindow {
    /// Open a window over `qp`. The queue pair's completion queue must be
    /// private to this window (a fresh [`QueuePair`] clone guarantees
    /// that), or completions could be drained behind its back.
    pub fn new(qp: QueuePair, policy: RetryPolicy, clock: Option<Arc<VirtualClock>>) -> Self {
        Self {
            qp,
            policy,
            clock,
            pump_lock: Mutex::new(()),
            state: Mutex::new(WindowState::default()),
        }
    }

    /// Submit one operation; its completion is claimed with
    /// [`wait`](InflightWindow::wait). A `deadline_ns` wraps the command
    /// in [`KvCommand::WithDeadline`] and arms the deadline-aware retry
    /// fail-fast, exactly like the lock-step path did.
    pub fn submit(&self, deadline_ns: Option<u64>, cmd: KvCommand) -> OpId {
        let cmd = match deadline_ns {
            Some(deadline_ns) => KvCommand::WithDeadline {
                deadline_ns,
                cmd: Box::new(cmd),
            },
            None => cmd,
        };
        let op = {
            let mut st = self.state.lock();
            st.next_op += 1;
            OpId(st.next_op)
        };
        let _pump = self.pump_lock.lock();
        // The pump lock is held across the transport submit by design:
        // the id must be tracked before any concurrent poll can drain
        // its completion. (The checker's recursion filter skips the
        // same-named `submit` call, so no allow tag is needed here.)
        let id = self.qp.submit(cmd.clone());
        self.state.lock().inflight.insert(
            id,
            OpCtx {
                op,
                cmd,
                deadline_ns,
                attempts: 0,
            },
        );
        op
    }

    /// Block (in virtual time) until `op` finishes, pumping completions
    /// and retries for *every* op in the window along the way.
    pub fn wait(&self, op: OpId) -> Result<KvResponse> {
        loop {
            if let Some(r) = self.take_done(op) {
                return r;
            }
            let _pump = self.pump_lock.lock();
            if let Some(r) = self.take_done(op) {
                return r;
            }
            // kvcsd-check: allow(guard-across-wait) -- the pump lock is the submit/poll critical section by design: a drained completion must be recorded before another waiter sees an empty queue
            self.pump_locked();
        }
    }

    /// Poll the transport once and process whatever completed: finish
    /// ops, apply retry/backoff/redirect decisions, resubmit. Never
    /// blocks on a specific op — callers keeping a window full (the
    /// write accelerator) use this between submissions.
    pub fn pump(&self) {
        let _pump = self.pump_lock.lock();
        // kvcsd-check: allow(guard-across-wait) -- the pump lock is the submit/poll critical section by design: completions are recorded under it so waiters never observe a drained-but-unrecorded op
        self.pump_locked();
    }

    /// Submit and wait: the single-op convenience the lock-step
    /// `exec_with_retry` loop became.
    pub fn call(&self, deadline_ns: Option<u64>, cmd: KvCommand) -> Result<KvResponse> {
        let op = self.submit(deadline_ns, cmd);
        self.wait(op)
    }

    /// The shared I/O ledger of the underlying queue pair.
    pub fn ledger(&self) -> &Arc<kvcsd_sim::IoLedger> {
        self.qp.ledger()
    }

    /// Drain the per-completion latencies (virtual ns, submission to
    /// completion) recorded by the underlying queue pair. Zeros when no
    /// pipeline timing model is attached.
    pub fn completion_latencies(&self) -> Vec<u64> {
        self.qp.take_completion_latencies()
    }

    /// Ops submitted but neither finished nor claimed yet.
    pub fn inflight_len(&self) -> usize {
        let st = self.state.lock();
        st.inflight.len() + st.done.len()
    }

    fn take_done(&self, op: OpId) -> Option<Result<KvResponse>> {
        self.state.lock().done.remove(&op.0)
    }

    fn finish(&self, op: OpId, result: Result<KvResponse>) {
        self.state.lock().done.insert(op.0, result);
    }

    fn resend(&self, ctx: OpCtx) {
        let id = self.qp.submit(ctx.cmd.clone());
        self.state.lock().inflight.insert(id, ctx);
    }

    /// Caller holds the pump lock. One poll, then the retry state
    /// machine per completion — semantics identical to the historical
    /// lock-step loop (same counters, same order, same fail-fast).
    fn pump_locked(&self) {
        let completions = self.qp.poll_completions();
        for (id, resp) in completions {
            let Some(mut ctx) = self.state.lock().inflight.remove(&id) else {
                // Completion for an op this window no longer tracks
                // (impossible by construction; dropping it is safe).
                continue;
            };
            ctx.attempts += 1;
            match resp.into_result() {
                Ok(resp) => self.finish(ctx.op, Ok(resp)),
                Err(status) if status.is_retryable() => {
                    let retry = ctx.attempts - 1; // retries spent so far
                    if retry >= self.policy.max_retries {
                        let err = if self.policy.max_retries == 0 {
                            ClientError::Device(status)
                        } else {
                            ClientError::RetriesExhausted {
                                attempts: ctx.attempts,
                                last: status,
                            }
                        };
                        self.finish(ctx.op, Err(err));
                        continue;
                    }
                    // A failover redirect is not an overload signal: the
                    // dead primary is gone and the resend reaches the
                    // promoted replica, so backing off only adds latency.
                    if matches!(status, KvStatus::FailoverInProgress { .. }) {
                        self.qp.ledger().bump("client_failover_redirects", 1);
                        self.resend(ctx);
                        continue;
                    }
                    // An epoch fence is the same shape: the resend routes
                    // to the current-epoch primary and can succeed now.
                    if matches!(status, KvStatus::EpochFenced { .. }) {
                        self.qp.ledger().bump("client_fence_redirects", 1);
                        self.resend(ctx);
                        continue;
                    }
                    let backoff = self.policy.backoff_ns(retry + 1);
                    if let (Some(clock), Some(d)) = (self.clock.as_deref(), ctx.deadline_ns) {
                        if clock.now_ns().saturating_add(backoff) >= d {
                            self.finish(
                                ctx.op,
                                Err(ClientError::Device(KvStatus::DeadlineExceeded)),
                            );
                            continue;
                        }
                    }
                    self.qp.ledger().bump("client_retries", 1);
                    self.qp.ledger().bump("client_retry_backoff_ns", backoff);
                    if let Some(clock) = self.clock.as_deref() {
                        clock.advance(backoff);
                    }
                    self.resend(ctx);
                }
                Err(status) => self.finish(ctx.op, Err(ClientError::Device(status))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_proto::DeviceHandler;
    use kvcsd_sim::sync::Shared;
    use kvcsd_sim::IoLedger;

    /// Echoes GETs; fails the first `failures` commands transiently.
    struct Echo {
        remaining: Shared<u32>,
    }

    impl DeviceHandler for Echo {
        fn handle(&self, cmd: KvCommand) -> KvResponse {
            let failing = self.remaining.update(|left| {
                let failing = *left > 0;
                *left = left.saturating_sub(1);
                failing
            });
            if failing {
                return KvResponse::Err(KvStatus::TransientDeviceError("injected".into()));
            }
            match cmd {
                KvCommand::Get { key, .. } => KvResponse::Value(key),
                KvCommand::Put { .. } => KvResponse::PutOk,
                _ => KvResponse::Err(KvStatus::Internal("unsupported".into())),
            }
        }
    }

    fn window(failures: u32) -> (InflightWindow, Arc<IoLedger>) {
        let ledger = Arc::new(IoLedger::new(16, 4096));
        let qp = QueuePair::new(
            Arc::new(Echo {
                remaining: Shared::new(failures),
            }),
            Arc::clone(&ledger),
        );
        (
            InflightWindow::new(qp, RetryPolicy::default(), None),
            ledger,
        )
    }

    fn get(key: Vec<u8>) -> KvCommand {
        KvCommand::Get { ks: 0, key }
    }

    #[test]
    fn many_ops_resolve_out_of_submission_order() {
        let (w, _) = window(0);
        let ops: Vec<OpId> = (0u8..16).map(|i| w.submit(None, get(vec![i]))).collect();
        // Claim in reverse order: matching is by op id, not queue order.
        for (ix, op) in ops.into_iter().enumerate().rev() {
            assert_eq!(w.wait(op).expect("echo"), KvResponse::Value(vec![ix as u8]));
        }
        assert_eq!(w.inflight_len(), 0);
    }

    #[test]
    fn retries_charge_the_same_counters_as_the_lock_step_loop() {
        let (w, ledger) = window(3);
        let resp = w.call(None, get(vec![7])).expect("retried to success");
        assert_eq!(resp, KvResponse::Value(vec![7]));
        assert_eq!(ledger.custom("client_retries"), 3);
        assert_eq!(ledger.custom("client_retry_backoff_ns"), 700_000);
    }

    #[test]
    fn a_retrying_op_does_not_stall_its_neighbors() {
        // Op A hits 2 transient errors; op B is submitted after A and
        // still completes while A is mid-retry.
        let (w, _) = window(2);
        let a = w.submit(None, get(vec![1]));
        let b = w.submit(None, get(vec![2]));
        assert_eq!(w.wait(b).expect("b"), KvResponse::Value(vec![2]));
        assert_eq!(w.wait(a).expect("a"), KvResponse::Value(vec![1]));
    }

    #[test]
    fn exhaustion_is_per_op_and_typed() {
        let (w, ledger) = window(u32::MAX);
        let err = w.call(None, get(vec![1])).expect_err("must exhaust");
        assert_eq!(
            err,
            ClientError::RetriesExhausted {
                attempts: 5,
                last: KvStatus::TransientDeviceError("injected".into()),
            }
        );
        assert_eq!(ledger.custom("client_retries"), 4);
    }
}
