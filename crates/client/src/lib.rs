//! The host-side KV-CSD client library.
//!
//! "User applications communicate with KV-CSD through a lightweight
//! client library that exposes a key-value interface similar to that of a
//! software key-value store. ... its primary job is to pack application
//! function calls into requests that are sent to the underlying device,
//! where the actual key-value based storage processing occurs."
//!
//! [`KvCsd`] is the device handle; [`Keyspace`] is a session on one
//! keyspace supporting puts, the 128 KiB [`BulkWriter`], offloaded
//! [`Keyspace::compact`] / [`Keyspace::build_secondary_index`] (returning
//! pollable [`Job`]s), and point/range queries over both indexes. All
//! host-side marshalling cost is charged to the host CPU; all bytes cross
//! the simulated PCIe link through [`kvcsd_proto::QueuePair`].

pub mod accel;
pub mod api;
pub mod error;
pub mod window;

pub use accel::WriteAccelerator;
pub use api::{BulkWriter, Job, Keyspace, KvCsd, RetryPolicy};
pub use error::{status_class, ClientError, StatusClass};
pub use window::{InflightWindow, OpId};

/// Result alias for client operations.
pub type Result<T> = std::result::Result<T, ClientError>;
