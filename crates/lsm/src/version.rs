//! The level structure: which tables live where.
//!
//! L0 holds whole memtable flushes, newest first, with overlapping key
//! ranges. L1 and below are runs of non-overlapping tables kept sorted by
//! first key. This mirrors RocksDB's default leveled layout.

use std::sync::Arc;

use crate::sstable::Table;

/// An immutable-ish snapshot of the table tree.
#[derive(Debug, Default)]
pub struct Version {
    /// L0: newest flush first.
    pub l0: Vec<Arc<Table>>,
    /// `levels[i]` is L(i+1): sorted by first key, non-overlapping.
    pub levels: Vec<Vec<Arc<Table>>>,
}

impl Version {
    pub fn new(max_levels: usize) -> Self {
        Self {
            l0: Vec::new(),
            levels: vec![Vec::new(); max_levels],
        }
    }

    /// Total file bytes at `level` (0 = L0).
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.tables_at(level).iter().map(|t| t.file_bytes).sum()
    }

    /// Tables at `level` (0 = L0).
    pub fn tables_at(&self, level: usize) -> &[Arc<Table>] {
        if level == 0 {
            &self.l0
        } else {
            &self.levels[level - 1]
        }
    }

    /// Total number of live tables.
    pub fn table_count(&self) -> usize {
        self.l0.len() + self.levels.iter().map(Vec::len).sum::<usize>()
    }

    /// Total entries across all live tables.
    pub fn entry_count(&self) -> u64 {
        self.l0
            .iter()
            .chain(self.levels.iter().flatten())
            .map(|t| t.entry_count)
            .sum()
    }

    /// Tables in a sorted level whose key range intersects `[first, last]`.
    pub fn overlapping(&self, level: usize, first: &[u8], last: &[u8]) -> Vec<Arc<Table>> {
        debug_assert!(level >= 1);
        self.levels[level - 1]
            .iter()
            .filter(|t| t.last_key.as_slice() >= first && t.first_key.as_slice() <= last)
            .cloned()
            .collect()
    }

    /// Insert `table` into a sorted level, keeping first-key order.
    pub fn insert_sorted(&mut self, level: usize, table: Arc<Table>) {
        debug_assert!(level >= 1);
        let v = &mut self.levels[level - 1];
        let pos = v.partition_point(|t| t.first_key < table.first_key);
        v.insert(pos, table);
    }

    /// Remove tables by id from `level`.
    pub fn remove_tables(&mut self, level: usize, ids: &[u64]) {
        let v = if level == 0 {
            &mut self.l0
        } else {
            &mut self.levels[level - 1]
        };
        v.retain(|t| !ids.contains(&t.id));
    }

    /// In a sorted level, the single table that may contain `key`.
    pub fn table_for_key(&self, level: usize, key: &[u8]) -> Option<&Arc<Table>> {
        debug_assert!(level >= 1);
        let v = &self.levels[level - 1];
        // First table whose last_key >= key; it contains key iff its
        // first_key <= key.
        let ix = v.partition_point(|t| t.last_key.as_slice() < key);
        v.get(ix).filter(|t| t.first_key.as_slice() <= key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_blockfs::{BlockFs, FsConfig};
    use kvcsd_flash::{ConvConfig, ConventionalNamespace, FlashGeometry, NandArray};
    use kvcsd_sim::{config::CostModel, HardwareSpec, IoLedger};

    fn fs() -> BlockFs {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel: 64,
            pages_per_block: 32,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let dev = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
        BlockFs::format(dev, CostModel::default(), FsConfig::default())
    }

    fn table(fs: &BlockFs, id: u64, lo: u8, hi: u8) -> Arc<Table> {
        let path = format!("{id:06}.sst");
        let mut b = crate::sstable::TableBuilder::create(fs, &path, id, 4096, 16, 10).unwrap();
        for k in lo..=hi {
            b.add(&[k], 1, Some(&[k])).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn sorted_insert_keeps_order() {
        let fs = fs();
        let mut v = Version::new(3);
        v.insert_sorted(1, table(&fs, 2, 50, 60));
        v.insert_sorted(1, table(&fs, 1, 0, 10));
        v.insert_sorted(1, table(&fs, 3, 80, 90));
        let firsts: Vec<u8> = v.levels[0].iter().map(|t| t.first_key[0]).collect();
        assert_eq!(firsts, vec![0, 50, 80]);
        assert_eq!(v.table_count(), 3);
    }

    #[test]
    fn overlapping_selects_intersections() {
        let fs = fs();
        let mut v = Version::new(3);
        v.insert_sorted(1, table(&fs, 1, 0, 10));
        v.insert_sorted(1, table(&fs, 2, 20, 30));
        v.insert_sorted(1, table(&fs, 3, 40, 50));
        let hits = v.overlapping(1, &[25], &[45]);
        let ids: Vec<u64> = hits.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert!(v.overlapping(1, &[11], &[19]).is_empty());
        // Boundary inclusivity.
        assert_eq!(v.overlapping(1, &[10], &[10]).len(), 1);
    }

    #[test]
    fn table_for_key_binary_search() {
        let fs = fs();
        let mut v = Version::new(3);
        v.insert_sorted(1, table(&fs, 1, 0, 10));
        v.insert_sorted(1, table(&fs, 2, 20, 30));
        assert_eq!(v.table_for_key(1, &[5]).unwrap().id, 1);
        assert_eq!(v.table_for_key(1, &[20]).unwrap().id, 2);
        assert!(v.table_for_key(1, &[15]).is_none(), "gap between tables");
        assert!(v.table_for_key(1, &[99]).is_none());
    }

    #[test]
    fn remove_tables_by_id() {
        let fs = fs();
        let mut v = Version::new(3);
        v.l0.push(table(&fs, 7, 0, 5));
        v.insert_sorted(1, table(&fs, 8, 0, 5));
        v.remove_tables(0, &[7]);
        v.remove_tables(1, &[8]);
        assert_eq!(v.table_count(), 0);
    }

    #[test]
    fn byte_and_entry_accounting() {
        let fs = fs();
        let mut v = Version::new(3);
        let t = table(&fs, 1, 0, 9);
        let bytes = t.file_bytes;
        v.l0.push(t);
        assert_eq!(v.level_bytes(0), bytes);
        assert_eq!(v.entry_count(), 10);
        assert_eq!(v.level_bytes(1), 0);
    }
}
