//! Host-side secondary indexing over a prefix-namespaced key scheme.
//!
//! This is the scheme the paper's macro benchmark uses for RocksDB: "To
//! create a secondary index on particle energies ... our loader program
//! inserts auxiliary key-value pairs as it writes primary key-value pairs
//! to the DB. These auxiliary key-value pairs use particle energies as
//! keys and particle IDs as values. To distinguish auxiliary keys from
//! primary keys, a small 1 B prefix is prepended to each key."
//!
//! Queries then run in two steps: a range scan over the auxiliary
//! namespace yields primary keys, and point gets on the primary namespace
//! fetch the full records.

/// Prefix byte for primary (user) keys.
pub const PRIMARY_PREFIX: u8 = 0x00;
/// Prefix byte for auxiliary (secondary-index) keys.
pub const AUX_PREFIX: u8 = 0x01;

/// Namespace a user key into the primary keyspace.
pub fn primary_key(user_key: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + user_key.len());
    k.push(PRIMARY_PREFIX);
    k.extend_from_slice(user_key);
    k
}

/// Build an auxiliary key: prefix | encoded secondary key | primary key.
/// The primary key is appended so that records sharing a secondary-key
/// value remain distinct (and scans return them all).
pub fn aux_key(encoded_sidx: &[u8], user_key: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + encoded_sidx.len() + user_key.len());
    k.push(AUX_PREFIX);
    k.extend_from_slice(encoded_sidx);
    k.extend_from_slice(user_key);
    k
}

/// Split an auxiliary key back into (encoded secondary key, primary key).
/// `sidx_len` is the fixed width of the encoded secondary key.
/// Returns `None` if the key is not an auxiliary key or is too short.
pub fn split_aux(key: &[u8], sidx_len: usize) -> Option<(&[u8], &[u8])> {
    if key.first() != Some(&AUX_PREFIX) || key.len() < 1 + sidx_len {
        return None;
    }
    let (s, p) = key[1..].split_at(sidx_len);
    Some((s, p))
}

/// Strip the primary prefix from a namespaced key.
pub fn split_primary(key: &[u8]) -> Option<&[u8]> {
    if key.first() != Some(&PRIMARY_PREFIX) {
        return None;
    }
    Some(&key[1..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_and_aux_namespaces_are_disjoint() {
        let p = primary_key(b"\xffhighest");
        let a = aux_key(&[0x00], b"lowest");
        // Every primary key sorts before every aux key.
        assert!(p < a);
    }

    #[test]
    fn aux_roundtrip() {
        let k = aux_key(&[1, 2, 3, 4], b"particle-0042");
        let (s, p) = split_aux(&k, 4).unwrap();
        assert_eq!(s, &[1, 2, 3, 4]);
        assert_eq!(p, b"particle-0042");
    }

    #[test]
    fn split_rejects_wrong_namespace() {
        assert!(split_aux(&primary_key(b"x"), 0).is_none());
        assert!(split_primary(&aux_key(&[1], b"x")).is_none());
        assert!(split_aux(&[AUX_PREFIX, 1, 2], 4).is_none(), "too short");
    }

    #[test]
    fn aux_keys_order_by_secondary_then_primary() {
        let a = aux_key(&[1, 0, 0, 0], b"zzz");
        let b = aux_key(&[2, 0, 0, 0], b"aaa");
        assert!(a < b, "secondary key dominates ordering");
        let c = aux_key(&[1, 0, 0, 0], b"aaa");
        assert!(c < a, "primary key breaks ties");
    }

    #[test]
    fn primary_roundtrip() {
        assert_eq!(split_primary(&primary_key(b"id")).unwrap(), b"id");
    }
}
