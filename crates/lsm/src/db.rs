//! The embedding database API — the RocksDB analog.
//!
//! Multiple [`Db`] instances can share one [`BlockFs`] (Figure 9 runs one
//! instance per thread atop a shared ext4); each instance namespaces its
//! files with a path prefix. The write path is WAL -> memtable -> L0 flush
//! -> leveled compaction; the read path is memtable -> L0 (newest first)
//! -> L1.. with bloom filters, a block cache and the OS page cache
//! underneath.

use std::sync::Arc;

use kvcsd_blockfs::BlockFs;
use kvcsd_sim::config::CostModel;
use kvcsd_sim::sync::Mutex;

use crate::compaction::{self, CompactionTask};
use crate::error::LsmError;
use crate::iterator::{MergeIter, Source};
use crate::memtable::MemTable;
use crate::options::{CompactionMode, Options};
use crate::sstable::{new_block_cache, BlockCache, Entry, Table};
use crate::version::Version;
use crate::wal::{Wal, WalRecord};
use crate::Result;

/// Cumulative database statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DbStats {
    pub puts: u64,
    pub deletes: u64,
    pub gets: u64,
    pub scans: u64,
    pub flushes: u64,
    pub compactions: u64,
    /// Times the write path hit the L0 stall trigger and had to wait for
    /// compaction — the paper's "write stalls".
    pub stall_events: u64,
    /// Raw bytes flushed from memtables into L0.
    pub flush_bytes: u64,
    /// Input bytes consumed by compactions (read amplification source).
    pub compaction_bytes_in: u64,
    /// Output bytes produced by compactions (write amplification source).
    pub compaction_bytes_out: u64,
}

#[derive(Debug)]
struct Inner {
    mem: MemTable,
    wal: Option<Wal>,
    version: Version,
    seq: u64,
    next_file: u64,
    stats: DbStats,
}

/// An open database.
pub struct Db {
    fs: Arc<BlockFs>,
    prefix: String,
    opts: Options,
    cache: Arc<BlockCache>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

impl Db {
    /// Open (or create) a database under `prefix` on the shared
    /// filesystem, recovering from the manifest and WAL if present.
    pub fn open(fs: Arc<BlockFs>, prefix: &str, opts: Options) -> Result<Db> {
        let cache = new_block_cache(opts.block_cache_blocks);
        Self::open_with_cache(fs, prefix, opts, cache)
    }

    /// Open with an externally shared block cache (several instances can
    /// share one budget, as RocksDB column families do).
    pub fn open_with_cache(
        fs: Arc<BlockFs>,
        prefix: &str,
        opts: Options,
        cache: Arc<BlockCache>,
    ) -> Result<Db> {
        let mut inner = Inner {
            mem: MemTable::new(),
            wal: None,
            version: Version::new(opts.max_levels),
            seq: 0,
            next_file: 1,
            stats: DbStats::default(),
        };

        // Manifest recovery.
        let manifest = format!("{prefix}MANIFEST");
        if fs.exists(&manifest) {
            let f = fs.open(&manifest)?;
            let size = fs.len(f)?;
            let raw = fs.read_at(f, 0, size as usize)?;
            let text = String::from_utf8_lossy(&raw);
            for line in text.lines() {
                let mut parts = line.split_whitespace();
                let (Some(level), Some(id), Some(path)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(LsmError::Corruption(format!("manifest line: {line}")));
                };
                let level: usize = level
                    .parse()
                    .map_err(|_| LsmError::Corruption(format!("manifest level: {line}")))?;
                let id: u64 = id
                    .parse()
                    .map_err(|_| LsmError::Corruption(format!("manifest id: {line}")))?;
                let table = Arc::new(Table::open(&fs, path, id)?);
                inner.next_file = inner.next_file.max(id + 1);
                if level == 0 {
                    inner.version.l0.push(table); // manifest stores newest first
                } else {
                    inner.version.insert_sorted(level, table);
                }
            }
        }

        // WAL recovery.
        let wal_path = format!("{prefix}wal.log");
        let mut replayed = Vec::new();
        if opts.wal && fs.exists(&wal_path) {
            replayed = Wal::replay(&fs, &wal_path)?;
        }
        if opts.wal {
            let wal = Wal::create(&fs, &wal_path)?;
            for rec in &replayed {
                wal.append(&fs, rec, false)?;
                match rec.clone() {
                    WalRecord::Put { seq, key, value } => {
                        inner.seq = inner.seq.max(seq);
                        inner.mem.insert(key, seq, Some(value));
                    }
                    WalRecord::Delete { seq, key } => {
                        inner.seq = inner.seq.max(seq);
                        inner.mem.insert(key, seq, None);
                    }
                }
            }
            inner.wal = Some(wal);
        }

        Ok(Db {
            fs,
            prefix: prefix.to_string(),
            opts,
            cache,
            inner: Mutex::new(inner),
        })
    }

    /// The filesystem this database lives on.
    pub fn fs(&self) -> &Arc<BlockFs> {
        &self.fs
    }

    /// The database's options.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// The shared decoded-block cache.
    pub fn block_cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    fn cost(&self) -> &CostModel {
        self.fs.cost()
    }

    // ---- write path -------------------------------------------------------

    /// Insert or overwrite a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, Some(value))
    }

    /// Delete a key (writes a tombstone).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, None)
    }

    fn write(&self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        let cost = self.cost().clone();
        let ledger = self.fs.device().nand().ledger();
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;

        if let Some(wal) = &inner.wal {
            let rec = match value {
                Some(v) => WalRecord::Put {
                    seq,
                    key: key.to_vec(),
                    value: v.to_vec(),
                },
                None => WalRecord::Delete {
                    seq,
                    key: key.to_vec(),
                },
            };
            ledger.charge_host_cpu(
                (key.len() + value.map_or(0, <[u8]>::len) + 21) as f64 * cost.codec_ns_per_byte,
            );
            wal.append(&self.fs, &rec, self.opts.sync_wal)?;
        }

        ledger.charge_host_cpu(
            cost.memtable_insert_ns + cost.key_cmp_ns * ((inner.mem.len().max(2)) as f64).log2(),
        );
        inner
            .mem
            .insert(key.to_vec(), seq, value.map(<[u8]>::to_vec));
        match value {
            Some(_) => inner.stats.puts += 1,
            None => inner.stats.deletes += 1,
        }

        if inner.mem.approximate_bytes() >= self.opts.memtable_bytes {
            self.flush_locked(&mut inner)?;
            if self.opts.compaction == CompactionMode::Automatic {
                if inner.version.l0.len() >= self.opts.l0_stall_trigger {
                    inner.stats.stall_events += 1;
                }
                self.compact_until_healthy(&mut inner)?;
            }
        }
        Ok(())
    }

    /// Force the memtable out to an L0 table.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.mem.is_empty() {
            return Ok(());
        }
        let mem = std::mem::take(&mut inner.mem);
        let raw_bytes = mem.approximate_bytes() as u64;
        let id = inner.next_file;
        inner.next_file += 1;
        let path = format!("{}{id:06}.sst", self.prefix);
        let mut builder = crate::sstable::TableBuilder::create(
            &self.fs,
            &path,
            id,
            self.opts.block_bytes,
            self.opts.restart_interval,
            self.opts.bloom_bits_per_key,
        )?;
        for (key, seq, value) in mem.into_sorted_entries() {
            builder.add(&key, seq, value.as_deref())?;
        }
        let table = builder.finish()?;
        inner.version.l0.insert(0, Arc::new(table)); // newest first
        inner.stats.flushes += 1;
        inner.stats.flush_bytes += raw_bytes;
        if let Some(wal) = inner.wal.take() {
            wal.remove(&self.fs)?;
            inner.wal = Some(Wal::create(&self.fs, &format!("{}wal.log", self.prefix))?);
        }
        self.write_manifest(inner)?;
        Ok(())
    }

    // ---- compaction ---------------------------------------------------------

    fn is_bottom_target(&self, inner: &Inner, target_level: usize) -> bool {
        (target_level..=inner.version.levels.len())
            .skip(1)
            .all(|l| inner.version.tables_at(l).is_empty())
            || target_level == inner.version.levels.len()
    }

    fn compact_until_healthy(&self, inner: &mut Inner) -> Result<()> {
        while let Some(task) = compaction::pick(&inner.version, &self.opts) {
            self.run_task(inner, &task)?;
        }
        Ok(())
    }

    fn run_task(&self, inner: &mut Inner, task: &CompactionTask) -> Result<()> {
        let is_bottom = self.is_bottom_target(inner, task.target_level);
        let mut next = inner.next_file;
        let new_tables = compaction::run(
            &self.fs,
            self.cost(),
            &self.cache,
            &self.opts,
            &self.prefix,
            task,
            || {
                let id = next;
                next += 1;
                id
            },
            is_bottom,
        )?;
        inner.next_file = next;

        inner.stats.compactions += 1;
        inner.stats.compaction_bytes_in += task.input_bytes();
        inner.stats.compaction_bytes_out += new_tables.iter().map(|t| t.file_bytes).sum::<u64>();

        let upper_ids: Vec<u64> = task.inputs_upper.iter().map(|t| t.id).collect();
        let lower_ids: Vec<u64> = task.inputs_lower.iter().map(|t| t.id).collect();
        inner.version.remove_tables(task.src_level, &upper_ids);
        inner.version.remove_tables(task.target_level, &lower_ids);
        for t in new_tables {
            inner.version.insert_sorted(task.target_level, Arc::new(t));
        }
        for t in task.inputs_upper.iter().chain(&task.inputs_lower) {
            t.remove(&self.fs)?;
            self.cache.lock().retain(|&(tid, _)| tid != t.id);
        }
        self.write_manifest(inner)?;
        Ok(())
    }

    /// Run compactions until the tree satisfies all triggers (used by the
    /// deferred mode after load, and by automatic mode inline).
    pub fn compact(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.compact_until_healthy(&mut inner)
    }

    /// Full compaction: flush, then merge *everything* into the bottom
    /// level. This is what "deferred compaction ... in a single pass at
    /// the end of an insertion job" does in Figure 9.
    pub fn compact_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)?;
        if inner.version.table_count() == 0 {
            return Ok(());
        }
        let l0 = inner.version.l0.clone();
        let levels = inner.version.levels.clone();
        let mut sources: Vec<Source<'_>> = Vec::new();
        for t in &l0 {
            sources.push(Box::new(OwnedIter::new(t.clone(), self)));
        }
        for level in &levels {
            if level.is_empty() {
                continue;
            }
            let tables = level.clone();
            let me = self;
            sources.push(Box::new(
                tables
                    .into_iter()
                    .flat_map(move |t| OwnedIter::new(t, me).collect::<Vec<_>>()),
            ));
        }
        let mut next = inner.next_file;
        let new_tables = compaction::merge_to_tables(
            &self.fs,
            self.cost(),
            &self.cache,
            &self.opts,
            &self.prefix,
            sources,
            || {
                let id = next;
                next += 1;
                id
            },
            true,
        )?;
        inner.next_file = next;
        inner.stats.compactions += 1;
        inner.stats.compaction_bytes_in += l0
            .iter()
            .chain(levels.iter().flatten())
            .map(|t| t.file_bytes)
            .sum::<u64>();
        inner.stats.compaction_bytes_out += new_tables.iter().map(|t| t.file_bytes).sum::<u64>();

        let bottom = inner.version.levels.len();
        let mut fresh = Version::new(self.opts.max_levels);
        for t in new_tables {
            fresh.insert_sorted(bottom, Arc::new(t));
        }
        let old = std::mem::replace(&mut inner.version, fresh);
        for t in old.l0.iter().chain(old.levels.iter().flatten()) {
            t.remove(&self.fs)?;
            self.cache.lock().retain(|&(tid, _)| tid != t.id);
        }
        self.write_manifest(&mut inner)?;
        Ok(())
    }

    fn write_manifest(&self, inner: &mut Inner) -> Result<()> {
        let path = format!("{}MANIFEST", self.prefix);
        let mut text = String::new();
        for t in &inner.version.l0 {
            text.push_str(&format!("0 {} {}\n", t.id, t.path));
        }
        for (i, level) in inner.version.levels.iter().enumerate() {
            for t in level {
                text.push_str(&format!("{} {} {}\n", i + 1, t.id, t.path));
            }
        }
        if self.fs.exists(&path) {
            self.fs.unlink(&path)?;
        }
        let f = self.fs.create(&path)?;
        self.fs.append(f, text.as_bytes())?;
        self.fs.fsync(f)?;
        Ok(())
    }

    // ---- read path ----------------------------------------------------------

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let cost = self.cost().clone();
        let ledger = self.fs.device().nand().ledger();
        let mut inner = self.inner.lock();
        inner.stats.gets += 1;
        let inner = &*inner;

        ledger.charge_host_cpu(cost.key_cmp_ns * ((inner.mem.len().max(2)) as f64).log2());
        if let Some((_, slot)) = inner.mem.get(key) {
            return Ok(slot.map(<[u8]>::to_vec));
        }
        for t in &inner.version.l0 {
            if key < t.first_key.as_slice() || key > t.last_key.as_slice() {
                continue;
            }
            if let Some(e) = t.get(&self.fs, &cost, &self.cache, key)? {
                return Ok(e.value);
            }
        }
        for level in 1..=inner.version.levels.len() {
            if let Some(t) = inner.version.table_for_key(level, key) {
                if let Some(e) = t.get(&self.fs, &cost, &self.cache, key)? {
                    return Ok(e.value);
                }
            }
        }
        Ok(None)
    }

    /// Range scan over `[lo, hi)`, returning at most `limit` live entries.
    pub fn scan(
        &self,
        lo: &[u8],
        hi: &[u8],
        limit: Option<usize>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let cost = self.cost().clone();
        let mut inner = self.inner.lock();
        inner.stats.scans += 1;
        let inner = &*inner;

        let mut sources: Vec<Source<'_>> = Vec::new();
        // Memtable.
        sources.push(Box::new(
            inner
                .mem
                .range(
                    std::ops::Bound::Included(lo),
                    if hi.is_empty() {
                        std::ops::Bound::Unbounded
                    } else {
                        std::ops::Bound::Excluded(hi)
                    },
                )
                .map(|(k, s, v)| {
                    Ok(Entry {
                        key: k.to_vec(),
                        seq: s,
                        value: v.map(<[u8]>::to_vec),
                    })
                }),
        ));
        // L0, newest first.
        for t in &inner.version.l0 {
            sources.push(Box::new(self.table_range(t, lo, hi, &cost)));
        }
        // Sorted levels: chain overlapping tables per level.
        for level in 1..=inner.version.levels.len() {
            let overlapping: Vec<Arc<Table>> = inner
                .version
                .tables_at(level)
                .iter()
                .filter(|t| {
                    (hi.is_empty() || t.first_key.as_slice() < hi) && t.last_key.as_slice() >= lo
                })
                .cloned()
                .collect();
            if overlapping.is_empty() {
                continue;
            }
            let me = self;
            let lo_v = lo.to_vec();
            let hi_v = hi.to_vec();
            let cost2 = cost.clone();
            sources.push(Box::new(overlapping.into_iter().flat_map(move |t| {
                me.table_range(&t, &lo_v, &hi_v, &cost2).collect::<Vec<_>>()
            })));
        }

        let mut out = Vec::new();
        for item in MergeIter::new(sources) {
            let e = item?;
            if !hi.is_empty() && e.key.as_slice() >= hi {
                break;
            }
            if let Some(v) = e.value {
                out.push((e.key, v));
                if limit.is_some_and(|l| out.len() >= l) {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Materialized bounded range read of one table.
    fn table_range(
        &self,
        t: &Arc<Table>,
        lo: &[u8],
        hi: &[u8],
        cost: &CostModel,
    ) -> std::vec::IntoIter<Result<Entry>> {
        let mut out = Vec::new();
        for item in t.iter_from(&self.fs, cost, &self.cache, lo) {
            match item {
                Ok(e) => {
                    if !hi.is_empty() && e.key.as_slice() >= hi {
                        break;
                    }
                    out.push(Ok(e));
                }
                Err(err) => {
                    out.push(Err(err));
                    break;
                }
            }
        }
        out.into_iter()
    }

    // ---- introspection --------------------------------------------------------

    /// Cumulative statistics.
    pub fn stats(&self) -> DbStats {
        self.inner.lock().stats
    }

    /// Live entries per level: `(L0 count, [L1.., ..])` table counts.
    pub fn level_table_counts(&self) -> Vec<usize> {
        let inner = self.inner.lock();
        let mut v = vec![inner.version.l0.len()];
        v.extend(inner.version.levels.iter().map(Vec::len));
        v
    }

    /// Total live table entries (including shadowed versions/tombstones).
    pub fn table_entries(&self) -> u64 {
        self.inner.lock().version.entry_count()
    }

    /// Entries currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.inner.lock().mem.len()
    }

    /// Highest sequence number issued.
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().seq
    }
}

/// Owned whole-table iterator used by `compact_all`'s source list.
struct OwnedIter {
    entries: std::vec::IntoIter<Result<Entry>>,
}

impl OwnedIter {
    fn new(t: Arc<Table>, db: &Db) -> Self {
        let entries: Vec<Result<Entry>> = t.iter(&db.fs, db.cost(), &db.cache).collect();
        Self {
            entries: entries.into_iter(),
        }
    }
}

impl Iterator for OwnedIter {
    type Item = Result<Entry>;
    fn next(&mut self) -> Option<Self::Item> {
        self.entries.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_blockfs::FsConfig;
    use kvcsd_flash::{ConvConfig, ConventionalNamespace, FlashGeometry, NandArray};
    use kvcsd_sim::{HardwareSpec, IoLedger};

    fn make_fs() -> Arc<BlockFs> {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 512,
            pages_per_block: 32,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let dev = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
        Arc::new(BlockFs::format(
            dev,
            CostModel::default(),
            FsConfig::default(),
        ))
    }

    fn small_opts(mode: CompactionMode) -> Options {
        Options {
            memtable_bytes: 4 << 10,
            level_base_bytes: 16 << 10,
            target_file_bytes: 8 << 10,
            compaction: mode,
            ..Options::default()
        }
    }

    fn k(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }
    fn v(i: u32) -> Vec<u8> {
        format!("val-{i:08}").into_bytes()
    }

    #[test]
    fn put_get_through_memtable() {
        let db = Db::open(make_fs(), "", Options::default()).unwrap();
        db.put(b"a", b"1").unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), None);
        db.delete(b"a").unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
    }

    #[test]
    fn flush_and_read_from_tables() {
        let db = Db::open(make_fs(), "", small_opts(CompactionMode::Disabled)).unwrap();
        for i in 0..200 {
            db.put(&k(i), &v(i)).unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.memtable_len(), 0);
        assert!(db.level_table_counts()[0] >= 1);
        for i in (0..200).step_by(17) {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i)), "key {i}");
        }
    }

    #[test]
    fn automatic_compaction_keeps_l0_small_and_data_correct() {
        let db = Db::open(make_fs(), "", small_opts(CompactionMode::Automatic)).unwrap();
        for i in 0..3000 {
            db.put(&k(i % 1000), &v(i)).unwrap(); // 3x overwrites
        }
        let stats = db.stats();
        assert!(stats.flushes > 3, "small memtable must flush repeatedly");
        assert!(stats.compactions > 0, "automatic mode must compact");
        assert!(
            db.level_table_counts()[0] < db.options().l0_compaction_trigger,
            "L0 must stay under trigger after compactions: {:?}",
            db.level_table_counts()
        );
        for i in 0..1000u32 {
            let newest = (0..3).map(|r| r * 1000 + i).max().unwrap();
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(newest)), "key {i}");
        }
    }

    #[test]
    fn disabled_mode_never_compacts() {
        let db = Db::open(make_fs(), "", small_opts(CompactionMode::Disabled)).unwrap();
        for i in 0..2000 {
            db.put(&k(i), &v(i)).unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.stats().compactions, 0);
        assert!(
            db.level_table_counts()[0] > 4,
            "L0 accumulates without compaction"
        );
        // Reads still correct (merging across many runs).
        for i in (0..2000).step_by(191) {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i)));
        }
    }

    #[test]
    fn deferred_compact_all_collapses_to_bottom() {
        let db = Db::open(make_fs(), "", small_opts(CompactionMode::Deferred)).unwrap();
        for i in 0..2000 {
            db.put(&k(i), &v(i)).unwrap();
        }
        db.compact_all().unwrap();
        let counts = db.level_table_counts();
        assert_eq!(counts[0], 0, "L0 empty after full compaction");
        assert!(counts[1..counts.len() - 1].iter().all(|&c| c == 0));
        assert!(counts[counts.len() - 1] > 0, "all data in the bottom level");
        for i in (0..2000).step_by(97) {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i)));
        }
    }

    #[test]
    fn compact_all_drops_tombstones() {
        let db = Db::open(make_fs(), "", small_opts(CompactionMode::Deferred)).unwrap();
        for i in 0..500 {
            db.put(&k(i), &v(i)).unwrap();
        }
        for i in 0..250 {
            db.delete(&k(i)).unwrap();
        }
        db.compact_all().unwrap();
        assert_eq!(
            db.table_entries(),
            250,
            "tombstones and shadowed keys purged"
        );
        assert_eq!(db.get(&k(100)).unwrap(), None);
        assert_eq!(db.get(&k(400)).unwrap(), Some(v(400)));
    }

    #[test]
    fn scan_merges_levels_and_memtable() {
        let db = Db::open(make_fs(), "", small_opts(CompactionMode::Disabled)).unwrap();
        for i in 0..300 {
            db.put(&k(i), &v(i)).unwrap();
        }
        db.flush().unwrap();
        // Overwrite a few in the memtable, delete one.
        db.put(&k(10), b"fresh").unwrap();
        db.delete(&k(11)).unwrap();
        let got = db.scan(&k(9), &k(14), None).unwrap();
        let keys: Vec<Vec<u8>> = got.iter().map(|(kk, _)| kk.clone()).collect();
        assert_eq!(keys, vec![k(9), k(10), k(12), k(13)]);
        let v10 = &got[1].1;
        assert_eq!(v10, b"fresh");
    }

    #[test]
    fn scan_respects_limit_and_empty_hi() {
        let db = Db::open(make_fs(), "", small_opts(CompactionMode::Disabled)).unwrap();
        for i in 0..100 {
            db.put(&k(i), &v(i)).unwrap();
        }
        let got = db.scan(&k(50), &[], Some(5)).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].0, k(50));
        let all = db.scan(&[], &[], None).unwrap();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn model_equivalence_under_mixed_ops() {
        use std::collections::BTreeMap;
        let db = Db::open(make_fs(), "", small_opts(CompactionMode::Automatic)).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut x = 777u32;
        for _ in 0..4000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let key = k(x % 500);
            if x.is_multiple_of(5) {
                db.delete(&key).unwrap();
                model.remove(&key);
            } else {
                let val = v(x);
                db.put(&key, &val).unwrap();
                model.insert(key, val);
            }
        }
        for i in 0..500 {
            assert_eq!(db.get(&k(i)).unwrap(), model.get(&k(i)).cloned(), "key {i}");
        }
        let scan = db.scan(&[], &[], None).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        assert_eq!(scan, expect);
    }

    #[test]
    fn recovery_from_manifest_and_wal() {
        let fs = make_fs();
        {
            let db = Db::open(
                Arc::clone(&fs),
                "db/",
                small_opts(CompactionMode::Automatic),
            )
            .unwrap();
            for i in 0..500 {
                db.put(&k(i), &v(i)).unwrap();
            }
            // A few unflushed writes stay only in WAL + memtable.
            db.put(b"only-in-wal", b"survives").unwrap();
        }
        let db = Db::open(fs, "db/", small_opts(CompactionMode::Automatic)).unwrap();
        assert_eq!(db.get(b"only-in-wal").unwrap(), Some(b"survives".to_vec()));
        for i in (0..500).step_by(41) {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i)), "key {i}");
        }
        assert!(db.last_seq() >= 501);
    }

    #[test]
    fn two_instances_share_a_filesystem() {
        let fs = make_fs();
        let a = Db::open(Arc::clone(&fs), "a/", small_opts(CompactionMode::Automatic)).unwrap();
        let b = Db::open(Arc::clone(&fs), "b/", small_opts(CompactionMode::Automatic)).unwrap();
        for i in 0..300 {
            a.put(&k(i), b"from-a").unwrap();
            b.put(&k(i), b"from-b").unwrap();
        }
        assert_eq!(a.get(&k(7)).unwrap(), Some(b"from-a".to_vec()));
        assert_eq!(b.get(&k(7)).unwrap(), Some(b"from-b".to_vec()));
    }

    #[test]
    fn write_amplification_is_measured() {
        let fs = make_fs();
        let db = Db::open(Arc::clone(&fs), "", small_opts(CompactionMode::Automatic)).unwrap();
        let n = 3000u32;
        for i in 0..n {
            db.put(&k(i), &v(i)).unwrap();
        }
        db.flush().unwrap();
        let logical: u64 = (n as u64) * (12 + 12);
        let s = fs.device().nand().ledger().snapshot();
        let amp = s.storage_write_bytes() as f64 / logical as f64;
        assert!(
            amp > 2.0,
            "LSM with WAL + compaction must amplify writes well beyond 2x, got {amp:.2}"
        );
    }

    #[test]
    fn stall_events_fire_when_l0_backs_up() {
        let mut opts = small_opts(CompactionMode::Automatic);
        opts.l0_stall_trigger = 2; // absurdly low to force the path
        opts.l0_compaction_trigger = 2;
        let db = Db::open(make_fs(), "", opts).unwrap();
        for i in 0..4000 {
            db.put(&k(i), &v(i)).unwrap();
        }
        // With trigger 2, every flush beyond the first risks a stall; the
        // counter must have moved.
        assert!(db.stats().compactions > 0);
    }

    #[test]
    fn no_wal_mode_skips_log_writes() {
        let fs = make_fs();
        let mut opts = small_opts(CompactionMode::Disabled);
        opts.wal = false;
        let db = Db::open(Arc::clone(&fs), "", opts).unwrap();
        db.put(b"x", b"y").unwrap();
        assert!(!fs.exists("wal.log"));
        assert_eq!(db.get(b"x").unwrap(), Some(b"y".to_vec()));
    }
}
