//! Leveled compaction: picking and running.
//!
//! Picking follows RocksDB's defaults: L0 compacts into L1 when it
//! accumulates `l0_compaction_trigger` files (all L0 files participate,
//! because they overlap); Ln compacts into Ln+1 when its byte size
//! exceeds the level target, taking one source table plus the next-level
//! tables it overlaps. Running a compaction is a K-way merge that writes
//! fresh tables split at `target_file_bytes`, dropping older duplicate
//! versions always and tombstones when the output is the bottom of the
//! tree.

use std::sync::Arc;

use kvcsd_blockfs::BlockFs;
use kvcsd_sim::config::CostModel;

use crate::error::LsmError;
use crate::iterator::{MergeIter, Source};
use crate::options::Options;
use crate::sstable::{BlockCache, Entry, Table, TableBuilder};
use crate::version::Version;
use crate::Result;

/// A unit of compaction work.
#[derive(Debug)]
pub struct CompactionTask {
    /// Source level (0 means L0 -> L1).
    pub src_level: usize,
    /// Level the output lands in.
    pub target_level: usize,
    /// Input tables from the source level, newest first.
    pub inputs_upper: Vec<Arc<Table>>,
    /// Overlapping input tables from the target level, key order.
    pub inputs_lower: Vec<Arc<Table>>,
}

impl CompactionTask {
    /// Total input bytes (the work size).
    pub fn input_bytes(&self) -> u64 {
        self.inputs_upper
            .iter()
            .chain(&self.inputs_lower)
            .map(|t| t.file_bytes)
            .sum()
    }
}

/// Choose the next compaction, if the tree needs one.
pub fn pick(version: &Version, opts: &Options) -> Option<CompactionTask> {
    // L0 first: file-count trigger.
    if version.l0.len() >= opts.l0_compaction_trigger {
        let inputs_upper = version.l0.clone();
        let first = inputs_upper
            .iter()
            .map(|t| t.first_key.clone())
            .min()
            .unwrap_or_default();
        let last = inputs_upper
            .iter()
            .map(|t| t.last_key.clone())
            .max()
            .unwrap_or_default();
        let inputs_lower = version.overlapping(1, &first, &last);
        return Some(CompactionTask {
            src_level: 0,
            target_level: 1,
            inputs_upper,
            inputs_lower,
        });
    }
    // Size triggers for L1..L(max-1).
    for level in 1..version.levels.len() {
        if version.level_bytes(level) > opts.level_target_bytes(level) {
            // Take the first table (simple cursor-less policy).
            let table = version.levels[level - 1].first()?.clone();
            let inputs_lower = version.overlapping(level + 1, &table.first_key, &table.last_key);
            return Some(CompactionTask {
                src_level: level,
                target_level: level + 1,
                inputs_upper: vec![table],
                inputs_lower,
            });
        }
    }
    None
}

/// Execute a compaction merge, returning the freshly written tables.
///
/// `next_id` supplies table file ids; `is_bottom` enables tombstone
/// elision (safe only when no older data exists below the target level).
#[allow(clippy::too_many_arguments)]
pub fn run(
    fs: &BlockFs,
    cost: &CostModel,
    cache: &BlockCache,
    opts: &Options,
    prefix: &str,
    task: &CompactionTask,
    next_id: impl FnMut() -> u64,
    is_bottom: bool,
) -> Result<Vec<Table>> {
    let mut sources: Vec<Source<'_>> = Vec::new();
    for t in &task.inputs_upper {
        sources.push(Box::new(OwnedTableIter::new(t.clone(), fs, cost, cache)));
    }
    if !task.inputs_lower.is_empty() {
        let lower = task.inputs_lower.clone();
        let chained = lower
            .into_iter()
            .flat_map(move |t| OwnedTableIter::new(t, fs, cost, cache).collect::<Vec<_>>());
        sources.push(Box::new(chained));
    }
    merge_to_tables(fs, cost, cache, opts, prefix, sources, next_id, is_bottom)
}

/// Merge arbitrary sorted sources (newest first) into fresh tables split
/// at `target_file_bytes`. Shared by level compaction, full compaction
/// ([`crate::Db::compact_all`]) and memtable flush.
#[allow(clippy::too_many_arguments)]
pub fn merge_to_tables(
    fs: &BlockFs,
    cost: &CostModel,
    _cache: &BlockCache,
    opts: &Options,
    prefix: &str,
    sources: Vec<Source<'_>>,
    mut next_id: impl FnMut() -> u64,
    is_bottom: bool,
) -> Result<Vec<Table>> {
    let n_sources = sources.len().max(2);
    let merge = MergeIter::new(sources);

    let ledger = fs.device().nand().ledger();
    let mut out: Vec<Table> = Vec::new();
    let mut builder: Option<TableBuilder<'_>> = None;
    let mut builder_bytes = 0usize;
    for item in merge {
        let e = item?;
        ledger.charge_host_cpu(cost.key_cmp_ns * (n_sources as f64).log2());
        if is_bottom && e.value.is_none() {
            continue; // tombstone has nothing left to shadow
        }
        if builder.is_none() {
            let id = next_id();
            let path = format!("{prefix}{id:06}.sst");
            builder = Some(TableBuilder::create(
                fs,
                &path,
                id,
                opts.block_bytes,
                opts.restart_interval,
                opts.bloom_bits_per_key,
            )?);
            builder_bytes = 0;
        }
        let sz = e.key.len() + e.value.as_ref().map_or(0, Vec::len);
        let b = builder
            .as_mut()
            .ok_or_else(|| LsmError::Corruption("merge writer lost its builder".into()))?;
        b.add(&e.key, e.seq, e.value.as_deref())?;
        builder_bytes += sz;
        if builder_bytes >= opts.target_file_bytes {
            if let Some(full) = builder.take() {
                out.push(full.finish()?);
            }
        }
    }
    if let Some(b) = builder {
        out.push(b.finish()?);
    }
    Ok(out)
}

/// Table iterator that owns its table Arc (the borrow-free version of
/// [`Table::iter`] that compaction needs for heterogeneous source lists).
struct OwnedTableIter {
    table: Arc<Table>,
    entries: std::vec::IntoIter<Result<Entry>>,
}

impl OwnedTableIter {
    fn new(table: Arc<Table>, fs: &BlockFs, cost: &CostModel, cache: &BlockCache) -> Self {
        // Materialize lazily per block would be ideal; at simulation scale
        // collecting the (I/O-charged) iteration up front keeps lifetimes
        // simple while preserving every ledger charge.
        let entries: Vec<Result<Entry>> = table.iter(fs, cost, cache).collect();
        Self {
            table,
            entries: entries.into_iter(),
        }
    }
}

impl Iterator for OwnedTableIter {
    type Item = Result<Entry>;
    fn next(&mut self) -> Option<Self::Item> {
        let _ = &self.table;
        self.entries.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::new_block_cache;
    use kvcsd_blockfs::FsConfig;
    use kvcsd_flash::{ConvConfig, ConventionalNamespace, FlashGeometry, NandArray};
    use kvcsd_sim::{HardwareSpec, IoLedger};

    fn fs() -> BlockFs {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 256,
            pages_per_block: 32,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let dev = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
        BlockFs::format(dev, CostModel::default(), FsConfig::default())
    }

    fn build_table(
        fs: &BlockFs,
        id: u64,
        entries: Vec<(Vec<u8>, u64, Option<Vec<u8>>)>,
    ) -> Arc<Table> {
        let path = format!("{id:06}.sst");
        let mut b = TableBuilder::create(fs, &path, id, 4096, 16, 10).unwrap();
        for (k, s, v) in entries {
            b.add(&k, s, v.as_deref()).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn k(i: u32) -> Vec<u8> {
        format!("{i:06}").into_bytes()
    }

    #[test]
    fn pick_triggers_on_l0_files() {
        let fs = fs();
        let opts = Options::default();
        let mut v = Version::new(4);
        for id in 0..4 {
            v.l0.push(build_table(&fs, id, vec![(k(1), id, Some(vec![id as u8]))]));
        }
        let task = pick(&v, &opts).expect("4 L0 files must trigger");
        assert_eq!(task.src_level, 0);
        assert_eq!(task.target_level, 1);
        assert_eq!(task.inputs_upper.len(), 4);
        assert!(task.inputs_lower.is_empty());
        assert!(task.input_bytes() > 0);
    }

    #[test]
    fn pick_is_none_when_healthy() {
        let fs = fs();
        let opts = Options::default();
        let mut v = Version::new(4);
        v.l0.push(build_table(&fs, 1, vec![(k(1), 1, Some(vec![1]))]));
        assert!(pick(&v, &opts).is_none());
    }

    #[test]
    fn pick_includes_overlapping_lower_tables() {
        let fs = fs();
        let opts = Options::default();
        let mut v = Version::new(4);
        for id in 0..4 {
            v.l0.push(build_table(
                &fs,
                id,
                vec![
                    (k(10), 100 + id, Some(vec![1])),
                    (k(20), 200 + id, Some(vec![2])),
                ],
            ));
        }
        v.insert_sorted(1, build_table(&fs, 50, vec![(k(15), 1, Some(vec![9]))]));
        v.insert_sorted(1, build_table(&fs, 51, vec![(k(99), 1, Some(vec![9]))]));
        let task = pick(&v, &opts).unwrap();
        assert_eq!(
            task.inputs_lower.len(),
            1,
            "only the overlapping L1 table joins"
        );
        assert_eq!(task.inputs_lower[0].id, 50);
    }

    #[test]
    fn run_merges_newest_wins_and_sorted() {
        let fs = fs();
        let opts = Options::default();
        let cache = new_block_cache(1024);
        let cost = CostModel::default();
        let newer = build_table(&fs, 1, vec![(k(1), 10, Some(b"new".to_vec()))]);
        let older = build_table(
            &fs,
            2,
            vec![
                (k(0), 1, Some(b"a".to_vec())),
                (k(1), 2, Some(b"old".to_vec())),
            ],
        );
        let task = CompactionTask {
            src_level: 0,
            target_level: 1,
            inputs_upper: vec![newer, older],
            inputs_lower: vec![],
        };
        let mut id = 100u64;
        let out = run(
            &fs,
            &cost,
            &cache,
            &opts,
            "",
            &task,
            || {
                id += 1;
                id
            },
            false,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let t = &out[0];
        let got: Vec<Entry> = t.iter(&fs, &cost, &cache).map(|e| e.unwrap()).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].key, k(0));
        assert_eq!(got[1].value, Some(b"new".to_vec()));
    }

    #[test]
    fn bottom_level_drops_tombstones() {
        let fs = fs();
        let opts = Options::default();
        let cache = new_block_cache(1024);
        let cost = CostModel::default();
        let t = build_table(
            &fs,
            1,
            vec![(k(0), 5, None), (k(1), 6, Some(b"live".to_vec()))],
        );
        let task = CompactionTask {
            src_level: 1,
            target_level: 2,
            inputs_upper: vec![t],
            inputs_lower: vec![],
        };
        let mut id = 10u64;
        let out = run(
            &fs,
            &cost,
            &cache,
            &opts,
            "",
            &task,
            || {
                id += 1;
                id
            },
            true,
        )
        .unwrap();
        let got: Vec<Entry> = out[0]
            .iter(&fs, &cost, &cache)
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key, k(1));
    }

    #[test]
    fn non_bottom_keeps_tombstones() {
        let fs = fs();
        let opts = Options::default();
        let cache = new_block_cache(1024);
        let cost = CostModel::default();
        let t = build_table(&fs, 1, vec![(k(0), 5, None)]);
        let task = CompactionTask {
            src_level: 0,
            target_level: 1,
            inputs_upper: vec![t],
            inputs_lower: vec![],
        };
        let mut id = 10u64;
        let out = run(
            &fs,
            &cost,
            &cache,
            &opts,
            "",
            &task,
            || {
                id += 1;
                id
            },
            false,
        )
        .unwrap();
        let got: Vec<Entry> = out[0]
            .iter(&fs, &cost, &cache)
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, None, "tombstone must survive above bottom");
    }

    #[test]
    fn output_splits_at_target_file_size() {
        let fs = fs();
        let opts = Options {
            target_file_bytes: 8 << 10,
            ..Options::default()
        };
        let cache = new_block_cache(1024);
        let cost = CostModel::default();
        let entries: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = (0..2000u32)
            .map(|i| (k(i), i as u64, Some(vec![7u8; 32])))
            .collect();
        let t = build_table(&fs, 1, entries);
        let task = CompactionTask {
            src_level: 0,
            target_level: 1,
            inputs_upper: vec![t],
            inputs_lower: vec![],
        };
        let mut id = 10u64;
        let out = run(
            &fs,
            &cost,
            &cache,
            &opts,
            "",
            &task,
            || {
                id += 1;
                id
            },
            false,
        )
        .unwrap();
        assert!(
            out.len() > 3,
            "2000*~38B entries should split into several 8KiB tables"
        );
        // Outputs are disjoint and ordered.
        for w in out.windows(2) {
            assert!(w[0].last_key < w[1].first_key);
        }
        let total: u64 = out.iter().map(|t| t.entry_count).sum();
        assert_eq!(total, 2000);
    }

    #[test]
    fn compaction_io_is_charged() {
        let fs = fs();
        let opts = Options::default();
        let cache = new_block_cache(1024);
        let cost = CostModel::default();
        let entries: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = (0..500u32)
            .map(|i| (k(i), i as u64, Some(vec![1u8; 32])))
            .collect();
        let t = build_table(&fs, 1, entries);
        fs.drop_caches();
        cache.lock().clear();
        let before = fs.device().nand().ledger().snapshot();
        let task = CompactionTask {
            src_level: 0,
            target_level: 1,
            inputs_upper: vec![t],
            inputs_lower: vec![],
        };
        let mut id = 10u64;
        run(
            &fs,
            &cost,
            &cache,
            &opts,
            "",
            &task,
            || {
                id += 1;
                id
            },
            false,
        )
        .unwrap();
        let d = fs.device().nand().ledger().snapshot().since(&before);
        assert!(d.nand_read_pages > 0, "compaction must read inputs");
        assert!(d.nand_program_pages > 0, "compaction must write outputs");
        assert!(d.host_cpu_ns > 0, "merge work must be charged");
    }
}
